"""Unit tests for the Lustre parallel file system model."""

import pytest

from repro.cluster.network import Fabric, FabricConfig
from repro.errors import ConfigError
from repro.sim.rng import RngStreams
from repro.storage.lustre import LustreConfig, LustreFileSystem, LustreServers
from repro.units import mib, usec


def make_fs(env, config=None, clients=("node00", "node01")):
    fabric = Fabric(env, FabricConfig(jitter_cv=0.0), RngStreams(0))
    for client in clients:
        fabric.attach(client)
    servers = LustreServers(env, fabric, config, RngStreams(0))
    return LustreFileSystem(servers), servers


def _drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def test_servers_attached_to_fabric(env):
    fs, servers = make_fs(env)
    assert servers.fabric.nic("lustre-mds")
    for i in range(servers.config.n_oss):
        assert servers.fabric.nic(f"lustre-oss{i}")


def test_global_namespace_across_clients(env):
    fs, _ = make_fs(env)

    def flow():
        h = yield from fs.open("/shared", "w", client="node00")
        yield from h.write(100)
        yield from h.close()
        h = yield from fs.open("/shared", "r", client="node01")
        count, _ = yield from h.read()
        yield from h.close()
        return count

    assert _drive(env, flow()) == 100


def test_client_required(env):
    fs, _ = make_fs(env)

    def flow():
        yield from fs.open("/x", "w")

    with pytest.raises(ConfigError, match="client"):
        _drive(env, flow())


def test_create_costs_two_mds_rpcs(env):
    fs, servers = make_fs(env)

    def flow():
        start = env.now
        h = yield from fs.open("/new", "w", client="node00")
        create = env.now - start
        yield from h.close()
        start = env.now
        h = yield from fs.open("/new", "r", client="node00")
        reopen = env.now - start
        yield from h.close()
        return create, reopen

    create, reopen = _drive(env, flow())
    assert create > reopen  # layout allocation = extra MDS round trip
    assert create >= 2 * servers.config.mds_service


def test_stripe_split_covers_all_bytes(env):
    fs, servers = make_fs(env)
    for size in (1, 1000, mib(1), mib(3) + 17, mib(64)):
        parts = fs._stripe_split("/f", size)
        assert sum(share for _, share in parts) == size
        assert len(parts) <= servers.config.stripe_count
        assert all(0 <= ost < servers.n_osts for ost, _ in parts)


def test_small_file_single_stripe(env):
    fs, _ = make_fs(env)
    parts = fs._stripe_split("/small", 1000)
    assert len(parts) == 1


def test_large_file_uses_multiple_stripes(env):
    fs, servers = make_fs(env)
    parts = fs._stripe_split("/big", mib(8))
    assert len(parts) == servers.config.stripe_count


def test_layout_deterministic_per_path(env):
    fs, _ = make_fs(env)
    assert fs._layout("/a/b") == fs._layout("/a/b")
    # different paths usually land on different first OSTs
    firsts = {fs._layout(f"/f{i}") for i in range(50)}
    assert len(firsts) > 1


def test_write_then_read_timing_asymmetry(env):
    """Cold reads are slower than (cache-absorbed) writes for bulk data."""
    fs, _ = make_fs(env)

    def flow():
        h = yield from fs.open("/bulk", "w", client="node00")
        start = env.now
        yield from h.write(mib(16))
        write_time = env.now - start
        yield from h.close()
        h = yield from fs.open("/bulk", "r", client="node01")
        start = env.now
        yield from h.read()
        read_time = env.now - start
        yield from h.close()
        return write_time, read_time

    write_time, read_time = _drive(env, flow())
    assert read_time > write_time


def test_concurrent_readers_contend_on_oss(env):
    n = 32
    config = LustreConfig()
    fs, _ = make_fs(env, config, clients=[f"node{i:02d}" for i in range(n)])

    def produce(path):
        h = yield from fs.open(path, "w", client="node00")
        yield from h.write(mib(32))
        yield from h.close()

    for i in range(n):
        _drive(env, produce(f"/f{i}"))

    solo_time = {}

    def read_one(path, client, log):
        h = yield from fs.open(path, "r", client=client)
        start = env.now
        yield from h.read()
        log[path] = env.now - start
        yield from h.close()

    _drive(env, read_one("/f0", "node01", solo_time))

    crowd_time = {}
    procs = [
        env.process(read_one(f"/f{i}", f"node{i:02d}", crowd_time))
        for i in range(n)
    ]
    env.run()
    mean_crowd = sum(crowd_time.values()) / len(crowd_time)
    assert mean_crowd > solo_time["/f0"] * 1.5


def test_read_stream_floor_applies_to_large_reads(env):
    """Per-stream read floor: large reads cannot beat the sustained rate."""
    fs, servers = make_fs(env)
    cfg = servers.config

    def flow():
        h = yield from fs.open("/stream", "w", client="node00")
        yield from h.write(mib(16))
        yield from h.close()
        h = yield from fs.open("/stream", "r", client="node01")
        start = env.now
        yield from h.read()
        return env.now - start

    elapsed = _drive(env, flow())
    per_stripe = mib(16) // cfg.stripe_count
    floor = servers._stream_floor(per_stripe)
    assert elapsed >= floor


def test_interference_adds_variance(env):
    config = LustreConfig(interference_cv=0.3)
    fs, _ = make_fs(env, config)

    def one(i, log):
        h = yield from fs.open(f"/v{i}", "w", client="node00")
        start = env.now
        yield from h.write(mib(1))
        log.append(env.now - start)
        yield from h.close()

    log = []
    for i in range(6):
        _drive(env, one(i, log))
    assert len(set(round(t, 9) for t in log)) > 1


def test_mds_queueing_under_burst(env):
    config = LustreConfig(mds_capacity=1)
    fs, servers = make_fs(env, config,
                          clients=[f"node{i:02d}" for i in range(4)])
    times = []

    def opener(i):
        start = env.now
        h = yield from fs.open(f"/q{i}", "w", client=f"node{i:02d}")
        times.append(env.now - start)
        yield from h.close()

    for i in range(4):
        env.process(opener(i))
    env.run()
    # with a single MDS thread, a simultaneous burst of creates serializes:
    # the last opener queues behind 3 predecessors for each of its RPCs
    assert max(times) >= min(times) + 2 * servers.config.mds_service


def test_config_validation():
    with pytest.raises(ConfigError):
        LustreConfig(stripe_count=0).validate()
    with pytest.raises(ConfigError):
        LustreConfig(n_oss=0).validate()
    with pytest.raises(ConfigError):
        LustreConfig(oss_read_bandwidth=0).validate()
    with pytest.raises(ConfigError):
        LustreConfig(max_rpcs_in_flight=0).validate()
    with pytest.raises(ConfigError):
        LustreConfig(interference_cv=-1).validate()


def test_unlink_and_stat_cost_mds_rpc(env):
    fs, servers = make_fs(env)

    def flow():
        h = yield from fs.open("/meta", "w", client="node00")
        yield from h.close()
        start = env.now
        yield from fs.stat("/meta", client="node00")
        stat_time = env.now - start
        start = env.now
        yield from fs.unlink("/meta", client="node00")
        unlink_time = env.now - start
        return stat_time, unlink_time

    stat_time, unlink_time = _drive(env, flow())
    assert stat_time >= servers.config.mds_service
    assert unlink_time >= servers.config.mds_service
