"""Unit tests for advisory reader/writer file locks."""

import pytest

from repro.errors import LockError
from repro.storage.locks import LockMode, LockTable


@pytest.fixture
def locks(env):
    return LockTable(env)


def test_shared_locks_coexist(env, locks):
    a = locks.try_acquire("/f", LockMode.SHARED, "a")
    b = locks.try_acquire("/f", LockMode.SHARED, "b")
    assert a is not None and b is not None
    assert len(locks.holders("/f")) == 2


def test_exclusive_excludes_everything(env, locks):
    ex = locks.try_acquire("/f", LockMode.EXCLUSIVE, "w")
    assert ex is not None
    assert locks.try_acquire("/f", LockMode.SHARED, "r") is None
    assert locks.try_acquire("/f", LockMode.EXCLUSIVE, "w2") is None


def test_shared_blocks_exclusive(env, locks):
    locks.try_acquire("/f", LockMode.SHARED, "r")
    assert locks.try_acquire("/f", LockMode.EXCLUSIVE, "w") is None


def test_locks_per_path_independent(env, locks):
    assert locks.try_acquire("/a", LockMode.EXCLUSIVE, "x") is not None
    assert locks.try_acquire("/b", LockMode.EXCLUSIVE, "y") is not None


def test_blocking_acquire_waits_for_release(env, locks):
    order = []

    def writer():
        lock = yield from locks.acquire("/f", LockMode.EXCLUSIVE, "w")
        order.append(("w-got", env.now))
        yield env.timeout(2.0)
        locks.release(lock)

    def reader():
        yield env.timeout(0.5)
        lock = yield from locks.acquire("/f", LockMode.SHARED, "r")
        order.append(("r-got", env.now))
        locks.release(lock)

    env.process(writer())
    env.process(reader())
    env.run()
    assert order == [("w-got", 0.0), ("r-got", 2.0)]


def test_fifo_fairness_writer_not_starved(env, locks):
    """A queued exclusive request blocks later shared requests."""
    order = []

    def holder():
        lock = yield from locks.acquire("/f", LockMode.SHARED, "s1")
        yield env.timeout(1.0)
        locks.release(lock)

    def writer():
        yield env.timeout(0.1)
        lock = yield from locks.acquire("/f", LockMode.EXCLUSIVE, "w")
        order.append(("w", env.now))
        yield env.timeout(1.0)
        locks.release(lock)

    def late_reader():
        yield env.timeout(0.2)
        # compatible with s1, but must queue behind the writer
        lock = yield from locks.acquire("/f", LockMode.SHARED, "s2")
        order.append(("s2", env.now))
        locks.release(lock)

    env.process(holder())
    env.process(writer())
    env.process(late_reader())
    env.run()
    assert order == [("w", 1.0), ("s2", 2.0)]


def test_try_acquire_respects_queue(env, locks):
    lock = locks.try_acquire("/f", LockMode.SHARED, "a")

    def writer():
        got = yield from locks.acquire("/f", LockMode.EXCLUSIVE, "w")
        locks.release(got)

    env.process(writer())
    env.run(until=0.0)
    # a shared try while a writer queues must fail (fairness)
    assert locks.try_acquire("/f", LockMode.SHARED, "b") is None
    locks.release(lock)
    env.run()


def test_release_grants_multiple_shared(env, locks):
    got = []

    def holder():
        lock = yield from locks.acquire("/f", LockMode.EXCLUSIVE, "w")
        yield env.timeout(1.0)
        locks.release(lock)

    def reader(name):
        lock = yield from locks.acquire("/f", LockMode.SHARED, name)
        got.append((name, env.now))
        locks.release(lock)

    env.process(holder())
    env.process(reader("r1"))
    env.process(reader("r2"))
    env.run()
    assert got == [("r1", 1.0), ("r2", 1.0)]


def test_double_release_rejected(env, locks):
    lock = locks.try_acquire("/f", LockMode.SHARED, "a")
    locks.release(lock)
    with pytest.raises(LockError):
        locks.release(lock)


def test_release_foreign_lock_rejected(env, locks):
    from repro.storage.locks import Lock

    with pytest.raises(LockError):
        locks.release(Lock("/f", LockMode.SHARED, "ghost"))


def test_queue_len_reporting(env, locks):
    locks.try_acquire("/f", LockMode.EXCLUSIVE, "w")

    def waiter():
        yield from locks.acquire("/f", LockMode.SHARED, "r")

    env.process(waiter())
    env.run(until=0.0)
    assert locks.queue_len("/f") == 1
    assert locks.queue_len("/other") == 0


def test_state_cleaned_up_after_full_release(env, locks):
    lock = locks.try_acquire("/f", LockMode.SHARED, "a")
    locks.release(lock)
    assert locks.holders("/f") == []
    assert "/f" not in locks._paths
