"""Unit tests for the XFS node-local file system model."""

import pytest

from repro.cluster.network import Fabric, FabricConfig
from repro.cluster.node import Node, NodeConfig
from repro.cluster.ssd import SSDConfig
from repro.errors import ConfigError, StorageError
from repro.sim.rng import RngStreams
from repro.storage.xfs import XFSConfig, XFSFileSystem
from repro.units import mib, usec


@pytest.fixture
def node(env):
    fabric = Fabric(env, FabricConfig(), RngStreams(0))
    config = NodeConfig(ssd=SSDConfig(
        read_bandwidth=1e6, write_bandwidth=1e6,
        read_latency=0.0, write_latency=0.0, capacity=10 * mib(1),
    ))
    return Node(env, "node00", config, fabric, RngStreams(0))


@pytest.fixture
def fs(node):
    return XFSFileSystem(node)


def _drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def test_create_charges_journal(env, fs):
    def flow():
        start = env.now
        h = yield from fs.open("/new", "w")
        create_time = env.now - start
        yield from h.close()
        start = env.now
        h = yield from fs.open("/new", "r")
        reopen_time = env.now - start
        yield from h.close()
        return create_time, reopen_time

    create_time, reopen_time = _drive(env, flow())
    cfg = fs.config
    assert create_time == pytest.approx(cfg.lookup_time + cfg.create_journal_time)
    assert reopen_time == pytest.approx(cfg.lookup_time)


def test_write_charges_extent_allocation(env, fs):
    def flow():
        h = yield from fs.open("/f", "w")
        start = env.now
        yield from h.write(mib(9))  # 9 MiB = 2 extents of 8 MiB
        elapsed = env.now - start
        yield from h.close()
        return elapsed

    elapsed = _drive(env, flow())
    expected = 2 * fs.config.extent_alloc_time + mib(9) / 1e6
    assert elapsed == pytest.approx(expected)


def test_overwrite_skips_extent_allocation(env, fs):
    def flow():
        h = yield from fs.open("/f", "w")
        yield from h.write(1000)
        h.seek(0)
        start = env.now
        yield from h.write(1000)  # no growth
        return env.now - start

    elapsed = _drive(env, flow())
    assert elapsed == pytest.approx(1000 / 1e6)


def test_remote_client_rejected(env, fs):
    def flow():
        yield from fs.open("/f", "w", client="node01")

    with pytest.raises(StorageError, match="node-local"):
        _drive(env, flow())


def test_local_client_accepted(env, fs):
    def flow():
        h = yield from fs.open("/f", "w", client="node00")
        yield from h.write(10)
        yield from h.close()
        return True

    assert _drive(env, flow())


def test_fsync_charges_journal_flush(env, fs):
    def flow():
        h = yield from fs.open("/f", "w")
        yield from h.write(100)
        start = env.now
        yield from h.fsync()
        return env.now - start

    elapsed = _drive(env, flow())
    assert elapsed >= fs.config.fsync_journal_time


def test_capacity_enforced_through_fs(env, fs):
    def flow():
        h = yield from fs.open("/big", "w")
        yield from h.write(11 * mib(1))  # over the 10 MiB device

    with pytest.raises(StorageError, match="capacity"):
        _drive(env, flow())


def test_stat_and_unlink_costs(env, fs):
    def flow():
        h = yield from fs.open("/f", "w")
        yield from h.close()
        start = env.now
        yield from fs.stat("/f")
        stat_time = env.now - start
        start = env.now
        yield from fs.unlink("/f")
        unlink_time = env.now - start
        return stat_time, unlink_time

    stat_time, unlink_time = _drive(env, flow())
    assert stat_time == pytest.approx(fs.config.stat_time)
    assert unlink_time == pytest.approx(fs.config.unlink_journal_time)


def test_config_validation():
    with pytest.raises(ConfigError):
        XFSConfig(extent_size=0).validate()
    with pytest.raises(ConfigError):
        XFSConfig(lookup_time=-1).validate()


def test_concurrent_writers_share_device(env, node):
    fs = XFSFileSystem(node, config=XFSConfig(
        lookup_time=0, create_journal_time=0, extent_alloc_time=0, close_time=0,
    ))
    times = {}

    def writer(name):
        h = yield from fs.open(f"/{name}", "w")
        start = env.now
        yield from h.write(500_000)
        times[name] = env.now - start
        yield from h.close()

    env.process(writer("a"))
    env.process(writer("b"))
    env.run()
    # 1 MB total through a 1 MB/s device: each write sees ~1s
    assert times["a"] == pytest.approx(1.0, rel=1e-6)
    assert times["b"] == pytest.approx(1.0, rel=1e-6)
