"""Unit tests for the POSIX namespace/handle layer (via the XFS model)."""

import pytest

from repro.cluster.node import Node, NodeConfig
from repro.cluster.network import Fabric, FabricConfig
from repro.errors import (
    FileExists,
    FileNotFound,
    InvalidHandle,
    IsADirectory,
    NotADirectory,
    StorageError,
)
from repro.sim.rng import RngStreams
from repro.storage.posixfs import normalize
from repro.storage.xfs import XFSFileSystem


@pytest.fixture
def fs(env):
    fabric = Fabric(env, FabricConfig(), RngStreams(0))
    node = Node(env, "node00", NodeConfig(), fabric, RngStreams(0))
    return XFSFileSystem(node, store_data=True)


def _drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def test_normalize():
    assert normalize("a/b") == "/a/b"
    assert normalize("/a//b/") == "/a/b"
    assert normalize("/a/./b/../c") == "/a/c"
    with pytest.raises(StorageError):
        normalize("")


def test_create_write_read_roundtrip(env, fs):
    def flow():
        handle = yield from fs.open("/f.bin", "w")
        yield from handle.write(5, b"hello")
        yield from handle.close()
        handle = yield from fs.open("/f.bin", "r")
        count, payload = yield from handle.read()
        yield from handle.close()
        return count, payload

    count, payload = _drive(env, flow())
    assert count == 5 and payload == b"hello"


def test_open_missing_for_read_raises(env, fs):
    def flow():
        yield from fs.open("/missing", "r")

    with pytest.raises(FileNotFound):
        _drive(env, flow())


def test_exclusive_create(env, fs):
    def flow():
        handle = yield from fs.open("/x", "x")
        yield from handle.write(1, b"a")
        yield from handle.close()
        yield from fs.open("/x", "x")

    with pytest.raises(FileExists):
        _drive(env, flow())


def test_truncate_on_w(env, fs):
    def flow():
        h = yield from fs.open("/t", "w")
        yield from h.write(4, b"abcd")
        yield from h.close()
        h = yield from fs.open("/t", "w")  # truncates
        yield from h.close()
        st = yield from fs.stat("/t")
        return st.size

    assert _drive(env, flow()) == 0


def test_append_mode(env, fs):
    def flow():
        h = yield from fs.open("/a", "w")
        yield from h.write(3, b"one")
        yield from h.close()
        h = yield from fs.open("/a", "a")
        yield from h.write(3, b"two")
        yield from h.close()
        h = yield from fs.open("/a", "r")
        count, payload = yield from h.read()
        return payload

    assert _drive(env, flow()) == b"onetwo"


def test_seek_and_partial_read(env, fs):
    def flow():
        h = yield from fs.open("/s", "w")
        yield from h.write(10, b"0123456789")
        yield from h.close()
        h = yield from fs.open("/s", "r")
        h.seek(4)
        count, payload = yield from h.read(3)
        return count, payload

    assert _drive(env, flow()) == (3, b"456")


def test_read_past_eof_truncated(env, fs):
    def flow():
        h = yield from fs.open("/e", "w")
        yield from h.write(3, b"abc")
        yield from h.close()
        h = yield from fs.open("/e", "r")
        count, payload = yield from h.read(100)
        return count, payload

    assert _drive(env, flow()) == (3, b"abc")


def test_write_to_readonly_handle_rejected(env, fs):
    def flow():
        h = yield from fs.open("/r", "w")
        yield from h.write(1, b"x")
        yield from h.close()
        h = yield from fs.open("/r", "r")
        yield from h.write(1, b"y")

    with pytest.raises(InvalidHandle):
        _drive(env, flow())


def test_read_from_writeonly_handle_rejected(env, fs):
    def flow():
        h = yield from fs.open("/w", "w")
        yield from h.read()

    with pytest.raises(InvalidHandle):
        _drive(env, flow())


def test_use_after_close_rejected(env, fs):
    def flow():
        h = yield from fs.open("/c", "w")
        yield from h.close()
        yield from h.write(1, b"z")

    with pytest.raises(InvalidHandle):
        _drive(env, flow())


def test_double_close_is_noop(env, fs):
    def flow():
        h = yield from fs.open("/d", "w")
        yield from h.close()
        second = yield from h.close()
        return second

    assert _drive(env, flow()) == 0.0


def test_makedirs_and_listdir(env, fs):
    fs.makedirs("/a/b/c")
    assert fs.exists("/a/b/c")
    assert fs.listdir("/a") == ["b"]
    fs.makedirs("/a/b")  # idempotent


def test_makedirs_through_file_rejected(env, fs):
    def flow():
        h = yield from fs.open("/file", "w")
        yield from h.close()

    _drive(env, flow())
    with pytest.raises(NotADirectory):
        fs.makedirs("/file/sub")


def test_open_directory_rejected(env, fs):
    fs.makedirs("/dir")

    def flow():
        yield from fs.open("/dir", "w")

    with pytest.raises(IsADirectory):
        _drive(env, flow())


def test_stat_fields(env, fs):
    def flow():
        h = yield from fs.open("/st", "w")
        yield from h.write(7, b"0123456")
        yield from h.close()
        st = yield from fs.stat("/st")
        return st

    st = _drive(env, flow())
    assert st.size == 7
    assert not st.is_dir
    assert st.version == 1
    assert st.mtime >= st.ctime


def test_version_bumps_on_writes(env, fs):
    def flow():
        h = yield from fs.open("/v", "w")
        yield from h.write(1, b"a")
        yield from h.write(1, b"b")
        yield from h.close()
        st = yield from fs.stat("/v")
        return st.version

    assert _drive(env, flow()) == 2


def test_unlink_removes(env, fs):
    def flow():
        h = yield from fs.open("/u", "w")
        yield from h.write(2, b"xy")
        yield from h.close()
        yield from fs.unlink("/u")
        return fs.exists("/u")

    assert _drive(env, flow()) is False


def test_unlink_missing_raises(env, fs):
    def flow():
        yield from fs.unlink("/nope")

    with pytest.raises(FileNotFound):
        _drive(env, flow())


def test_unlink_frees_ssd_space(env, fs):
    node = fs.node

    def flow():
        h = yield from fs.open("/big", "w")
        yield from h.write(1000, b"\0" * 1000)
        yield from h.close()
        used_before = node.ssd.used
        yield from fs.unlink("/big")
        return used_before, node.ssd.used

    before, after = _drive(env, flow())
    assert before == 1000 and after == 0


def test_payload_size_mismatch_rejected(env, fs):
    def flow():
        h = yield from fs.open("/m", "w")
        yield from h.write(5, b"abc")

    with pytest.raises(StorageError):
        _drive(env, flow())


def test_unsupported_mode_rejected(env, fs):
    def flow():
        yield from fs.open("/q", "rw+")

    with pytest.raises(StorageError):
        _drive(env, flow())


def test_overwrite_in_place_via_rplus(env, fs):
    def flow():
        h = yield from fs.open("/p", "w")
        yield from h.write(6, b"abcdef")
        yield from h.close()
        h = yield from fs.open("/p", "r+")
        yield from h.write(2, b"XY")
        yield from h.close()
        h = yield from fs.open("/p", "r")
        _, payload = yield from h.read()
        return payload

    assert _drive(env, flow()) == b"XYcdef"
