"""Unit tests for the EXPERIMENTS.md report generator's verdict logic."""

import pytest

from repro.experiments.common import Cell, FigureResult, Stat
from repro.experiments.report import (
    Claim,
    _claims_fig5,
    _claims_fig8,
    _claims_table,
    _fmt,
    _verdict,
)


def cell(pm, ci, cm=1e-3):
    return Cell(
        production_movement=Stat(pm, 0.0),
        production_idle=Stat(0.0, 0.0),
        consumption_movement=Stat(cm, 0.0),
        consumption_idle=Stat(ci, 0.0),
    )


def test_verdict_bands():
    assert _verdict(1.4, 1.4) == "reproduced"
    assert _verdict(2.0, 1.4) == "reproduced"     # within 2x
    assert _verdict(5.0, 1.4) == "shape"          # same direction, off scale
    assert _verdict(100.0, 192.9) == "reproduced"
    assert _verdict(20.0, 192.9) == "shape"
    # measured < 1 while the paper claims > 1: the direction flipped
    assert _verdict(0.5, 1.4) == "deviates"
    assert _verdict(0.0, 1.4) == "deviates"


def test_verdict_direction_flip_deviates():
    # paper says faster (>1), measured slower (<1): deviates
    assert _verdict(0.4, 6.0) == "deviates"


def test_fmt():
    assert _fmt(1.414) == "1.41x"
    assert _fmt(192.9) == "193x"


def test_claims_table_rendering():
    claims = [
        Claim("a claim", "1.4x", "1.5x", "reproduced"),
        Claim("noted claim", "2x", "9x", "shape", note="some context"),
    ]
    text = _claims_table(claims)
    assert "| a claim |" in text
    assert "**reproduced**" in text and "**shape**" in text
    assert "(*)" in text and "some context" in text


def test_claims_fig5_extraction():
    cells = {
        (1, "dyad"): cell(pm=1.4e-4, ci=5e-3),
        (1, "xfs"): cell(pm=1e-4, ci=8e-1),
    }
    fig = FigureResult(
        figure_id="Fig5", title="t", x_name="pairs", xs=[1],
        systems=["dyad", "xfs"], cells=cells, runs=1, frames=8,
    )
    claims = _claims_fig5(fig)
    assert claims[0].verdict == "reproduced"     # exactly the 1.4x
    assert claims[0].measured == "1.40x"
    assert claims[1].verdict in ("reproduced", "shape")


def test_claims_fig8_widening_detection():
    def fig_with(first_gap, last_gap):
        cells = {
            ("JAC", "dyad"): cell(pm=1e-4, ci=1e-3, cm=1e-3),
            ("JAC", "lustre"): cell(pm=5e-4, ci=8e-1, cm=first_gap * 1e-3),
            ("STMV", "dyad"): cell(pm=1e-2, ci=1e-3, cm=2e-2),
            ("STMV", "lustre"): cell(pm=4e-2, ci=8e-1, cm=last_gap * 2e-2),
        }
        return FigureResult(
            figure_id="Fig8", title="t", x_name="model", xs=["JAC", "STMV"],
            systems=["dyad", "lustre"], cells=cells, runs=1, frames=8,
        )

    widening = _claims_fig8(fig_with(first_gap=2.0, last_gap=6.0))
    assert widening[0].verdict == "reproduced"
    narrowing = _claims_fig8(fig_with(first_gap=6.0, last_gap=2.0))
    assert narrowing[0].verdict == "deviates"
