"""Tests for the fan-out extension experiment and the staging cache."""

import pytest

from repro.cluster.corona import corona
from repro.dyad.service import DyadRuntime
from repro.experiments import extension_fanout


def _drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


# ---------------------------------------------------------------------------
# the staging-cache behaviour underlying the experiment
# ---------------------------------------------------------------------------


def test_second_consumer_on_node_hits_cache():
    cluster = corona(nodes=2, seed=0)
    runtime = DyadRuntime(cluster)
    producer = runtime.producer("node00", "p")
    first = runtime.consumer("node01", "c1")
    second = runtime.consumer("node01", "c2")

    def flow():
        yield from producer.produce("/dyad/f", 100_000)
        yield from first.consume("/dyad/f")
        yield from second.consume("/dyad/f")

    before = cluster.fabric.stats.rdma_transfers
    _drive(cluster.env, flow())
    assert first.cache_hits == 0
    assert second.cache_hits == 1
    # only the first consumer transferred
    assert cluster.fabric.stats.rdma_transfers == before + 1


def test_cache_ignored_when_disabled():
    from repro.dyad.config import DyadConfig

    cluster = corona(nodes=2, seed=0)
    runtime = DyadRuntime(cluster, config=DyadConfig(cache_on_consume=False))
    producer = runtime.producer("node00", "p")
    first = runtime.consumer("node01", "c1")
    second = runtime.consumer("node01", "c2")

    def flow():
        yield from producer.produce("/dyad/f", 50_000)
        yield from first.consume("/dyad/f")
        yield from second.consume("/dyad/f")

    _drive(cluster.env, flow())
    assert second.cache_hits == 0
    assert cluster.fabric.stats.rdma_transfers == 2


def test_cache_hit_consumption_cheaper():
    cluster = corona(nodes=2, seed=0)
    runtime = DyadRuntime(cluster)
    producer = runtime.producer("node00", "p")
    first = runtime.consumer("node01", "c1")
    second = runtime.consumer("node01", "c2")
    times = {}

    def flow():
        yield from producer.produce("/dyad/f", 10_000_000)
        start = cluster.env.now
        yield from first.consume("/dyad/f")
        times["pull"] = cluster.env.now - start
        start = cluster.env.now
        yield from second.consume("/dyad/f")
        times["hit"] = cluster.env.now - start

    _drive(cluster.env, flow())
    assert times["hit"] < 0.5 * times["pull"]


# ---------------------------------------------------------------------------
# the experiment module
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def result():
    return extension_fanout.run(runs=1, frames=16)


def test_grid_complete(result):
    assert set(result.grid) == {"dyad", "lustre"}
    assert set(result.grid["dyad"]) == set(extension_fanout.FANOUTS)


def test_dyad_transfers_sublinear_in_fanout(result):
    """The cache makes transfers ~flat while Lustre reads scale with k."""
    d1 = result.grid["dyad"][1].transfers
    d8 = result.grid["dyad"][8].transfers
    l1 = result.grid["lustre"][1].transfers
    l8 = result.grid["lustre"][8].transfers
    assert l8 == 8 * l1
    assert d8 < 4 * d1


def test_dyad_cache_hits_grow_with_fanout(result):
    hits = [result.grid["dyad"][f].cache_hits
            for f in extension_fanout.FANOUTS]
    assert hits[0] == 0
    assert hits == sorted(hits)
    assert hits[-1] > 0


def test_dyad_advantage_grows_with_fanout(result):
    def ratio(fanout):
        return (result.grid["lustre"][fanout].consumption_movement
                / result.grid["dyad"][fanout].consumption_movement)

    assert ratio(8) > ratio(1)


def test_render(result):
    text = result.render()
    assert "Fan-out" in text and "cache" in text
