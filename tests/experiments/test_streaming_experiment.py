"""The `streaming` experiment: grids gate on flow-control invariants."""

import pytest

from repro.errors import CampaignError, ReproError
from repro.experiments import streaming as streaming_exp
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.workflow.spec import SyncMode, System


def test_registered():
    assert EXPERIMENTS["streaming"] is streaming_exp
    assert get_experiment("streaming") is streaming_exp


def test_grids_cover_paper_figures_and_modes():
    grids = streaming_exp._grids(quick=True)
    assert [g[0] for g in grids] == [
        "Streaming-5", "Streaming-6/7", "Streaming-8", "Streaming-11"]
    systems = {system for _, _, _, cells in grids
               for _, system, _ in cells}
    assert systems == {System.DYAD, System.XFS, System.LUSTRE}
    assert streaming_exp.MODES == (
        SyncMode.WINDOWED, SyncMode.PUBSUB, SyncMode.NBUFFER)
    assert streaming_exp.FIDELITIES == ("exact", "hybrid")


def test_quick_sweep_gates_clean():
    report = streaming_exp.run(runs=1, frames=4, quick=True)
    # one FigureResult per grid per fidelity tier
    assert len(report.figures) == 4 * len(streaming_exp.FIDELITIES)
    assert report.failures == []
    for mode in streaming_exp.MODES:
        totals = report.flow_stats[mode.value]
        assert totals["credits_issued"] == totals["credits_returned"] > 0
        assert totals["lost_wakeups"] == 0
    # windowed cells actually run the wider window
    windowed = report.flow_stats[SyncMode.WINDOWED.value]
    assert windowed["peak_in_flight"] <= streaming_exp.WINDOW
    text = report.render()
    assert "streaming flow-control totals" in text
    assert "gate: zero invariant violations" in text


def test_main_raises_on_failures(monkeypatch):
    def failing_run(quick=False):
        report = streaming_exp.StreamingReport()
        report.failures.append("Streaming-5/exact xfs/windowed @ 1: leak")
        return report

    monkeypatch.setattr(streaming_exp, "run", failing_run)
    with pytest.raises(CampaignError, match="flow-control gate"):
        streaming_exp.main(quick=True)
