"""Hardened campaign runner: crashed/hung workers, retries, resumption.

Worker faults are injected with the documented ``REPRO_WORKER_*`` test
hooks (see :func:`repro.experiments.parallel._maybe_injected_worker_fault`):
a marker directory makes each fault one-shot, so the first execution of a
designated seed dies (or hangs) and its re-submission succeeds. The
hooks only fire inside worker *processes*, so the serial baselines in
these tests are never affected.
"""

import pytest

from repro.errors import CampaignError, ReproError
from repro.experiments.parallel import (
    RunTask,
    _default_task_retries,
    _default_task_timeout,
    run_campaign,
    result_fingerprint,
)
from repro.experiments.persist import ResultCache
from repro.faults import FaultEvent, FaultPlan
from repro.workflow.spec import Placement, System, WorkflowSpec

SPEC = WorkflowSpec(system=System.DYAD, frames=4, pairs=1,
                    placement=Placement.SINGLE_NODE)

TASKS = [RunTask(spec=SPEC, seed=s, jitter_cv=0.05)
         for s in (0, 1000, 2000)]


@pytest.fixture
def fault_env(tmp_path, monkeypatch):
    """Arm the worker-fault hooks against a fresh marker directory."""
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    monkeypatch.setenv("REPRO_WORKER_FAULT_DIR", str(marker_dir))
    monkeypatch.delenv("REPRO_WORKER_CRASH_SEEDS", raising=False)
    monkeypatch.delenv("REPRO_WORKER_HANG_SEEDS", raising=False)
    # These tests need real worker processes even on a 1-CPU box, so lift
    # the default_jobs() cpu_count clamp.
    monkeypatch.setenv("REPRO_JOBS_OVERSUBSCRIBE", "1")
    return monkeypatch


# ---------------------------------------------------------------------------
# crashed workers: detected, retried, no results lost
# ---------------------------------------------------------------------------


def test_worker_crash_is_retried_and_results_match_serial(fault_env):
    fault_env.setenv("REPRO_WORKER_CRASH_SEEDS", "1000")
    serial = run_campaign(TASKS, jobs=1)
    parallel = run_campaign(TASKS, jobs=2)
    assert ([result_fingerprint(r) for r in parallel]
            == [result_fingerprint(r) for r in serial])


def test_worker_crash_past_retry_budget_raises(fault_env, tmp_path):
    # Crash the *last* queued task: with two workers over three tasks, at
    # least one earlier repetition completes (and caches) before seed
    # 2000 starts, crashes, and breaks the pool. With a zero retry
    # budget the first break is fatal. Which pending seed the error
    # blames depends on scheduling (a broken pool loses its in-flight
    # siblings too), so only the resumption hint is asserted.
    fault_env.setenv("REPRO_WORKER_CRASH_SEEDS", "2000")
    cache_dir = tmp_path / "cache"
    with pytest.raises(CampaignError, match="re-run to resume"):
        run_campaign(TASKS, jobs=2, max_task_retries=0,
                     use_cache=True, cache_dir=str(cache_dir))
    # the completed repetitions survived the failed campaign ...
    survivors = len(list(cache_dir.rglob("*.pkl")))
    assert survivors >= 1
    # ... and the re-run resumes from them (the crash marker is consumed,
    # so seed 2000 now runs clean) with serially-identical results
    resumed = run_campaign(TASKS, jobs=2, max_task_retries=0,
                           use_cache=True, cache_dir=str(cache_dir))
    serial = run_campaign(TASKS, jobs=1)
    assert ([result_fingerprint(r) for r in resumed]
            == [result_fingerprint(r) for r in serial])


# ---------------------------------------------------------------------------
# hung workers: bounded by task_timeout, not joined on abandon
# ---------------------------------------------------------------------------


def test_hung_worker_times_out_and_retry_succeeds(fault_env):
    fault_env.setenv("REPRO_WORKER_HANG_SEEDS", "1000")
    fault_env.setenv("REPRO_WORKER_HANG_SECONDS", "6")
    serial = run_campaign(TASKS, jobs=1)
    parallel = run_campaign(TASKS, jobs=2, task_timeout=2.0)
    assert ([result_fingerprint(r) for r in parallel]
            == [result_fingerprint(r) for r in serial])


# ---------------------------------------------------------------------------
# knob validation and cache keys
# ---------------------------------------------------------------------------


def test_task_timeout_validation(monkeypatch):
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    assert _default_task_timeout(None) is None
    monkeypatch.setenv("REPRO_TASK_TIMEOUT", "12.5")
    assert _default_task_timeout(None) == 12.5
    assert _default_task_timeout(3.0) == 3.0
    with pytest.raises(ReproError):
        _default_task_timeout(0.0)


def test_task_retries_validation(monkeypatch):
    monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
    assert _default_task_retries(None) == 2
    monkeypatch.setenv("REPRO_TASK_RETRIES", "5")
    assert _default_task_retries(None) == 5
    assert _default_task_retries(0) == 0
    with pytest.raises(ReproError):
        _default_task_retries(-1)


def test_cache_key_includes_fault_plan(tmp_path):
    cache = ResultCache(str(tmp_path))
    plan = FaultPlan(events=(
        FaultEvent("dyad_crash", at=1.0, target="0", duration=0.5),
    ))
    harsher = FaultPlan(events=(
        FaultEvent("dyad_crash", at=1.0, target="0", duration=2.0),
    ))
    base = cache.key(SPEC, 0, 0.05, {})
    assert cache.key(SPEC, 0, 0.05, {}, None) == base
    faulty = cache.key(SPEC, 0, 0.05, {}, plan)
    assert faulty != base
    assert cache.key(SPEC, 0, 0.05, {}, harsher) != faulty
    assert cache.key(SPEC, 0, 0.05, {}, plan) == faulty


def test_faulty_tasks_cache_and_resume(tmp_path):
    plan = FaultPlan(transfer_fault_rate=0.05)
    task = RunTask(spec=SPEC, seed=0, jitter_cv=0.05, fault_plan=plan)
    cold = run_campaign([task], jobs=1, use_cache=True,
                        cache_dir=str(tmp_path))
    assert len(list(tmp_path.rglob("*.pkl"))) == 1
    warm = run_campaign([task], jobs=1, use_cache=True,
                        cache_dir=str(tmp_path))
    assert result_fingerprint(warm[0]) == result_fingerprint(cold[0])
