"""Tests for the ablation experiment."""

import pytest

from repro.experiments import ablations


@pytest.fixture(scope="module")
def result():
    return ablations.run(runs=1, frames=12)


def test_all_variants_measured(result):
    for model in ("JAC", "STMV"):
        assert set(result.cells[model]) == set(ablations.VARIANTS)


def test_eager_costs_movement(result):
    for model in ("JAC", "STMV"):
        base = result.cell(model, "dyad").consumption_movement.mean
        eager = result.cell(model, "dyad-eager").consumption_movement.mean
        assert eager > base


def test_eager_hurts_large_frames_more(result):
    def overhead(model):
        base = result.cell(model, "dyad").consumption_movement.mean
        eager = result.cell(model, "dyad-eager").consumption_movement.mean
        return eager - base

    assert overhead("STMV") > overhead("JAC")


def test_nocache_saves_movement(result):
    for model in ("JAC", "STMV"):
        base = result.cell(model, "dyad").consumption_movement.mean
        nocache = result.cell(model, "dyad-nocache").consumption_movement.mean
        assert nocache < base


def test_fsync_costs_production_only(result):
    for model in ("JAC", "STMV"):
        base = result.cell(model, "dyad")
        fsync = result.cell(model, "dyad-fsync")
        assert fsync.production_time > base.production_time
        assert fsync.consumption_movement.mean == pytest.approx(
            base.consumption_movement.mean, rel=0.1
        )


def test_polling_beats_coarse_but_not_dyad(result):
    for model in ("JAC", "STMV"):
        coarse = result.cell(model, "lustre-coarse")
        polling = result.cell(model, "lustre-polling")
        dyad = result.cell(model, "dyad")
        assert polling.consumption_idle.mean < coarse.consumption_idle.mean
        assert dyad.consumption_time < polling.consumption_time


def test_render_mentions_variants(result):
    text = result.render()
    for variant in ablations.VARIANTS:
        assert variant in text
    assert "JAC" in text and "STMV" in text
