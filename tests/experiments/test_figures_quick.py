"""Quick-mode smoke runs of every figure experiment.

These run each experiment's real code path end-to-end on a reduced grid
and check the structural claims encoded in its notes/results, without
asserting exact paper numbers (the benchmarks do the full-grid runs).
"""

import pytest

from repro.experiments import (
    fig5_single_node,
    fig6_two_node,
    fig7_multi_node,
    fig8_model_scaling,
    fig9_dyad_calltree,
    fig10_lustre_calltree,
    fig11_jac_stride,
    fig12_stmv_stride,
)

QUICK = dict(runs=1, frames=8)


@pytest.fixture(scope="module")
def fig5():
    return fig5_single_node.run(**QUICK)


@pytest.fixture(scope="module")
def fig6():
    return fig6_two_node.run(**QUICK)


def test_fig5_grid_complete(fig5):
    assert fig5.xs == [1, 2, 4]
    assert set(fig5.systems) == {"dyad", "xfs"}
    assert len(fig5.cells) == 6
    assert fig5.notes


def test_fig5_direction(fig5):
    assert fig5.ratio("production_movement", "dyad", "xfs") > 1.0
    assert fig5.ratio("consumption_time", "xfs", "dyad") > 5.0


def test_fig6_grid_complete(fig6):
    assert fig6.xs == [1, 2, 4, 8]
    assert len(fig6.cells) == 8


def test_fig6_direction(fig6):
    assert fig6.ratio("production_movement", "lustre", "dyad") > 2.0
    assert fig6.ratio("consumption_time", "lustre", "dyad") > 5.0


def test_fig7_quick_reduced_grid():
    fig = fig7_multi_node.run(quick=True)
    assert fig.xs == [8, 16, 32]
    growth_note = [n for n in fig.notes if "growth" in n]
    assert growth_note


def test_fig8_quick_models():
    fig = fig8_model_scaling.run(quick=True)
    assert fig.xs == ["JAC", "STMV"]
    # movement grows with model size for both systems
    for system in fig.systems:
        assert (fig.cell("STMV", system).consumption_movement.mean
                > fig.cell("JAC", system).consumption_movement.mean)


def test_fig9_call_trees():
    fig = fig9_dyad_calltree.run(**QUICK)
    assert set(fig.trees) == {"JAC", "STMV"}
    for model, values in fig.per_frame.items():
        assert values["dyad_consume/dyad_get_data"] > 0
        assert values["dyad_consume/dyad_cons_store"] > 0
        assert values["read_single_buf"] > 0
    rendered = fig.render()
    assert "dyad_fetch" in rendered


def test_fig9_movement_sublinear():
    fig = fig9_dyad_calltree.run(**QUICK)
    move = {
        m: sum(v for k, v in values.items() if k != "dyad_consume/dyad_fetch")
        for m, values in fig.per_frame.items()
    }
    assert move["STMV"] / move["JAC"] < 45.3


def test_fig10_call_trees():
    from repro.workflow.emulator import READ_REGION, SYNC_REGION

    fig = fig10_lustre_calltree.run(**QUICK)
    jac, stmv = fig.per_frame["JAC"], fig.per_frame["STMV"]
    assert stmv[READ_REGION] > jac[READ_REGION]
    # explicit_sync approximately constant across models (same frequency)
    assert stmv[SYNC_REGION] == pytest.approx(jac[SYNC_REGION], rel=0.15)


def test_fig11_idle_grows_with_stride():
    fig = fig11_jac_stride.run(**QUICK)
    assert fig.xs == [1, 5, 10, 50]
    for system in fig.systems:
        assert (fig.cell(50, system).consumption_idle.mean
                > fig.cell(1, system).consumption_idle.mean)


def test_fig12_overall_gap_widens():
    # needs enough frames for DYAD's one-time KVS wait to amortize
    fig = fig12_stmv_stride.run(runs=1, frames=48)
    low = fig.ratio("consumption_time", "lustre", "dyad", x=1)
    high = fig.ratio("consumption_time", "lustre", "dyad", x=50)
    assert high > low
