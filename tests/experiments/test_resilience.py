"""Resilience sweep: seeded fault runs are reproducible and diagnosable.

The acceptance property of the whole fault subsystem: a faulty run is a
pure function of ``(spec, seed, plan)`` — running the same crash-mid-run
plan twice yields bit-identical metrics (``float.hex`` fingerprints) with
every frame recovered — and a run whose recovery *cannot* complete raises
a diagnosable :class:`~repro.errors.StallError` instead of hanging.
"""

import pytest

from repro.dyad.config import DyadConfig
from repro.errors import StallError
from repro.experiments import resilience
from repro.experiments.parallel import result_fingerprint
from repro.faults import FaultEvent, FaultPlan
from repro.workflow.runner import run_workflow
from repro.workflow.spec import Placement, System, WorkflowSpec

DYAD_SPEC = WorkflowSpec(system=System.DYAD, frames=8, pairs=2,
                         placement=Placement.SPLIT)

# Crash the producer-side service a quarter of the way in, long enough
# that in-flight gets fail and consumers must re-request frames.
HORIZON = DYAD_SPEC.frames * DYAD_SPEC.stride_time
CRASH_PLAN = FaultPlan(
    events=(
        FaultEvent("dyad_crash", at=0.25 * HORIZON, target="0",
                   duration=0.1 * HORIZON),
    ),
    transfer_fault_rate=0.05,
)
RECOVERY_CONFIG = DyadConfig(max_transfer_retries=resilience._retry_budget(
    DyadConfig(), 0.1 * HORIZON
))


# ---------------------------------------------------------------------------
# determinism: same (spec, seed, plan) -> bit-identical results
# ---------------------------------------------------------------------------


def test_crash_mid_run_is_reproducible():
    kwargs = dict(seed=42, jitter_cv=0.05, fault_plan=CRASH_PLAN,
                  dyad_config=RECOVERY_CONFIG)
    a = run_workflow(DYAD_SPEC, **kwargs)
    b = run_workflow(DYAD_SPEC, **kwargs)
    assert result_fingerprint(a) == result_fingerprint(b)
    # the crash actually happened and recovery actually ran
    assert a.system_stats["dyad_service_crashes"] == 1.0
    assert a.system_stats["dyad_refused_gets"] > 0
    assert a.system_stats["dyad_transfer_retries"] > 0
    assert a.system_stats["faults_applied"] == 1.0
    assert a.system_stats["faults_reverted"] == 1.0
    # ... and every frame still arrived
    frames = DYAD_SPEC.frames * DYAD_SPEC.pairs
    arrived = (a.system_stats["dyad_fast_hits"]
               + a.system_stats["dyad_kvs_waits"])
    assert arrived == float(frames)


def test_faulty_run_differs_from_healthy_and_from_other_seeds():
    faulty = run_workflow(DYAD_SPEC, seed=42, jitter_cv=0.05,
                          fault_plan=CRASH_PLAN,
                          dyad_config=RECOVERY_CONFIG)
    healthy = run_workflow(DYAD_SPEC, seed=42, jitter_cv=0.05)
    other_seed = run_workflow(DYAD_SPEC, seed=43, jitter_cv=0.05,
                              fault_plan=CRASH_PLAN,
                              dyad_config=RECOVERY_CONFIG)
    prints = {result_fingerprint(r) for r in (faulty, healthy, other_seed)}
    assert len(prints) == 3
    assert faulty.makespan > healthy.makespan  # downtime costs time


# ---------------------------------------------------------------------------
# stall watchdog: broken recovery is an error, not a hang
# ---------------------------------------------------------------------------


def test_event_budget_exhaustion_raises_stall_error():
    plan = FaultPlan(max_events=50)  # far below what any run needs
    with pytest.raises(StallError, match="event budget"):
        run_workflow(DYAD_SPEC, seed=0, fault_plan=plan)


def test_time_horizon_exhaustion_raises_stall_error():
    # A link that never comes back within the horizon: the run cannot
    # finish, and the watchdog names the problem instead of spinning.
    plan = FaultPlan(
        events=(FaultEvent("link_flap", at=0.1 * HORIZON, target="1",
                           duration=1000.0 * HORIZON),),
        max_time=2.0 * HORIZON,
    )
    with pytest.raises(StallError, match="horizon"):
        run_workflow(DYAD_SPEC, seed=0, fault_plan=plan)


def test_guarded_run_matches_unguarded_bit_for_bit():
    """The watchdog must not perturb the simulation it watches."""
    healthy = run_workflow(DYAD_SPEC, seed=7, jitter_cv=0.05)
    # a trivial plan with a generous budget: guarded loop, no faults
    guarded = run_workflow(DYAD_SPEC, seed=7, jitter_cv=0.05,
                           fault_plan=FaultPlan(max_events=10_000_000))
    # stats gain the injector counters; compare the shared core instead
    assert guarded.makespan == healthy.makespan
    for key, value in healthy.system_stats.items():
        assert guarded.system_stats[key] == value
    assert ([t.to_dict() for t in guarded.consumer_trees]
            == [t.to_dict() for t in healthy.consumer_trees])


# ---------------------------------------------------------------------------
# the experiment module
# ---------------------------------------------------------------------------


def test_build_plan_intensity_zero_is_baseline():
    spec = resilience._spec(System.DYAD, frames=8)
    assert resilience.build_plan(System.DYAD, 0.0, spec) == (None, None)


@pytest.mark.parametrize("system", [System.DYAD, System.XFS, System.LUSTRE])
def test_build_plan_scales_with_intensity(system):
    spec = resilience._spec(system, frames=8)
    mild, _ = resilience.build_plan(system, 0.1, spec)
    harsh, config = resilience.build_plan(system, 0.5, spec)
    assert not mild.is_trivial and not harsh.is_trivial
    assert repr(mild) != repr(harsh)  # distinct cache keys per intensity
    if system is System.DYAD:
        # the retry budget must outlast the planned downtime
        assert config.max_transfer_retries >= DyadConfig().max_transfer_retries
        assert harsh.transfer_fault_rate > mild.transfer_fault_rate


def test_resilience_grid_shape_and_recovery_notes():
    fig = resilience.run(runs=1, frames=4, quick=True)
    intensities = (0.0, 0.25, 0.5)
    assert fig.xs == list(intensities)
    assert set(fig.systems) == {"dyad", "xfs", "lustre"}
    assert set(fig.cells) == {(i, s) for i in intensities
                              for s in fig.systems}
    # every faulty DYAD cell reported its recovery accounting
    recovery = [n for n in fig.notes if "frames recovered" in n]
    assert len(recovery) == len([i for i in intensities if i > 0])
    assert fig.render()
