"""Tests for the experiment harness: common machinery, tables, registry, CLI."""

import pytest

from repro.errors import ReproError
from repro.experiments import EXPERIMENTS, get_experiment
from repro.experiments.__main__ import build_parser, main
from repro.experiments.common import Cell, FigureResult, Stat, default_frames, default_runs
from repro.experiments.tables import fig3_rows, run as run_tables, table1_rows, table2_rows


# ---------------------------------------------------------------------------
# common machinery
# ---------------------------------------------------------------------------


def test_stat_of_values():
    s = Stat.of([1.0, 3.0])
    assert s.mean == 2.0 and s.std == pytest.approx(2 ** 0.5)
    assert Stat.of([]).mean == 0.0
    assert Stat.of([5.0]).std == 0.0


def test_default_runs_env(monkeypatch):
    monkeypatch.setenv("REPRO_RUNS", "7")
    assert default_runs() == 7
    assert default_runs(2) == 2
    monkeypatch.setenv("REPRO_FRAMES", "64")
    assert default_frames() == 64


def make_cell(pm, pi, cm, ci):
    return Cell(
        production_movement=Stat(pm, 0.0),
        production_idle=Stat(pi, 0.0),
        consumption_movement=Stat(cm, 0.0),
        consumption_idle=Stat(ci, 0.0),
    )


@pytest.fixture
def figure():
    cells = {
        (1, "dyad"): make_cell(2e-4, 0, 1e-3, 5e-3),
        (1, "xfs"): make_cell(1e-4, 0, 5e-4, 8e-1),
        (2, "dyad"): make_cell(2e-4, 0, 1e-3, 5e-3),
        (2, "xfs"): make_cell(1e-4, 0, 5e-4, 8e-1),
    }
    return FigureResult(
        figure_id="FigX", title="test", x_name="pairs", xs=[1, 2],
        systems=["dyad", "xfs"], cells=cells, runs=3, frames=16,
    )


def test_cell_totals(figure):
    cell = figure.cell(1, "xfs")
    assert cell.consumption_time == pytest.approx(0.8005)
    assert cell.production_time == pytest.approx(1e-4)


def test_figure_ratio_per_x_and_mean(figure):
    assert figure.ratio("production_movement", "dyad", "xfs", x=1) == pytest.approx(2.0)
    assert figure.ratio("production_movement", "dyad", "xfs") == pytest.approx(2.0)
    assert figure.ratio("consumption_time", "xfs", "dyad") == pytest.approx(
        0.8005 / 0.006
    )


def test_figure_tables_render(figure):
    prod = figure.production_table()
    cons = figure.consumption_table()
    assert "movement (us)" in prod and "dyad" in prod
    assert "movement (ms)" in cons
    full = figure.render()
    assert "FigX" in full


# ---------------------------------------------------------------------------
# tables experiment
# ---------------------------------------------------------------------------


def test_table1_contents():
    rows = table1_rows()
    assert rows[0][0] == "JAC" and rows[0][2] == "644.21 KiB"
    assert rows[-1][0] == "STMV" and rows[-1][2] == "28.48 MiB"


def test_table2_contents():
    rows = table2_rows()
    assert [r[3] for r in rows] == ["880", "294", "92", "28"]


def test_fig3_deviation_small():
    for row in fig3_rows():
        assert float(row[-1].rstrip("%")) < 0.2


def test_tables_result_renders():
    text = run_tables().render()
    assert "Table I" in text and "Table II" in text and "Fig. 3" in text


# ---------------------------------------------------------------------------
# registry & CLI
# ---------------------------------------------------------------------------


def test_registry_complete():
    assert set(EXPERIMENTS) == {
        "tables", "fig5", "fig6", "fig7", "fig8",
        "fig9", "fig10", "fig11", "fig12", "ablations", "fanout",
        "topology", "resilience", "streaming", "chaos", "validate",
    }


def test_get_experiment_unknown():
    with pytest.raises(ReproError):
        get_experiment("fig99")


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "fig12" in out


def test_cli_tables(capsys):
    assert main(["tables"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_cli_parser_flags():
    args = build_parser().parse_args(["fig5", "--runs", "2", "--quick"])
    assert args.experiment == "fig5"
    assert args.runs == 2 and args.quick


def test_cli_quick_fig5(capsys):
    assert main(["fig5", "--quick", "--frames", "8"]) == 0
    out = capsys.readouterr().out
    assert "Fig5" in out and "paper" in out
