"""Tests for the chaos soak harness: plans, shrinking, replay, CLI."""

import json

import pytest

from repro.chaos import (
    KINDS_BY_SYSTEM,
    chaos_workloads,
    execute_plan,
    load_plan,
    random_plan,
    save_plan,
    shrink,
    soak,
)
from repro.dyad.config import DyadConfig
from repro.errors import FaultPlanError, ReproError
from repro.experiments.__main__ import build_parser, main
from repro.faults.plan import FaultEvent, FaultPlan
from repro.invariants import InvariantConfig
from repro.workflow.spec import System


# ---------------------------------------------------------------------------
# plan generation
# ---------------------------------------------------------------------------


def test_random_plan_is_seed_deterministic():
    spec = chaos_workloads(4)[0]
    assert random_plan(7, spec) == random_plan(7, spec)
    assert random_plan(7, spec) != random_plan(8, spec)


def test_random_plan_respects_system_kinds():
    for spec in chaos_workloads(4):
        allowed = set(KINDS_BY_SYSTEM[spec.system])
        for seed in range(10):
            plan = random_plan(seed, spec)
            assert {e.kind for e in plan.events} <= allowed
            assert 1 <= len(plan.events) <= 4


def test_integrity_kinds_are_dyad_only():
    assert "torn_write" in KINDS_BY_SYSTEM[System.DYAD]
    assert "torn_write" not in KINDS_BY_SYSTEM[System.XFS]
    assert "bit_corrupt" not in KINDS_BY_SYSTEM[System.LUSTRE]


# ---------------------------------------------------------------------------
# execution + classification
# ---------------------------------------------------------------------------


def dyad_spec(frames=4):
    return chaos_workloads(frames)[0]


def torn_plan(spec, extra=()):
    horizon = spec.frames * spec.stride_time
    events = (FaultEvent("torn_write", at=0.1 * horizon, target="0",
                         duration=0.5 * horizon, severity=0.5),) + extra
    return FaultPlan(events=events, max_time=100.0 * horizon + 60.0)


def test_execute_plan_checked_dyad_recovers():
    spec = dyad_spec()
    outcome = execute_plan(spec, torn_plan(spec), seed=0)
    assert outcome.classification == "ok"
    assert not outcome.failed
    assert "checks" in outcome.detail


def test_execute_plan_unchecked_dyad_violates():
    spec = dyad_spec()
    outcome = execute_plan(
        spec, torn_plan(spec), seed=0,
        invariants=InvariantConfig(fatal=False),
        dyad_config=DyadConfig(integrity_checks=False),
    )
    assert outcome.classification == "violation"
    assert outcome.failed
    assert any("conservation" in v for v in outcome.violations)


def test_execute_plan_diagnosed_on_exhausted_retries():
    spec = dyad_spec()
    horizon = spec.frames * spec.stride_time
    plan = FaultPlan(events=(
        FaultEvent("dyad_crash", at=0.1 * horizon, target="0",
                   duration=2.0 * horizon),
    ), max_time=100.0 * horizon + 60.0)
    outcome = execute_plan(spec, plan, seed=0,
                           dyad_config=DyadConfig(max_transfer_retries=1))
    assert outcome.classification == "diagnosed"
    assert not outcome.failed


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------


def unchecked_reproduce(spec, seed=0):
    def _reproduce(plan):
        return execute_plan(
            spec, plan, seed=seed,
            invariants=InvariantConfig(fatal=False),
            dyad_config=DyadConfig(integrity_checks=False),
        ).failed
    return _reproduce


def test_shrink_reduces_to_single_causal_event():
    spec = dyad_spec()
    horizon = spec.frames * spec.stride_time
    decoys = (
        FaultEvent("ssd_degrade", at=0.05 * horizon, target="0",
                   duration=0.2 * horizon, severity=2.0),
        FaultEvent("ssd_degrade", at=0.4 * horizon, target="1",
                   duration=0.2 * horizon, severity=3.0),
    )
    plan = torn_plan(spec, extra=decoys)
    minimal = shrink(plan, unchecked_reproduce(spec))
    assert len(minimal.events) == 1
    assert minimal.events[0].kind == "torn_write"
    # narrowed and softened, but still a valid reproducing window
    original = next(e for e in plan.events if e.kind == "torn_write")
    assert minimal.events[0].duration <= original.duration
    assert unchecked_reproduce(spec)(minimal)


def test_shrink_is_deterministic():
    spec = dyad_spec()
    plan = torn_plan(spec)
    reproduce = unchecked_reproduce(spec)
    assert shrink(plan, reproduce) == shrink(plan, reproduce)


def test_shrink_rejects_non_reproducing_plan():
    spec = dyad_spec()
    with pytest.raises(ReproError, match="does not reproduce"):
        shrink(torn_plan(spec), lambda plan: False)


def test_shrink_respects_attempt_budget():
    spec = dyad_spec()
    calls = []

    def counting(plan):
        calls.append(plan)
        return unchecked_reproduce(spec)(plan)

    shrink(torn_plan(spec), counting, max_attempts=3)
    assert len(calls) <= 4  # the initial check + the budget


# ---------------------------------------------------------------------------
# JSON round trip + replay
# ---------------------------------------------------------------------------


def test_save_load_plan_round_trip(tmp_path):
    spec = dyad_spec()
    plan = torn_plan(spec, extra=(
        FaultEvent("bit_corrupt", at=1.0, target="1", duration=0.5,
                   rate=0.25),
    ))
    path = tmp_path / "plan.json"
    save_plan(plan, str(path))
    loaded = load_plan(str(path))
    assert loaded == plan
    assert loaded.events[-1].rate == 0.25
    assert loaded.max_time == plan.max_time


def test_load_plan_rejects_non_object(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(FaultPlanError, match="expected a JSON object"):
        load_plan(str(path))


def test_replay_from_json_reproduces_classification(tmp_path):
    spec = dyad_spec()
    plan = torn_plan(spec)
    path = tmp_path / "repro.json"
    save_plan(plan, str(path))
    direct = execute_plan(
        spec, plan, seed=3, invariants=InvariantConfig(fatal=False),
        dyad_config=DyadConfig(integrity_checks=False),
    )
    replayed = execute_plan(
        spec, load_plan(str(path)), seed=3,
        invariants=InvariantConfig(fatal=False),
        dyad_config=DyadConfig(integrity_checks=False),
    )
    assert replayed.classification == direct.classification == "violation"
    assert replayed.violations == direct.violations


# ---------------------------------------------------------------------------
# the soak + CLI
# ---------------------------------------------------------------------------


def test_small_soak_passes_invariants():
    report = soak(plans=4, base_seed=0, frames=4)
    assert len(report.outcomes) == 4
    assert report.failures == []
    counts = report.counts
    assert counts["violation"] == 0 and counts["crash"] == 0
    text = report.render()
    assert "chaos soak: 4 plans" in text
    assert "all plans passed" in text


def test_cli_parses_fault_plan_flag():
    args = build_parser().parse_args(
        ["chaos", "--fault-plan", "repro.json", "--frames", "4"]
    )
    assert args.fault_plan == "repro.json"
    assert args.experiment == "chaos"


def test_cli_chaos_replays_plan_file(tmp_path, capsys):
    # A benign plan replays clean across the whole workload grid.
    plan = FaultPlan(events=(
        FaultEvent("ssd_degrade", at=0.5, target="0", duration=0.5,
                   severity=2.0),
    ), max_time=10_000.0)
    path = tmp_path / "plan.json"
    save_plan(plan, str(path))
    assert main(["chaos", "--frames", "4",
                 "--fault-plan", str(path)]) == 0
    out = capsys.readouterr().out
    assert "chaos soak: 4 plans" in out


def test_cli_chaos_gate_fails_on_violating_replay(tmp_path, capsys):
    # torn_write replayed against the grid damages the POSIX workloads,
    # which have no detection path: the fatal checker trips and the CLI
    # reports the gate failure via its exit status.
    spec = dyad_spec()
    path = tmp_path / "torn.json"
    save_plan(torn_plan(spec), str(path))
    assert main(["chaos", "--frames", "4",
                 "--fault-plan", str(path)]) == 1
    out = capsys.readouterr().out
    assert "violation" in out


# ---------------------------------------------------------------------------
# the streaming grid
# ---------------------------------------------------------------------------


def test_streaming_workload_grid_covers_modes_and_systems():
    from repro.workflow.spec import SyncMode

    grid = chaos_workloads(frames=4, streaming=True)
    assert all(spec.is_streaming for spec in grid)
    assert {spec.system for spec in grid} == {
        System.DYAD, System.XFS, System.LUSTRE}
    assert {spec.sync_mode for spec in grid} == {
        SyncMode.WINDOWED, SyncMode.PUBSUB, SyncMode.NBUFFER}
    # the default grid is untouched (existing soak seeds replay as-is)
    assert all(not spec.is_streaming for spec in chaos_workloads(frames=4))


def test_small_streaming_soak_passes_invariants():
    report = soak(plans=6, base_seed=7, frames=4, streaming=True)
    assert len(report.outcomes) == 6
    assert report.failures == []
    counts = report.counts
    assert counts["violation"] == 0 and counts["crash"] == 0


def test_streaming_soak_failure_writes_shrunk_artifact(tmp_path, monkeypatch):
    # Force a deterministic backpressure-deadlock classification so the
    # shrink-and-serialize path runs without needing a real harness bug:
    # any plan carrying a link_flap "fails", so shrink reduces to it.
    import repro.chaos as chaos_mod

    real_execute = chaos_mod.execute_plan

    def fake_execute(spec, plan, seed=0, **kwargs):
        if any(e.kind == "link_flap" for e in plan.events):
            return chaos_mod.ChaosOutcome(
                seed, spec, plan, "violation",
                "backpressure-liveness: producer0 blocked past horizon",
                ("backpressure-liveness: producer0 blocked past horizon",),
            )
        return chaos_mod.ChaosOutcome(seed, spec, plan, "ok", "")

    monkeypatch.setattr(chaos_mod, "execute_plan", fake_execute)
    report = chaos_mod.soak(plans=8, base_seed=0, frames=4,
                            artifact_dir=str(tmp_path), streaming=True)
    assert report.failures
    assert report.shrunk_events == 1
    artifact = tmp_path / "chaos-shrunk-plan.json"
    assert artifact.exists()
    shrunk = load_plan(str(artifact))
    assert len(shrunk.events) == 1
    assert shrunk.events[0].kind == "link_flap"
    # the shrunk artifact replays through the real executor
    assert real_execute is not fake_execute


def test_cli_chaos_streaming_flag(capsys):
    args = build_parser().parse_args(["chaos", "--streaming"])
    assert args.streaming is True
    assert main(["chaos", "--runs", "3", "--frames", "4",
                 "--streaming"]) == 0
    out = capsys.readouterr().out
    assert "chaos soak: 3 plans" in out
    assert "all plans passed" in out
