"""Determinism and caching guarantees of the parallel campaign runner.

The load-bearing property: ``run_repetitions(..., jobs=N)`` must return
*bit-identical* results to the serial path — same per-frame timings, same
call trees, same system stats — because the hypothesis tests and the
paper-claim verdicts assume repetitions are a pure function of their
seeds. Fingerprints hash every float via ``float.hex``, so even sub-ULP
drift would fail these tests.
"""

import os
import pickle

import pytest

from repro.errors import ReproError
from repro.experiments.parallel import (
    RunTask,
    campaign,
    default_jobs,
    result_fingerprint,
    run_campaign,
)
from repro.experiments.persist import ResultCache, default_cache_root
from repro.workflow.runner import run_repetitions, run_workflow
from repro.workflow.spec import Placement, System, WorkflowSpec

# Small-but-faithful specs of the Fig. 5 and Fig. 6 grids (reduced frame
# counts; structure and placement identical to the paper's).
FIG5_SPEC = WorkflowSpec(system=System.DYAD, frames=6, pairs=2,
                         placement=Placement.SINGLE_NODE)
FIG6_SPEC = WorkflowSpec(system=System.LUSTRE, frames=6, pairs=2,
                         placement=Placement.SPLIT)


def fingerprints(results):
    return [result_fingerprint(r) for r in results]


# ---------------------------------------------------------------------------
# parallel == serial, bit for bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("spec", [FIG5_SPEC, FIG6_SPEC], ids=["fig5", "fig6"])
def test_parallel_matches_serial_bit_for_bit(spec, monkeypatch):
    # lift the cpu_count clamp so the pool path actually runs on any box
    monkeypatch.setenv("REPRO_JOBS_OVERSUBSCRIBE", "1")
    serial = run_repetitions(spec, runs=4, jitter_cv=0.05, jobs=1)
    parallel = run_repetitions(spec, runs=4, jitter_cv=0.05, jobs=4)
    assert fingerprints(serial) == fingerprints(parallel)
    # the figure-level metrics derive from the trees; spot-check them too
    for a, b in zip(serial, parallel):
        assert a.seed == b.seed
        assert a.makespan == b.makespan
        assert a.production_movement == b.production_movement
        assert a.consumption_idle == b.consumption_idle
        assert a.system_stats == b.system_stats


def test_repetitions_are_seed_pure():
    """Same task twice -> same fingerprint (the cache's soundness basis)."""
    task = RunTask(spec=FIG5_SPEC, seed=3000, jitter_cv=0.05)
    a, b = run_campaign([task], jobs=1), run_campaign([task], jobs=1)
    assert result_fingerprint(a[0]) == result_fingerprint(b[0])


def test_run_campaign_preserves_task_order():
    tasks = [RunTask(spec=FIG5_SPEC, seed=s, jitter_cv=0.05)
             for s in (5000, 0, 2000)]
    results = run_campaign(tasks, jobs=1)
    assert [r.seed for r in results] == [5000, 0, 2000]


def test_run_campaign_empty():
    assert run_campaign([], jobs=1) == []


# ---------------------------------------------------------------------------
# cache: hits equal cold runs, misses self-heal
# ---------------------------------------------------------------------------


def test_cache_hits_equal_cold_runs(tmp_path):
    cold = run_repetitions(FIG5_SPEC, runs=3, jitter_cv=0.05,
                           use_cache=True, cache_dir=str(tmp_path))
    assert len(list(tmp_path.rglob("*.pkl"))) == 3
    warm = run_repetitions(FIG5_SPEC, runs=3, jitter_cv=0.05,
                           use_cache=True, cache_dir=str(tmp_path))
    assert fingerprints(cold) == fingerprints(warm)
    uncached = run_repetitions(FIG5_SPEC, runs=3, jitter_cv=0.05)
    assert fingerprints(uncached) == fingerprints(warm)


def test_cache_key_distinguishes_inputs(tmp_path):
    cache = ResultCache(str(tmp_path))
    base = cache.key(FIG5_SPEC, 0, 0.05, {})
    assert cache.key(FIG5_SPEC, 0, 0.05, {}) == base
    assert cache.key(FIG5_SPEC, 1000, 0.05, {}) != base
    assert cache.key(FIG5_SPEC, 0, 0.0, {}) != base
    assert cache.key(FIG6_SPEC, 0, 0.05, {}) != base
    from repro.dyad.config import DyadConfig

    assert cache.key(FIG5_SPEC, 0, 0.05,
                     {"dyad_config": DyadConfig()}) != base


def test_cache_ignores_none_configs(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert (cache.key(FIG5_SPEC, 0, 0.05, {"dyad_config": None})
            == cache.key(FIG5_SPEC, 0, 0.05, {}))


def test_cache_corrupt_entry_self_heals(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = cache.key(FIG5_SPEC, 0, 0.05, {})
    os.makedirs(os.path.dirname(cache.path(key)), exist_ok=True)
    with open(cache.path(key), "wb") as fh:
        fh.write(b"not a pickle")
    assert cache.load(key) is None
    assert not os.path.exists(cache.path(key))
    assert cache.misses == 1


def test_cache_truncated_entry_self_heals(tmp_path):
    """A crash mid-write leaves a short entry: the CRC frame catches it."""
    cache = ResultCache(str(tmp_path))
    result = run_workflow(FIG5_SPEC, seed=0, jitter_cv=0.05)
    key = cache.key(FIG5_SPEC, 0, 0.05, {})
    path = cache.store(key, result)
    blob = open(path, "rb").read()
    assert blob[:4] == b"RPRC"
    with open(path, "wb") as fh:
        fh.write(blob[: len(blob) // 2])  # torn write
    assert cache.load(key) is None
    assert not os.path.exists(path)
    # the next computation repopulates the entry
    cache.store(key, result)
    assert cache.load(key) is not None


def test_cache_bitflip_entry_self_heals(tmp_path):
    """A flipped payload byte fails the CRC even if pickle would load."""
    cache = ResultCache(str(tmp_path))
    result = run_workflow(FIG5_SPEC, seed=0, jitter_cv=0.05)
    key = cache.key(FIG5_SPEC, 0, 0.05, {})
    path = cache.store(key, result)
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    assert cache.load(key) is None
    assert cache.misses == 1


def test_cache_sharded_layout_and_legacy_entries(tmp_path):
    """Entries land in root/<key[:2]>/; flat legacy files still counted."""
    cache = ResultCache(str(tmp_path))
    result = run_workflow(FIG5_SPEC, seed=0, jitter_cv=0.05)
    key = cache.key(FIG5_SPEC, 0, 0.05, {})
    path = cache.store(key, result)
    assert os.path.dirname(path) == os.path.join(str(tmp_path), key[:2])
    # a pre-shard flat entry is visible to len() and clear()
    with open(os.path.join(str(tmp_path), "0" * 64 + ".pkl"), "wb") as fh:
        fh.write(b"legacy")
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0


def test_cache_store_load_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path))
    result = run_workflow(FIG5_SPEC, seed=0, jitter_cv=0.05)
    key = cache.key(FIG5_SPEC, 0, 0.05, {})
    cache.store(key, result)
    loaded = cache.load(key)
    assert result_fingerprint(loaded) == result_fingerprint(result)
    assert cache.hits == 1
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


def test_cache_refuses_traced_results(tmp_path):
    cache = ResultCache(str(tmp_path))
    traced = run_workflow(FIG5_SPEC, seed=0, jitter_cv=0.05, trace=True)
    with pytest.raises(ReproError):
        cache.store(cache.key(FIG5_SPEC, 0, 0.05, {}), traced)


def test_cached_results_survive_pickle_roundtrip():
    result = run_workflow(FIG5_SPEC, seed=0, jitter_cv=0.05)
    clone = pickle.loads(pickle.dumps(result))
    assert result_fingerprint(clone) == result_fingerprint(result)


# ---------------------------------------------------------------------------
# knob resolution: explicit > campaign scope > environment > serial
# ---------------------------------------------------------------------------


def test_default_jobs_resolution(monkeypatch):
    # oversubscribe so precedence is observable regardless of box size
    monkeypatch.setenv("REPRO_JOBS_OVERSUBSCRIBE", "1")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    assert default_jobs(2) == 2
    with campaign(jobs=5):
        assert default_jobs() == 5
        assert default_jobs(2) == 2
    assert default_jobs() == 3


def test_default_jobs_clamps_to_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS_OVERSUBSCRIBE", raising=False)
    cpus = os.cpu_count() or 1
    assert default_jobs(cpus + 7) == cpus
    monkeypatch.setenv("REPRO_JOBS", str(cpus + 100))
    assert default_jobs() == cpus
    # an explicit request at or below the core count is honoured
    assert default_jobs(1) == 1
    # ... and the escape hatch lifts the clamp
    monkeypatch.setenv("REPRO_JOBS_OVERSUBSCRIBE", "1")
    assert default_jobs(cpus + 7) == cpus + 7


def test_default_jobs_rejects_nonpositive():
    with pytest.raises(ReproError):
        default_jobs(0)


def test_campaign_scope_restores_on_exit(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS_OVERSUBSCRIBE", "1")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    with pytest.raises(RuntimeError):
        with campaign(jobs=7):
            assert default_jobs() == 7
            raise RuntimeError("boom")
    assert default_jobs() == 1


def test_campaign_scope_enables_cache(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    with campaign(cache=True, cache_dir=str(tmp_path)):
        run_repetitions(FIG5_SPEC, runs=2, jitter_cv=0.05)
    assert len(list(tmp_path.rglob("*.pkl"))) == 2


def test_cache_env_default_off(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    run_repetitions(FIG5_SPEC, runs=1, jitter_cv=0.05)
    assert list(tmp_path.rglob("*.pkl")) == []


def test_default_cache_root_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
    assert default_cache_root() == str(tmp_path / "alt")
