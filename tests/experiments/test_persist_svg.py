"""Tests for result persistence/regression-diff and SVG rendering."""

import json

import pytest

from repro.errors import ReproError
from repro.experiments.common import Cell, FigureResult, Stat
from repro.experiments.persist import (
    compare_figures,
    figure_from_dict,
    figure_to_dict,
    load_campaign,
    load_figure,
    save_campaign,
    save_figure,
)
from repro.experiments.svgplot import BarChart, render_figure_svg, save_figure_svg


def make_cell(pm=1e-4, pi=0.0, cm=1e-3, ci=5e-1, std=1e-5):
    return Cell(
        production_movement=Stat(pm, std),
        production_idle=Stat(pi, 0.0),
        consumption_movement=Stat(cm, std),
        consumption_idle=Stat(ci, std),
    )


def make_figure(scale=1.0, figure_id="FigT"):
    cells = {
        (x, system): make_cell(cm=1e-3 * scale * (i + 1), ci=0.5 * scale)
        for x in (1, 2)
        for i, system in enumerate(("dyad", "lustre"))
    }
    return FigureResult(
        figure_id=figure_id, title="test figure", x_name="pairs",
        xs=[1, 2], systems=["dyad", "lustre"], cells=cells,
        runs=2, frames=16, notes=["a note"],
    )


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------


def test_roundtrip_dict():
    fig = make_figure()
    clone = figure_from_dict(figure_to_dict(fig))
    assert clone.figure_id == fig.figure_id
    assert clone.xs == fig.xs and clone.systems == fig.systems
    for x in fig.xs:
        for system in fig.systems:
            assert (clone.cell(x, system).consumption_movement.mean
                    == fig.cell(x, system).consumption_movement.mean)
    assert clone.notes == fig.notes


def test_roundtrip_file(tmp_path):
    fig = make_figure()
    path = tmp_path / "figt.json"
    save_figure(fig, path)
    loaded = load_figure(path)
    assert loaded.ratio("consumption_movement", "lustre", "dyad") == \
        fig.ratio("consumption_movement", "lustre", "dyad")
    # file is plain JSON
    payload = json.loads(path.read_text())
    assert payload["figure_id"] == "FigT"


def test_bad_format_rejected():
    with pytest.raises(ReproError, match="format"):
        figure_from_dict({"format": 999})


def test_compare_no_regressions_on_identical():
    assert compare_figures(make_figure(), make_figure()) == []


def test_compare_flags_moved_metrics():
    before, after = make_figure(), make_figure(scale=2.0)
    regressions = compare_figures(before, after, rel_tolerance=0.25)
    assert regressions
    moved = {r.metric for r in regressions}
    assert "consumption_movement" in moved
    assert all(r.factor == pytest.approx(2.0) for r in regressions
               if r.metric == "consumption_movement")
    assert "FigT" in str(regressions[0])


def test_compare_respects_tolerance():
    before, after = make_figure(), make_figure(scale=1.1)
    assert compare_figures(before, after, rel_tolerance=0.25) == []
    assert compare_figures(before, after, rel_tolerance=0.05)


def test_compare_grid_mismatch_rejected():
    a = make_figure()
    b = make_figure()
    b.xs = [1, 2, 4]
    with pytest.raises(ReproError, match="grid"):
        compare_figures(a, b)


def test_campaign_roundtrip(tmp_path):
    figs = [make_figure(figure_id="FigA"), make_figure(figure_id="FigB")]
    paths = save_campaign(figs, tmp_path / "campaign")
    assert len(paths) == 2
    loaded = load_campaign(tmp_path / "campaign")
    assert set(loaded) == {"FigA", "FigB"}


def test_load_campaign_empty_dir(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(ReproError):
        load_campaign(tmp_path / "empty")


# ---------------------------------------------------------------------------
# SVG rendering
# ---------------------------------------------------------------------------


def test_chart_validation():
    chart = BarChart(
        title="t", x_labels=["a"], series=["s"],
        movement=[[1.0], [2.0]], idle=[[0.0]],
    )
    with pytest.raises(ReproError):
        chart.to_svg()


def test_chart_svg_structure():
    chart = BarChart(
        title="Chart & Title",
        x_labels=["1", "2"],
        series=["dyad", "lustre"],
        movement=[[1.0, 2.0], [3.0, 4.0]],
        idle=[[0.5, 0.5], [10.0, 10.0]],
        whisker=[[0.1, 0.1], [0.2, 0.2]],
    )
    svg = chart.to_svg()
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "Chart &amp; Title" in svg  # escaping
    assert svg.count("<rect") > 8      # background + bars + legend chips


def test_chart_log_scale_handles_wide_range():
    chart = BarChart(
        title="log", x_labels=["x"], series=["dyad"],
        movement=[[0.001]], idle=[[100.0]], log_scale=True,
    )
    svg = chart.to_svg()
    assert "<svg" in svg


def test_render_figure_svg_panels():
    fig = make_figure()
    for which in ("production", "consumption"):
        svg = render_figure_svg(fig, which)
        assert fig.figure_id in svg
    with pytest.raises(ReproError):
        render_figure_svg(fig, "sideways")


def test_save_figure_svg_files(tmp_path):
    import xml.dom.minidom

    fig = make_figure()
    paths = save_figure_svg(fig, tmp_path / "figs")
    assert len(paths) == 2
    for path in paths:
        xml.dom.minidom.parse(path)  # well-formed XML
