"""The CI perf-guard's regression arithmetic, exit codes, and messages."""

import importlib.util
import json
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
_spec = importlib.util.spec_from_file_location(
    "perf_guard", ROOT / "benchmarks" / "perf_guard.py"
)
perf_guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_spec and perf_guard)


def _write(tmp_path, measured, recorded):
    bench = tmp_path / "BENCH_campaign.json"
    baseline = tmp_path / "baseline.json"
    bench.write_text(json.dumps(
        {"kernel": {"contended_events_per_sec": measured}}
    ))
    baseline.write_text(json.dumps({"contended_events_per_sec": recorded}))
    return bench, baseline


def _write_fluid(tmp_path, speedup, flows_per_sec,
                 speedup_floor=10.0, recorded_flows=200000.0):
    bench = tmp_path / "BENCH_fluid.json"
    baseline = tmp_path / "baseline_fluid.json"
    bench.write_text(json.dumps({
        "contended": {"speedup_fluid_vs_exact": speedup},
        "million_flows": {"flows_per_sec": flows_per_sec},
    }))
    baseline.write_text(json.dumps({
        "contended_speedup_floor": speedup_floor,
        "million_flows_per_sec": recorded_flows,
    }))
    return bench, baseline


def _write_service(tmp_path, records=10000, syncs=40, lru_hits=5000,
                   lru_misses=400, sustained=5200.0, p99=2.0,
                   amortization_floor=20.0, lru_floor=0.5,
                   recorded_sustained=5000.0, recorded_p99=1.95):
    bench = tmp_path / "BENCH_service.json"
    baseline = tmp_path / "baseline_service.json"
    bench.write_text(json.dumps({
        "latency_p99": p99,
        "sustained": {"throughput": sustained},
        "server_stats": {
            "journal": {"records": records, "syncs": syncs},
            "store": {"lru_hits": lru_hits, "lru_misses": lru_misses},
        },
    }))
    baseline.write_text(json.dumps({
        "pr7_reference": {"smoke_p99_seconds": 3.955,
                          "sustained_jobs_per_sec": 955.0},
        "sustained_jobs_per_sec": recorded_sustained,
        "smoke_p99_seconds": recorded_p99,
        "journal_amortization_floor": amortization_floor,
        "lru_hit_ratio_floor": lru_floor,
    }))
    return bench, baseline


def test_within_noise_band_passes(tmp_path, capsys):
    bench, baseline = _write(tmp_path, measured=810.0, recorded=1000.0)
    assert perf_guard.check_kernel(bench, baseline) == 0
    assert "OK" in capsys.readouterr().out


def test_regression_beyond_tolerance_fails(tmp_path, capsys):
    bench, baseline = _write(tmp_path, measured=790.0, recorded=1000.0)
    assert perf_guard.check_kernel(bench, baseline) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_improvement_passes(tmp_path):
    bench, baseline = _write(tmp_path, measured=2000.0, recorded=1000.0)
    assert perf_guard.check_kernel(bench, baseline) == 0


def test_missing_bench_file_is_a_distinct_error(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"contended_events_per_sec": 1.0}))
    missing = tmp_path / "nope.json"
    assert perf_guard.main([str(missing), str(baseline)]) == 2


def test_missing_baseline_key_names_the_key(tmp_path, capsys):
    """Schema drift surfaces as a clear message, not a bare KeyError."""
    bench = tmp_path / "BENCH_campaign.json"
    bench.write_text(json.dumps(
        {"kernel": {"contended_events_per_sec": 1000.0}}
    ))
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"some_other_number": 1.0}))
    assert perf_guard.main([str(bench), str(baseline)]) == 2
    out = capsys.readouterr().out
    assert "contended_events_per_sec" in out
    assert str(baseline) in out


def test_missing_bench_key_names_the_dotted_path(tmp_path, capsys):
    bench = tmp_path / "BENCH_campaign.json"
    bench.write_text(json.dumps({"kernel": {}}))
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"contended_events_per_sec": 1.0}))
    assert perf_guard.main([str(bench), str(baseline)]) == 2
    out = capsys.readouterr().out
    assert "kernel.contended_events_per_sec" in out


def test_missing_key_raises_missing_key_not_key_error(tmp_path):
    path = tmp_path / "p.json"
    with pytest.raises(perf_guard.MissingKey):
        perf_guard._get({"a": {"b": 1}}, "a.c", path)
    assert perf_guard._get({"a": {"b": 1}}, "a.b", path) == 1


def test_fluid_gate_passes_within_floors(tmp_path, capsys):
    bench, baseline = _write_fluid(tmp_path, speedup=15.0,
                                   flows_per_sec=180000.0)
    assert perf_guard.check_fluid(bench, baseline) == 0
    out = capsys.readouterr().out
    assert out.count("OK") == 2


def test_fluid_gate_fails_below_speedup_floor(tmp_path, capsys):
    bench, baseline = _write_fluid(tmp_path, speedup=6.0,
                                   flows_per_sec=250000.0)
    assert perf_guard.check_fluid(bench, baseline) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_fluid_gate_fails_below_throughput_floor(tmp_path, capsys):
    # 50% tolerance: 90k < 0.5 * 200k
    bench, baseline = _write_fluid(tmp_path, speedup=15.0,
                                   flows_per_sec=90000.0)
    assert perf_guard.check_fluid(bench, baseline) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_service_gate_passes_within_floors(tmp_path, capsys):
    bench, baseline = _write_service(tmp_path)
    assert perf_guard.check_service(bench, baseline) == 0
    assert capsys.readouterr().out.count("OK") == 4


def test_service_gate_fails_on_per_event_fsync(tmp_path, capsys):
    """syncs == records means group commit collapsed — no tolerance."""
    bench, baseline = _write_service(tmp_path, records=10000, syncs=10000)
    assert perf_guard.check_service(bench, baseline) == 1
    assert "group-commit window collapsed" in capsys.readouterr().out


def test_service_gate_fails_below_lru_floor(tmp_path, capsys):
    bench, baseline = _write_service(tmp_path, lru_hits=100,
                                     lru_misses=900)
    assert perf_guard.check_service(bench, baseline) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_service_gate_fails_below_sustained_floor(tmp_path):
    # 50% tolerance: 2000 < 0.5 * 5000
    bench, baseline = _write_service(tmp_path, sustained=2000.0)
    assert perf_guard.check_service(bench, baseline) == 1


def test_service_gate_fails_above_p99_ceiling(tmp_path):
    # 75% tolerance: 4.0 > 1.75 * 1.95
    bench, baseline = _write_service(tmp_path, p99=4.0)
    assert perf_guard.check_service(bench, baseline) == 1


def test_service_only_mode_and_missing_bench(tmp_path, capsys):
    bench, baseline = _write_service(tmp_path)
    assert perf_guard.main(["--service", str(bench), str(baseline)]) == 0
    capsys.readouterr()
    missing = tmp_path / "nope.json"
    assert perf_guard.main(["--service", str(missing), str(baseline)]) == 2
    assert "not found" in capsys.readouterr().out


def test_service_schema_drift_names_the_key(tmp_path, capsys):
    bench = tmp_path / "BENCH_service.json"
    bench.write_text(json.dumps({"latency_p99": 2.0}))
    baseline = tmp_path / "baseline_service.json"
    baseline.write_text(json.dumps({"journal_amortization_floor": 20.0}))
    assert perf_guard.main(["--service", str(bench), str(baseline)]) == 2
    assert "server_stats.journal.records" in capsys.readouterr().out


def test_repo_bench_passes_repo_baseline():
    """The numbers shipped in this PR must satisfy their own guard."""
    assert perf_guard.main([]) == 0
