"""The CI perf-guard's regression arithmetic and exit codes."""

import importlib.util
import json
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
_spec = importlib.util.spec_from_file_location(
    "perf_guard", ROOT / "benchmarks" / "perf_guard.py"
)
perf_guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_spec and perf_guard)


def _write(tmp_path, measured, recorded):
    bench = tmp_path / "BENCH_campaign.json"
    baseline = tmp_path / "baseline.json"
    bench.write_text(json.dumps(
        {"kernel": {"contended_events_per_sec": measured}}
    ))
    baseline.write_text(json.dumps({"contended_events_per_sec": recorded}))
    return bench, baseline


def test_within_noise_band_passes(tmp_path, capsys):
    bench, baseline = _write(tmp_path, measured=810.0, recorded=1000.0)
    assert perf_guard.check(bench, baseline) == 0
    assert "OK" in capsys.readouterr().out


def test_regression_beyond_tolerance_fails(tmp_path, capsys):
    bench, baseline = _write(tmp_path, measured=790.0, recorded=1000.0)
    assert perf_guard.check(bench, baseline) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_improvement_passes(tmp_path):
    bench, baseline = _write(tmp_path, measured=2000.0, recorded=1000.0)
    assert perf_guard.check(bench, baseline) == 0


def test_missing_bench_file_is_a_distinct_error(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"contended_events_per_sec": 1.0}))
    missing = tmp_path / "nope.json"
    assert perf_guard.main([str(missing), str(baseline)]) == 2


def test_repo_bench_passes_repo_baseline():
    """The numbers shipped in this PR must satisfy their own guard."""
    assert perf_guard.main([]) == 0
