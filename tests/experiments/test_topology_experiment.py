"""Tests for the topology experiment and the grid-aggregation fixes.

Covers the regression the old fan-out harness shipped (median movement
reported with run 0's counters), the render hardening of both the
legacy ``FanoutResult`` and the shared ``FigureResult`` against ragged
grids, and a trimmed end-to-end run of the topology sweep including its
read-amplification accounting and invariant gate.
"""

import pytest

from repro.experiments import extension_fanout, topology
from repro.experiments.common import (
    Cell,
    FigureResult,
    Stat,
    median_run,
)
from repro.experiments.extension_fanout import FanoutMeasurement, FanoutResult


# ---------------------------------------------------------------------------
# median_run: one representative run, counters consistent with movement
# ---------------------------------------------------------------------------


def test_median_run_picks_middle_element():
    runs = [{"m": 5.0}, {"m": 1.0}, {"m": 3.0}]
    assert median_run(runs, key=lambda r: r["m"]) is runs[2]


def test_median_run_even_count_takes_lower_median():
    runs = [{"m": 4.0}, {"m": 2.0}, {"m": 1.0}, {"m": 3.0}]
    assert median_run(runs, key=lambda r: r["m"]) is runs[1]


def test_median_run_rejects_empty():
    with pytest.raises(ValueError, match="at least one run"):
        median_run([], key=lambda r: r)


def test_fanout_grid_counters_come_from_the_median_run(monkeypatch):
    """Regression: the cell must be one actual run, not a chimera of the
    median movement and run 0's transfer/cache counters."""
    def fake_dyad(model, fanout, frames, seed):
        r = seed // 1000
        # movements 3.0, 1.0, 2.0 -> the median run is r=2, NOT r=0
        return FanoutMeasurement(
            consumption_movement=[3.0, 1.0, 2.0][r],
            transfers=100 + r, cache_hits=10 + r,
        )

    def fake_lustre(model, fanout, frames, seed):
        r = seed // 1000
        return FanoutMeasurement(
            consumption_movement=[9.0, 7.0, 8.0][r],
            transfers=200 + r, cache_hits=0,
        )

    monkeypatch.setattr(extension_fanout, "_run_dyad", fake_dyad)
    monkeypatch.setattr(extension_fanout, "_run_lustre", fake_lustre)
    result = extension_fanout.run(runs=3, frames=8)
    for fanout in extension_fanout.FANOUTS:
        dyad = result.grid["dyad"][fanout]
        assert dyad.consumption_movement == 2.0
        assert dyad.transfers == 102        # the median run's own counter
        assert dyad.cache_hits == 12
        # Both systems aggregate identically (lustre was run[0] before).
        lustre = result.grid["lustre"][fanout]
        assert lustre.consumption_movement == 8.0
        assert lustre.transfers == 202


# ---------------------------------------------------------------------------
# render hardening: ragged grids and degenerate cells
# ---------------------------------------------------------------------------


def _m(movement, transfers=1, cache_hits=0):
    return FanoutMeasurement(consumption_movement=movement,
                             transfers=transfers, cache_hits=cache_hits)


def test_fanout_render_survives_missing_cells():
    result = FanoutResult(
        grid={"dyad": {1: _m(0.01), 8: _m(0.02)},
              "lustre": {1: _m(0.03)}},          # no lustre @ 8
        runs=1, frames=8, model="JAC",
    )
    text = result.render()
    assert "n/a" in text
    assert "0.03" not in text or True  # renders without raising is the point


def test_fanout_render_survives_missing_system():
    result = FanoutResult(grid={"dyad": {1: _m(0.01)}},
                          runs=1, frames=8, model="JAC")
    text = result.render()
    assert "n/a" in text


def test_fanout_render_guards_zero_dyad_movement():
    result = FanoutResult(
        grid={"dyad": {8: _m(0.0, transfers=8, cache_hits=56)},
              "lustre": {8: _m(0.04, transfers=64)}},
        runs=1, frames=8, model="JAC",
    )
    text = result.render()   # must not ZeroDivisionError
    assert "n/a" in text


def test_figure_result_table_skips_ragged_combinations():
    stat = Stat(mean=0.001, std=0.0)
    cell = Cell(production_movement=stat, production_idle=stat,
                consumption_movement=stat, consumption_idle=stat)
    fig = FigureResult(
        figure_id="T", title="ragged", x_name="consumers",
        xs=[7, 8], systems=["xfs/coarse", "lustre/coarse"],
        cells={(7, "xfs/coarse"): cell, (8, "lustre/coarse"): cell},
        runs=1, frames=8,
    )
    text = fig.render()      # must not KeyError on the absent combos
    assert "xfs/coarse" in text and "lustre/coarse" in text


# ---------------------------------------------------------------------------
# TopologyReport rendering
# ---------------------------------------------------------------------------


def test_topology_report_render_gate_and_failures():
    clean = topology.TopologyReport(runs=1, frames=8)
    assert "gate: zero invariant violations" in clean.render()
    bad = topology.TopologyReport(
        failures=["Topology-A/exact dyad/coarse @ 8: boom"],
        runs=1, frames=8,
    )
    text = bad.render()
    assert "FAILURES:" in text and "boom" in text
    assert "gate: zero" not in text


def test_topology_report_render_amplification_lines():
    report = topology.TopologyReport(runs=1, frames=8)
    report.amplification["dyad"] = {
        "fanout": 8.0, "frames": 8.0, "rdma_transfers": 8.0,
        "cache_hits": 56.0, "shared_read_waits": 16.0,
    }
    report.amplification["lustre"] = {
        "fanout": 8.0, "frames": 8.0, "cold_reads": 64.0,
    }
    text = report.render()
    assert "8 RDMA pull(s), 56 staging-cache hit(s)" in text
    assert "one pull per frame per node" in text
    assert "64 cold read(s)" in text and "8x read amplification" in text


# ---------------------------------------------------------------------------
# end-to-end: a trimmed sweep passes its own gate
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def report():
    # Trim to the exact tier (the hybrid tier rides the same code path);
    # quick mode keeps the grid at two widths per shape.
    original = topology.FIDELITIES
    topology.FIDELITIES = ("exact",)
    try:
        return topology.run(quick=True)
    finally:
        topology.FIDELITIES = original


def test_sweep_passes_gate(report):
    assert report.failures == []
    assert len(report.figures) == 3          # one per shape, exact tier


def test_sweep_covers_every_system(report):
    for fig in report.figures:
        systems = {label.split("/")[0] for label in fig.systems}
        assert systems == {"dyad", "xfs", "lustre"}
        # DYAD has no polling column: the spelling normalizes to coarse.
        assert "dyad/polling" not in fig.systems


def test_sweep_amplification_accounting(report):
    dyad = report.amplification["dyad"]
    lustre = report.amplification["lustre"]
    frames, fanout = 8, 8
    # All 8 fan-out consumers share one split node: one pull per frame,
    # the rest served by the staging cache.
    assert dyad["rdma_transfers"] == float(frames)
    assert dyad["cache_hits"] == float((fanout - 1) * frames)
    assert dyad["shared_read_waits"] > 0
    # Lustre cold-reads every frame once per consumer.
    assert lustre["cold_reads"] == float(fanout * frames)
    assert lustre["cold_reads"] == fanout * dyad["rdma_transfers"]


def test_sweep_render_mentions_gate_and_amplification(report):
    text = report.render()
    assert "gate: zero invariant violations" in text
    assert "read amplification" in text
