"""Tests for the calibration self-check."""

import pytest

from repro.experiments import validate


@pytest.fixture(scope="module")
def result():
    return validate.run()


def test_all_checks_pass(result):
    assert result.ok, result.render()


def test_expected_checks_present(result):
    names = [c.name for c in result.checks]
    assert any("XFS" in n for n in names)
    assert any("DYAD" in n and "produce" in n for n in names)
    assert any("ratio" in n for n in names)
    assert any("RDMA" in n for n in names)
    assert any("Lustre" in n for n in names)


def test_production_ratio_near_paper(result):
    ratio = next(c for c in result.checks if "ratio" in c.name)
    assert ratio.measured == pytest.approx(1.4, abs=0.15)


def test_check_failure_detection():
    check = validate.Check("synthetic", predicted=1.0, measured=2.0)
    assert not check.ok
    bad = validate.ValidationResult(checks=[check])
    assert not bad.ok
    assert "FAIL" in bad.render()


def test_render_formats(result):
    text = result.render()
    assert "predicted" in text and "measured" in text
    assert "1.4" in text  # the dimensionless ratio line


def test_registered_in_cli(capsys):
    from repro.experiments.__main__ import main

    assert main(["validate"]) == 0
    out = capsys.readouterr().out
    assert "all checks passed" in out
