"""Faults × fidelity: injected faults act on the fluid-tier kernels too.

The fault layer was written against the exact tier's per-channel
:class:`~repro.sim.resources.SharedBandwidth`. On the ``hybrid``/``fluid``
tiers every bulk byte-movement channel is a
:class:`~repro.sim.fluid.FluidLink` on the cluster-wide solver instead,
and the injector's apply/revert closures go through the same surface
(``set_bandwidth``, ``fail_link``). These tests pin that contract at two
levels:

- **kernel**: ``ssd.degrade`` / ``lustre.degrade`` re-rate *in-flight*
  fluid flows mid-stream (completion times match the analytic
  re-rated schedule), and ``fabric.fail_link`` stalls fluid transfers
  until ``restore_link`` fires;
- **end-to-end**: the resilience experiment's ``build_plan`` plans
  (``dyad_crash``/``link_flap``/``ssd_degrade``/``lustre_slowdown``)
  run to completion under both reduced tiers, apply and revert every
  event, cost makespan versus the clean same-tier run, and stay a pure
  function of (spec, seed, plan, tier).
"""

import math

import pytest

from repro.cluster.topology import Cluster, ClusterConfig
from repro.experiments import resilience
from repro.experiments.parallel import result_fingerprint
from repro.sim.core import Process
from repro.sim.fluid import Fidelity, FluidLink
from repro.sim.resources import SharedBandwidth
from repro.storage.lustre import LustreServers
from repro.workflow.runner import run_workflow
from repro.workflow.spec import System

REL_TOL = 1e-9

SEED = 11
FRAMES = 4
INTENSITY = 0.5
TIERS = ("hybrid", "fluid")


# ---------------------------------------------------------------------------
# kernel level: fault hooks re-rate FluidLink flows
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tier", TIERS)
def test_reduced_tier_channels_are_fluid_links(tier):
    cluster = Cluster(ClusterConfig(nodes=2, fidelity=tier))
    node = cluster.node(0)
    for chan in (*node.ssd.channels(), *node.nic.channels()):
        assert isinstance(chan, FluidLink)


def test_exact_tier_channels_stay_shared_bandwidth():
    cluster = Cluster(ClusterConfig(nodes=2, fidelity="exact"))
    assert cluster.fluid is None
    node = cluster.node(0)
    for chan in (*node.ssd.channels(), *node.nic.channels()):
        assert isinstance(chan, SharedBandwidth)


def test_ssd_degrade_rerates_inflight_fluid_flow():
    # hybrid tier: access latency is a separate timeout, so the flow
    # streams from t = write_latency and the schedule is hand-computable
    cluster = Cluster(ClusterConfig(nodes=1, fidelity="hybrid"))
    env, ssd = cluster.env, cluster.node(0).ssd
    bandwidth = ssd.config.write_bandwidth
    latency = ssd.config.write_latency
    size = bandwidth * 0.4           # 0.4 s of streaming when healthy
    hit_at = latency + 0.2           # half the bytes are through
    factor = 4.0

    elapsed = {}

    def writer():
        elapsed["write"] = yield from ssd.write(int(size))

    def saboteur():
        yield env.timeout(hit_at)
        ssd.degrade(factor)

    Process(env, writer())
    Process(env, saboteur())
    env.run()

    assert ssd.degraded == factor
    # 0.2 s at full rate, the remaining half re-rated to bandwidth/4
    expected = latency + 0.2 + (size - bandwidth * 0.2) * factor / bandwidth
    assert math.isclose(elapsed["write"], expected, rel_tol=REL_TOL)

    # restore() re-rates back: a fresh write runs at the healthy schedule
    ssd.restore()
    assert ssd.degraded == 1.0

    def second():
        elapsed["second"] = yield from ssd.write(int(size))

    Process(env, second())
    env.run()
    assert math.isclose(elapsed["second"], latency + 0.4, rel_tol=REL_TOL)


def test_lustre_slowdown_rerates_fluid_oss_channels():
    cluster = Cluster(ClusterConfig(nodes=2, fidelity="fluid"))
    env = cluster.env
    servers = LustreServers(env, cluster.fabric)
    oss = servers.oss[0]
    assert isinstance(oss.read_disk, FluidLink)
    assert isinstance(oss.write_disk, FluidLink)

    rate = servers.config.oss_read_bandwidth
    size = rate * 1.0                # 1 s alone on a healthy channel
    hit_at, factor = 0.5, 3.0

    finished = {}
    done = oss.read_disk.transfer(size)
    done.callbacks.append(lambda _ev: finished.setdefault("at", env.now))

    def saboteur():
        yield env.timeout(hit_at)
        servers.degrade(factor)

    Process(env, saboteur())
    env.run()

    # half streamed healthy, the rest at rate/3: 0.5 + 0.5 * 3
    assert math.isclose(finished["at"], hit_at + (1.0 - hit_at) * factor,
                        rel_tol=REL_TOL)
    # degrade("") touches the whole complex, metadata included
    assert servers.mds_factor == factor
    servers.restore()
    assert servers.mds_factor == 1.0
    assert oss.read_disk.bandwidth == rate


def test_link_flap_stalls_fluid_transfer_until_restore():
    cluster = Cluster(ClusterConfig(nodes=2, fidelity="fluid"))
    env, fabric = cluster.env, cluster.fabric
    size = 10_000_000
    down_for = 0.25

    # clean twin: same transfer on a healthy fabric
    clean_cluster = Cluster(ClusterConfig(nodes=2, fidelity="fluid"))
    timings = {}

    def mover(key, cl):
        start = cl.env.now
        yield from cl.fabric.transfer("node00", "node01", size)
        timings[key] = cl.env.now - start

    Process(clean_cluster.env, mover("clean", clean_cluster))
    clean_cluster.env.run()

    fabric.fail_link("node01")
    assert fabric.link_is_down("node01")

    def repair():
        yield env.timeout(down_for)
        fabric.restore_link("node01")

    Process(env, mover("flapped", cluster))
    Process(env, repair())
    env.run()

    # the transfer held at the downed endpoint, then ran the clean
    # schedule from the instant the link came back
    assert fabric.stats.link_stalls == 1
    assert not fabric.link_is_down("node01")
    assert math.isclose(timings["flapped"], down_for + timings["clean"],
                        rel_tol=REL_TOL)


# ---------------------------------------------------------------------------
# end to end: resilience plans under reduced fidelity
# ---------------------------------------------------------------------------


_clean_cache = {}


def _clean(system, tier):
    if (system, tier) not in _clean_cache:
        spec = resilience._spec(system, FRAMES)
        _clean_cache[system, tier] = run_workflow(
            spec, seed=SEED, jitter_cv=0.0, fidelity=tier)
    return _clean_cache[system, tier]


def _faulty(system, tier):
    spec = resilience._spec(system, FRAMES)
    plan, config = resilience.build_plan(system, INTENSITY, spec)
    return run_workflow(spec, seed=SEED, jitter_cv=0.0, fidelity=tier,
                        fault_plan=plan, dyad_config=config)


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("system", [System.DYAD, System.XFS, System.LUSTRE])
def test_resilience_plan_completes_under_reduced_fidelity(system, tier):
    faulty = _faulty(system, tier)
    clean = _clean(system, tier)

    # ran on the requested tier, with the solver actually engaged
    assert faulty.fidelity == tier
    assert faulty.system_stats["fidelity"] == float(
        Fidelity.coerce(tier).ordinal)
    assert faulty.system_stats["fluid_epochs"] > 0.0
    assert faulty.system_stats["rate_solves"] > 0.0

    # every planned event fired and was reverted, and the degradation
    # shows up as makespan versus the clean same-tier run
    applied = faulty.system_stats["faults_applied"]
    assert applied >= 1.0
    assert faulty.system_stats["faults_reverted"] == applied
    assert faulty.makespan > clean.makespan


@pytest.mark.parametrize("tier", TIERS)
def test_faulty_reduced_fidelity_run_is_reproducible(tier):
    a = _faulty(System.DYAD, tier)
    b = _faulty(System.DYAD, tier)
    assert result_fingerprint(a) == result_fingerprint(b)
    # DYAD's plan stalls remote gets (crash + flap): retries happened
    assert a.system_stats["dyad_transfer_retries"] > 0


# ---------------------------------------------------------------------------
# end to end: streaming transports under faults at reduced fidelity
# ---------------------------------------------------------------------------


def _streaming_spec(system):
    from repro.md.models import JAC
    from repro.workflow.spec import Placement, SyncMode, WorkflowSpec

    placement = (Placement.SINGLE_NODE if system is System.XFS
                 else Placement.SPLIT)
    return WorkflowSpec(system=system, model=JAC, stride=880, frames=FRAMES,
                        pairs=2, placement=placement,
                        sync_mode=SyncMode.WINDOWED, window=2)


def _streaming_plan(system):
    from repro.faults.plan import FaultEvent, FaultPlan

    if system is System.XFS:
        return FaultPlan(events=(
            FaultEvent("ssd_degrade", at=0.5, target="0", duration=1.5,
                       severity=6.0),
        ))
    return FaultPlan(events=(
        FaultEvent("link_flap", at=0.5, target="1", duration=1.0),
    ))


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("system", [System.XFS, System.LUSTRE])
def test_windowed_streaming_completes_under_reduced_tier_faults(system, tier):
    spec = _streaming_spec(system)
    result = run_workflow(spec, seed=SEED, jitter_cv=0.0, fidelity=tier,
                          fault_plan=_streaming_plan(system))
    # fatal checker: completing at all means zero flow-control violations
    assert result.invariant_violations == []
    assert result.fidelity == tier
    applied = result.system_stats["faults_applied"]
    assert applied >= 1.0
    assert result.system_stats["faults_reverted"] == applied
    # the credit ledger balanced across the fault window
    issued = result.system_stats["stream_credits_issued"]
    assert issued == result.system_stats["stream_credits_returned"]
    assert issued == float(FRAMES * spec.pairs)


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("system", [System.XFS, System.LUSTRE])
def test_faulty_streaming_reduced_tier_run_is_reproducible(system, tier):
    spec = _streaming_spec(system)
    plan = _streaming_plan(system)
    a = run_workflow(spec, seed=SEED, jitter_cv=0.0, fidelity=tier,
                     fault_plan=plan)
    b = run_workflow(spec, seed=SEED, jitter_cv=0.0, fidelity=tier,
                     fault_plan=plan)
    assert result_fingerprint(a) == result_fingerprint(b)
