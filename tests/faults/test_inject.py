"""FaultInjector: plans become live, reversible substrate faults."""

import pytest

from repro.dyad.service import DyadRuntime
from repro.errors import FaultPlanError, TransferError
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.storage.lustre import LustreServers

JAC_FRAME = 1_555_200


def _sample(env, at, probe, out):
    """Process: record ``probe()`` into ``out`` at simulated time ``at``."""
    yield env.timeout(at - env.now)
    out.append(probe())


# ---------------------------------------------------------------------------
# apply/revert per kind
# ---------------------------------------------------------------------------


def test_link_flap_window(two_node_cluster):
    cluster = two_node_cluster
    plan = FaultPlan(events=(
        FaultEvent("link_flap", at=1.0, target="1", duration=2.0),
    ))
    injector = FaultInjector(plan, cluster)
    injector.start()
    seen = []
    probe = lambda: cluster.fabric.link_is_down("node01")
    cluster.env.process(_sample(cluster.env, 0.5, probe, seen))
    cluster.env.process(_sample(cluster.env, 2.0, probe, seen))
    cluster.env.process(_sample(cluster.env, 3.5, probe, seen))
    cluster.env.run()
    assert seen == [False, True, False]
    assert injector.applied == 1
    assert injector.reverted == 1


def test_link_flap_stalls_traffic_until_restore(two_node_cluster):
    cluster = two_node_cluster
    env = cluster.env
    plan = FaultPlan(events=(
        FaultEvent("link_flap", at=0.0, target="0", duration=3.0),
    ))
    FaultInjector(plan, cluster).start()

    def pull():
        yield from cluster.fabric.rdma_get("node01", "node00", JAC_FRAME)

    proc = env.process(pull())
    env.run(proc)
    # stalled (not failed) until the restore at t=3, then transferred
    assert env.now > 3.0
    assert cluster.fabric.stats.link_stalls == 1
    assert cluster.fabric.stats.rdma_transfers == 1


def test_ssd_degrade_window(two_node_cluster):
    cluster = two_node_cluster
    ssd = cluster.node(1).ssd
    plan = FaultPlan(events=(
        FaultEvent("ssd_degrade", at=1.0, target="1", duration=1.0,
                   severity=4.0),
    ))
    FaultInjector(plan, cluster).start()
    seen = []
    cluster.env.process(_sample(cluster.env, 1.5, lambda: ssd.degraded, seen))
    cluster.env.run()
    assert seen == [4.0]
    assert ssd.degraded == 1.0  # reverted
    assert cluster.node(0).ssd.degraded == 1.0  # untouched


def test_dyad_crash_window(two_node_cluster):
    cluster = two_node_cluster
    runtime = DyadRuntime(cluster)
    service = runtime.service("node00")
    plan = FaultPlan(events=(
        FaultEvent("dyad_crash", at=1.0, target="node00", duration=0.5),
    ))
    FaultInjector(plan, cluster, dyad=runtime).start()
    seen = []
    cluster.env.process(
        _sample(cluster.env, 1.25, lambda: service.crashed, seen)
    )
    cluster.env.run()
    assert seen == [True]
    assert not service.crashed
    assert service.crashes == 1


def test_crashed_service_refuses_gets(two_node_cluster, run_process):
    cluster = two_node_cluster
    runtime = DyadRuntime(cluster)
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")
    run_process(cluster.env, producer.produce("/dyad/f", JAC_FRAME))
    runtime.service("node00").crash()

    def consume():
        with pytest.raises(TransferError, match="service is down"):
            yield from consumer.consume("/dyad/f")

    run_process(cluster.env, consume())
    assert runtime.service("node00").refused_gets > 0
    assert consumer.transfer_retries == runtime.config.max_transfer_retries


def test_node_crash_takes_link_and_service(two_node_cluster):
    cluster = two_node_cluster
    runtime = DyadRuntime(cluster)
    service = runtime.service("node00")
    plan = FaultPlan(events=(
        FaultEvent("node_crash", at=1.0, target="0", duration=1.0),
    ))
    FaultInjector(plan, cluster, dyad=runtime).start()
    seen = []
    probe = lambda: (cluster.fabric.link_is_down("node00"), service.crashed)
    cluster.env.process(_sample(cluster.env, 1.5, probe, seen))
    cluster.env.run()
    assert seen == [(True, True)]
    assert not cluster.fabric.link_is_down("node00")
    assert not service.crashed


def test_node_crash_without_dyad_is_link_only(two_node_cluster):
    cluster = two_node_cluster
    plan = FaultPlan(events=(
        FaultEvent("node_crash", at=1.0, target="0", duration=1.0),
    ))
    injector = FaultInjector(plan, cluster)
    injector.start()
    cluster.env.run()
    assert injector.applied == injector.reverted == 1


def test_lustre_slowdown_window(two_node_cluster):
    cluster = two_node_cluster
    servers = LustreServers(cluster.env, cluster.fabric)
    plan = FaultPlan(events=(
        FaultEvent("lustre_slowdown", at=1.0, target="", duration=1.0,
                   severity=3.0),
    ))
    FaultInjector(plan, cluster, lustre=servers).start()
    seen = []
    cluster.env.process(
        _sample(cluster.env, 1.5, lambda: servers.mds_factor, seen)
    )
    cluster.env.run()
    assert seen == [3.0]
    assert servers.mds_factor == 1.0


# ---------------------------------------------------------------------------
# eager target validation: bad plans fail before the simulation starts
# ---------------------------------------------------------------------------


def test_node_index_out_of_range_fails_fast(two_node_cluster):
    plan = FaultPlan(events=(
        FaultEvent("link_flap", at=0.0, target="7", duration=1.0),
    ))
    with pytest.raises(FaultPlanError, match="out of range"):
        FaultInjector(plan, two_node_cluster)


def test_unknown_node_id_fails_fast(two_node_cluster):
    plan = FaultPlan(events=(
        FaultEvent("link_flap", at=0.0, target="node99", duration=1.0),
    ))
    with pytest.raises(FaultPlanError, match="no node"):
        FaultInjector(plan, two_node_cluster)


def test_dyad_crash_without_runtime_fails_fast(two_node_cluster):
    plan = FaultPlan(events=(
        FaultEvent("dyad_crash", at=0.0, target="0", duration=1.0),
    ))
    with pytest.raises(FaultPlanError, match="no DYAD runtime"):
        FaultInjector(plan, two_node_cluster)


def test_lustre_slowdown_without_servers_fails_fast(two_node_cluster):
    plan = FaultPlan(events=(
        FaultEvent("lustre_slowdown", at=0.0, duration=1.0, severity=2.0),
    ))
    with pytest.raises(FaultPlanError, match="no Lustre"):
        FaultInjector(plan, two_node_cluster)


def test_bad_lustre_selector_fails_fast(two_node_cluster):
    cluster = two_node_cluster
    servers = LustreServers(cluster.env, cluster.fabric)
    plan = FaultPlan(events=(
        FaultEvent("lustre_slowdown", at=0.0, target="ost3", duration=1.0,
                   severity=2.0),
    ))
    with pytest.raises(Exception, match="bad Lustre target"):
        FaultInjector(plan, cluster, lustre=servers)


# ---------------------------------------------------------------------------
# overlapping / abutting windows compose instead of clobbering
# ---------------------------------------------------------------------------


def test_overlapping_ssd_degrade_windows_compose(two_node_cluster):
    """Two overlapping degradations multiply; restores peel off in order."""
    cluster = two_node_cluster
    ssd = cluster.node(0).ssd
    plan = FaultPlan(events=(
        FaultEvent("ssd_degrade", at=1.0, target="0", duration=4.0,
                   severity=2.0),
        FaultEvent("ssd_degrade", at=2.0, target="0", duration=1.0,
                   severity=3.0),
    ))
    injector = FaultInjector(plan, cluster)
    injector.start()
    seen = []
    for at in (1.5, 2.5, 3.5, 5.5):
        cluster.env.process(
            _sample(cluster.env, at, lambda: ssd.degraded, seen)
        )
    cluster.env.run()
    # alone, both, inner reverted (outer factor back), fully restored
    assert seen == [2.0, 6.0, 2.0, 1.0]
    assert injector.applied == injector.reverted == 2


def test_abutting_ssd_degrade_windows(two_node_cluster):
    """Back-to-back windows end with the SSD healthy, not half-reverted."""
    cluster = two_node_cluster
    ssd = cluster.node(0).ssd
    plan = FaultPlan(events=(
        FaultEvent("ssd_degrade", at=1.0, target="0", duration=1.0,
                   severity=2.0),
        FaultEvent("ssd_degrade", at=2.0, target="0", duration=1.0,
                   severity=4.0),
    ))
    FaultInjector(plan, cluster).start()
    seen = []
    cluster.env.process(_sample(cluster.env, 1.5, lambda: ssd.degraded, seen))
    cluster.env.process(_sample(cluster.env, 2.5, lambda: ssd.degraded, seen))
    cluster.env.run()
    assert seen == [2.0, 4.0]
    assert ssd.degraded == 1.0


def test_dyad_crash_inside_node_crash_restore_ordering(two_node_cluster):
    """The inner window's revert must not resurrect the service early."""
    cluster = two_node_cluster
    runtime = DyadRuntime(cluster)
    service = runtime.service("node00")
    plan = FaultPlan(events=(
        FaultEvent("node_crash", at=1.0, target="0", duration=4.0),
        FaultEvent("dyad_crash", at=2.0, target="0", duration=1.0),
    ))
    FaultInjector(plan, cluster, dyad=runtime).start()
    seen = []
    probe = lambda: (cluster.fabric.link_is_down("node00"), service.crashed)
    for at in (2.5, 3.5, 5.5):
        cluster.env.process(_sample(cluster.env, at, probe, seen))
    cluster.env.run()
    # inside both; after dyad_crash reverts the node_crash still holds
    # the service down; everything restored after the outer window
    assert seen == [(True, True), (True, True), (False, False)]
    # only the outer window's 0->1 transition counts as a crash
    assert service.crashes == 1


def test_overlapping_link_flaps_hold_until_last(two_node_cluster):
    cluster = two_node_cluster
    plan = FaultPlan(events=(
        FaultEvent("link_flap", at=1.0, target="1", duration=3.0),
        FaultEvent("link_flap", at=2.0, target="1", duration=3.0),
    ))
    FaultInjector(plan, cluster).start()
    seen = []
    probe = lambda: cluster.fabric.link_is_down("node01")
    for at in (3.5, 4.5, 5.5):
        cluster.env.process(_sample(cluster.env, at, probe, seen))
    cluster.env.run()
    # first window reverts at t=4 but the second holds the link to t=5
    assert seen == [True, True, False]


def test_overlapping_lustre_slowdowns_compose(two_node_cluster):
    cluster = two_node_cluster
    servers = LustreServers(cluster.env, cluster.fabric)
    plan = FaultPlan(events=(
        FaultEvent("lustre_slowdown", at=1.0, target="mds", duration=4.0,
                   severity=2.0),
        FaultEvent("lustre_slowdown", at=2.0, target="mds", duration=1.0,
                   severity=5.0),
    ))
    FaultInjector(plan, cluster, lustre=servers).start()
    seen = []
    for at in (1.5, 2.5, 3.5, 5.5):
        cluster.env.process(
            _sample(cluster.env, at, lambda: servers.mds_factor, seen)
        )
    cluster.env.run()
    assert seen == [2.0, 10.0, 2.0, 1.0]


# ---------------------------------------------------------------------------
# integrity kinds: routing + windows
# ---------------------------------------------------------------------------


def test_torn_write_window_on_dyad_staging_repairs(two_node_cluster,
                                                   run_process):
    cluster = two_node_cluster
    runtime = DyadRuntime(cluster)
    staging = runtime.service("node00").staging
    producer = runtime.producer("node00", "p")
    plan = FaultPlan(events=(
        FaultEvent("torn_write", at=0.0, target="0", duration=2.0,
                   severity=0.25),
    ))
    FaultInjector(plan, cluster, dyad=runtime).start()
    run_process(cluster.env, producer.produce("/dyad/f", 1000))
    # the produce landed inside the window: staged file is short
    assert staging.is_torn("/dyad/f")
    cluster.env.run()  # window reverts -> DYAD staging repairs
    assert not staging.is_torn("/dyad/f")


def test_torn_write_without_any_fs_fails_fast(two_node_cluster):
    plan = FaultPlan(events=(
        FaultEvent("torn_write", at=0.0, target="0", duration=1.0,
                   severity=0.5),
    ))
    with pytest.raises(FaultPlanError, match="neither a DYAD runtime"):
        FaultInjector(plan, two_node_cluster)


def test_bit_corrupt_window_arms_dyad_runtime(two_node_cluster):
    cluster = two_node_cluster
    runtime = DyadRuntime(cluster)
    plan = FaultPlan(events=(
        FaultEvent("bit_corrupt", at=1.0, target="0", duration=1.0,
                   rate=0.5),
    ))
    FaultInjector(plan, cluster, dyad=runtime).start()
    seen = []
    cluster.env.process(
        _sample(cluster.env, 1.5, lambda: runtime.corrupt_rate, seen)
    )
    cluster.env.run()
    assert seen == [0.5]
    assert runtime.corrupt_rate == 0.0  # disarmed after the window


def test_overlapping_bit_corrupt_rates_combine(two_node_cluster):
    cluster = two_node_cluster
    runtime = DyadRuntime(cluster)
    plan = FaultPlan(events=(
        FaultEvent("bit_corrupt", at=1.0, target="0", duration=2.0,
                   rate=0.5),
        FaultEvent("bit_corrupt", at=1.5, target="0", duration=1.0,
                   rate=0.5),
    ))
    FaultInjector(plan, cluster, dyad=runtime).start()
    seen = []
    cluster.env.process(
        _sample(cluster.env, 2.0, lambda: runtime.corrupt_rate, seen)
    )
    cluster.env.run()
    # independent windows: 1 - (1-0.5)(1-0.5)
    assert seen == [pytest.approx(0.75)]
    assert runtime.corrupt_rate == 0.0


def test_stale_metadata_without_mdm_fails_fast(two_node_cluster):
    from repro.storage.xfs import XFSFileSystem

    fs = XFSFileSystem(two_node_cluster.node(0))
    plan = FaultPlan(events=(
        FaultEvent("stale_metadata", at=0.0, target="0", duration=1.0),
    ))
    with pytest.raises(FaultPlanError, match="no metadata server"):
        FaultInjector(plan, two_node_cluster, fs=fs)


def test_stale_metadata_sets_lustre_lag(two_node_cluster):
    cluster = two_node_cluster
    servers = LustreServers(cluster.env, cluster.fabric)
    plan = FaultPlan(events=(
        FaultEvent("stale_metadata", at=1.0, target="0", duration=1.0,
                   severity=0.125),
    ))
    FaultInjector(plan, cluster, lustre=servers).start()
    seen = []
    cluster.env.process(
        _sample(cluster.env, 1.5, lambda: servers.stale_lag, seen)
    )
    cluster.env.run()
    assert seen == [0.125]
    assert servers.stale_lag == 0.0
