"""Validation and serialization of declarative fault plans."""

import pytest

from repro.errors import FaultPlanError
from repro.faults import FAULT_KINDS, FaultEvent, FaultPlan


# ---------------------------------------------------------------------------
# event validation
# ---------------------------------------------------------------------------


# Valid (severity, rate) examples for kinds with constrained knobs.
_KIND_KNOBS = {
    "torn_write": {"severity": 0.5},          # fraction of bytes landing
    "bit_corrupt": {"severity": 1.0, "rate": 0.25},
    "stale_metadata": {"severity": 0.02},     # metadata lag in seconds
}


def test_every_kind_validates():
    for kind in FAULT_KINDS:
        knobs = _KIND_KNOBS.get(kind, {"severity": 2.0})
        FaultEvent(kind, at=1.0, duration=0.5, **knobs).validate()


def test_unknown_kind_rejected():
    with pytest.raises(FaultPlanError, match="unknown fault kind"):
        FaultEvent("power_surge", at=0.0, duration=1.0).validate()


def test_negative_strike_time_rejected():
    with pytest.raises(FaultPlanError, match="must be >= 0"):
        FaultEvent("link_flap", at=-1.0, duration=1.0).validate()


@pytest.mark.parametrize("duration", [0.0, -0.5])
def test_nonpositive_duration_rejected(duration):
    with pytest.raises(FaultPlanError, match="duration must be positive"):
        FaultEvent("link_flap", at=0.0, duration=duration).validate()


@pytest.mark.parametrize("kind", ["ssd_degrade", "lustre_slowdown"])
def test_degrade_severity_below_one_rejected(kind):
    with pytest.raises(FaultPlanError, match="slowdown factor"):
        FaultEvent(kind, at=0.0, duration=1.0, severity=0.5).validate()


def test_severity_ignored_for_non_degrade_kinds():
    # crash/flap kinds don't interpret severity, so 0.5 is fine there
    FaultEvent("link_flap", at=0.0, duration=1.0, severity=0.5).validate()


def test_until_is_window_end():
    assert FaultEvent("link_flap", at=2.0, duration=0.5).until == 2.5


# ---------------------------------------------------------------------------
# plan validation
# ---------------------------------------------------------------------------


def test_events_stored_sorted_by_strike_time():
    plan = FaultPlan(events=(
        FaultEvent("link_flap", at=3.0, duration=1.0),
        FaultEvent("dyad_crash", at=1.0, duration=1.0),
    ))
    assert [e.at for e in plan.events] == [1.0, 3.0]


def test_invalid_event_rejected_at_plan_construction():
    with pytest.raises(FaultPlanError):
        FaultPlan(events=(FaultEvent("nope", at=0.0, duration=1.0),))


@pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
def test_transfer_fault_rate_bounds(rate):
    with pytest.raises(FaultPlanError, match="transfer_fault_rate"):
        FaultPlan(transfer_fault_rate=rate)


def test_watchdog_budget_bounds():
    with pytest.raises(FaultPlanError, match="max_events"):
        FaultPlan(max_events=0)
    with pytest.raises(FaultPlanError, match="max_time"):
        FaultPlan(max_time=0.0)
    FaultPlan(max_events=1, max_time=1e-9)  # smallest legal budgets


def test_overlapping_same_target_allowed():
    # The injector composes overlapping windows (refcounts/factor
    # products), so the plan no longer rejects them.
    plan = FaultPlan(events=(
        FaultEvent("link_flap", at=0.0, target="0", duration=2.0),
        FaultEvent("link_flap", at=1.0, target="0", duration=1.0),
    ))
    assert len(plan.events) == 2


def test_back_to_back_windows_allowed():
    FaultPlan(events=(
        FaultEvent("link_flap", at=0.0, target="0", duration=1.0),
        FaultEvent("link_flap", at=1.0, target="0", duration=1.0),
    ))


def test_overlap_on_distinct_targets_or_kinds_allowed():
    FaultPlan(events=(
        FaultEvent("link_flap", at=0.0, target="0", duration=2.0),
        FaultEvent("link_flap", at=1.0, target="1", duration=2.0),
        FaultEvent("dyad_crash", at=0.5, target="0", duration=2.0),
    ))


def test_is_trivial():
    assert FaultPlan().is_trivial
    assert FaultPlan(max_events=5).is_trivial  # watchdog-only
    assert not FaultPlan(transfer_fault_rate=0.1).is_trivial
    assert not FaultPlan(
        events=(FaultEvent("link_flap", at=0.0, duration=1.0),)
    ).is_trivial


# ---------------------------------------------------------------------------
# serialization / identity
# ---------------------------------------------------------------------------


PLAN = FaultPlan(
    events=(
        FaultEvent("dyad_crash", at=1.0, target="0", duration=0.5),
        FaultEvent("ssd_degrade", at=2.0, target="1", duration=1.0,
                   severity=4.0),
    ),
    transfer_fault_rate=0.1,
    max_events=10_000,
)


def test_dict_roundtrip():
    assert FaultPlan.from_dict(PLAN.to_dict()) == PLAN


def test_plans_are_hashable_and_repr_stable():
    """Plans participate in the result-cache content hash via repr."""
    clone = FaultPlan.from_dict(PLAN.to_dict())
    assert hash(clone) == hash(PLAN)
    assert repr(clone) == repr(PLAN)
    different = FaultPlan(transfer_fault_rate=0.2)
    assert repr(different) != repr(PLAN)
