"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; this keeps them from rotting.
Each runs as a subprocess exactly as a user would invoke it. The
ensemble-scaling study is the one long-running example and is skipped
unless ``REPRO_TEST_SLOW_EXAMPLES=1``.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"

FAST = [
    "quickstart.py",
    "insitu_analytics_pipeline.py",
    "calltree_analysis.py",
    "timeline_tracing.py",
    "real_machine_comparison.py",
    "steered_simulation.py",
]
SLOW = ["ensemble_scaling_study.py"]


def run_example(name, tmp_path, extra_args=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *extra_args],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,
        env=env,
    )


@pytest.mark.parametrize("name", FAST)
def test_example_runs(name, tmp_path):
    result = run_example(name, tmp_path)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


@pytest.mark.parametrize("name", SLOW)
@pytest.mark.skipif(
    os.environ.get("REPRO_TEST_SLOW_EXAMPLES") != "1",
    reason="slow example; set REPRO_TEST_SLOW_EXAMPLES=1",
)
def test_slow_example_runs(name, tmp_path):
    result = run_example(name, tmp_path)
    assert result.returncode == 0, result.stderr[-2000:]


def test_example_inventory_matches_disk():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST) | set(SLOW)


def test_timeline_tracing_writes_traces(tmp_path):
    result = run_example("timeline_tracing.py", tmp_path,
                         extra_args=[str(tmp_path / "out")])
    assert result.returncode == 0, result.stderr[-2000:]
    traces = list((tmp_path / "out").glob("trace-*.json"))
    assert len(traces) == 3
