"""Unit tests for unit helpers."""

import pytest

from repro import units


def test_size_constants():
    assert units.KiB == 1024
    assert units.MiB == 1024 ** 2
    assert units.GiB == 1024 ** 3
    assert units.GB == 10 ** 9


def test_size_helpers_round():
    assert units.kib(644.21) == round(644.21 * 1024)
    assert units.mib(2.46) == round(2.46 * 1024 ** 2)
    assert units.gib(1) == 1024 ** 3


def test_time_helpers():
    assert units.usec(10) == pytest.approx(1e-5)
    assert units.msec(2) == pytest.approx(2e-3)
    assert units.to_usec(1e-6) == pytest.approx(1.0)
    assert units.to_msec(0.5) == pytest.approx(500.0)


def test_bandwidth_helpers():
    assert units.gb_per_s(4) == 4e9
    assert units.mb_per_s(350) == 3.5e8


def test_transfer_time():
    assert units.transfer_time(1000, 1000.0) == pytest.approx(1.0)
    assert units.transfer_time(1000, 1000.0, latency=0.5) == pytest.approx(1.5)


def test_fmt_bytes():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(units.kib(644.21)) == "644.21 KiB"
    assert units.fmt_bytes(units.mib(28.48)) == "28.48 MiB"
    assert units.fmt_bytes(units.gib(2)) == "2.00 GiB"


def test_fmt_time():
    assert units.fmt_time(5e-7) == "0.50 us"
    assert units.fmt_time(2.5e-3) == "2.50 ms"
    assert units.fmt_time(1.5) == "1.500 s"
    assert units.fmt_time(90) == "1.50 min"
    assert units.fmt_time(-2.5e-3) == "-2.50 ms"
