"""Unit + protocol tests for the DYAD middleware (mdm, rdma, service, client)."""

import pytest

from repro.cluster.corona import corona
from repro.dyad.client import DyadConsumerClient, DyadProducerClient
from repro.dyad.config import DyadConfig
from repro.dyad.mdm import MetadataManager, OwnerRecord
from repro.dyad.rdma import RdmaTransport
from repro.dyad.service import DyadRuntime
from repro.errors import ConfigError, DyadError, TransferError
from repro.perf.caliper import Caliper, Category
from repro.units import kib, mib


@pytest.fixture
def runtime(two_node_cluster):
    return DyadRuntime(two_node_cluster, store_data=True)


def _drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ConfigError):
        DyadConfig(managed_root="relative").validate()
    with pytest.raises(ConfigError):
        DyadConfig(service_capacity=0).validate()
    with pytest.raises(ConfigError):
        DyadConfig(rdma_chunk=0).validate()
    with pytest.raises(ConfigError):
        DyadConfig(client_overhead=-1).validate()


# ---------------------------------------------------------------------------
# metadata manager
# ---------------------------------------------------------------------------


def test_mdm_key_stable_and_namespaced(runtime):
    mdm = runtime.mdm
    assert mdm.key("/dyad/a") == mdm.key("dyad/a")
    assert mdm.key("/dyad/a").startswith("dyad/")
    assert mdm.key("/dyad/a") != mdm.key("/dyad/b")


def test_mdm_publish_fetch_roundtrip(runtime):
    env = runtime.env

    def flow():
        yield from runtime.mdm.publish("node00", "/dyad/f", 123)
        record = yield from runtime.mdm.fetch("node01", "/dyad/f")
        return record

    record = _drive(env, flow())
    assert record == OwnerRecord(path="/dyad/f", owner="node00", size=123)


def test_mdm_peek_untimed(runtime):
    assert runtime.mdm.peek("/dyad/nothing") is None


def test_mdm_wait_blocks(runtime):
    env = runtime.env
    got = []

    def waiter():
        record = yield from runtime.mdm.wait("node01", "/dyad/w")
        got.append((env.now, record.owner))

    def publisher():
        yield env.timeout(2.0)
        yield from runtime.mdm.publish("node00", "/dyad/w", 10)

    env.process(waiter())
    env.process(publisher())
    env.run()
    assert got and got[0][0] >= 2.0 and got[0][1] == "node00"


# ---------------------------------------------------------------------------
# rdma transport
# ---------------------------------------------------------------------------


def test_rdma_collocated_is_free(runtime):
    env = runtime.env
    elapsed = _drive(env, runtime.rdma.get("node00", "node00", mib(10)))
    assert elapsed == 0.0


def test_rdma_remote_scales_with_size(runtime):
    env = runtime.env
    small = _drive(env, runtime.rdma.get("node01", "node00", kib(64)))
    big = _drive(env, runtime.rdma.get("node01", "node00", mib(16)))
    assert big > small * 10


def test_rdma_chunking_splits_large_transfers(two_node_cluster):
    rdma = RdmaTransport(two_node_cluster.fabric, chunk=mib(1))
    env = two_node_cluster.env
    before = two_node_cluster.fabric.stats.rdma_transfers
    _drive(env, rdma.get("node01", "node00", mib(4)))
    assert two_node_cluster.fabric.stats.rdma_transfers - before == 4


def test_rdma_negative_size_rejected(runtime):
    with pytest.raises(TransferError):
        _drive(runtime.env, runtime.rdma.get("node01", "node00", -1))


def test_rdma_zero_chunk_rejected(two_node_cluster):
    with pytest.raises(TransferError):
        RdmaTransport(two_node_cluster.fabric, chunk=0)


# ---------------------------------------------------------------------------
# runtime / service
# ---------------------------------------------------------------------------


def test_runtime_service_per_node(runtime):
    assert set(runtime.services) == {"node00", "node01"}
    with pytest.raises(DyadError):
        runtime.service("node99")


def test_service_staging_rooted(runtime):
    for service in runtime.services.values():
        assert service.staging.exists("/dyad")


def test_serve_get_validates_size(runtime):
    env = runtime.env
    producer = runtime.producer("node00", "p")

    def flow():
        yield from producer.produce("/dyad/f", 100, b"x" * 100)
        # ask for more bytes than were staged
        yield from runtime.service("node00").serve_get("/dyad/f", 200)

    with pytest.raises(DyadError, match="expected"):
        _drive(env, flow())


# ---------------------------------------------------------------------------
# producer / consumer protocol
# ---------------------------------------------------------------------------


def test_produce_outside_managed_root_rejected(runtime):
    producer = runtime.producer("node00", "p")
    with pytest.raises(DyadError, match="managed root"):
        _drive(runtime.env, producer.produce("/other/f", 10))


def test_consume_outside_managed_root_rejected(runtime):
    consumer = runtime.consumer("node01", "c")
    with pytest.raises(DyadError, match="managed root"):
        _drive(runtime.env, consumer.consume("/other/f"))


def test_remote_consume_moves_payload(runtime):
    env = runtime.env
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")
    payload = bytes(range(256)) * 4

    def flow():
        yield from producer.produce("/dyad/f", len(payload), payload)
        record, data = yield from consumer.consume("/dyad/f")
        return record, data

    record, data = _drive(env, flow())
    assert record.owner == "node00"
    assert data == payload
    # the consumer cached the frame locally
    assert runtime.service("node01").staging.exists("/dyad/f")


def test_collocated_consume_skips_transfer(runtime):
    env = runtime.env
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node00", "c")
    before = runtime.cluster.fabric.stats.rdma_transfers

    def flow():
        yield from producer.produce("/dyad/g", 64, b"y" * 64)
        record, data = yield from consumer.consume("/dyad/g")
        return data

    data = _drive(env, flow())
    assert data == b"y" * 64
    assert runtime.cluster.fabric.stats.rdma_transfers == before


def test_consume_blocks_until_produced(runtime):
    env = runtime.env
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")
    times = {}

    def consume():
        yield from consumer.consume("/dyad/late")
        times["consumed"] = env.now

    def produce():
        yield env.timeout(5.0)
        yield from producer.produce("/dyad/late", 32, b"z" * 32)

    env.process(consume())
    env.process(produce())
    env.run()
    assert times["consumed"] >= 5.0
    assert consumer.kvs_waits == 1


def test_multi_protocol_sync_counters(runtime):
    env = runtime.env
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")

    def producer_proc():
        for i in range(4):
            yield env.timeout(1.0)
            yield from producer.produce(f"/dyad/s{i}", 16, b"a" * 16)

    def consumer_proc():
        for i in range(4):
            yield from consumer.consume(f"/dyad/s{i}")
            yield env.timeout(1.0)

    env.process(producer_proc())
    env.process(consumer_proc())
    env.run()
    # first touch used the KVS watch; the rest hit the flock fast path
    assert consumer.kvs_waits == 1
    assert consumer.fast_hits == 3


def test_annotated_consume_builds_expected_tree(runtime):
    env = runtime.env
    caliper = Caliper(clock=lambda: env.now)
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")
    ann = caliper.annotator("cons")

    def flow():
        yield from producer.produce("/dyad/t", 128, b"q" * 128)
        yield from consumer.consume("/dyad/t", annotator=ann)

    _drive(env, flow())
    tree = ann.finish()
    paths = set(tree.flat())
    assert ("dyad_consume",) in paths
    assert ("dyad_consume", "dyad_fetch") in paths
    assert ("dyad_consume", "dyad_get_data") in paths
    assert ("dyad_consume", "dyad_cons_store") in paths
    assert ("read_single_buf",) in paths
    # no KVS wait happened, so no idle region
    assert ("dyad_consume", "dyad_fetch", "dyad_wait_data") not in paths


def test_producer_tree_regions(runtime):
    env = runtime.env
    caliper = Caliper(clock=lambda: env.now)
    producer = runtime.producer("node00", "p")
    ann = caliper.annotator("prod")
    _drive(env, producer.produce("/dyad/pt", 64, b"r" * 64, annotator=ann))
    tree = ann.finish()
    paths = set(tree.flat())
    assert ("dyad_produce",) in paths
    assert ("dyad_produce", "write_single_buf") in paths
    assert ("dyad_produce", "dyad_commit") in paths
    assert tree.find("dyad_produce").category == Category.MOVEMENT


def test_size_only_mode_moves_no_payload(two_node_cluster):
    runtime = DyadRuntime(two_node_cluster, store_data=False)
    env = runtime.env
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")

    def flow():
        yield from producer.produce("/dyad/s", kib(10))
        record, data = yield from consumer.consume("/dyad/s")
        return record, data

    record, data = _drive(env, flow())
    assert record.size == kib(10)
    assert data is None
