"""Tests for DYAD ablation knobs (transport, cache, fsync) and fault injection."""

import pytest

from repro.cluster.corona import corona
from repro.dyad.config import DyadConfig
from repro.dyad.rdma import EagerTransport, RdmaTransport, make_transport
from repro.dyad.service import DyadRuntime
from repro.errors import ConfigError, TransferError
from repro.sim.rng import RngStreams
from repro.units import kib, mib


def _drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def _consume_n(config, n_frames=4, size=mib(8), store_data=False, seed=0):
    """Produce+consume n frames under a config; returns (runtime, cons, mean_t)."""
    cluster = corona(nodes=2, seed=seed)
    runtime = DyadRuntime(cluster, config=config, store_data=store_data)
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")
    times = []

    def flow():
        for i in range(n_frames):
            yield from producer.produce(f"/dyad/f{i}", size)
            start = cluster.env.now
            yield from consumer.consume(f"/dyad/f{i}")
            times.append(cluster.env.now - start)

    _drive(cluster.env, flow())
    return runtime, consumer, sum(times) / len(times)


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------


def test_config_validation_new_fields():
    with pytest.raises(ConfigError):
        DyadConfig(transport="carrier-pigeon").validate()
    with pytest.raises(ConfigError):
        DyadConfig(eager_chunk=0).validate()
    with pytest.raises(ConfigError):
        DyadConfig(fault_rate=1.0).validate()
    with pytest.raises(ConfigError):
        DyadConfig(fault_rate=-0.1).validate()
    with pytest.raises(ConfigError):
        DyadConfig(max_transfer_retries=-1).validate()
    DyadConfig(transport="eager", fault_rate=0.5).validate()


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------


def test_make_transport_dispatch():
    cluster = corona(nodes=2)
    assert isinstance(
        make_transport(DyadConfig(), cluster.fabric), RdmaTransport
    )
    assert isinstance(
        make_transport(DyadConfig(transport="eager"), cluster.fabric),
        EagerTransport,
    )


def test_eager_slower_than_rdma_for_large_frames():
    _, _, t_rdma = _consume_n(DyadConfig(), size=mib(24))
    _, _, t_eager = _consume_n(DyadConfig(transport="eager"), size=mib(24))
    assert t_eager > t_rdma


def test_eager_transfer_timing_components():
    cluster = corona(nodes=2)
    transport = EagerTransport(cluster.fabric, chunk=kib(64), pipeline=4)
    elapsed = _drive(cluster.env, transport.get("node01", "node00", mib(4)))
    # 64 chunks / pipeline 4 = 16 serialized setups on top of the stream
    assert elapsed >= 16 * cluster.fabric.config.message_setup


def test_eager_collocated_free():
    cluster = corona(nodes=2)
    transport = EagerTransport(cluster.fabric, chunk=kib(64))
    assert _drive(cluster.env, transport.get("node00", "node00", mib(1))) == 0.0


def test_transport_validation():
    cluster = corona(nodes=2)
    with pytest.raises(TransferError):
        EagerTransport(cluster.fabric, chunk=0)
    with pytest.raises(TransferError):
        RdmaTransport(cluster.fabric, chunk=mib(1), fault_rate=1.5)


# ---------------------------------------------------------------------------
# cache ablation
# ---------------------------------------------------------------------------


def test_nocache_skips_cons_store_region():
    from repro.perf.caliper import Caliper

    cluster = corona(nodes=2, seed=1)
    runtime = DyadRuntime(cluster, config=DyadConfig(cache_on_consume=False))
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")
    caliper = Caliper(clock=lambda: cluster.env.now)
    ann = caliper.annotator("c")

    def flow():
        yield from producer.produce("/dyad/f", mib(2))
        yield from consumer.consume("/dyad/f", annotator=ann)

    _drive(cluster.env, flow())
    tree = ann.finish()
    assert tree.find("dyad_consume", "dyad_get_data") is not None
    assert tree.find("dyad_consume", "dyad_cons_store") is None
    # no local copy was staged
    assert not runtime.service("node01").staging.exists("/dyad/f")


def test_nocache_preserves_payload_integrity():
    cluster = corona(nodes=2, seed=2)
    runtime = DyadRuntime(
        cluster, config=DyadConfig(cache_on_consume=False), store_data=True,
    )
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")
    payload = b"integrity" * 1000

    def flow():
        yield from producer.produce("/dyad/f", len(payload), payload)
        record, data = yield from consumer.consume("/dyad/f")
        return data

    assert _drive(cluster.env, flow()) == payload


def test_nocache_faster_consumption():
    _, _, t_cache = _consume_n(DyadConfig(), size=mib(16))
    _, _, t_nocache = _consume_n(DyadConfig(cache_on_consume=False), size=mib(16))
    assert t_nocache < t_cache


# ---------------------------------------------------------------------------
# fsync ablation
# ---------------------------------------------------------------------------


def test_fsync_raises_production_cost():
    cluster = corona(nodes=1, seed=3)

    def produce_time(config):
        runtime = DyadRuntime(cluster_for[config], config=config)
        producer = runtime.producer("node00", "p")
        return _drive(
            cluster_for[config].env, producer.produce("/dyad/f", mib(4))
        )

    cluster_for = {
        DyadConfig(): corona(nodes=1, seed=3),
        DyadConfig(fsync_on_produce=True): corona(nodes=1, seed=3),
    }
    plain, fsynced = [produce_time(cfg) for cfg in cluster_for]
    assert fsynced > plain


# ---------------------------------------------------------------------------
# fault injection + retry
# ---------------------------------------------------------------------------


def test_faults_injected_and_retried():
    runtime, consumer, _ = _consume_n(
        DyadConfig(fault_rate=0.3, max_transfer_retries=10),
        n_frames=8, size=kib(512), seed=7,
    )
    assert runtime.rdma.faults_injected > 0
    assert consumer.transfer_retries == runtime.rdma.faults_injected


def test_faults_cost_time_but_all_frames_arrive():
    _, cons_ok, t_clean = _consume_n(DyadConfig(), n_frames=8, seed=9)
    _, cons_faulty, t_faulty = _consume_n(
        DyadConfig(fault_rate=0.4, max_transfer_retries=8),
        n_frames=8, seed=9,
    )
    assert t_faulty > t_clean
    assert cons_faulty.fast_hits + cons_faulty.kvs_waits == 8


def test_retry_budget_exhaustion_propagates():
    with pytest.raises(TransferError):
        _consume_n(
            DyadConfig(fault_rate=0.95, max_transfer_retries=1),
            n_frames=4, seed=11,
        )


def test_zero_fault_rate_never_fails():
    runtime, consumer, _ = _consume_n(DyadConfig(), n_frames=6, seed=13)
    assert runtime.rdma.faults_injected == 0
    assert consumer.transfer_retries == 0


def test_fault_determinism_per_seed():
    r1, c1, t1 = _consume_n(
        DyadConfig(fault_rate=0.3, max_transfer_retries=6), n_frames=6, seed=21,
    )
    r2, c2, t2 = _consume_n(
        DyadConfig(fault_rate=0.3, max_transfer_retries=6), n_frames=6, seed=21,
    )
    assert r1.rdma.faults_injected == r2.rdma.faults_injected
    assert t1 == t2


# ---------------------------------------------------------------------------
# staging cleanup
# ---------------------------------------------------------------------------


def test_unlink_after_consume_bounds_staging():
    cluster = corona(nodes=2, seed=5)
    runtime = DyadRuntime(
        cluster, config=DyadConfig(unlink_after_consume=True),
    )
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")
    consumer_ssd = cluster.node(1).ssd

    def flow():
        for i in range(5):
            yield from producer.produce(f"/dyad/f{i}", mib(1))
            yield from consumer.consume(f"/dyad/f{i}")

    _drive(cluster.env, flow())
    # consumer staging fully reclaimed after each read
    assert consumer_ssd.used == 0
    # the producer's originals remain (it owns the data)
    assert cluster.node(0).ssd.used == 5 * mib(1)
    for i in range(5):
        assert not runtime.service("node01").staging.exists(f"/dyad/f{i}")
        assert runtime.service("node00").staging.exists(f"/dyad/f{i}")


def test_default_keeps_cached_copies():
    cluster = corona(nodes=2, seed=5)
    runtime = DyadRuntime(cluster)
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")

    def flow():
        yield from producer.produce("/dyad/f", mib(2))
        yield from consumer.consume("/dyad/f")

    _drive(cluster.env, flow())
    assert cluster.node(1).ssd.used == mib(2)


def test_unlink_never_touches_collocated_producer_copy():
    cluster = corona(nodes=1, seed=5)
    runtime = DyadRuntime(
        cluster, config=DyadConfig(unlink_after_consume=True),
    )
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node00", "c")

    def flow():
        yield from producer.produce("/dyad/f", mib(1))
        yield from consumer.consume("/dyad/f")

    _drive(cluster.env, flow())
    # collocated: the consumer read the producer's own copy — still there
    assert runtime.service("node00").staging.exists("/dyad/f")
