"""Tests for the real-threads local backend (real files, real locks)."""

import threading
import time

import pytest

from repro.backends.local import LocalDyad, LocalKVS, run_local_workflow
from repro.errors import DyadError, KeyNotFound
from repro.perf.caliper import Caliper


# ---------------------------------------------------------------------------
# LocalKVS
# ---------------------------------------------------------------------------


def test_kvs_commit_lookup():
    kvs = LocalKVS()
    kvs.commit("k", 1)
    assert kvs.lookup("k") == 1
    assert len(kvs) == 1


def test_kvs_lookup_missing():
    with pytest.raises(KeyNotFound):
        LocalKVS().lookup("nope")


def test_kvs_wait_blocks_until_commit():
    kvs = LocalKVS()
    got = []

    def waiter():
        got.append(kvs.wait_for("late", timeout=5.0))

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.05)
    kvs.commit("late", "value")
    thread.join(timeout=5.0)
    assert got == ["value"]


def test_kvs_wait_timeout():
    with pytest.raises(TimeoutError):
        LocalKVS().wait_for("never", timeout=0.05)


def test_kvs_wait_existing_returns_immediately():
    kvs = LocalKVS()
    kvs.commit("k", 7)
    assert kvs.wait_for("k", timeout=0.01) == 7


# ---------------------------------------------------------------------------
# LocalDyad
# ---------------------------------------------------------------------------


def test_staging_dirs_created(tmp_path):
    dyad = LocalDyad(tmp_path, nodes=3)
    for node in ("node00", "node01", "node02"):
        assert (tmp_path / node).is_dir()
    with pytest.raises(DyadError):
        dyad.staging_dir("node99")


def test_nodes_validation(tmp_path):
    with pytest.raises(DyadError):
        LocalDyad(tmp_path, nodes=0)


def test_produce_consume_roundtrip_remote(tmp_path):
    dyad = LocalDyad(tmp_path, nodes=2)
    payload = b"frame-bytes" * 100
    dyad.produce("node00", "p0/f0.mdfr", payload)
    got = dyad.consume("node01", "p0/f0.mdfr")
    assert got == payload
    # consumer cached a local copy
    assert (tmp_path / "node01" / "p0" / "f0.mdfr").exists()


def test_consume_collocated_no_copy(tmp_path):
    dyad = LocalDyad(tmp_path, nodes=2)
    dyad.produce("node00", "f.mdfr", b"abc")
    got = dyad.consume("node00", "f.mdfr")
    assert got == b"abc"


def test_consume_blocks_for_producer_thread(tmp_path):
    dyad = LocalDyad(tmp_path, nodes=2)
    results = []

    def consumer():
        results.append(dyad.consume("node01", "late.mdfr", timeout=5.0))

    thread = threading.Thread(target=consumer)
    thread.start()
    time.sleep(0.05)
    dyad.produce("node00", "late.mdfr", b"worth-the-wait")
    thread.join(timeout=5.0)
    assert results == [b"worth-the-wait"]


def test_consume_timeout(tmp_path):
    dyad = LocalDyad(tmp_path, nodes=2)
    with pytest.raises(TimeoutError):
        dyad.consume("node01", "never.mdfr", timeout=0.05)


def test_annotation_collected(tmp_path):
    dyad = LocalDyad(tmp_path, nodes=2)
    caliper = Caliper(clock=time.monotonic)
    ann = caliper.annotator("c")
    dyad.produce("node00", "a.mdfr", b"xyz")
    dyad.consume("node01", "a.mdfr", annotator=ann)
    tree = ann.finish()
    assert tree.find("dyad_consume", "dyad_get_data") is not None
    assert tree.find("read_single_buf").time >= 0


# ---------------------------------------------------------------------------
# run_local_workflow
# ---------------------------------------------------------------------------


def test_workflow_end_to_end_integrity(tmp_path):
    def frame_source(pair, k):
        return bytes([pair, k]) * 500

    def check(pair, k, payload):
        return payload == bytes([pair, k]) * 500

    report = run_local_workflow(
        tmp_path, frame_source, frames=6, pairs=3, consumer_check=check,
    )
    assert report.ok, report.errors
    assert report.checksums_ok
    assert report.elapsed > 0


def test_workflow_reports_consumer_check_failures(tmp_path):
    report = run_local_workflow(
        tmp_path,
        frame_source=lambda pair, k: b"data",
        frames=2,
        pairs=1,
        consumer_check=lambda pair, k, payload: False,
    )
    assert not report.checksums_ok
    assert not report.ok


def test_workflow_collects_producer_exceptions(tmp_path):
    def bad_source(pair, k):
        raise RuntimeError("generator exploded")

    report = run_local_workflow(tmp_path, bad_source, frames=1, pairs=1,
                                consume_timeout=0.2)
    assert report.errors
    assert not report.ok


def test_workflow_caliper_trees_per_process(tmp_path):
    report = run_local_workflow(
        tmp_path, lambda pair, k: b"x" * 64, frames=3, pairs=2,
    )
    trees = report.caliper.trees()
    assert set(trees) == {"producer0", "producer1", "consumer0", "consumer1"}
    assert trees["consumer0"].find("dyad_consume").count == 3
