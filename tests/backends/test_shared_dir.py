"""Tests for the shared-directory traditional path and the real comparison."""

import threading
import time

import pytest

from repro.backends.local import LocalSharedDir, run_local_comparison
from repro.errors import DyadError
from repro.perf.caliper import Caliper


def test_produce_then_consume(tmp_path):
    shared = LocalSharedDir(tmp_path)
    shared.produce("f0.mdfr", b"payload")
    assert shared.consume("f0.mdfr", timeout=1.0) == b"payload"


def test_poll_interval_validation(tmp_path):
    with pytest.raises(DyadError):
        LocalSharedDir(tmp_path, poll_interval=0)


def test_atomic_publish_no_partial_reads(tmp_path):
    """Consumers never observe the .part file."""
    shared = LocalSharedDir(tmp_path, poll_interval=0.001)
    payload = b"x" * 500_000
    results = []

    def consumer():
        results.append(shared.consume("big.mdfr", timeout=5.0))

    thread = threading.Thread(target=consumer)
    thread.start()
    time.sleep(0.02)
    shared.produce("big.mdfr", payload)
    thread.join(timeout=5.0)
    assert results == [payload]
    assert not (tmp_path / "big.mdfr.part").exists()


def test_consume_timeout(tmp_path):
    shared = LocalSharedDir(tmp_path, poll_interval=0.005)
    with pytest.raises(TimeoutError):
        shared.consume("never.mdfr", timeout=0.05)


def test_annotation_regions(tmp_path):
    shared = LocalSharedDir(tmp_path, poll_interval=0.001)
    caliper = Caliper(clock=time.monotonic)
    pann = caliper.annotator("p")
    cann = caliper.annotator("c")

    def consumer():
        shared.consume("a.mdfr", cann, timeout=5.0)

    thread = threading.Thread(target=consumer)
    thread.start()
    time.sleep(0.03)
    shared.produce("a.mdfr", b"abc", pann)
    thread.join(timeout=5.0)
    ptree, ctree = pann.finish(), cann.finish()
    assert ptree.find("write_single_buf") is not None
    assert ctree.find("poll_sync").category == "idle"
    assert ctree.find("poll_sync").time >= 0.02
    assert ctree.find("read_single_buf") is not None


def test_comparison_both_paths_complete(tmp_path):
    reports = run_local_comparison(
        tmp_path,
        frame_source=lambda pair, k: bytes([pair, k]) * 1000,
        frames=5,
        pairs=2,
        produce_period=0.01,
        poll_interval=0.002,
    )
    assert set(reports) == {"dyad", "shared-dir"}
    for name, report in reports.items():
        assert report.ok, (name, report.errors)
        assert report.frames == 5 and report.pairs == 2


def test_comparison_dyad_has_lower_sync_latency(tmp_path):
    """DYAD's watch wakes consumers immediately; polling pays its interval."""
    reports = run_local_comparison(
        tmp_path,
        frame_source=lambda pair, k: b"z" * 4096,
        frames=6,
        pairs=1,
        produce_period=0.02,
        poll_interval=0.015,
    )
    def idle(report):
        total = 0.0
        for tree in report.caliper.trees().values():
            total += tree.total_by_category("idle")
        return total

    # both idle (waiting for production), but polling's discovery
    # granularity adds latency on top
    assert idle(reports["shared-dir"]) > 0
    assert idle(reports["dyad"]) > 0
