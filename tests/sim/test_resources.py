"""Unit tests for Resource, Store, Signal, and SharedBandwidth."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Environment
from repro.sim.resources import Resource, SharedBandwidth, Signal, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def test_resource_grants_up_to_capacity(env):
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2 and res.queue_len == 1


def test_resource_release_wakes_fifo(env):
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    third = res.request()
    res.release(first)
    assert second.triggered and not third.triggered


def test_resource_release_queued_request_cancels(env):
    res = Resource(env, capacity=1)
    held = res.request()
    queued = res.request()
    res.release(queued)  # cancel while queued
    assert res.queue_len == 0
    res.release(held)
    assert res.count == 0


def test_resource_double_release_rejected(env):
    res = Resource(env, capacity=1)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_capacity_validation(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_acquire_reports_queue_wait(env):
    res = Resource(env, capacity=1)
    waits = {}

    def worker(name):
        waited = yield from res.acquire(2.0)
        waits[name] = waited

    env.process(worker("first"))
    env.process(worker("second"))
    env.run()
    assert waits["first"] == 0.0
    assert waits["second"] == 2.0
    assert env.now == 4.0


def test_acquire_releases_on_failure(env):
    res = Resource(env, capacity=1)

    def failer():
        try:
            yield from res.acquire(1.0)
        finally:
            pass

    def normal():
        yield from res.acquire(1.0)

    # interrupt the holder mid-service; the resource must be released
    holder = env.process(failer())

    def attacker():
        yield env.timeout(0.5)
        holder.interrupt()

    env.process(attacker())
    env.process(normal())
    with pytest.raises(Exception):
        env.run()  # Interrupt propagates out of failer
    # but the slot was released by acquire's finally
    assert res.count <= 1


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_put_then_get(env):
    store = Store(env)
    store.put("item")
    got = store.get()
    assert got.triggered and got.value == "item"
    assert len(store) == 0


def test_store_get_blocks_until_put(env):
    store = Store(env)
    got = []

    def getter():
        item = yield store.get()
        got.append((env.now, item))

    def putter():
        yield env.timeout(2.0)
        store.put("late")

    env.process(getter())
    env.process(putter())
    env.run()
    assert got == [(2.0, "late")]


def test_store_fifo_order(env):
    store = Store(env)
    store.put(1)
    store.put(2)
    assert store.get().value == 1
    assert store.get().value == 2


def test_store_getters_fifo(env):
    store = Store(env)
    order = []

    def getter(name):
        item = yield store.get()
        order.append((name, item))

    env.process(getter("a"))
    env.process(getter("b"))

    def putter():
        yield env.timeout(1.0)
        store.put(1)
        store.put(2)

    env.process(putter())
    env.run()
    assert order == [("a", 1), ("b", 2)]


# ---------------------------------------------------------------------------
# Signal
# ---------------------------------------------------------------------------


def test_signal_wakes_all_waiters(env):
    sig = Signal(env)
    got = []

    def waiter(name):
        value = yield sig.wait()
        got.append((name, value))

    env.process(waiter("a"))
    env.process(waiter("b"))

    def firer():
        yield env.timeout(1.0)
        assert sig.fire("v") == 2

    env.process(firer())
    env.run()
    assert sorted(got) == [("a", "v"), ("b", "v")]


def test_signal_fire_once_latches(env):
    sig = Signal(env)
    got = []

    def late_waiter():
        yield env.timeout(5.0)
        value = yield sig.wait()
        got.append((env.now, value))

    def firer():
        yield env.timeout(1.0)
        sig.fire_once("latched")

    env.process(late_waiter())
    env.process(firer())
    env.run()
    assert got == [(5.0, "latched")]
    assert sig.latched


def test_signal_double_latch_rejected(env):
    sig = Signal(env)
    sig.fire_once()
    with pytest.raises(SimulationError):
        sig.fire_once()


def test_signal_refires_for_new_waiters(env):
    sig = Signal(env)
    got = []

    def waiter(delay):
        yield env.timeout(delay)
        value = yield sig.wait()
        got.append(value)

    def firer():
        yield env.timeout(1.0)
        sig.fire("first")
        yield env.timeout(2.0)
        sig.fire("second")

    env.process(waiter(0.5))
    env.process(waiter(1.5))
    env.process(firer())
    env.run()
    assert got == ["first", "second"]


# ---------------------------------------------------------------------------
# SharedBandwidth
# ---------------------------------------------------------------------------


def _move(env, chan, nbytes, delay=0.0, log=None, name=None):
    def proc():
        if delay:
            yield env.timeout(delay)
        yield chan.transfer(nbytes)
        if log is not None:
            log[name] = env.now

    return env.process(proc())


def test_single_flow_full_bandwidth(env):
    chan = SharedBandwidth(env, bandwidth=100.0)
    done = {}
    _move(env, chan, 50, log=done, name="x")
    env.run()
    assert done["x"] == pytest.approx(0.5)


def test_two_flows_share_equally(env):
    chan = SharedBandwidth(env, bandwidth=100.0)
    done = {}
    _move(env, chan, 50, log=done, name="a")
    _move(env, chan, 50, log=done, name="b")
    env.run()
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(1.0)


def test_staggered_flows_fluid_model(env):
    chan = SharedBandwidth(env, bandwidth=10.0)
    done = {}
    _move(env, chan, 10, log=done, name="x")
    _move(env, chan, 10, delay=0.5, log=done, name="y")
    env.run()
    # x: 5 bytes alone (0.5s), 5 bytes shared (1.0s) -> 1.5s
    # y: 5 bytes shared (1.0s), 5 bytes alone (0.5s) -> 2.0s
    assert done["x"] == pytest.approx(1.5)
    assert done["y"] == pytest.approx(2.0)


def test_per_flow_cap_limits_single_flow(env):
    chan = SharedBandwidth(env, bandwidth=100.0, per_flow_cap=10.0)
    done = {}
    _move(env, chan, 10, log=done, name="x")
    env.run()
    assert done["x"] == pytest.approx(1.0)


def test_per_flow_cap_many_flows_use_aggregate(env):
    chan = SharedBandwidth(env, bandwidth=30.0, per_flow_cap=10.0)
    done = {}
    for i in range(6):
        _move(env, chan, 10, log=done, name=i)
    env.run()
    # 6 flows on 30 B/s aggregate -> 5 B/s each -> 2 s
    assert all(done[i] == pytest.approx(2.0) for i in range(6))


def test_zero_byte_transfer_completes_immediately(env):
    chan = SharedBandwidth(env, bandwidth=10.0)
    ev = chan.transfer(0)
    assert ev.triggered


def test_negative_transfer_rejected(env):
    chan = SharedBandwidth(env, bandwidth=10.0)
    with pytest.raises(ValueError):
        chan.transfer(-1)


def test_bandwidth_validation(env):
    with pytest.raises(ValueError):
        SharedBandwidth(env, bandwidth=0)
    with pytest.raises(ValueError):
        SharedBandwidth(env, bandwidth=10, per_flow_cap=0)


def test_bytes_moved_accounting(env):
    chan = SharedBandwidth(env, bandwidth=100.0)
    _move(env, chan, 30)
    _move(env, chan, 70)
    env.run()
    assert chan.bytes_moved == pytest.approx(100.0)
    assert chan.active_flows == 0


def test_tiny_residue_does_not_hang(env):
    """Regression: sub-ULP residues once caused an infinite zero-delay loop."""
    chan = SharedBandwidth(env, bandwidth=3.0)
    done = {}
    # sizes chosen to produce non-terminating binary fractions
    _move(env, chan, 1e-7, log=done, name="t")
    _move(env, chan, 0.1, delay=1e-9, log=done, name="u")
    env.run()
    assert "t" in done and "u" in done


def test_current_rate_reporting(env):
    chan = SharedBandwidth(env, bandwidth=100.0)
    assert chan.current_rate() == float("inf")
    chan.transfer(1000)
    assert chan.current_rate() == pytest.approx(100.0)
    chan.transfer(1000)
    assert chan.current_rate() == pytest.approx(50.0)


def test_set_bandwidth_with_zero_flows_active(env):
    """Mutating an idle channel is safe and governs the next admission.

    The fault layer degrades/restores links whether or not traffic is in
    flight; an idle-channel mutation must neither raise nor schedule a
    spurious wake-up, and the new capacity must apply to later flows.
    """
    chan = SharedBandwidth(env, bandwidth=100.0)
    chan.set_bandwidth(10.0)  # no flows in flight
    done = {}
    _move(env, chan, 10, delay=1.0, log=done, name="x")
    env.run()
    assert done["x"] == pytest.approx(2.0)
    assert chan.active_flows == 0
    # and again after the channel drained back to idle
    chan.set_bandwidth(40.0)
    done2 = {}
    _move(env, chan, 20, log=done2, name="y")
    env.run()
    assert done2["y"] == pytest.approx(env.now)


def test_per_flow_cap_change_between_epochs(env):
    """Cap changes between service epochs govern subsequent flows.

    ``per_flow_cap`` is a segmenting property: assigning it advances the
    virtual clock first (like ``set_bandwidth``), so between-epoch changes
    simply govern the next epoch's flows at the new ceiling.
    """
    chan = SharedBandwidth(env, bandwidth=100.0, per_flow_cap=10.0)
    done = {}
    _move(env, chan, 100, log=done, name="x")
    env.run()
    assert done["x"] == pytest.approx(10.0)  # 100 B at 10 B/s
    # loosen while idle: the next epoch's flow runs at the new cap
    chan.per_flow_cap = 50.0
    start = env.now
    done2 = {}
    _move(env, chan, 100, log=done2, name="y")
    env.run()
    assert done2["y"] - start == pytest.approx(2.0)  # 100 B at 50 B/s
    # lift entirely: full channel bandwidth from the next epoch on
    chan.per_flow_cap = None
    start = env.now
    done3 = {}
    _move(env, chan, 100, log=done3, name="z")
    env.run()
    assert done3["z"] - start == pytest.approx(1.0)  # 100 B at 100 B/s


def test_per_flow_cap_assignment_mid_epoch_segments(env):
    """Mid-epoch cap assignment prices the elapsed interval at the OLD cap.

    The setter advances the virtual clock *before* mutating — the same
    discipline as ``set_bandwidth`` and the fluid tier's
    ``FluidLink.per_flow_cap`` — so a cap change never retroactively
    re-prices service already rendered. Historically this was a plain
    attribute and the elapsed epoch was re-priced at the *new* cap at the
    next rating event (the flow below would have "moved" 5 s x 50 B/s =
    250 virtual units and completed instantly at t=5 despite running
    under a 10 B/s cap in real time).
    """
    chan = SharedBandwidth(env, bandwidth=100.0, per_flow_cap=10.0)
    done = {}
    _move(env, chan, 100, log=done, name="x")

    def controller():
        yield env.timeout(5.0)
        chan.per_flow_cap = 50.0  # segments: 0..5 s stays priced at 10 B/s
        _move(env, chan, 50, log=done, name="y")

    env.process(controller())
    env.run()
    # x: 50 B at 10 B/s (0..5 s), then 50 B at min(100/2, 50) = 50 B/s
    # shared with y -> completes at t = 6; y moves its 50 B in the same
    # shared second.
    assert done["x"] == pytest.approx(6.0)
    assert done["y"] == pytest.approx(6.0)


def test_per_flow_cap_setter_validates(env):
    chan = SharedBandwidth(env, bandwidth=100.0, per_flow_cap=10.0)
    with pytest.raises(ValueError):
        chan.per_flow_cap = 0.0
    with pytest.raises(ValueError):
        chan.per_flow_cap = -1.0
    assert chan.per_flow_cap == 10.0
    chan.per_flow_cap = None  # lifting the cap entirely is legal
    assert chan.per_flow_cap is None
