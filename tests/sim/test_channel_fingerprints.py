"""Regression: experiment outcomes across the SharedBandwidth rewrite.

The virtual-time processor-sharing channel (see ``docs/performance.md``)
must reproduce the *exact* event timelines of the kernel it replaced:
the fixture in ``fixtures/kernel_fingerprints.json`` was generated with
the pre-rewrite O(n²) channel, and every representative cell below —
fig7 fan-out, fig8 model scaling (STMV), fig5's contended single-node
XFS, and the resilience grid's faulty runs (mid-stream ``set_bandwidth``
re-timing) — must still hash to the same ``result_fingerprint``.

``system_stats`` keys added *after* the fixture was recorded (e.g. the
kernel-health counters) are filtered out before hashing, so the digest
covers exactly what the pre-rewrite kernel measured: makespan, the full
producer/consumer call trees, and the original counters, all rendered
with ``float.hex``. A mismatch therefore means the channel rewrite
changed a simulated timeline — not that someone added a counter.

Regenerate the fixture (only when a timeline change is *intended*)::

    PYTHONPATH=src python tests/sim/test_channel_fingerprints.py
"""

import json
import pathlib

import pytest

from repro.dyad.config import DyadConfig
from repro.experiments.parallel import result_fingerprint
from repro.experiments.resilience import build_plan
from repro.md.models import JAC, MODELS
from repro.workflow.runner import run_workflow
from repro.workflow.spec import Placement, System, WorkflowSpec

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "kernel_fingerprints.json"

STMV = MODELS[-1]


def _resilience_task(system: System, intensity: float = 0.5):
    placement = (Placement.SINGLE_NODE if system is System.XFS
                 else Placement.SPLIT)
    spec = WorkflowSpec(system=system, frames=8, pairs=4,
                        placement=placement)
    plan, dyad_config = build_plan(system, intensity, spec)
    kwargs = {"spec": spec, "seed": 11, "jitter_cv": 0.05,
              "fault_plan": plan}
    if dyad_config is not None:
        kwargs["dyad_config"] = dyad_config
    return kwargs


def tasks():
    """Representative cells, keyed by name. Kept cheap (<1 s each)."""
    return {
        "fig7_dyad_jac_8pairs": dict(
            spec=WorkflowSpec(system=System.DYAD, model=JAC,
                              stride=JAC.paper_stride, frames=8, pairs=8,
                              placement=Placement.SPLIT),
            seed=7, jitter_cv=0.05),
        "fig7_lustre_jac_8pairs": dict(
            spec=WorkflowSpec(system=System.LUSTRE, model=JAC,
                              stride=JAC.paper_stride, frames=8, pairs=8,
                              placement=Placement.SPLIT),
            seed=7, jitter_cv=0.05),
        "fig8_dyad_stmv_16pairs": dict(
            spec=WorkflowSpec(system=System.DYAD, model=STMV,
                              stride=STMV.paper_stride, frames=4, pairs=16,
                              placement=Placement.SPLIT),
            seed=3, jitter_cv=0.05),
        "fig8_lustre_stmv_16pairs": dict(
            spec=WorkflowSpec(system=System.LUSTRE, model=STMV,
                              stride=STMV.paper_stride, frames=4, pairs=16,
                              placement=Placement.SPLIT),
            seed=3, jitter_cv=0.05),
        "fig5_xfs_single_node_4pairs": dict(
            spec=WorkflowSpec(system=System.XFS, frames=8, pairs=4,
                              placement=Placement.SINGLE_NODE),
            seed=5, jitter_cv=0.05),
        "resilience_dyad_i50": _resilience_task(System.DYAD),
        "resilience_xfs_i50": _resilience_task(System.XFS),
        "resilience_lustre_i50": _resilience_task(System.LUSTRE),
    }


def _run(name):
    kwargs = dict(tasks()[name])
    spec = kwargs.pop("spec")
    return run_workflow(spec, **kwargs)


def _frozen_fingerprint(result, stats_keys):
    """Fingerprint over the pre-rewrite ``system_stats`` key set only."""
    missing = [k for k in stats_keys if k not in result.system_stats]
    assert not missing, f"recorded stats keys disappeared: {missing}"
    result.system_stats = {k: result.system_stats[k] for k in stats_keys}
    return result_fingerprint(result)


@pytest.fixture(scope="module")
def recorded():
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("name", sorted(tasks()))
def test_fingerprint_unchanged_vs_prerewrite_kernel(name, recorded):
    entry = recorded[name]
    result = _run(name)
    assert result.makespan.hex() == entry["makespan_hex"], (
        f"{name}: makespan drifted from the pre-rewrite kernel "
        f"({float.fromhex(entry['makespan_hex'])} -> {result.makespan})"
    )
    assert _frozen_fingerprint(result, entry["stats_keys"]) == \
        entry["fingerprint"], (
        f"{name}: full-result fingerprint changed vs the pre-rewrite "
        "kernel (call trees or counters moved)"
    )


def _refresh():
    entries = {}
    for name in sorted(tasks()):
        result = _run(name)
        stats_keys = sorted(result.system_stats)
        entries[name] = {
            "makespan_hex": result.makespan.hex(),
            "stats_keys": stats_keys,
            "fingerprint": _frozen_fingerprint(result, stats_keys),
        }
        print(f"{name}: {entries[name]['fingerprint'][:16]}…")
    FIXTURE.parent.mkdir(exist_ok=True)
    FIXTURE.write_text(json.dumps(entries, indent=1, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    _refresh()
