"""Unit tests for the DES kernel: events, processes, conditions, run()."""

import pytest

from repro.errors import DeadlockError, Interrupt, SimulationError
from repro.sim.core import AllOf, AnyOf, Environment, Event, Timeout


def test_clock_starts_at_zero(env):
    assert env.now == 0.0


def test_clock_custom_start():
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock(env):
    def proc():
        yield env.timeout(2.5)

    env.process(proc())
    env.run()
    assert env.now == 2.5


def test_negative_timeout_rejected(env):
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value(env):
    def proc():
        value = yield env.timeout(1.0, value="payload")
        return value

    p = env.process(proc())
    env.run()
    assert p.value == "payload"


def test_process_return_value(env):
    def proc():
        yield env.timeout(1.0)
        return 42

    p = env.process(proc())
    env.run()
    assert p.value == 42
    assert not p.is_alive


def test_processes_interleave_in_time_order(env):
    order = []

    def proc(name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc("late", 2.0))
    env.process(proc("early", 1.0))
    env.run()
    assert order == ["early", "late"]


def test_simultaneous_events_fifo_by_schedule_order(env):
    order = []

    def proc(name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ("a", "b", "c"):
        env.process(proc(name))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_waits_on_process(env):
    def inner():
        yield env.timeout(3.0)
        return "inner-result"

    def outer():
        result = yield env.process(inner())
        return result

    p = env.process(outer())
    env.run()
    assert p.value == "inner-result"
    assert env.now == 3.0


def test_event_succeed_wakes_waiter(env):
    gate = env.event()
    got = []

    def waiter():
        value = yield gate
        got.append((env.now, value))

    def firer():
        yield env.timeout(4.0)
        gate.succeed("go")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert got == [(4.0, "go")]


def test_event_fail_raises_in_waiter(env):
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer():
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(firer())
    env.run()
    assert caught == ["boom"]


def test_double_trigger_rejected(env):
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_fail_requires_exception_instance(env):
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_yield_non_event_raises_inside_process(env):
    caught = []

    def proc():
        try:
            yield 42
        except SimulationError as exc:
            caught.append(str(exc))

    env.process(proc())
    env.run()
    assert caught and "non-event" in caught[0]


def test_uncaught_process_exception_propagates(env):
    def proc():
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_run_until_time_stops_exactly(env):
    ticks = []

    def ticker():
        while True:
            yield env.timeout(1.0)
            ticks.append(env.now)

    env.process(ticker())
    env.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_until_event_returns_value(env):
    def proc():
        yield env.timeout(2.0)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"


def test_run_backwards_rejected(env):
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_deadlock_detected(env):
    gate = env.event()  # nobody will ever fire it

    def waiter():
        yield gate

    p = env.process(waiter())
    with pytest.raises(DeadlockError):
        env.run(until=p)


def test_step_on_empty_heap_raises(env):
    with pytest.raises(DeadlockError):
        env.step()


def test_peek_reports_next_event_time(env):
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_is_inf(env):
    assert env.peek() == float("inf")


def test_interrupt_delivers_cause(env):
    caught = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            caught.append((env.now, exc.cause))

    def attacker(proc):
        yield env.timeout(2.0)
        proc.interrupt(cause="stop now")

    victim_proc = env.process(victim())
    env.process(attacker(victim_proc))
    env.run()
    assert caught == [(2.0, "stop now")]


def test_interrupt_finished_process_rejected(env):
    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_continue(env):
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def attacker(proc):
        yield env.timeout(5.0)
        proc.interrupt()

    env.process(attacker(env.process(victim())))
    env.run()
    assert log == [6.0]


def test_all_of_waits_for_all(env):
    t1 = env.timeout(1.0, value="a")
    t2 = env.timeout(3.0, value="b")

    def proc():
        result = yield env.all_of([t1, t2])
        return sorted(result.values())

    p = env.process(proc())
    env.run()
    assert env.now == 3.0
    assert p.value == ["a", "b"]


def test_all_of_empty_fires_immediately(env):
    def proc():
        yield env.all_of([])
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 0.0


def test_all_of_fails_fast(env):
    gate = env.event()

    def firer():
        yield env.timeout(1.0)
        gate.fail(RuntimeError("broken"))

    def proc():
        with pytest.raises(RuntimeError):
            yield env.all_of([gate, env.timeout(50.0)])
        return env.now

    env.process(firer())
    p = env.process(proc())
    env.run()
    assert p.value == 1.0


def test_any_of_fires_on_first(env):
    t1 = env.timeout(1.0, value="fast")
    t2 = env.timeout(9.0, value="slow")

    def proc():
        result = yield env.any_of([t1, t2])
        return list(result.values())

    p = env.process(proc())
    env.run(until=p)
    assert p.value == ["fast"]
    assert env.now == 1.0


def test_condition_with_already_processed_events(env):
    t = env.timeout(1.0, value="x")
    env.run(until=2.0)

    def proc():
        result = yield env.all_of([t])
        return list(result.values())

    p = env.process(proc())
    env.run()
    assert p.value == ["x"]


def test_event_from_other_environment_rejected(env):
    other = Environment()
    foreign = other.timeout(1.0)
    caught = []

    def proc():
        try:
            yield foreign
        except SimulationError as exc:
            caught.append(str(exc))

    env.process(proc())
    env.run()
    assert caught and "Environment" in caught[0]


def test_event_value_before_trigger_raises(env):
    with pytest.raises(SimulationError):
        env.event().value
    with pytest.raises(SimulationError):
        env.event().ok


# ---------------------------------------------------------------------------
# failure surfacing: a failed event nobody consumes must never vanish
# ---------------------------------------------------------------------------


def test_failing_process_with_zero_waiters_surfaces(env):
    """Regression: a crashed process nobody waits on must raise from run()."""

    def crasher():
        yield env.timeout(1.0)
        raise RuntimeError("nobody is watching")

    env.process(crasher())
    with pytest.raises(RuntimeError, match="nobody is watching"):
        env.run()


def test_failing_process_with_zero_waiters_surfaces_via_step(env):
    def crasher():
        yield env.timeout(1.0)
        raise RuntimeError("stepped on")

    env.process(crasher())
    with pytest.raises(RuntimeError, match="stepped on"):
        for _ in range(10):
            env.step()


def test_failed_event_without_waiters_surfaces(env):
    env.event().fail(RuntimeError("unwatched failure"))
    with pytest.raises(RuntimeError, match="unwatched failure"):
        env.run()


def test_crash_after_any_of_triggered_surfaces(env):
    """Regression: the old kernel re-raised only when the callback list was
    empty, so a process crashing after its AnyOf already fired was silently
    swallowed (its only callback, the condition's _check, returned early)."""

    def quick():
        yield env.timeout(1.0)
        return "winner"

    def crasher():
        yield env.timeout(2.0)
        raise RuntimeError("late crash")

    def waiter():
        yield env.any_of([env.process(quick()), env.process(crasher())])

    env.process(waiter())
    with pytest.raises(RuntimeError, match="late crash"):
        env.run()


def test_second_failure_after_all_of_failed_surfaces(env):
    """AllOf fails fast on the first failure; a second failing sub-event has
    nobody left to consume it and must surface, not vanish."""

    def crasher(delay, msg):
        yield env.timeout(delay)
        raise RuntimeError(msg)

    def waiter():
        try:
            yield env.all_of([
                env.process(crasher(1.0, "first")),
                env.process(crasher(2.0, "second")),
            ])
        except RuntimeError:
            pass  # the first failure is consumed here

    env.process(waiter())
    with pytest.raises(RuntimeError, match="second"):
        env.run()


def test_waited_on_failure_is_consumed(env):
    """A failure a process catches is defused: the run continues cleanly."""

    def crasher():
        yield env.timeout(1.0)
        raise RuntimeError("caught below")

    def guardian():
        try:
            yield env.process(crasher())
        except RuntimeError:
            pass
        yield env.timeout(1.0)
        return env.now

    p = env.process(guardian())
    env.run()
    assert p.value == 2.0


def test_defused_property_reflects_consumption(env):
    gate = env.event()

    def waiter():
        try:
            yield gate
        except RuntimeError:
            pass

    env.process(waiter())

    def firer():
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    env.process(firer())
    assert not gate.defused
    env.run()
    assert gate.defused
