"""Differential tests: SharedBandwidth vs the naive reference oracle.

The production channel (virtual-time processor sharing, O(log n) per
event) and :class:`repro.sim.reference.ReferenceSharedBandwidth` (the
retained pre-rewrite O(n²) implementation, which materializes every
flow's remaining bytes) must agree on *what happens*: same completion
order, same completion times, same bytes accounted — across randomized
arrival schedules with mixed transfer sizes, ``per_flow_cap`` on and
off, mid-stream ``set_bandwidth`` (the fault-injection path), and
zero-byte transfers.

Times are compared with a tight relative tolerance rather than exactly:
the two implementations accumulate rounding differently in general
(virtual-clock segments vs per-flow subtraction), even though the
experiment-level fingerprints happen to be bit-identical (see
``test_channel_fingerprints.py``).
"""

import math
import random

import pytest

from repro.sim.core import Environment, Process
from repro.sim.reference import ReferenceSharedBandwidth
from repro.sim.resources import SharedBandwidth

REL_TOL = 1e-9
ABS_TOL = 1e-12


def _random_case(seed, with_cap, with_bw_changes, n_transfers=60,
                 with_cap_changes=False):
    """One reproducible scenario: arrivals, sizes, bandwidth timeline."""
    rng = random.Random(seed)
    schedule = []
    t = 0.0
    for _ in range(n_transfers):
        t += rng.expovariate(200.0)  # bursty arrivals, ~5 ms apart
        roll = rng.random()
        if roll < 0.06:
            size = 0.0  # metadata-only op: must complete instantly
        elif roll < 0.5:
            size = rng.uniform(1e4, 1e6)  # small frames
        else:
            size = rng.uniform(1e6, 5e7)  # bulk frames, long-lived flows
        schedule.append((t, size))
    cap = rng.uniform(2e7, 2e8) if with_cap else None
    changes = []
    if with_bw_changes:
        horizon = schedule[-1][0] * 1.5
        for _ in range(5):
            # degrade/restore swings like the fault layer's, mid-stream
            changes.append((rng.uniform(0.0, horizon),
                            ("bw", rng.uniform(2e7, 4e8))))
    if with_cap_changes:
        horizon = schedule[-1][0] * 1.5
        for _ in range(5):
            # mid-stream cap tightenings/loosenings, with the occasional
            # lift (None) — must segment, never re-price history
            new_cap = None if rng.random() < 0.2 else rng.uniform(1e7, 3e8)
            changes.append((rng.uniform(0.0, horizon), ("cap", new_cap)))
    changes.sort(key=lambda c: c[0])
    return schedule, cap, changes


def _run(cls, schedule, cap, changes, bandwidth=1e8):
    """Drive one implementation through the scenario; log completions."""
    env = Environment()
    chan = cls(env, bandwidth, per_flow_cap=cap)
    completions = []

    def submitter():
        for i, (at, size) in enumerate(schedule):
            if at > env.now:
                yield env.timeout(at - env.now)
            done = chan.transfer(size)
            done.callbacks.append(
                lambda _ev, i=i: completions.append((i, env.now))
            )

    def controller():
        for at, (kind, value) in changes:
            if at > env.now:
                yield env.timeout(at - env.now)
            if kind == "bw":
                chan.set_bandwidth(value)
            else:
                chan.per_flow_cap = value

    Process(env, submitter())
    if changes:
        Process(env, controller())
    env.run()
    assert chan.active_flows == 0, "flows left in-flight after drain"
    return completions, chan.bytes_moved, env.now


CASES = [(seed, cap, bw)
         for seed in (1, 7, 23, 91, 1234)
         for cap in (False, True)
         for bw in (False, True)]


@pytest.mark.parametrize("seed,with_cap,with_bw_changes", CASES)
def test_matches_reference_on_random_schedule(seed, with_cap,
                                              with_bw_changes):
    schedule, cap, changes = _random_case(seed, with_cap, with_bw_changes)
    got, got_bytes, got_end = _run(SharedBandwidth, schedule, cap, changes)
    want, want_bytes, want_end = _run(
        ReferenceSharedBandwidth, schedule, cap, changes
    )
    assert len(got) == len(want) == len(schedule)
    assert [i for i, _ in got] == [i for i, _ in want], (
        "completion order diverged from the reference oracle"
    )
    for (i, t_new), (_, t_ref) in zip(got, want):
        assert math.isclose(t_new, t_ref, rel_tol=REL_TOL, abs_tol=ABS_TOL), (
            f"flow {i}: completion at {t_new!r} vs reference {t_ref!r}"
        )
    assert math.isclose(got_bytes, want_bytes, rel_tol=REL_TOL)
    assert math.isclose(got_end, want_end, rel_tol=REL_TOL, abs_tol=ABS_TOL)


@pytest.mark.parametrize("seed", (3, 17, 42, 99, 4321))
def test_matches_reference_with_mid_stream_cap_changes(seed):
    """Mid-stream ``per_flow_cap`` assignment must segment identically.

    Random cap tightenings, loosenings, and lifts (``None``) land while
    bulk flows are in flight on both implementations; the production
    setter's advance-then-mutate must agree with the oracle's
    materialized drain to float tolerance. Composes with mid-stream
    ``set_bandwidth`` swings — the fault layer fires both.
    """
    schedule, cap, changes = _random_case(
        seed, with_cap=True, with_bw_changes=(seed % 2 == 0),
        with_cap_changes=True,
    )
    got, got_bytes, got_end = _run(SharedBandwidth, schedule, cap, changes)
    want, want_bytes, want_end = _run(
        ReferenceSharedBandwidth, schedule, cap, changes
    )
    assert len(got) == len(want) == len(schedule)
    assert [i for i, _ in got] == [i for i, _ in want]
    for (i, t_new), (_, t_ref) in zip(got, want):
        assert math.isclose(t_new, t_ref, rel_tol=REL_TOL, abs_tol=ABS_TOL), (
            f"flow {i}: completion at {t_new!r} vs reference {t_ref!r}"
        )
    assert math.isclose(got_bytes, want_bytes, rel_tol=REL_TOL)
    assert math.isclose(got_end, want_end, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def test_equal_flows_complete_fifo_together():
    """Same-size simultaneous flows: equal finish time, submission order."""
    for cls in (SharedBandwidth, ReferenceSharedBandwidth):
        env = Environment()
        chan = cls(env, bandwidth=1e8)
        order = []
        done = [chan.transfer(1e6) for _ in range(8)]
        for i, ev in enumerate(done):
            ev.callbacks.append(lambda _ev, i=i: order.append((i, env.now)))
        env.run()
        assert [i for i, _ in order] == list(range(8))
        times = {t for _, t in order}
        assert len(times) == 1, f"{cls.__name__}: finish times diverged"
        # 8 equal flows over 100 MB/s: each gets 1/8th of the channel
        (finish,) = times
        assert math.isclose(finish, 8 * 1e6 / 1e8, rel_tol=1e-6)


def test_zero_byte_transfer_completes_instantly():
    for cls in (SharedBandwidth, ReferenceSharedBandwidth):
        env = Environment()
        chan = cls(env, bandwidth=1e8)
        chan.transfer(5e6)  # a bulk flow must not delay the zero-byte op
        seen = []
        chan.transfer(0).callbacks.append(
            lambda _ev: seen.append(env.now)
        )
        env.run()
        assert seen == [0.0], f"{cls.__name__}: zero-byte op was queued"


def test_negative_transfer_rejected_by_both():
    for cls in (SharedBandwidth, ReferenceSharedBandwidth):
        env = Environment()
        chan = cls(env, bandwidth=1e8)
        with pytest.raises(ValueError):
            chan.transfer(-1.0)
