"""FluidNetwork tests: differential vs the oracle, max-min, weights.

Single-link fluid behaviour is pinned to
:class:`repro.sim.reference.ReferenceSharedBandwidth` — the same oracle,
the same randomized schedules, and the same tight tolerance as the exact
channel's differential suite — because a one-link FluidNetwork *is* a
processor-sharing channel and must time flows identically. On top of
that, multi-link max-min rates, weighted flows (the chunk-collapse
mechanism), per-slot caps, mid-stream mutations, and the tail/latency
folding contract are checked against hand-computed scenarios.
"""

import math
import random

import pytest

from repro.errors import ConfigError
from repro.sim.core import Environment, Process
from repro.sim.fluid import Fidelity, FluidNetwork
from repro.sim.reference import ReferenceSharedBandwidth

REL_TOL = 1e-9
ABS_TOL = 1e-12


def _random_case(seed, with_cap, with_bw_changes, n_transfers=60):
    """Same scenario generator as the exact channel's differential suite."""
    rng = random.Random(seed)
    schedule = []
    t = 0.0
    for _ in range(n_transfers):
        t += rng.expovariate(200.0)
        roll = rng.random()
        if roll < 0.06:
            size = 0.0
        elif roll < 0.5:
            size = rng.uniform(1e4, 1e6)
        else:
            size = rng.uniform(1e6, 5e7)
        schedule.append((t, size))
    cap = rng.uniform(2e7, 2e8) if with_cap else None
    changes = []
    if with_bw_changes:
        horizon = schedule[-1][0] * 1.5
        for _ in range(5):
            changes.append((rng.uniform(0.0, horizon),
                            rng.uniform(2e7, 4e8)))
        changes.sort()
    return schedule, cap, changes


def _fluid_link(env, bandwidth, per_flow_cap=None):
    """A single-link FluidNetwork posing as a bandwidth channel."""
    return FluidNetwork(env).link(bandwidth, per_flow_cap=per_flow_cap)


def _run(make_chan, schedule, cap, changes, bandwidth=1e8):
    """Drive one implementation through a scenario; log completions."""
    env = Environment()
    chan = make_chan(env, bandwidth, per_flow_cap=cap)
    completions = []

    def submitter():
        for i, (at, size) in enumerate(schedule):
            if at > env.now:
                yield env.timeout(at - env.now)
            done = chan.transfer(size)
            done.callbacks.append(
                lambda _ev, i=i: completions.append((i, env.now))
            )

    def controller():
        for at, bw in changes:
            if at > env.now:
                yield env.timeout(at - env.now)
            chan.set_bandwidth(bw)

    Process(env, submitter())
    if changes:
        Process(env, controller())
    env.run()
    assert chan.active_flows == 0, "flows left in-flight after drain"
    return completions, chan.bytes_moved, env.now


CASES = [(seed, cap, bw)
         for seed in (1, 7, 23, 91, 1234)
         for cap in (False, True)
         for bw in (False, True)]


@pytest.mark.parametrize("seed,with_cap,with_bw_changes", CASES)
def test_single_link_matches_reference(seed, with_cap, with_bw_changes):
    """One-link fluid network == processor-sharing channel, per the oracle."""
    schedule, cap, changes = _random_case(seed, with_cap, with_bw_changes)
    got, got_bytes, got_end = _run(_fluid_link, schedule, cap, changes)
    want, want_bytes, want_end = _run(
        ReferenceSharedBandwidth, schedule, cap, changes
    )
    assert len(got) == len(want) == len(schedule)
    assert [i for i, _ in got] == [i for i, _ in want], (
        "completion order diverged from the reference oracle"
    )
    for (i, t_new), (_, t_ref) in zip(got, want):
        assert math.isclose(t_new, t_ref, rel_tol=REL_TOL, abs_tol=ABS_TOL), (
            f"flow {i}: completion at {t_new!r} vs reference {t_ref!r}"
        )
    assert math.isclose(got_bytes, want_bytes, rel_tol=REL_TOL)
    assert math.isclose(got_end, want_end, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def _collect(env, events):
    """Run to completion; return each event's finish time."""
    times = {}
    for name, ev in events.items():
        ev.callbacks.append(lambda _ev, n=name: times.setdefault(n, env.now))
    env.run()
    return times


def test_multi_link_max_min_rates():
    """Progressive filling across a shared bottleneck, hand-computed.

    Links: A (10 B/s), B (10 B/s), shared S (12 B/s). Flow x crosses
    (A, S), flow y crosses (B, S). Max-min: both raised to 6 until S
    saturates — each finishes 60 bytes at rate 6 in 10 s.
    """
    env = Environment()
    net = FluidNetwork(env)
    a, b, s = net.link(10.0), net.link(10.0), net.link(12.0)
    times = _collect(env, {
        "x": net.transfer(60.0, (a, s)),
        "y": net.transfer(60.0, (b, s)),
    })
    assert math.isclose(times["x"], 10.0, rel_tol=1e-9)
    assert math.isclose(times["y"], 10.0, rel_tol=1e-9)


def test_multi_link_asymmetric_bottlenecks():
    """A capped class frees headroom the other class picks up.

    Links: A (4 B/s), B (10 B/s), shared S (10 B/s). Flow x (A, S) is
    bottlenecked by A at 4; flow y (B, S) then gets S's remaining 6.
    x: 40 bytes / 4 = 10 s. y: 60 bytes / 6 = 10 s.
    """
    env = Environment()
    net = FluidNetwork(env)
    a, b, s = net.link(4.0), net.link(10.0), net.link(10.0)
    times = _collect(env, {
        "x": net.transfer(40.0, (a, s)),
        "y": net.transfer(60.0, (b, s)),
    })
    assert math.isclose(times["x"], 10.0, rel_tol=1e-9)
    assert math.isclose(times["y"], 10.0, rel_tol=1e-9)


def test_weighted_flow_equals_chunk_pipeline():
    """A weight-k flow times identically to k concurrent unit flows.

    Both contend with one extra unit flow on the same link, so the
    collapsed representation must claim exactly k of the k+1 shares.
    """
    def run(collapsed):
        env = Environment()
        net = FluidNetwork(env)
        link = net.link(100.0)
        if collapsed:
            chunks = {"c": net.transfer(400.0, (link,), weight=4.0)}
        else:
            chunks = {f"c{i}": net.transfer(100.0, (link,))
                      for i in range(4)}
        chunks["other"] = net.transfer(100.0, (link,))
        times = _collect(env, chunks)
        pipeline_done = max(t for n, t in times.items() if n != "other")
        return pipeline_done, times["other"]

    exact_done, exact_other = run(collapsed=False)
    fluid_done, fluid_other = run(collapsed=True)
    assert math.isclose(fluid_done, exact_done, rel_tol=1e-9)
    assert math.isclose(fluid_other, exact_other, rel_tol=1e-9)


def test_weighted_flow_cap_applies_per_slot():
    """Per-flow caps bound each slot: weight 4 may reach 4x the cap.

    One weight-4 flow alone on a 100 B/s link with per_flow_cap=10
    moves at 40 B/s — exactly what 4 unit flows capped at 10 achieve.
    """
    env = Environment()
    net = FluidNetwork(env)
    link = net.link(100.0, per_flow_cap=10.0)
    times = _collect(env, {"c": net.transfer(400.0, (link,), weight=4.0)})
    assert math.isclose(times["c"], 10.0, rel_tol=1e-9)


def test_cap_change_re_rates_between_epochs():
    """per_flow_cap assignment re-rates a live flow mid-stream.

    100 bytes on a 100 B/s link, capped at 10 B/s. After 5 s (50 bytes
    in) the cap lifts to 50 B/s: remaining 50 bytes take 1 s more.
    """
    env = Environment()
    net = FluidNetwork(env)
    link = net.link(100.0, per_flow_cap=10.0)

    def controller():
        yield env.timeout(5.0)
        link.per_flow_cap = 50.0

    done = net.transfer(100.0, (link,))
    Process(env, controller())
    times = _collect(env, {"f": done})
    assert math.isclose(times["f"], 6.0, rel_tol=1e-9)


def test_set_bandwidth_re_rates_mid_stream():
    """Degrade/restore path: live flows re-rate from the change instant."""
    env = Environment()
    net = FluidNetwork(env)
    link = net.link(10.0)

    def controller():
        yield env.timeout(4.0)  # 40 bytes in
        link.set_bandwidth(30.0)  # remaining 60 bytes in 2 s

    done = net.transfer(100.0, (link,))
    Process(env, controller())
    times = _collect(env, {"f": done})
    assert math.isclose(times["f"], 6.0, rel_tol=1e-9)


def test_set_bandwidth_with_zero_flows_active():
    """Mutating an idle network is safe and affects the next admission."""
    env = Environment()
    net = FluidNetwork(env)
    link = net.link(10.0)
    link.set_bandwidth(20.0)  # no flows in flight: must not blow up
    link.per_flow_cap = 5.0

    def driver():
        yield env.timeout(1.0)
        elapsed = yield net.transfer(50.0, (link,))
        assert math.isclose(elapsed, 10.0, rel_tol=1e-9)  # capped at 5 B/s

    Process(env, driver())
    env.run()
    assert net.active_flows == 0


def test_zero_byte_flow_completes_after_tail_only():
    env = Environment()
    net = FluidNetwork(env)
    link = net.link(10.0)
    net.transfer(1000.0, (link,))  # a bulk flow must not delay it
    times = _collect(env, {"z": net.transfer(0.0, (link,), tail=0.25)})
    assert math.isclose(times["z"], 0.25, rel_tol=1e-9)


def test_tail_delays_completion_not_occupancy():
    """A folded tail postpones the event; the link frees at byte-drain.

    Flow 1: 50 bytes, tail 10 s. Flow 2 arrives at t=5 (byte-drain of
    flow 1, which then stops occupying the link) and gets the full
    bandwidth: done at t=10 — before flow 1's tailed completion at 15.
    """
    env = Environment()
    net = FluidNetwork(env)
    link = net.link(10.0)
    first = net.transfer(50.0, (link,), tail=10.0)

    second_times = []

    def late_arrival():
        yield env.timeout(5.0)
        elapsed = yield net.transfer(50.0, (link,))
        second_times.append((env.now, elapsed))

    Process(env, late_arrival())
    times = _collect(env, {"first": first})
    assert math.isclose(times["first"], 15.0, rel_tol=1e-9)
    (at, elapsed), = second_times
    assert math.isclose(at, 10.0, rel_tol=1e-9)
    assert math.isclose(elapsed, 5.0, rel_tol=1e-9)


def test_negative_transfer_rejected():
    env = Environment()
    net = FluidNetwork(env)
    link = net.link(10.0)
    with pytest.raises(ValueError):
        net.transfer(-1.0, (link,))
    with pytest.raises(ValueError):
        net.link(0.0)
    with pytest.raises(ValueError):
        net.link(10.0, per_flow_cap=0.0)


def test_kernel_health_counters():
    """fluid_epochs / rate_solves advance; admissions balance completions."""
    env = Environment()
    net = FluidNetwork(env)
    link = net.link(10.0)

    def driver():
        yield net.transfer(10.0, (link,))
        yield net.transfer(10.0, (link,))

    Process(env, driver())
    env.run()
    assert net.flows_admitted == 2
    assert net.flows_completed == 2
    assert net.fluid_epochs >= 2
    assert net.rate_solves >= 2
    assert link.bytes_moved == 20.0
    assert link.peak_concurrent_flows == 1


def test_same_instant_burst_is_one_solve():
    """A burst of same-instant arrivals is rated by a single solve tick."""
    env = Environment()
    net = FluidNetwork(env)
    link = net.link(100.0)
    events = {f"f{i}": net.transfer(100.0, (link,)) for i in range(10)}
    solves_before_run = net.rate_solves
    assert solves_before_run == 0  # deferred to the tick, not per arrival
    times = _collect(env, events)
    assert len({round(t, 9) for t in times.values()}) == 1
    assert math.isclose(times["f0"], 10.0, rel_tol=1e-9)


def test_fidelity_coerce():
    assert Fidelity.coerce("exact") is Fidelity.EXACT
    assert Fidelity.coerce("FLUID") is Fidelity.FLUID
    assert Fidelity.coerce(Fidelity.HYBRID) is Fidelity.HYBRID
    assert [f.ordinal for f in Fidelity] == [0, 1, 2]
    assert not Fidelity.EXACT.uses_fluid
    assert Fidelity.HYBRID.uses_fluid and not Fidelity.HYBRID.folds_latency
    assert Fidelity.FLUID.folds_latency
    with pytest.raises(ConfigError):
        Fidelity.coerce("approximate")
    with pytest.raises(ConfigError):
        Fidelity.coerce(3)
