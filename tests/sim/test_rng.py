"""Unit tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams, _mix, _stable_hash


def test_same_seed_same_stream():
    a = RngStreams(7).stream("ssd").random(5)
    b = RngStreams(7).stream("ssd").random(5)
    assert np.array_equal(a, b)


def test_different_names_independent():
    streams = RngStreams(7)
    a = streams.stream("ssd").random(5)
    b = streams.stream("network").random(5)
    assert not np.array_equal(a, b)


def test_stream_creation_order_irrelevant():
    one = RngStreams(3)
    one.stream("a")
    first = one.stream("b").random(4)

    two = RngStreams(3)
    second = two.stream("b").random(4)  # created without "a"
    assert np.array_equal(first, second)


def test_stream_is_cached():
    streams = RngStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_jitter_zero_cv_is_exact(rng):
    assert rng.jitter("any", 5.0, 0.0) == 5.0


def test_jitter_zero_mean_is_zero(rng):
    assert rng.jitter("any", 0.0, 0.5) == 0.0


def test_jitter_positive(rng):
    samples = [rng.jitter("lat", 1.0, 0.3) for _ in range(200)]
    assert all(s > 0 for s in samples)


def test_jitter_mean_approximately_right(rng):
    samples = [rng.jitter("lat", 2.0, 0.1) for _ in range(3000)]
    assert np.mean(samples) == pytest.approx(2.0, rel=0.02)


def test_jitter_cv_approximately_right(rng):
    samples = np.array([rng.jitter("lat", 1.0, 0.2) for _ in range(5000)])
    assert samples.std() / samples.mean() == pytest.approx(0.2, rel=0.1)


def test_jitter_validation(rng):
    with pytest.raises(ValueError):
        rng.jitter("x", -1.0, 0.1)
    with pytest.raises(ValueError):
        rng.jitter("x", 1.0, -0.1)


def test_spawn_children_differ():
    root = RngStreams(9)
    c0 = root.spawn(0).stream("s").random(4)
    c1 = root.spawn(1).stream("s").random(4)
    assert not np.array_equal(c0, c1)


def test_spawn_deterministic():
    a = RngStreams(9).spawn(3).stream("s").random(4)
    b = RngStreams(9).spawn(3).stream("s").random(4)
    assert np.array_equal(a, b)


def test_stable_hash_is_stable():
    # FNV-1a of "ssd" must never change across versions/platforms
    assert _stable_hash("ssd") == _stable_hash("ssd")
    assert _stable_hash("ssd") != _stable_hash("sse")


def test_mix_distributes():
    outputs = {_mix(1, i) for i in range(100)}
    assert len(outputs) == 100


def test_names_iterates_created():
    streams = RngStreams(0)
    streams.stream("a")
    streams.stream("b")
    assert sorted(streams.names()) == ["a", "b"]
