"""Unit tests for Caliper-like annotation."""

import pytest

from repro.errors import PerfError
from repro.perf.caliper import Annotator, Caliper, Category


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def ann(clock):
    return Annotator("proc", clock)


def test_region_time_measured(ann, clock):
    ann.begin("io", Category.MOVEMENT)
    clock.now = 2.0
    elapsed = ann.end("io")
    assert elapsed == 2.0
    tree = ann.finish()
    node = tree.find("io")
    assert node.time == 2.0 and node.count == 1
    assert node.category == Category.MOVEMENT


def test_nested_regions_build_paths(ann, clock):
    ann.begin("outer")
    clock.now = 1.0
    ann.begin("inner")
    clock.now = 3.0
    ann.end("inner")
    clock.now = 4.0
    ann.end("outer")
    tree = ann.finish()
    assert tree.find("outer").time == 4.0
    assert tree.find("outer", "inner").time == 2.0


def test_category_inherited_from_parent(ann, clock):
    ann.begin("outer", Category.MOVEMENT)
    ann.begin("inner")  # inherits movement
    ann.end("inner")
    ann.end("outer")
    assert ann.finish().find("outer", "inner").category == Category.MOVEMENT


def test_child_category_can_override(ann, clock):
    ann.begin("outer", Category.MOVEMENT)
    ann.begin("wait", Category.IDLE)
    ann.end("wait")
    ann.end("outer")
    assert ann.finish().find("outer", "wait").category == Category.IDLE


def test_repeat_visits_accumulate(ann, clock):
    for i in range(3):
        ann.begin("io")
        clock.now += 1.0
        ann.end("io")
    node = ann.finish().find("io")
    assert node.count == 3 and node.time == 3.0


def test_mismatched_end_rejected(ann):
    ann.begin("a")
    with pytest.raises(PerfError, match="mismatch"):
        ann.end("b")
    # region stack is preserved after the error
    assert ann.current_path() == ("a",)


def test_end_without_begin_rejected(ann):
    with pytest.raises(PerfError):
        ann.end("nothing")


def test_unknown_category_rejected(ann):
    with pytest.raises(PerfError):
        ann.begin("x", "weird")


def test_finish_with_open_region_rejected(ann):
    ann.begin("open")
    with pytest.raises(PerfError, match="unclosed"):
        ann.finish()


def test_category_clash_across_visits(ann, clock):
    ann.begin("x", Category.MOVEMENT)
    ann.end("x")
    ann.begin("x", Category.IDLE)
    with pytest.raises(PerfError, match="clash"):
        ann.end("x")


def test_category_clash_leaves_tree_and_stack_intact(ann, clock):
    ann.begin("x", Category.MOVEMENT)
    clock.now = 1.0
    ann.end("x")
    ann.begin("x", Category.IDLE)
    clock.now = 3.0
    with pytest.raises(PerfError, match="clash"):
        ann.end("x")
    # The failed end must not have mutated the tree: time and count still
    # reflect only the first (successful) visit...
    node = ann.tree.find("x")
    assert node.time == 1.0
    assert node.count == 1
    assert node.category == Category.MOVEMENT
    # ...and the stack was restored, so the region is still open.
    assert ann.depth == 1
    assert ann.current_path() == ("x",)


def test_region_context_manager(ann, clock):
    with ann.region("cm", Category.COMPUTE):
        clock.now = 5.0
    assert ann.finish().find("cm").time == 5.0


def test_depth_and_path_reporting(ann):
    assert ann.depth == 0
    ann.begin("a")
    ann.begin("b")
    assert ann.depth == 2
    assert ann.current_path() == ("a", "b")
    ann.end("b")
    ann.end("a")


def test_caliper_unique_names(clock):
    cal = Caliper(clock)
    cal.annotator("p0")
    with pytest.raises(PerfError, match="duplicate"):
        cal.annotator("p0")


def test_caliper_collects_trees(clock):
    cal = Caliper(clock)
    a = cal.annotator("a")
    b = cal.annotator("b")
    a.begin("r")
    clock.now = 1.0
    a.end("r")
    trees = cal.trees()
    assert set(trees) == {"a", "b"}
    assert trees["a"].find("r").time == 1.0
    assert "a" in cal and cal["a"] is a
    assert cal.names() == ["a", "b"]
