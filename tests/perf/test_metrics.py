"""Unit tests for the substrate telemetry instruments and timeline."""

import json

import pytest

from repro.errors import PerfError
from repro.perf.metrics import (
    Counter,
    Gauge,
    MetricsTimeline,
    merge_chrome_trace,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def timeline(clock):
    return MetricsTimeline(clock)


class TestInstruments:
    def test_counter_samples_on_change_only(self, timeline, clock):
        c = timeline.counter("ops")
        clock.t = 1.0
        c.add(2)
        c.add(0)  # zero delta: no sample
        clock.t = 2.0
        c.inc()
        assert c.value == 3.0
        assert c.series() == [(0.0, 0.0), (1.0, 2.0), (2.0, 3.0)]

    def test_counter_rejects_negative(self, timeline):
        c = timeline.counter("ops")
        with pytest.raises(PerfError):
            c.add(-1)

    def test_gauge_dedupes_unchanged_sets(self, timeline, clock):
        g = timeline.gauge("depth")
        clock.t = 1.0
        g.set(4.0)
        g.set(4.0)  # unchanged: no sample
        clock.t = 2.0
        g.set(0.0)
        assert g.series() == [(0.0, 0.0), (1.0, 4.0), (2.0, 0.0)]

    def test_gauge_add_shifts_both_ways(self, timeline, clock):
        g = timeline.gauge("depth")
        g.add(3)
        g.add(-3)
        assert g.value == 0.0
        assert len(g.series()) == 3  # anchor + two shifts

    def test_get_or_create_returns_same_instrument(self, timeline):
        assert timeline.counter("x") is timeline.counter("x")
        assert timeline.gauge("y") is timeline.gauge("y")

    def test_kind_clash_rejected(self, timeline):
        timeline.counter("x")
        with pytest.raises(PerfError):
            timeline.gauge("x")

    def test_unknown_instrument_rejected(self, timeline):
        with pytest.raises(PerfError):
            timeline["nope"]


class TestTimeline:
    def test_sample_times_monotone(self, timeline, clock):
        g = timeline.gauge("load")
        c = timeline.counter("ops")
        for step in range(20):
            clock.t = step * 0.5
            g.set(float(step % 3))
            c.add(step % 2)
        for name in timeline.names():
            times = [t for t, _ in timeline.series(name)]
            assert times == sorted(times)

    def test_instants_recorded_with_args(self, timeline, clock):
        clock.t = 7.5
        timeline.instant("fault.link_flap.apply", target="node01", duration=1.0)
        assert timeline.annotations == [
            (7.5, "fault.link_flap.apply",
             {"target": "node01", "duration": 1.0})
        ]

    def test_to_dict_round_trips_through_json(self, timeline, clock):
        timeline.gauge("g").set(1.0)
        timeline.counter("c").add(2)
        timeline.instant("mark", why="test")
        payload = json.loads(json.dumps(timeline.to_dict()))
        assert payload["instruments"]["g"]["kind"] == "gauge"
        assert payload["instruments"]["c"]["samples"][-1] == [0.0, 2.0]
        assert payload["annotations"] == [[0.0, "mark", {"why": "test"}]]

    def test_write_json_and_csv(self, timeline, clock, tmp_path):
        g = timeline.gauge("load")
        clock.t = 1.0
        g.set(2.0)
        jpath = tmp_path / "m.json"
        cpath = tmp_path / "m.csv"
        timeline.write_json(jpath)
        timeline.write_csv(cpath)
        assert json.loads(jpath.read_text())["instruments"]["load"]
        lines = cpath.read_text().splitlines()
        assert lines[0] == "time_s,instrument,value"
        assert len(lines) == 3  # header + anchor + change

    def test_csv_rows_globally_time_ordered(self, timeline, clock, tmp_path):
        a = timeline.gauge("a")
        b = timeline.gauge("b")
        clock.t = 2.0
        b.set(1.0)
        clock.t = 3.0
        a.set(1.0)
        path = tmp_path / "m.csv"
        timeline.write_csv(path)
        rows = [line.split(",") for line in path.read_text().splitlines()[1:]]
        times = [float(r[0]) for r in rows]
        assert times == sorted(times)


class TestChromeExport:
    def test_counter_events_and_metadata(self, timeline, clock):
        clock.t = 1.5
        timeline.gauge("load").set(3.0)
        timeline.instant("fault.x.apply", target="n0")
        events = timeline.to_chrome_events()
        phases = {e["ph"] for e in events}
        assert {"M", "C", "i"} <= phases
        counter = [e for e in events if e["ph"] == "C" and e["args"]["value"] == 3.0]
        assert counter and counter[0]["ts"] == pytest.approx(1.5e6)
        # every (pid, tid) that carries events also carries thread metadata
        meta = {(e["pid"], e["tid"]) for e in events
                if e["ph"] == "M" and e["name"] == "thread_name"}
        used = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
        assert used <= meta

    def test_merge_with_and_without_tracer(self, timeline):
        timeline.counter("ops").add(1)
        doc = merge_chrome_trace(None, timeline)
        assert {e["ph"] for e in doc["traceEvents"]} == {"M", "C"}
        doc = merge_chrome_trace(None, None)
        assert doc["traceEvents"] == []
