"""Unit tests for the call-tree data model."""

import pytest

from repro.errors import PerfError
from repro.perf.calltree import CallTree, CallTreeNode


def make_tree():
    tree = CallTree("t")
    consume = tree.node("consume")
    consume.add_metric("time", 10.0)
    consume.add_metric("count", 2)
    consume.metrics["category"] = "movement"
    fetch = tree.node("consume", "fetch")
    fetch.add_metric("time", 3.0)
    fetch.metrics["category"] = "idle"
    read = tree.node("read")
    read.add_metric("time", 5.0)
    return tree


def test_node_creation_and_paths():
    tree = make_tree()
    assert tree.find("consume", "fetch").path() == ("consume", "fetch")
    assert tree.find("missing") is None
    assert sorted(tree.paths()) == [("consume",), ("consume", "fetch"), ("read",)]


def test_metrics_accumulate():
    tree = CallTree()
    node = tree.node("a")
    node.add_metric("time", 1.0)
    node.add_metric("time", 2.0)
    assert node.time == 3.0


def test_exclusive_time():
    tree = make_tree()
    assert tree.find("consume").exclusive_time() == pytest.approx(7.0)
    assert tree.find("consume", "fetch").exclusive_time() == pytest.approx(3.0)


def test_total_over_top_level():
    tree = make_tree()
    # only top-level inclusive times: consume(10) + read(5)
    assert tree.total("time") == pytest.approx(15.0)


def test_total_with_filter():
    tree = make_tree()
    total = tree.total("time", where=lambda n: n.name == "fetch")
    assert total == pytest.approx(3.0)


def test_total_by_category_uses_exclusive():
    tree = make_tree()
    # movement: consume exclusive 7 (child fetch is idle); read has no category
    assert tree.total_by_category("movement") == pytest.approx(7.0)
    assert tree.total_by_category("idle") == pytest.approx(3.0)


def test_merge_sums_numeric_and_keeps_category():
    a = make_tree()
    b = make_tree()
    a.merge(b)
    assert a.find("consume").time == 20.0
    assert a.find("consume").count == 4
    assert a.find("consume").category == "movement"


def test_merge_category_clash_raises():
    a = make_tree()
    b = make_tree()
    b.find("consume").metrics["category"] = "idle"
    with pytest.raises(PerfError):
        a.merge(b)


def test_merge_clash_leaves_target_unchanged():
    a = make_tree()
    b = make_tree()
    # enrich b so a partial merge would be visible in several places
    b.find("read").add_metric("time", 7.0)
    b.node("extra").add_metric("time", 1.0)
    b.find("consume", "fetch").metrics["category"] = "movement"  # clashes
    before = a.to_dict()
    with pytest.raises(PerfError):
        a.merge(b)
    # the clash is detected before any mutation: a is bit-identical
    assert a.to_dict() == before


def test_copy_is_deep():
    a = make_tree()
    b = a.copy()
    b.find("consume").add_metric("time", 100.0)
    assert a.find("consume").time == 10.0


def test_flat_mapping():
    flat = make_tree().flat("time")
    assert flat[("consume",)] == 10.0
    assert flat[("consume", "fetch")] == 3.0


def test_serialization_roundtrip():
    tree = make_tree()
    clone = CallTree.from_dict(tree.to_dict())
    assert clone.flat("time") == tree.flat("time")
    assert clone.find("consume").category == "movement"
    assert clone.label == tree.label


def test_render_contains_nodes_and_categories():
    text = make_tree().render(metric="time", unit=1.0, fmt="{:.1f}")
    assert "consume" in text and "fetch" in text
    assert "[movement]" in text and "[idle]" in text


def test_walk_order_deterministic():
    tree = CallTree()
    tree.node("b")
    tree.node("a")
    tree.node("a", "z")
    tree.node("a", "y")
    names = [n.name for n in tree.nodes()]
    assert names == ["a", "y", "z", "b"]


def test_diff_trees_ratios():
    from repro.perf.calltree import diff_trees

    a = make_tree()          # consume=10, fetch=3, read=5
    b = make_tree()
    b.find("consume").metrics["time"] = 5.0
    b.find("read").metrics["time"] = 5.0
    diff = diff_trees(a, b)
    assert diff.find("consume").metrics["ratio"] == pytest.approx(2.0)
    assert diff.find("read").metrics["ratio"] == pytest.approx(1.0)
    assert diff.find("consume").metrics["lhs"] == 10.0
    assert diff.find("consume").category == "movement"


def test_diff_trees_category_falls_back_to_rhs():
    from repro.perf.calltree import diff_trees

    a = make_tree()
    a.find("consume").metrics.pop("category")
    b = make_tree()  # still categorizes consume as movement
    diff = diff_trees(a, b)
    assert diff.find("consume").category == "movement"
    # read has no category on either side: none invented
    assert diff.find("read").category is None


def test_diff_trees_missing_nodes():
    from repro.perf.calltree import diff_trees

    a = make_tree()
    b = CallTree()
    b.node("only_b").add_metric("time", 2.0)
    diff = diff_trees(a, b)
    assert diff.find("consume").metrics["ratio"] == float("inf")
    assert diff.find("only_b").metrics["ratio"] == 0.0
