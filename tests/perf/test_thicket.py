"""Unit tests for the Thicket-like ensemble."""

import pytest

from repro.errors import PerfError
from repro.perf.calltree import CallTree
from repro.perf.thicket import Thicket


def tree_with(time_consume, time_read, label=""):
    t = CallTree(label)
    t.node("consume").add_metric("time", time_consume)
    t.node("consume").metrics.setdefault("category", "movement")
    t.node("read").add_metric("time", time_read)
    return t


@pytest.fixture
def ensemble():
    th = Thicket()
    th.add(tree_with(1.0, 2.0), role="consumer", run=0)
    th.add(tree_with(3.0, 4.0), role="consumer", run=1)
    th.add(tree_with(10.0, 20.0), role="producer", run=0)
    return th


def test_len_and_metadata(ensemble):
    assert len(ensemble) == 3
    assert ensemble.metadata()[0]["role"] == "consumer"


def test_filter_by_tags(ensemble):
    consumers = ensemble.filter(role="consumer")
    assert len(consumers) == 2
    assert len(ensemble.filter(role="consumer", run=1)) == 1
    assert len(ensemble.filter(role="nobody")) == 0


def test_filter_by_predicate(ensemble):
    late = ensemble.filter(lambda meta: meta["run"] >= 1)
    assert len(late) == 1


def test_groupby(ensemble):
    groups = ensemble.groupby("role")
    assert set(groups) == {"consumer", "producer"}
    assert len(groups["consumer"]) == 2


def test_stats_mean_std(ensemble):
    stats = ensemble.filter(role="consumer").stats("time")
    consume = stats[("consume",)]
    assert consume.n == 2
    assert consume.mean == pytest.approx(2.0)
    assert consume.std == pytest.approx(2 ** 0.5)  # ddof=1 over [1, 3]
    assert consume.minimum == 1.0 and consume.maximum == 3.0
    assert consume.total == 4.0


def test_stats_sparse_paths():
    th = Thicket()
    th.add(tree_with(1.0, 2.0))
    extra = tree_with(1.0, 2.0)
    extra.node("only_here").add_metric("time", 9.0)
    th.add(extra)
    stats = th.stats("time")
    assert stats[("only_here",)].n == 1


def test_node_stats_missing_path(ensemble):
    with pytest.raises(PerfError):
        ensemble.node_stats("nonexistent")


def test_aggregate_mean(ensemble):
    composite = ensemble.filter(role="consumer").aggregate("mean")
    assert composite.find("consume").time == pytest.approx(2.0)
    assert composite.find("read").time == pytest.approx(3.0)
    assert composite.find("consume").category == "movement"


def test_aggregate_sum(ensemble):
    composite = ensemble.filter(role="consumer").aggregate("sum")
    assert composite.find("consume").time == pytest.approx(4.0)


def test_aggregate_invalid_how(ensemble):
    with pytest.raises(PerfError):
        ensemble.aggregate("median")


def test_mean_total(ensemble):
    consumers = ensemble.filter(role="consumer")
    assert consumers.mean_total("time") == pytest.approx((3.0 + 7.0) / 2)
    assert consumers.mean_total(category="movement") == pytest.approx(2.0)


def test_query_over_composite(ensemble):
    nodes = ensemble.query("**/consume")
    assert [n.name for n in nodes] == ["consume"]


def test_extend(ensemble):
    other = Thicket()
    other.add(tree_with(5.0, 6.0), role="consumer", run=2)
    ensemble.extend(other)
    assert len(ensemble) == 4


def test_empty_thicket_behaviour():
    th = Thicket()
    assert th.mean_total() == 0.0
    assert th.stats() == {}


def test_to_table_columns(ensemble):
    table = ensemble.to_table("time")
    n_rows = len(table["path"])
    # 3 trees x 2 paths each
    assert n_rows == 6
    assert set(table) == {"path", "time", "role", "run"}
    assert all(len(col) == n_rows for col in table.values())
    # rows carry the right tags
    consumer_rows = [i for i, r in enumerate(table["role"])
                     if r == "consumer"]
    assert len(consumer_rows) == 4


def test_to_table_roundtrip_through_csv(ensemble, tmp_path):
    import csv

    table = ensemble.to_table()
    path = tmp_path / "thicket.csv"
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.keys())
        writer.writerows(zip(*table.values()))
    with open(path) as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == list(table.keys())
    assert len(rows) == 1 + len(table["path"])
