"""Unit tests for bootstrap speedup comparison."""

import numpy as np
import pytest

from repro.errors import PerfError
from repro.perf.compare import bootstrap_speedup, summarize_sample


def test_point_estimate():
    est = bootstrap_speedup([10.0, 10.0], [2.0, 2.0])
    assert est.speedup == pytest.approx(5.0)
    assert est.n_baseline == 2 and est.n_candidate == 2


def test_ci_contains_point():
    rng = np.random.default_rng(0)
    base = rng.normal(8.0, 0.5, 20)
    cand = rng.normal(2.0, 0.2, 20)
    est = bootstrap_speedup(base, cand)
    assert est.low <= est.speedup <= est.high


def test_clear_difference_is_significant():
    rng = np.random.default_rng(1)
    est = bootstrap_speedup(rng.normal(10, 0.5, 15), rng.normal(1, 0.05, 15))
    assert est.significant
    assert est.low > 1.0


def test_no_difference_not_significant():
    rng = np.random.default_rng(2)
    sample = rng.normal(5.0, 1.0, 30)
    other = rng.normal(5.0, 1.0, 30)
    est = bootstrap_speedup(sample, other)
    assert not est.significant


def test_deterministic_given_seed():
    rng = np.random.default_rng(3)
    base, cand = rng.normal(4, 1, 10), rng.normal(2, 0.5, 10)
    a = bootstrap_speedup(base, cand, seed=7)
    b = bootstrap_speedup(base, cand, seed=7)
    assert (a.low, a.high) == (b.low, b.high)


def test_wider_confidence_wider_interval():
    rng = np.random.default_rng(4)
    base, cand = rng.normal(4, 1, 10), rng.normal(2, 0.5, 10)
    narrow = bootstrap_speedup(base, cand, confidence=0.8)
    wide = bootstrap_speedup(base, cand, confidence=0.99)
    assert wide.high - wide.low > narrow.high - narrow.low


def test_validation():
    with pytest.raises(PerfError):
        bootstrap_speedup([], [1.0])
    with pytest.raises(PerfError):
        bootstrap_speedup([1.0], [0.0])
    with pytest.raises(PerfError):
        bootstrap_speedup([1.0], [1.0], confidence=0.3)


def test_str_rendering():
    text = str(bootstrap_speedup([4.0, 4.2], [2.0, 2.1]))
    assert "x [" in text and "95%" in text


def test_summarize_sample():
    mean, std, lo, hi = summarize_sample([1.0, 2.0, 3.0])
    assert mean == 2.0 and lo == 1.0 and hi == 3.0
    assert std == pytest.approx(1.0)
    assert summarize_sample([5.0])[1] == 0.0
    with pytest.raises(PerfError):
        summarize_sample([])


def test_speedup_on_workflow_results():
    """End-to-end: quantify DYAD vs Lustre with a CI from real runs."""
    from repro.md.models import JAC
    from repro.workflow.runner import run_repetitions
    from repro.workflow.spec import Placement, System, WorkflowSpec

    def times(system):
        spec = WorkflowSpec(system=system, model=JAC, stride=880, frames=8,
                            pairs=2, placement=Placement.SPLIT)
        return [r.consumption_time for r in run_repetitions(spec, runs=4)]

    est = bootstrap_speedup(times(System.LUSTRE), times(System.DYAD))
    assert est.significant
    assert est.low > 2.0  # DYAD clearly faster with statistical backing
