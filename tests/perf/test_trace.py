"""Unit tests for timeline tracing and Chrome-trace export."""

import json

import pytest

from repro.errors import PerfError
from repro.perf.trace import SpanEvent, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


def test_spans_recorded_with_times(tracer, clock):
    ann = tracer.annotator("p0")
    ann.begin("work")
    clock.now = 2.0
    ann.end("work")
    spans = tracer.spans()
    assert len(spans) == 1
    assert spans[0] == SpanEvent("p0", "work", None, 0.0, 2.0)
    assert spans[0].duration == 2.0


def test_nested_spans_both_recorded(tracer, clock):
    ann = tracer.annotator("p0")
    ann.begin("outer", "movement")
    clock.now = 1.0
    ann.begin("inner")
    clock.now = 2.0
    ann.end("inner")
    clock.now = 3.0
    ann.end("outer")
    inner = tracer.spans(region="inner")[0]
    outer = tracer.spans(region="outer")[0]
    assert (inner.start, inner.end) == (1.0, 2.0)
    assert (outer.start, outer.end) == (0.0, 3.0)
    assert inner.category == "movement"  # inherited


def test_tracing_annotator_still_builds_calltree(tracer, clock):
    ann = tracer.annotator("p0")
    ann.begin("r")
    clock.now = 1.5
    ann.end("r")
    tree = ann.finish()
    assert tree.find("r").time == 1.5


def test_span_filters(tracer, clock):
    a = tracer.annotator("a")
    b = tracer.annotator("b")
    for ann in (a, b):
        ann.begin("x")
        ann.end("x")
    assert len(tracer.spans()) == 2
    assert len(tracer.spans(process="a")) == 1
    assert len(tracer.spans(process="a", region="y")) == 0


def test_duplicate_process_rejected(tracer):
    tracer.annotator("p")
    with pytest.raises(PerfError):
        tracer.annotator("p")


def test_concurrency_counting(tracer, clock):
    a = tracer.annotator("a")
    b = tracer.annotator("b")
    a.begin("io")
    clock.now = 1.0
    b.begin("io")
    clock.now = 2.0
    a.end("io")
    clock.now = 3.0
    b.end("io")
    assert tracer.concurrency("io", 1.5) == 2
    assert tracer.concurrency("io", 2.5) == 1
    assert tracer.concurrency("io", 5.0) == 0


def test_overlap_metric(tracer, clock):
    a = tracer.annotator("a")
    b = tracer.annotator("b")
    a.begin("w")
    clock.now = 4.0
    a.end("w")          # a busy [0, 4]
    b.begin("w")
    clock.now = 6.0
    b.end("w")          # b busy [4, 6]
    assert tracer.overlap("a", "b") == pytest.approx(0.0)

    c = tracer.annotator("c")
    clock.now = 1.0
    c.begin("w")
    clock.now = 5.0
    c.end("w")          # c busy [1, 5]
    assert tracer.overlap("a", "c") == pytest.approx(3.0)


def test_overlap_merges_adjacent_spans(tracer, clock):
    a = tracer.annotator("a")
    for _ in range(3):
        a.begin("w")
        clock.now += 1.0
        a.end("w")      # contiguous spans [0,1],[1,2],[2,3]
    b = tracer.annotator("b")
    b.begin("w")
    clock.now = 10.0
    b.end("w")          # b busy [3, 10]
    assert tracer.overlap("a", "b") == pytest.approx(0.0)


def test_recorded_only_process_gets_distinct_tid(tracer, clock):
    # A process whose spans arrive via record() alone (no annotator) must
    # still get its own tid and thread metadata in the Chrome export.
    tracer.annotator("named")
    tracer.record(SpanEvent("loner", "w", None, 0.0, 1.0))
    doc = tracer.to_chrome_trace()
    spans = {e["name"]: e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
    meta = {e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"}
    assert meta["named"] != meta["loner"]
    assert spans["w"] == meta["loner"]


def test_overlap_disjoint_busy_sets_exactly_zero(tracer, clock):
    a = tracer.annotator("a")
    b = tracer.annotator("b")
    for start in (0.0, 2.0, 4.0):
        clock.now = start
        a.begin("w")
        clock.now = start + 1.0
        a.end("w")          # a busy [0,1],[2,3],[4,5]
    for start in (1.0, 3.0, 5.0):
        clock.now = start
        b.begin("w")
        clock.now = start + 1.0
        b.end("w")          # b busy [1,2],[3,4],[5,6]
    assert tracer.overlap("a", "b") == 0.0  # exactly, not approximately


def test_overlap_matches_naive_on_random_spans(clock):
    import random

    def naive(a, b):
        total = 0.0
        for lo_a, hi_a in a:
            for lo_b, hi_b in b:
                total += max(0.0, min(hi_a, hi_b) - max(lo_a, lo_b))
        return total

    rng = random.Random(1234)
    for _ in range(50):
        tracer = Tracer(clock)
        for process in ("a", "b"):
            t = 0.0
            for _ in range(rng.randrange(0, 12)):
                t += rng.random()
                start = t
                t += rng.random()
                tracer.record(SpanEvent(process, "w", None, start, t))

        def busy(process):
            merged = []
            for e in sorted(tracer.spans(process=process),
                            key=lambda e: e.start):
                if merged and e.start <= merged[-1][1]:
                    merged[-1][1] = max(merged[-1][1], e.end)
                else:
                    merged.append([e.start, e.end])
            return merged

        expected = naive(busy("a"), busy("b"))
        assert tracer.overlap("a", "b") == pytest.approx(expected)


def test_chrome_trace_format(tracer, clock, tmp_path):
    ann = tracer.annotator("proc")
    ann.begin("region", "idle")
    clock.now = 0.001
    ann.end("region")
    doc = tracer.to_chrome_trace()
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert events[0]["name"] == "region"
    assert events[0]["cat"] == "idle"
    assert events[0]["dur"] == pytest.approx(1000.0)  # microseconds
    assert meta[0]["args"]["name"] == "proc"

    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(path)
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ms"
