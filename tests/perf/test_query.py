"""Unit tests for the call-path query language."""

import pytest

from repro.errors import QuerySyntaxError
from repro.perf.calltree import CallTree
from repro.perf.query import parse_query, query


@pytest.fixture
def tree():
    t = CallTree("q")
    for path, time in [
        (("dyad_consume",), 10.0),
        (("dyad_consume", "dyad_fetch"), 2.0),
        (("dyad_consume", "dyad_get_data"), 5.0),
        (("dyad_consume", "dyad_get_data", "rdma"), 4.0),
        (("read_single_buf",), 3.0),
        (("analytics_sleep",), 50.0),
    ]:
        node = t.node(*path)
        node.add_metric("time", time)
        node.add_metric("count", 1)
    t.find("dyad_consume", "dyad_fetch").metrics["category"] = "idle"
    return t


def names(nodes):
    return sorted(n.name for n in nodes)


def test_exact_path(tree):
    assert names(query(tree, "dyad_consume/dyad_fetch")) == ["dyad_fetch"]


def test_exact_path_no_match(tree):
    assert query(tree, "dyad_consume/missing") == []


def test_single_star_one_level(tree):
    assert names(query(tree, "*/dyad_fetch")) == ["dyad_fetch"]
    # '*' matches exactly one level: rdma is two levels deep
    assert query(tree, "*/rdma") == []


def test_double_star_any_depth(tree):
    assert names(query(tree, "**/rdma")) == ["rdma"]
    assert names(query(tree, "**/dyad_fetch")) == ["dyad_fetch"]


def test_double_star_includes_zero_levels(tree):
    assert names(query(tree, "**/read_single_buf")) == ["read_single_buf"]


def test_fnmatch_names(tree):
    assert names(query(tree, "**/dyad_*")) == [
        "dyad_consume", "dyad_fetch", "dyad_get_data",
    ]


def test_children_wildcard(tree):
    assert names(query(tree, "dyad_consume/*")) == ["dyad_fetch", "dyad_get_data"]


def test_object_dialect_regex(tree):
    matches = query(tree, [{"name": "dyad_.*"}])
    assert names(matches) == ["dyad_consume"]


def test_object_dialect_category(tree):
    matches = query(tree, ["**", {"category": "idle"}])
    assert names(matches) == ["dyad_fetch"]


def test_object_dialect_numeric_guard(tree):
    matches = query(tree, ["**", {"time>": 4.0}])
    assert names(matches) == ["analytics_sleep", "dyad_consume", "dyad_get_data"]


def test_object_dialect_combined_guards(tree):
    matches = query(tree, ["**", {"name": "dyad_.*", "time<": 3.0}])
    assert names(matches) == ["dyad_fetch"]


def test_tuple_quantifier(tree):
    matches = query(tree, [("**", {"name": ".*"}), {"name": "rdma"}])
    assert names(matches) == ["rdma"]


def test_parse_errors():
    with pytest.raises(QuerySyntaxError):
        parse_query("")
    with pytest.raises(QuerySyntaxError):
        parse_query([])
    with pytest.raises(QuerySyntaxError):
        parse_query([{"bogus_key": 1}])
    with pytest.raises(QuerySyntaxError):
        parse_query([("???", {"name": "x"})])
    with pytest.raises(QuerySyntaxError):
        parse_query([42])


def test_numeric_guard_operators(tree):
    assert names(query(tree, ["**", {"count>=": 1, "count<=": 1}])) == names(
        tree.nodes()
    )
    assert query(tree, ["**", {"count==": 2}]) == []
