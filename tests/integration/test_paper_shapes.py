"""Integration tests asserting the paper's qualitative shapes.

These use reduced configurations (fewer frames/pairs/runs than the full
experiments) but must still show every directional claim of the paper:
who wins, in which metric, and how the gap moves with scale. The full
quantitative comparison lives in the benchmarks and EXPERIMENTS.md.
"""

import pytest

from repro.md.models import JAC, STMV
from repro.workflow.runner import run_workflow
from repro.workflow.spec import Placement, System, WorkflowSpec

FRAMES = 32
JITTER = 0.05


def run(system, model=JAC, stride=None, pairs=2, placement=None, seed=0):
    stride = stride if stride is not None else model.paper_stride
    if placement is None:
        placement = (Placement.SINGLE_NODE
                     if system is System.XFS else Placement.SPLIT)
    spec = WorkflowSpec(system=system, model=model, stride=stride,
                        frames=FRAMES, pairs=pairs, placement=placement)
    return run_workflow(spec, seed=seed, jitter_cv=JITTER)


# ---------------------------------------------------------------------------
# Finding 1 / Fig 5: single node, DYAD vs XFS
# ---------------------------------------------------------------------------


def test_fig5_dyad_production_slower_but_modest():
    dyad = run(System.DYAD, placement=Placement.SINGLE_NODE)
    xfs = run(System.XFS, placement=Placement.SINGLE_NODE)
    ratio = dyad.production_movement / xfs.production_movement
    assert 1.1 < ratio < 2.0  # paper: 1.4x


def test_fig5_dyad_consumption_orders_of_magnitude_faster():
    dyad = run(System.DYAD, placement=Placement.SINGLE_NODE)
    xfs = run(System.XFS, placement=Placement.SINGLE_NODE)
    assert xfs.consumption_time / dyad.consumption_time > 10
    # XFS consumption is idle-dominated
    assert xfs.consumption_idle > 10 * xfs.consumption_movement


def test_fig5_producer_idle_insignificant():
    for system in (System.DYAD, System.XFS):
        result = run(system, placement=Placement.SINGLE_NODE)
        assert result.production_idle < 0.05 * result.production_movement


# ---------------------------------------------------------------------------
# Finding 2 / Fig 6: two nodes, DYAD vs Lustre
# ---------------------------------------------------------------------------


def test_fig6_network_hop_barely_hurts_dyad():
    local = run(System.DYAD, placement=Placement.SINGLE_NODE)
    remote = run(System.DYAD, placement=Placement.SPLIT)
    # production unaffected; consumption grows only by the transfer cost
    assert remote.production_movement == pytest.approx(
        local.production_movement, rel=0.25
    )
    assert remote.consumption_time < 3 * local.consumption_time


def test_fig6_dyad_beats_lustre_production_and_consumption():
    dyad = run(System.DYAD)
    lustre = run(System.LUSTRE)
    assert lustre.production_movement / dyad.production_movement > 3
    assert lustre.consumption_movement / dyad.consumption_movement > 1.5
    assert lustre.consumption_time / dyad.consumption_time > 10


# ---------------------------------------------------------------------------
# Finding 3 / Fig 7: production flat with ensemble size
# ---------------------------------------------------------------------------


def test_fig7_production_stable_with_scale():
    small = run(System.DYAD, pairs=8)
    large = run(System.DYAD, pairs=32)
    assert large.production_movement == pytest.approx(
        small.production_movement, rel=0.3
    )
    small_l = run(System.LUSTRE, pairs=8)
    large_l = run(System.LUSTRE, pairs=32)
    assert large_l.production_movement == pytest.approx(
        small_l.production_movement, rel=0.5
    )


# ---------------------------------------------------------------------------
# Finding 4 / Fig 8: model size scaling
# ---------------------------------------------------------------------------


def test_fig8_movement_grows_with_model_size():
    jac = run(System.DYAD, model=JAC)
    stmv = run(System.DYAD, model=STMV)
    assert stmv.consumption_movement > 5 * jac.consumption_movement
    assert stmv.production_movement > 5 * jac.production_movement


def test_fig8_dyad_movement_sublinear_in_data():
    """45.3x more data must cost DYAD less than 45.3x more movement."""
    jac = run(System.DYAD, model=JAC, pairs=8)
    stmv = run(System.DYAD, model=STMV, pairs=8)
    data_ratio = STMV.frame_bytes / JAC.frame_bytes
    time_ratio = stmv.consumption_movement / jac.consumption_movement
    assert time_ratio < data_ratio


def test_fig8_consumption_gap_widens_with_size():
    pairs = 16
    jac_d = run(System.DYAD, model=JAC, pairs=pairs)
    jac_l = run(System.LUSTRE, model=JAC, pairs=pairs)
    stmv_d = run(System.DYAD, model=STMV, pairs=pairs)
    stmv_l = run(System.LUSTRE, model=STMV, pairs=pairs)
    jac_gap = jac_l.consumption_movement / jac_d.consumption_movement
    stmv_gap = stmv_l.consumption_movement / stmv_d.consumption_movement
    assert stmv_gap > jac_gap > 1.0


# ---------------------------------------------------------------------------
# Finding 5 / Figs 11-12: stride scaling
# ---------------------------------------------------------------------------


def test_fig11_movement_flat_idle_grows_with_stride():
    low = run(System.DYAD, model=JAC, stride=1, pairs=4)
    high = run(System.DYAD, model=JAC, stride=50, pairs=4)
    assert high.consumption_movement == pytest.approx(
        low.consumption_movement, rel=0.5
    )
    assert high.consumption_idle > low.consumption_idle
    low_l = run(System.LUSTRE, model=JAC, stride=1, pairs=4)
    high_l = run(System.LUSTRE, model=JAC, stride=50, pairs=4)
    assert high_l.consumption_idle > low_l.consumption_idle


def test_fig12_gap_widens_with_stride_for_stmv():
    low_d = run(System.DYAD, model=STMV, stride=1, pairs=4)
    low_l = run(System.LUSTRE, model=STMV, stride=1, pairs=4)
    high_d = run(System.DYAD, model=STMV, stride=50, pairs=4)
    high_l = run(System.LUSTRE, model=STMV, stride=50, pairs=4)
    low_gap = low_l.consumption_time / low_d.consumption_time
    high_gap = high_l.consumption_time / high_d.consumption_time
    assert high_gap > low_gap


# ---------------------------------------------------------------------------
# cross-cutting sanity
# ---------------------------------------------------------------------------


def test_makespan_dyad_pipelines_traditional_serializes():
    """DYAD overlaps producer/consumer; coarse sync roughly doubles makespan."""
    dyad = run(System.DYAD)
    lustre = run(System.LUSTRE)
    assert lustre.makespan > 1.6 * dyad.makespan


def test_consumer_idle_equals_production_period_for_coarse_sync():
    lustre = run(System.LUSTRE)
    period = lustre.spec.stride_time
    assert lustre.consumption_idle == pytest.approx(period, rel=0.1)
