"""Tests for in-situ frame sources."""

import io

import numpy as np
import pytest

from repro.errors import ReproError
from repro.insitu.sources import (
    EngineSource,
    FrameSource,
    SyntheticSource,
    TrajectoryReplay,
)
from repro.md.engine import LJConfig
from repro.md.frame import Frame
from repro.md.trajectory import write_trajectory


def take(source, n):
    out = []
    for frame in source:
        out.append(frame)
        if len(out) == n:
            break
    return out


def test_synthetic_source_deterministic():
    a = take(SyntheticSource(natoms=20, seed=5), 3)
    b = take(SyntheticSource(natoms=20, seed=5), 3)
    assert a == b
    assert [f.step for f in a] == [0, 1, 2]


def test_synthetic_source_bounded():
    frames = list(SyntheticSource(natoms=10, count=4))
    assert len(frames) == 4


def test_synthetic_source_validation():
    with pytest.raises(ReproError):
        SyntheticSource(natoms=0)


def test_engine_source_advances_simulation():
    source = EngineSource(LJConfig(n_atoms=64, density=0.3, seed=1), stride=5)
    frames = take(source, 3)
    assert [f.step for f in frames] == [5, 10, 15]
    assert isinstance(source, FrameSource)


def test_engine_source_stride_validation():
    with pytest.raises(ReproError):
        EngineSource(LJConfig(n_atoms=64, density=0.3), stride=0)


def test_engine_fork_continues_from_current_state():
    source = EngineSource(LJConfig(n_atoms=64, density=0.3, seed=2), stride=5)
    take(source, 2)  # advance to step 10
    fork = source.fork(seed=9)
    assert fork.simulation.step_index == 10
    assert np.array_equal(fork.simulation.positions,
                          source.simulation.positions)
    # velocities perturbed, zero net momentum preserved
    assert not np.array_equal(fork.simulation.velocities,
                              source.simulation.velocities)
    assert np.allclose(fork.simulation.velocities.sum(axis=0), 0, atol=1e-9)


def test_engine_fork_diverges_from_parent():
    source = EngineSource(LJConfig(n_atoms=64, density=0.3, seed=2), stride=5)
    take(source, 1)
    fork = source.fork(seed=9, velocity_jitter=0.1)
    parent_frames = take(source, 3)
    fork_frames = take(fork, 3)
    # same steps, different trajectories
    assert [f.step for f in parent_frames] == [f.step for f in fork_frames]
    assert parent_frames[-1] != fork_frames[-1]


def test_engine_fork_validation():
    source = EngineSource(LJConfig(n_atoms=64, density=0.3), stride=5)
    with pytest.raises(ReproError):
        source.fork(seed=0, velocity_jitter=-1)


def test_trajectory_replay(tmp_path):
    rng = np.random.default_rng(0)
    frames = [Frame.random(30, rng, step=i) for i in range(4)]
    path = tmp_path / "t.mdt"
    write_trajectory(path, frames)
    replayed = list(TrajectoryReplay(path))
    assert replayed == frames
    # a replay source can be iterated twice
    assert list(TrajectoryReplay(path)) == frames
