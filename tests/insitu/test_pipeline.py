"""Tests for sinks and the steering pipeline."""

import io

import numpy as np
import pytest

from repro.errors import ReproError
from repro.insitu.pipeline import InSituPipeline
from repro.insitu.sinks import (
    AnalyticsSink,
    EigenvalueSteering,
    ObservableRecorder,
    Steering,
    TrajectoryCapture,
)
from repro.insitu.sources import SyntheticSource
from repro.md.analytics import radius_of_gyration
from repro.md.frame import Frame
from repro.md.trajectory import TrajectoryReader


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


def frames(n, natoms=40, seed=0):
    rng = np.random.default_rng(seed)
    return [Frame.random(natoms, rng, step=i) for i in range(n)]


def test_observable_recorder_series():
    sink = ObservableRecorder({"rg": radius_of_gyration})
    for i, frame in enumerate(frames(5)):
        assert sink.on_frame(i, frame) is Steering.CONTINUE
    assert len(sink.series["rg"]) == 5
    assert sink.steps == [0, 1, 2, 3, 4]
    with pytest.raises(ReproError):
        ObservableRecorder({})


def test_trajectory_capture_roundtrip():
    buf = io.BytesIO()
    sink = TrajectoryCapture(buf)
    batch = frames(3)
    for i, frame in enumerate(batch):
        sink.on_frame(i, frame)
    sink.on_end()
    sink.on_end()  # idempotent
    assert list(TrajectoryReader(buf)) == batch


def test_eigenvalue_steering_annotate_only():
    sink = EigenvalueSteering({"s": range(10)}, cutoff=3.0, threshold=0.1,
                              warmup=2, events_to_terminate=0)
    verdicts = {sink.on_frame(i, f) for i, f in enumerate(frames(8, seed=3))}
    assert verdicts == {Steering.CONTINUE}  # annotates, never terminates


def test_eigenvalue_steering_validation():
    with pytest.raises(ReproError):
        EigenvalueSteering({"s": range(4)}, events_to_terminate=-1)


# ---------------------------------------------------------------------------
# pipeline
# ---------------------------------------------------------------------------


def test_pipeline_runs_all_frames():
    pipeline = InSituPipeline(
        source=SyntheticSource(natoms=50, count=6),
        sinks=[ObservableRecorder({"rg": radius_of_gyration})],
    )
    report = pipeline.run(max_frames=20)
    assert report.ok, report.errors
    assert report.frames_produced == 6
    assert report.frames_consumed == 6
    assert not report.terminated_early
    assert len(report.observables["rg"]) == 6


def test_pipeline_respects_max_frames():
    pipeline = InSituPipeline(
        source=SyntheticSource(natoms=50),  # unbounded
        sinks=[ObservableRecorder({"rg": radius_of_gyration})],
    )
    report = pipeline.run(max_frames=5)
    assert report.frames_produced == 5
    assert report.frames_consumed == 5


def test_pipeline_steering_stops_producer():
    class StopAfter(AnalyticsSink):
        def __init__(self, n):
            self.n = n
            self.seen = 0

        def on_frame(self, index, frame):
            self.seen += 1
            return (Steering.TERMINATE if self.seen >= self.n
                    else Steering.CONTINUE)

    sink = StopAfter(3)
    pipeline = InSituPipeline(
        source=SyntheticSource(natoms=50),
        sinks=[sink],
    )
    report = pipeline.run(max_frames=100)
    assert report.terminated_early
    assert sink.seen >= 3
    # producer stopped long before the 100-frame budget
    assert report.frames_produced < 100
    assert report.ok


def test_pipeline_multiple_sinks_all_fed():
    buf = io.BytesIO()
    recorder = ObservableRecorder({"rg": radius_of_gyration})
    capture = TrajectoryCapture(buf)
    pipeline = InSituPipeline(
        source=SyntheticSource(natoms=30, count=4),
        sinks=[recorder, capture],
    )
    report = pipeline.run(max_frames=10)
    assert report.ok
    assert len(recorder.series["rg"]) == 4
    assert len(TrajectoryReader(buf)) == 4


def test_pipeline_collects_sink_errors():
    class Broken(AnalyticsSink):
        def on_frame(self, index, frame):
            raise RuntimeError("sink exploded")

    pipeline = InSituPipeline(
        source=SyntheticSource(natoms=30, count=3),
        sinks=[Broken()],
        consume_timeout=5.0,
    )
    report = pipeline.run(max_frames=5)
    assert not report.ok
    assert any("sink exploded" in str(e) for e in report.errors)


def test_pipeline_validation():
    with pytest.raises(ReproError):
        InSituPipeline(source=SyntheticSource(natoms=10), sinks=[])
    pipeline = InSituPipeline(
        source=SyntheticSource(natoms=10, count=1),
        sinks=[ObservableRecorder({"rg": radius_of_gyration})],
    )
    with pytest.raises(ReproError):
        pipeline.run(max_frames=0)


def test_pipeline_explicit_workdir(tmp_path):
    pipeline = InSituPipeline(
        source=SyntheticSource(natoms=20, count=2),
        sinks=[ObservableRecorder({"rg": radius_of_gyration})],
        workdir=str(tmp_path),
    )
    report = pipeline.run(max_frames=4)
    assert report.ok
    # the staging dirs are left behind for inspection
    assert (tmp_path / "node00").exists()
