"""Property-based tests for the call-path query language."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.calltree import CallTree
from repro.perf.query import query

name_st = st.text(alphabet="abcdef_", min_size=1, max_size=6)


@st.composite
def random_trees(draw):
    tree = CallTree("prop")
    n_paths = draw(st.integers(min_value=1, max_value=15))
    for _ in range(n_paths):
        depth = draw(st.integers(min_value=1, max_value=4))
        path = tuple(draw(name_st) for _ in range(depth))
        node = tree.node(*path)
        node.add_metric("time", draw(st.floats(min_value=0, max_value=100)))
        node.add_metric("count", 1)
    return tree


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_double_star_star_matches_everything(tree):
    """`**/*` is the universal query."""
    matched = query(tree, "**/*")
    assert {id(n) for n in matched} == {id(n) for n in tree.nodes()}


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_exact_path_query_finds_each_node(tree):
    """Every node is found by querying its own exact path."""
    for node in tree.nodes():
        matched = query(tree, "/".join(node.path()))
        assert node in matched


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_name_query_equals_name_filter(tree):
    """`**/<name>` returns exactly the nodes with that name."""
    for node in list(tree.nodes())[:5]:
        matched = query(tree, f"**/{node.name}")
        expected = [n for n in tree.nodes() if n.name == node.name]
        assert {id(n) for n in matched} == {id(n) for n in expected}


@given(random_trees(), st.floats(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_numeric_guard_partition(tree, threshold):
    """time> and time<= guards partition the node set."""
    above = query(tree, ["**", {"time>": threshold}])
    below = query(tree, ["**", {"time<=": threshold}])
    assert len(above) + len(below) == len(list(tree.nodes()))
    assert not ({id(n) for n in above} & {id(n) for n in below})
