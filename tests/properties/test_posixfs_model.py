"""Model-based property test: the simulated POSIX FS vs a dict reference.

Hypothesis drives random operation sequences (create/write/append/read/
unlink/mkdir) against both the XFS model and a trivial in-memory reference
implementation; the observable behaviour (contents, sizes, existence,
errors) must agree exactly. This is the strongest guard on the namespace
and handle semantics everything else is built on.
"""

from typing import Dict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.network import Fabric, FabricConfig
from repro.cluster.node import Node, NodeConfig
from repro.cluster.ssd import SSDConfig
from repro.errors import FileNotFound, StorageError
from repro.sim.core import Environment
from repro.sim.rng import RngStreams
from repro.storage.xfs import XFSFileSystem

PATHS = ["/a", "/b", "/dir/c", "/dir/d"]


def fresh_fs():
    env = Environment()
    fabric = Fabric(env, FabricConfig(), RngStreams(0))
    node = Node(
        env, "node00",
        NodeConfig(ssd=SSDConfig(capacity=10**9)),
        fabric, RngStreams(0),
    )
    fs = XFSFileSystem(node, store_data=True)
    fs.makedirs("/dir")
    return env, fs


def drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


class Reference:
    """The trivially-correct model: path -> bytes."""

    def __init__(self):
        self.files: Dict[str, bytes] = {}

    def write(self, path, data):
        self.files[path] = data

    def append(self, path, data):
        self.files[path] = self.files.get(path, b"") + data

    def read(self, path):
        if path not in self.files:
            raise FileNotFound(path)
        return self.files[path]

    def unlink(self, path):
        if path not in self.files:
            raise FileNotFound(path)
        del self.files[path]

    def exists(self, path):
        return path in self.files


operation = st.one_of(
    st.tuples(st.just("write"), st.sampled_from(PATHS),
              st.binary(min_size=0, max_size=64)),
    st.tuples(st.just("append"), st.sampled_from(PATHS),
              st.binary(min_size=1, max_size=32)),
    st.tuples(st.just("read"), st.sampled_from(PATHS), st.just(b"")),
    st.tuples(st.just("unlink"), st.sampled_from(PATHS), st.just(b"")),
    st.tuples(st.just("exists"), st.sampled_from(PATHS), st.just(b"")),
)


@given(ops=st.lists(operation, min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_fs_agrees_with_reference(ops):
    env, fs = fresh_fs()
    ref = Reference()

    def apply(op, path, data):
        """Run one op on the FS; returns (outcome, payload)."""
        if op == "write":
            handle = yield from fs.open(path, "w")
            yield from handle.write(len(data), data)
            yield from handle.close()
            return ("ok", None)
        if op == "append":
            handle = yield from fs.open(path, "a")
            yield from handle.write(len(data), data)
            yield from handle.close()
            return ("ok", None)
        if op == "read":
            try:
                handle = yield from fs.open(path, "r")
            except FileNotFound:
                return ("enoent", None)
            count, payload = yield from handle.read()
            yield from handle.close()
            return ("ok", payload if payload is not None else b"")
        if op == "unlink":
            try:
                yield from fs.unlink(path)
            except FileNotFound:
                return ("enoent", None)
            return ("ok", None)
        if op == "exists":
            return ("ok", fs.exists(path))
        raise AssertionError(op)

    for op, path, data in ops:
        outcome, payload = drive(env, apply(op, path, data))
        if op == "write":
            ref.write(path, data)
        elif op == "append":
            ref.append(path, data)
        elif op == "read":
            try:
                expected = ref.read(path)
            except FileNotFound:
                assert outcome == "enoent", (op, path)
            else:
                assert outcome == "ok"
                assert payload == expected, (path, payload, expected)
        elif op == "unlink":
            try:
                ref.unlink(path)
            except FileNotFound:
                assert outcome == "enoent"
            else:
                assert outcome == "ok"
        elif op == "exists":
            assert payload == ref.exists(path)

    # final state: every reference file readable with matching content
    for path, expected in ref.files.items():
        def check(path=path):
            handle = yield from fs.open(path, "r")
            count, payload = yield from handle.read()
            yield from handle.close()
            return payload

        assert drive(env, check()) == expected

    # capacity accounting consistent with reference sizes
    assert fs.node.ssd.used == sum(len(v) for v in ref.files.values())
