"""Property-based tests for the DES kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Environment
from repro.sim.resources import Resource, SharedBandwidth


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_clock_monotone_and_final_time_is_max(delays):
    """Time never goes backwards; the run ends at the latest timeout."""
    env = Environment()
    observed = []

    def proc(d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert observed == sorted(observed)
    assert env.now == max(delays)


@given(
    capacity=st.integers(min_value=1, max_value=5),
    jobs=st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1,
                  max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_resource_never_exceeds_capacity(capacity, jobs):
    """At no instant do more than `capacity` holders exist, and all jobs run."""
    env = Environment()
    res = Resource(env, capacity)
    finished = []
    max_seen = []

    def worker(duration):
        req = res.request()
        yield req
        max_seen.append(res.count)
        yield env.timeout(duration)
        res.release(req)
        finished.append(duration)

    for job in jobs:
        env.process(worker(job))
    env.run()
    assert len(finished) == len(jobs)
    assert max(max_seen) <= capacity


@given(
    capacity=st.integers(min_value=1, max_value=4),
    services=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=2,
                      max_size=15),
)
@settings(max_examples=50, deadline=None)
def test_resource_fifo_completion_order_single_capacity(capacity, services):
    """With capacity 1, grants happen strictly in request order."""
    env = Environment()
    res = Resource(env, 1)
    grant_order = []

    def worker(index, duration):
        req = res.request()
        yield req
        grant_order.append(index)
        yield env.timeout(duration)
        res.release(req)

    for i, s in enumerate(services):
        env.process(worker(i, s))
    env.run()
    assert grant_order == list(range(len(services)))


@given(
    bandwidth=st.floats(min_value=1.0, max_value=1e6),
    sizes=st.lists(st.floats(min_value=0.1, max_value=1e5), min_size=1,
                   max_size=12),
    starts=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                    max_size=12),
)
@settings(max_examples=60, deadline=None)
def test_shared_bandwidth_conservation(bandwidth, sizes, starts):
    """All bytes arrive; total time >= the work-conserving lower bound."""
    env = Environment()
    chan = SharedBandwidth(env, bandwidth)
    n = min(len(sizes), len(starts))
    sizes, starts = sizes[:n], starts[:n]
    done = []

    def mover(start, size):
        yield env.timeout(start)
        yield chan.transfer(size)
        done.append(env.now)

    for start, size in zip(starts, sizes):
        env.process(mover(start, size))
    env.run()
    assert len(done) == n
    assert chan.active_flows == 0
    assert abs(chan.bytes_moved - sum(sizes)) <= max(1e-6 * n, 1e-9)
    # work conservation: cannot finish before first_start + total/bandwidth
    lower_bound = min(starts) + sum(sizes) / bandwidth
    assert env.now >= lower_bound - 1e-6 * max(1.0, lower_bound)


@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=2,
                   max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_shared_bandwidth_equal_flows_finish_together(sizes):
    """Identical simultaneous flows complete at the same instant."""
    env = Environment()
    chan = SharedBandwidth(env, 100.0)
    size = sizes[0]
    done = []

    def mover():
        yield chan.transfer(size)
        done.append(env.now)

    for _ in range(len(sizes)):
        env.process(mover())
    env.run()
    assert max(done) - min(done) < 1e-9 * max(1.0, max(done))
