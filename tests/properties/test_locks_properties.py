"""Property-based tests for lock-table invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Environment
from repro.storage.locks import LockMode, LockTable


@st.composite
def lock_workloads(draw):
    n = draw(st.integers(min_value=1, max_value=15))
    jobs = []
    for i in range(n):
        jobs.append((
            draw(st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE])),
            draw(st.floats(min_value=0.0, max_value=5.0)),   # arrival
            draw(st.floats(min_value=0.01, max_value=2.0)),  # hold time
        ))
    return jobs


@given(lock_workloads())
@settings(max_examples=60, deadline=None)
def test_mutual_exclusion_invariant(jobs):
    """Never an exclusive holder together with any other holder."""
    env = Environment()
    locks = LockTable(env)
    violations = []
    completed = []

    def worker(index, mode, arrival, hold):
        yield env.timeout(arrival)
        lock = yield from locks.acquire("/file", mode, f"w{index}")
        holders = locks.holders("/file")
        exclusive = [h for h in holders if h.mode is LockMode.EXCLUSIVE]
        if exclusive and len(holders) > 1:
            violations.append(holders)
        yield env.timeout(hold)
        locks.release(lock)
        completed.append(index)

    for i, (mode, arrival, hold) in enumerate(jobs):
        env.process(worker(i, mode, arrival, hold))
    env.run()
    assert not violations
    assert len(completed) == len(jobs)  # nobody starves


@given(lock_workloads())
@settings(max_examples=60, deadline=None)
def test_lock_table_drains_clean(jobs):
    """After all workers finish, the table holds no state."""
    env = Environment()
    locks = LockTable(env)

    def worker(index, mode, arrival, hold):
        yield env.timeout(arrival)
        lock = yield from locks.acquire("/f", mode, f"w{index}")
        yield env.timeout(hold)
        locks.release(lock)

    for i, (mode, arrival, hold) in enumerate(jobs):
        env.process(worker(i, mode, arrival, hold))
    env.run()
    assert locks.holders("/f") == []
    assert locks.queue_len("/f") == 0


@given(
    n_readers=st.integers(min_value=1, max_value=10),
    hold=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=30, deadline=None)
def test_concurrent_readers_overlap(n_readers, hold):
    """All-shared workloads run fully concurrently (finish at the same time)."""
    env = Environment()
    locks = LockTable(env)
    finish = []

    def reader(i):
        lock = yield from locks.acquire("/f", LockMode.SHARED, f"r{i}")
        yield env.timeout(hold)
        locks.release(lock)
        finish.append(env.now)

    for i in range(n_readers):
        env.process(reader(i))
    env.run()
    assert all(abs(t - hold) < 1e-12 for t in finish)
