"""Property-based tests for the frame codec."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.frame import ATOM_DTYPE, Frame, frame_size


@st.composite
def frames(draw):
    natoms = draw(st.integers(min_value=0, max_value=2000))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    step = draw(st.integers(min_value=0, max_value=2**40))
    time = draw(st.floats(min_value=0, max_value=1e9, allow_nan=False))
    rng = np.random.default_rng(seed)
    if natoms == 0:
        return Frame.zeros(0, step=step, time=time)
    return Frame.random(natoms, rng, box=draw(
        st.floats(min_value=1.0, max_value=1e4)
    ), step=step, time=time)


@given(frames())
@settings(max_examples=80, deadline=None)
def test_roundtrip_identity(frame):
    assert Frame.decode(frame.encode()) == frame


@given(frames())
@settings(max_examples=80, deadline=None)
def test_encode_length_exact(frame):
    assert len(frame.encode()) == frame_size(frame.natoms)


@given(st.integers(min_value=0, max_value=10**7))
def test_frame_size_linear(natoms):
    assert frame_size(natoms) == 44 + 28 * natoms


@given(frames(), st.integers(min_value=0, max_value=200))
@settings(max_examples=50, deadline=None)
def test_single_byte_corruption_never_crashes(frame, position):
    """decode() on corrupted input either raises ReproError or returns a frame."""
    from repro.errors import ReproError

    payload = bytearray(frame.encode())
    position = position % len(payload)
    payload[position] ^= 0xFF
    try:
        Frame.decode(bytes(payload))
    except ReproError:
        pass  # structural corruption detected — acceptable


@given(frames())
@settings(max_examples=40, deadline=None)
def test_double_encode_stable(frame):
    once = frame.encode()
    twice = Frame.decode(once).encode()
    assert once == twice
