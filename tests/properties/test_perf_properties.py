"""Property-based tests for the perf-tooling invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.calltree import CallTree, diff_trees
from repro.perf.thicket import Thicket

name_st = st.text(alphabet="abcde_", min_size=1, max_size=5)


@st.composite
def labelled_trees(draw, n_min=1, n_max=6):
    n_trees = draw(st.integers(min_value=n_min, max_value=n_max))
    paths = draw(st.lists(
        st.tuples(name_st, name_st), min_size=1, max_size=6, unique=True,
    ))
    trees = []
    for _ in range(n_trees):
        tree = CallTree()
        for path in paths:
            node = tree.node(*path)
            # subnormals excluded: 5e-324 * 1.5 rounds to exactly 2x,
            # which would falsify the scaling property for float reasons
            # unrelated to the code under test
            node.add_metric(
                "time", draw(st.floats(min_value=0.0, max_value=100.0,
                                       allow_subnormal=False))
            )
        trees.append(tree)
    return trees


@given(labelled_trees())
@settings(max_examples=50, deadline=None)
def test_thicket_stats_match_numpy(trees):
    """Thicket per-path mean/std/min/max equal direct numpy reductions."""
    th = Thicket()
    for i, tree in enumerate(trees):
        th.add(tree, run=i)
    stats = th.stats("time")
    for path, node_stats in stats.items():
        values = np.array([t.flat("time")[path] for t in trees])
        assert node_stats.n == len(trees)
        assert node_stats.mean == float(np.mean(values))
        assert node_stats.minimum == float(np.min(values))
        assert node_stats.maximum == float(np.max(values))
        if len(values) > 1:
            assert abs(node_stats.std - float(np.std(values, ddof=1))) < 1e-9


@given(labelled_trees())
@settings(max_examples=50, deadline=None)
def test_aggregate_mean_equals_stats_mean(trees):
    """The composite mean tree agrees with per-path stats means."""
    th = Thicket()
    for tree in trees:
        th.add(tree)
    composite = th.aggregate("mean")
    for path, node_stats in th.stats("time").items():
        assert abs(composite.find(*path).time - node_stats.mean) < 1e-9


@given(labelled_trees(n_min=1, n_max=1))
@settings(max_examples=50, deadline=None)
def test_diff_with_self_is_unity(trees):
    """diff(a, a) has ratio 1 (or 0/0 -> 0) on every node."""
    tree = trees[0]
    diff = diff_trees(tree, tree)
    for node in diff.nodes():
        if "ratio" not in node.metrics:
            continue  # structural intermediate node
        if node.metrics["lhs"] == 0.0:
            assert node.metrics["ratio"] == 0.0
        else:
            assert abs(node.metrics["ratio"] - 1.0) < 1e-12


@given(labelled_trees(n_min=2, n_max=2),
       st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=50, deadline=None)
def test_diff_scaling_property(trees, factor):
    """Scaling the numerator scales every finite ratio by the same factor."""
    a, b = trees
    scaled = a.copy()
    for node in scaled.nodes():
        if "time" in node.metrics:
            node.metrics["time"] *= factor
    base = diff_trees(a, b)
    scaled_diff = diff_trees(scaled, b)
    for node in base.nodes():
        ratio = node.metrics.get("ratio")
        if ratio is None or ratio in (0.0, float("inf")):
            continue
        expected = ratio * factor
        if not math.isfinite(expected):
            continue  # near-overflow ratios: the product leaves float range
        scaled_ratio = scaled_diff.find(*node.path()).metrics["ratio"]
        assert abs(scaled_ratio - expected) < 1e-6 * max(1.0, expected)
