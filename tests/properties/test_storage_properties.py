"""Property-based tests for storage-layer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.network import Fabric, FabricConfig
from repro.sim.core import Environment
from repro.sim.rng import RngStreams
from repro.storage.lustre import LustreConfig, LustreFileSystem, LustreServers
from repro.units import mib


def make_fs(env, stripe_count=2, n_oss=2):
    fabric = Fabric(env, FabricConfig(), RngStreams(0))
    fabric.attach("node00")
    config = LustreConfig(stripe_count=stripe_count, n_oss=n_oss)
    servers = LustreServers(env, fabric, config, RngStreams(0))
    return LustreFileSystem(servers), servers


@given(
    nbytes=st.integers(min_value=1, max_value=mib(256)),
    stripe_count=st.integers(min_value=1, max_value=8),
    n_oss=st.integers(min_value=1, max_value=4),
    path_seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=100, deadline=None)
def test_stripe_split_partitions_bytes(nbytes, stripe_count, n_oss, path_seed):
    """Every stripe split is a partition: all bytes, valid OSTs, bounded."""
    env = Environment()
    fs, servers = make_fs(env, stripe_count=stripe_count, n_oss=n_oss)
    parts = fs._stripe_split(f"/f{path_seed}", nbytes)
    assert sum(share for _, share in parts) == nbytes
    assert all(share > 0 for _, share in parts)
    assert len(parts) <= stripe_count
    assert all(0 <= ost < servers.n_osts for ost, _ in parts)
    # distinct OSTs per file
    osts = [ost for ost, _ in parts]
    assert len(set(osts)) == len(osts)


@given(
    nbytes=st.integers(min_value=1, max_value=mib(64)),
    stripe_count=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_stripe_shares_balanced(nbytes, stripe_count):
    """No stripe holds more than one stripe-unit above any other."""
    env = Environment()
    fs, servers = make_fs(env, stripe_count=stripe_count)
    parts = fs._stripe_split("/balance", nbytes)
    shares = [share for _, share in parts]
    if len(shares) > 1:
        unit = servers.config.stripe_size
        assert max(shares) - min(shares) <= unit


@given(nbytes=st.integers(min_value=0, max_value=mib(32)))
@settings(max_examples=40, deadline=None)
def test_stream_floor_monotone_and_consistent(nbytes):
    """The cold-read floor is monotone in size and respects both regimes."""
    env = Environment()
    _, servers = make_fs(env)
    cfg = servers.config
    floor = servers._stream_floor(nbytes)
    assert floor >= 0
    assert servers._stream_floor(nbytes + 1024) >= floor
    # never faster than the burst rate, never slower than pure stream rate
    assert floor >= nbytes / cfg.read_burst_bandwidth - 1e-12
    assert floor <= nbytes / cfg.read_stream_bandwidth + \
        cfg.read_burst_bytes / cfg.read_burst_bandwidth + 1e-12


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=mib(4)), min_size=1,
                   max_size=10),
)
@settings(max_examples=40, deadline=None)
def test_lustre_write_read_conserves_sizes(sizes):
    """What goes in comes out, byte-exact, for arbitrary size mixes."""
    env = Environment()
    fabric = Fabric(env, FabricConfig(), RngStreams(0))
    fabric.attach("node00")
    fabric.attach("node01")
    servers = LustreServers(env, fabric, None, RngStreams(0))
    fs = LustreFileSystem(servers)
    results = []

    def flow():
        for i, size in enumerate(sizes):
            handle = yield from fs.open(f"/f{i}", "w", client="node00")
            yield from handle.write(size)
            yield from handle.close()
        for i, size in enumerate(sizes):
            handle = yield from fs.open(f"/f{i}", "r", client="node01")
            count, _ = yield from handle.read()
            yield from handle.close()
            results.append((count, size))

    proc = env.process(flow())
    env.run(proc)
    assert all(count == size for count, size in results)
