"""Unit tests for the Flux-like KVS model."""

import pytest

from repro.cluster.network import Fabric, FabricConfig
from repro.errors import ConfigError, KeyNotFound
from repro.kvs.store import KVS, KVSConfig
from repro.sim.rng import RngStreams


@pytest.fixture
def kvs(env):
    fabric = Fabric(env, FabricConfig(), RngStreams(0))
    fabric.attach("node00")
    fabric.attach("node01")
    return KVS(env, fabric, "broker")


def _drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def test_commit_then_lookup(env, kvs):
    def flow():
        yield from kvs.commit("node00", "k", {"v": 1})
        value = yield from kvs.lookup("node01", "k")
        return value

    assert _drive(env, flow()) == {"v": 1}


def test_lookup_missing_raises_after_paying_rpc(env, kvs):
    def flow():
        start = env.now
        try:
            yield from kvs.lookup("node00", "nope")
        except KeyNotFound:
            return env.now - start
        return None

    elapsed = _drive(env, flow())
    assert elapsed is not None and elapsed > 0


def test_wait_for_blocks_until_commit(env, kvs):
    got = []

    def waiter():
        value = yield from kvs.wait_for("node01", "late")
        got.append((env.now, value))

    def committer():
        yield env.timeout(3.0)
        yield from kvs.commit("node00", "late", 99)

    env.process(waiter())
    env.process(committer())
    env.run()
    assert got and got[0][1] == 99
    assert got[0][0] >= 3.0


def test_wait_for_existing_key_returns_fast(env, kvs):
    def flow():
        yield from kvs.commit("node00", "k", 1)
        start = env.now
        value = yield from kvs.wait_for("node01", "k")
        return value, env.now - start

    value, elapsed = _drive(env, flow())
    assert value == 1
    assert elapsed < 0.001


def test_multiple_watchers_all_woken(env, kvs):
    got = []

    def waiter(name):
        value = yield from kvs.wait_for("node01", "k")
        got.append((name, value))

    def committer():
        yield env.timeout(1.0)
        yield from kvs.commit("node00", "k", "x")

    env.process(waiter("a"))
    env.process(waiter("b"))
    env.process(committer())
    env.run()
    assert sorted(got) == [("a", "x"), ("b", "x")]


def test_commit_overwrites(env, kvs):
    def flow():
        yield from kvs.commit("node00", "k", 1)
        yield from kvs.commit("node00", "k", 2)
        return (yield from kvs.lookup("node00", "k"))

    assert _drive(env, flow()) == 2


def test_server_queue_serializes_bursts(env, kvs):
    done_times = []

    def committer(i):
        yield from kvs.commit("node00", f"k{i}", i)
        done_times.append(env.now)

    for i in range(5):
        env.process(committer(i))
    env.run()
    # single service thread: completions are spaced by >= the service time
    gaps = [b - a for a, b in zip(done_times, done_times[1:])]
    assert all(g >= kvs.config.commit_service * 0.99 for g in gaps)


def test_stats_counters(env, kvs):
    def flow():
        yield from kvs.commit("node00", "k", 1)
        yield from kvs.lookup("node00", "k")
        yield from kvs.wait_for("node00", "k")

    _drive(env, flow())
    assert kvs.stats.commits == 1
    assert kvs.stats.lookups == 1
    assert kvs.stats.watches == 1
    assert kvs.stats.mean_queue_wait >= 0.0


def test_untimed_peeks(env, kvs):
    assert not kvs.exists("k")
    with pytest.raises(KeyNotFound):
        kvs.value("k")
    _drive(env, kvs.commit("node00", "k", 7))
    assert kvs.exists("k")
    assert kvs.value("k") == 7


def test_loopback_client_cheaper_than_remote(env, kvs):
    def flow():
        yield from kvs.commit("broker", "a", 1)   # loopback
        start = env.now
        yield from kvs.lookup("broker", "a")
        loop = env.now - start
        start = env.now
        yield from kvs.lookup("node00", "a")
        remote = env.now - start
        return loop, remote

    loop, remote = _drive(env, flow())
    assert loop < remote


def test_config_validation():
    with pytest.raises(ConfigError):
        KVSConfig(server_capacity=0).validate()
    with pytest.raises(ConfigError):
        KVSConfig(commit_service=-1).validate()
    with pytest.raises(ConfigError):
        KVSConfig(value_size=-1).validate()
