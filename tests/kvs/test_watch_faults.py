"""KVS watch delivery under races and broker faults.

Pins the watch machinery's delivery contract the pubsub streaming mode
leans on:

- **exactly-once at timestep boundaries** — a watcher armed in the very
  timestep its key commits is woken exactly once, whichever side the
  event heap schedules first, and a commit racing the registration RPC
  is found by the post-registration data check (no notification fires);
- **duplicate tolerance** — re-committing a watched key never re-fires
  the latched signal (no double wake-up, no SimulationError);
- **lost-wakeup recovery** — ``drop_watches()`` (the broker's
  crash/restart fault surface) wakes parked watchers with a loss
  sentinel; they back off, re-register, re-check, and still return the
  committed value — including when the commit itself raced the outage;
- **end-to-end** — a ``dyad_crash`` striking while pubsub consumers are
  parked on watches drops those watches and the run still completes
  with zero invariant violations.
"""

import pytest

from repro.cluster.network import Fabric, FabricConfig
from repro.dyad.config import DyadConfig
from repro.faults.plan import FaultEvent, FaultPlan
from repro.kvs.store import KVS, KVSConfig
from repro.md.models import JAC
from repro.sim.rng import RngStreams
from repro.workflow.runner import run_workflow
from repro.workflow.spec import Placement, SyncMode, System, WorkflowSpec


@pytest.fixture
def kvs(env):
    fabric = Fabric(env, FabricConfig(), RngStreams(0))
    fabric.attach("node00")
    fabric.attach("node01")
    return KVS(env, fabric, "broker")


def _timings(env_factory):
    """Deterministic (registration, commit) durations for this fabric."""
    from repro.sim.core import Environment

    env = Environment()
    fabric = Fabric(env, FabricConfig(), RngStreams(0))
    fabric.attach("node00")
    fabric.attach("node01")
    probe = KVS(env, fabric, "broker")
    times = {}

    def commit_probe():
        start = env.now
        yield from probe.commit("node00", "probe", 1)
        times["commit"] = env.now - start

    def watch_probe():
        start = env.now
        yield from probe.wait_for("node01", "probe")
        times["watch_hit"] = env.now - start

    proc = env.process(commit_probe())
    env.run()
    env.process(watch_probe())
    env.run()
    return times


# ---------------------------------------------------------------------------
# exactly-once at timestep boundaries
# ---------------------------------------------------------------------------


def test_watch_armed_same_timestep_as_commit_fires_exactly_once(env, kvs):
    # Calibrate the deterministic RPC durations, then start the commit so
    # it lands at the exact simulated instant the watcher parks (the
    # registration RPC time), putting both on the same event timestep.
    times = _timings(None)
    # wait_for's registration pays a watch RPC, so a watcher started at
    # t=w parks at w + times["watch_hit"]; a commit started at t=c lands
    # at c + times["commit"]. Offset the slower starter so both land on
    # the same instant.
    skew = times["commit"] - times["watch_hit"]
    got = []

    def watcher():
        yield env.timeout(max(skew, 0.0))
        value = yield from kvs.wait_for("node01", "k")
        got.append((env.now, value))

    def committer():
        yield env.timeout(max(-skew, 0.0))
        yield from kvs.commit("node00", "k", 42)

    env.process(watcher())
    env.process(committer())
    env.run()
    assert got == [(pytest.approx(got[0][0]), 42)]
    assert len(got) == 1
    assert kvs.stats.lost_wakeups == 0


def test_commit_racing_registration_found_by_data_check(env, kvs):
    # The commit lands while the watcher's registration RPC is still in
    # flight: no notification ever fires (the signal latches with nobody
    # parked) and the post-registration data check returns the value.
    got = []

    def watcher():
        value = yield from kvs.wait_for("node01", "k")
        got.append(value)

    def committer():
        yield from kvs.commit("node00", "k", 7)

    env.process(watcher())
    env.process(committer())
    env.run()
    assert got == [7]


def test_duplicate_commit_never_refires_latched_signal(env, kvs):
    got = []

    def watcher():
        value = yield from kvs.wait_for("node01", "k")
        got.append(value)

    def committer():
        yield env.timeout(1.0)
        yield from kvs.commit("node00", "k", 1)
        yield from kvs.commit("node00", "k", 2)   # duplicate: no re-fire
        yield from kvs.commit("node00", "k", 3)

    env.process(watcher())
    env.process(committer())
    env.run()
    assert got == [1]
    assert kvs.value("k") == 3


# ---------------------------------------------------------------------------
# lost-wakeup recovery
# ---------------------------------------------------------------------------


def test_drop_watches_wakes_and_rearms_parked_watcher(env, kvs):
    got = []

    def watcher():
        value = yield from kvs.wait_for("node01", "k")
        got.append((env.now, value))

    def chaos():
        yield env.timeout(1.0)
        dropped = kvs.drop_watches()
        assert dropped == 1
        yield env.timeout(2.0)
        yield from kvs.commit("node00", "k", 42)

    env.process(watcher())
    env.process(chaos())
    env.run()
    assert got and got[0][1] == 42
    assert got[0][0] > 3.0
    assert kvs.stats.dropped_watches == 1
    assert kvs.stats.lost_wakeups == 1
    assert kvs.stats.watches == 2       # original + re-registration


def test_commit_racing_outage_found_on_rearm(env, kvs):
    # The commit lands inside the re-arm backoff window: the recovering
    # watcher's re-registration data check finds it instead of parking
    # on a notification that will never come.
    slow_rearm = KVSConfig(watch_rearm_delay=1.0)
    fabric = Fabric(env, FabricConfig(), RngStreams(0))
    fabric.attach("node00")
    fabric.attach("node01")
    store = KVS(env, fabric, "broker", config=slow_rearm)
    got = []

    def watcher():
        value = yield from store.wait_for("node01", "k")
        got.append(value)

    def chaos():
        yield env.timeout(1.0)
        store.drop_watches()
        yield env.timeout(0.5)           # inside the 1.0s backoff
        yield from store.commit("node00", "k", 99)

    env.process(watcher())
    env.process(chaos())
    env.run()
    assert got == [99]
    assert store.stats.lost_wakeups == 1


def test_drop_watches_ignores_latched_signals(env, kvs):
    def flow():
        yield from kvs.commit("node00", "k", 1)
        value = yield from kvs.wait_for("node01", "k")
        return value

    proc = env.process(flow())
    env.run()
    assert proc.value == 1
    assert kvs.drop_watches() == 0
    assert kvs.stats.dropped_watches == 0


# ---------------------------------------------------------------------------
# end-to-end: pubsub consumers survive a broker crash
# ---------------------------------------------------------------------------


def test_pubsub_run_recovers_from_dyad_crash():
    spec = WorkflowSpec(system=System.DYAD, model=JAC, stride=880, frames=8,
                        pairs=2, placement=Placement.SPLIT,
                        sync_mode=SyncMode.PUBSUB)
    # t=0.4 lands inside the consumers' frame-0 watch window, so the
    # crash drops armed watches; the retry budget must outlast the
    # 2-second service outage (see repro.experiments.resilience).
    plan = FaultPlan(events=(
        FaultEvent("dyad_crash", at=0.4, target="0", duration=2.0),
    ))
    result = run_workflow(spec, fault_plan=plan,
                          dyad_config=DyadConfig(max_transfer_retries=80))
    assert result.invariant_violations == []
    stats = result.system_stats
    assert stats["dyad_dropped_watches"] > 0
    assert stats["dyad_lost_wakeups"] > 0
    assert stats["dyad_lost_wakeups"] >= stats["dyad_dropped_watches"]
    assert stats["stream_credits_issued"] == stats["stream_credits_returned"]
    assert stats["stream_credits_issued"] == 16.0


def test_pubsub_crash_run_is_reproducible():
    from repro.experiments.parallel import result_fingerprint

    spec = WorkflowSpec(system=System.DYAD, model=JAC, stride=880, frames=6,
                        pairs=1, placement=Placement.SPLIT,
                        sync_mode=SyncMode.PUBSUB)
    plan = FaultPlan(events=(
        FaultEvent("dyad_crash", at=0.4, target="0", duration=2.0),
    ))
    config = DyadConfig(max_transfer_retries=80)
    a = run_workflow(spec, fault_plan=plan, dyad_config=config, seed=5)
    b = run_workflow(spec, fault_plan=plan, dyad_config=config, seed=5)
    assert result_fingerprint(a) == result_fingerprint(b)
