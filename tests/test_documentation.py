"""Meta-test: every public item in the library carries a docstring.

Walks every module under ``repro`` and asserts that all public modules,
classes, functions, and methods are documented. This turns the project's
documentation requirement into an enforced invariant rather than a
convention.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(obj, "__module__", None) == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                    attr.__doc__ and attr.__doc__.strip()
                ):
                    undocumented.append(
                        f"{module.__name__}.{name}.{attr_name}"
                    )
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_every_package_reexports_something():
    """Package __init__ files expose a curated __all__."""
    for module in MODULES:
        if module.__name__.count(".") == 1 and hasattr(module, "__path__"):
            assert getattr(module, "__all__", None), (
                f"package {module.__name__} has no __all__"
            )
