"""Unit tests for the trajectory container format."""

import io

import numpy as np
import pytest

from repro.errors import ReproError
from repro.md.frame import Frame
from repro.md.trajectory import (
    TrajectoryReader,
    TrajectoryWriter,
    read_trajectory,
    write_trajectory,
)


def make_frames(n, natoms=50, seed=0):
    rng = np.random.default_rng(seed)
    return [Frame.random(natoms, rng, step=i * 10, time=i * 0.1)
            for i in range(n)]


def test_roundtrip_in_memory():
    frames = make_frames(5)
    buf = io.BytesIO()
    writer = TrajectoryWriter(buf)
    writer.extend(frames)
    total = writer.finalize()
    assert total == buf.tell()

    reader = TrajectoryReader(buf)
    assert len(reader) == 5
    for original, loaded in zip(frames, reader):
        assert loaded == original


def test_roundtrip_on_disk(tmp_path):
    frames = make_frames(4, natoms=20)
    path = tmp_path / "traj.mdt"
    nbytes = write_trajectory(path, frames)
    assert path.stat().st_size == nbytes
    loaded = read_trajectory(path)
    assert loaded == frames


def test_random_access_and_negative_index():
    frames = make_frames(6)
    buf = io.BytesIO()
    with TrajectoryWriter(buf) as writer:
        writer.extend(frames)
    reader = TrajectoryReader(buf)
    assert reader[3] == frames[3]
    assert reader[-1] == frames[-1]
    with pytest.raises(IndexError):
        reader[6]


def test_slicing():
    frames = make_frames(6)
    buf = io.BytesIO()
    with TrajectoryWriter(buf) as writer:
        writer.extend(frames)
    reader = TrajectoryReader(buf)
    assert reader[1:4] == frames[1:4]
    assert reader[::2] == frames[::2]


def test_heterogeneous_frame_sizes():
    frames = [Frame.zeros(10), Frame.zeros(1000), Frame.zeros(1)]
    buf = io.BytesIO()
    with TrajectoryWriter(buf) as writer:
        writer.extend(frames)
    reader = TrajectoryReader(buf)
    assert [f.natoms for f in reader] == [10, 1000, 1]
    assert reader.frame_sizes() == [f.nbytes for f in frames]


def test_empty_trajectory():
    buf = io.BytesIO()
    TrajectoryWriter(buf).finalize()
    assert len(TrajectoryReader(buf)) == 0


def test_append_after_finalize_rejected():
    buf = io.BytesIO()
    writer = TrajectoryWriter(buf)
    writer.finalize()
    with pytest.raises(ReproError):
        writer.append(Frame.zeros(1))
    with pytest.raises(ReproError):
        writer.finalize()


def test_context_manager_finalizes():
    buf = io.BytesIO()
    with TrajectoryWriter(buf) as writer:
        writer.append(Frame.zeros(3))
    assert len(TrajectoryReader(buf)) == 1


def test_corrupt_footer_rejected():
    buf = io.BytesIO()
    with TrajectoryWriter(buf) as writer:
        writer.append(Frame.zeros(3))
    data = bytearray(buf.getvalue())
    data[-10] ^= 0xFF  # damage the footer
    with pytest.raises(ReproError):
        TrajectoryReader(io.BytesIO(bytes(data)))


def test_too_short_stream_rejected():
    with pytest.raises(ReproError, match="too short"):
        TrajectoryReader(io.BytesIO(b"tiny"))


def test_trajectory_embedded_after_prefix():
    """Offsets are absolute, so a trajectory after a prefix still reads."""
    buf = io.BytesIO()
    buf.write(b"HEADERJUNK")
    writer = TrajectoryWriter(buf)
    frames = make_frames(2, natoms=5)
    writer.extend(frames)
    nbytes = writer.finalize()
    assert nbytes == buf.tell() - len(b"HEADERJUNK")
    reader = TrajectoryReader(buf)
    assert list(reader) == frames
