"""Unit tests for the in-situ analytics kernels."""

import numpy as np
import pytest

from repro.md.analytics import (
    EigenvalueTracker,
    contact_matrix,
    end_to_end_distance,
    largest_eigenvalue,
    radius_of_gyration,
    rmsd,
)
from repro.md.frame import ATOM_DTYPE, Frame


def frame_at(positions, masses=None):
    atoms = np.zeros(len(positions), dtype=ATOM_DTYPE)
    atoms["position"] = np.asarray(positions, dtype=np.float32)
    atoms["mass"] = 1.0 if masses is None else np.asarray(masses, np.float32)
    return Frame(atoms)


def test_rg_of_point_pair():
    f = frame_at([[0, 0, 0], [2, 0, 0]])
    # two unit masses 2 apart: Rg = 1
    assert radius_of_gyration(f) == pytest.approx(1.0)


def test_rg_mass_weighted():
    f = frame_at([[0, 0, 0], [2, 0, 0]], masses=[3.0, 1.0])
    # center at 0.5; Rg^2 = (3*0.25 + 1*2.25)/4 = 0.75
    assert radius_of_gyration(f) == pytest.approx(np.sqrt(0.75))


def test_rg_subset():
    f = frame_at([[0, 0, 0], [2, 0, 0], [100, 100, 100]])
    assert radius_of_gyration(f, subset=[0, 1]) == pytest.approx(1.0)


def test_rg_zero_mass_degrades_to_unweighted():
    atoms = np.zeros(2, dtype=ATOM_DTYPE)
    atoms["position"] = [[0, 0, 0], [2, 0, 0]]
    f = Frame(atoms)  # masses all zero
    assert radius_of_gyration(f) == pytest.approx(1.0)


def test_end_to_end_distance():
    f = frame_at([[0, 0, 0], [1, 1, 1], [3, 4, 0]])
    assert end_to_end_distance(f) == pytest.approx(5.0)
    assert end_to_end_distance(f, 0, 1) == pytest.approx(np.sqrt(3))


def test_rmsd_translation_invariant():
    base = np.random.default_rng(0).uniform(0, 10, (20, 3))
    f1 = frame_at(base)
    f2 = frame_at(base + np.array([5.0, -3.0, 1.0]))
    assert rmsd(f1, f2) == pytest.approx(0.0, abs=1e-5)


def test_rmsd_detects_distortion():
    base = np.random.default_rng(1).uniform(0, 10, (20, 3)).astype(np.float32)
    moved = base.copy()
    moved[0] += 3.0
    assert rmsd(frame_at(base), frame_at(moved)) > 0.1


def test_rmsd_size_mismatch_rejected():
    with pytest.raises(ValueError):
        rmsd(frame_at(np.zeros((3, 3))), frame_at(np.zeros((4, 3))))


def test_contact_matrix_binary():
    f = frame_at([[0, 0, 0], [1, 0, 0], [100, 0, 0]])
    m = contact_matrix(f, subset=[0, 1, 2], cutoff=2.0, soft=False)
    assert m[0, 1] == 1.0 and m[0, 2] == 0.0
    assert np.all(np.diag(m) == 0)
    assert np.array_equal(m, m.T)


def test_contact_matrix_soft_monotone():
    f = frame_at([[0, 0, 0], [1, 0, 0], [5, 0, 0]])
    m = contact_matrix(f, subset=[0, 1, 2], cutoff=3.0, soft=True)
    assert 0 < m[0, 2] < m[0, 1] <= 1.0


def test_largest_eigenvalue_known_matrix():
    m = np.array([[0.0, 1.0], [1.0, 0.0]])
    values = largest_eigenvalue(m, k=2)
    assert values[0] == pytest.approx(1.0)
    assert values[1] == pytest.approx(-1.0)
    with pytest.raises(ValueError):
        largest_eigenvalue(np.zeros((2, 3)))


def test_tracker_builds_series():
    tracker = EigenvalueTracker({"a": [0, 1, 2]}, cutoff=3.0, warmup=2)
    rng = np.random.default_rng(2)
    for _ in range(5):
        tracker.ingest(frame_at(rng.uniform(0, 4, (5, 3))))
    assert tracker.frames_seen == 5
    assert len(tracker.series["a"]) == 5
    summary = tracker.summary()
    assert summary["a"]["max"] >= summary["a"]["min"]


def test_tracker_flags_sudden_change():
    subset = list(range(4))
    tracker = EigenvalueTracker({"s": subset}, cutoff=3.0, threshold=3.0, warmup=3)
    tight = [[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]]
    spread = [[0, 0, 0], [50, 0, 0], [0, 50, 0], [50, 50, 0]]
    for step in range(6):
        f = frame_at(np.asarray(tight) + np.random.default_rng(step).normal(0, 0.01, (4, 3)))
        f.step = step
        tracker.ingest(f)
    burst = frame_at(spread)
    burst.step = 6
    events = tracker.ingest(burst)
    assert events and events[0][1] == "s"


def test_tracker_validation():
    with pytest.raises(ValueError):
        EigenvalueTracker({})
    with pytest.raises(ValueError):
        EigenvalueTracker({"a": [0]}, warmup=1)


def test_tracker_empty_summary():
    tracker = EigenvalueTracker({"a": [0, 1]})
    assert tracker.summary()["a"]["mean"] == 0.0
