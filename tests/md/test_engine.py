"""Unit tests for the Lennard-Jones MD engine."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.md.engine import LJConfig, LJSimulation


@pytest.fixture(scope="module")
def sim():
    return LJSimulation(LJConfig(n_atoms=125, density=0.4, temperature=1.0, seed=3))


def test_config_validation():
    with pytest.raises(ConfigError):
        LJConfig(n_atoms=1).validate()
    with pytest.raises(ConfigError):
        LJConfig(density=0).validate()
    with pytest.raises(ConfigError):
        LJConfig(dt=0).validate()
    with pytest.raises(ConfigError):
        LJConfig(thermostat_tau=0).validate()


def test_box_from_density():
    cfg = LJConfig(n_atoms=1000, density=0.5)
    assert cfg.box == pytest.approx((1000 / 0.5) ** (1 / 3))


def test_box_too_small_for_cutoff_rejected():
    with pytest.raises(ConfigError, match="cutoff"):
        LJSimulation(LJConfig(n_atoms=8, density=1.2, cutoff=2.5))


def test_initial_lattice_no_overlaps():
    sim = LJSimulation(LJConfig(n_atoms=64, density=0.3, seed=0))
    pos = sim.positions
    delta = pos[:, None, :] - pos[None, :, :]
    delta -= sim.box * np.round(delta / sim.box)
    dist = np.sqrt((delta ** 2).sum(-1))
    np.fill_diagonal(dist, np.inf)
    assert dist.min() > 0.8  # no overlapping atoms


def test_initial_momentum_zero():
    sim = LJSimulation(LJConfig(n_atoms=100, density=0.3, seed=1))
    assert np.allclose(sim.velocities.sum(axis=0), 0.0, atol=1e-10)


def test_positions_stay_in_box():
    sim = LJSimulation(LJConfig(n_atoms=64, density=0.3, seed=2))
    sim.step(50)
    assert np.all(sim.positions >= 0)
    assert np.all(sim.positions < sim.box)


def test_step_advances_counters():
    sim = LJSimulation(LJConfig(n_atoms=64, density=0.3, seed=2))
    sim.step(10)
    assert sim.step_index == 10
    assert sim.time == pytest.approx(10 * sim.config.dt)


def test_negative_steps_rejected(sim):
    with pytest.raises(ValueError):
        sim.step(-1)


def test_nve_energy_conservation():
    sim = LJSimulation(LJConfig(
        n_atoms=125, density=0.4, temperature=0.8, thermostat_tau=None,
        dt=0.002, seed=4,
    ))
    sim.step(20)  # settle
    e0 = sim.total_energy
    sim.step(100)
    assert sim.total_energy == pytest.approx(e0, rel=2e-3)


def test_thermostat_drives_temperature():
    sim = LJSimulation(LJConfig(
        n_atoms=125, density=0.4, temperature=1.5, thermostat_tau=0.2, seed=5,
    ))
    sim.step(400)
    assert sim.instantaneous_temperature == pytest.approx(1.5, rel=0.25)


def test_forces_are_newtonian():
    sim = LJSimulation(LJConfig(n_atoms=64, density=0.5, seed=6))
    # momentum conservation: net force ~ 0
    assert np.allclose(sim.forces.sum(axis=0), 0.0, atol=1e-8)


def test_cell_list_matches_all_pairs():
    """The cell-list force path must agree with brute force."""
    sim = LJSimulation(LJConfig(n_atoms=200, density=0.7, seed=7))
    forces_cell, pot_cell = sim._forces(sim.positions)

    # brute force: monkeypatch the pair finder
    orig = sim._pairs
    try:
        n = sim.positions.shape[0]
        sim._pairs = lambda pos: tuple(np.triu_indices(n, k=1))
        forces_brute, pot_brute = sim._forces(sim.positions)
    finally:
        sim._pairs = orig
    assert np.allclose(forces_cell, forces_brute, atol=1e-8)
    assert pot_cell == pytest.approx(pot_brute)


def test_frame_snapshot_consistent():
    sim = LJSimulation(LJConfig(n_atoms=64, density=0.3, seed=8))
    sim.step(5)
    frame = sim.frame()
    assert frame.natoms == 64
    assert frame.step == 5
    assert np.allclose(frame.positions, sim.positions.astype(np.float32))
    assert frame.box[0] == pytest.approx(sim.box, rel=1e-6)


def test_run_trajectory_yields_frames():
    sim = LJSimulation(LJConfig(n_atoms=64, density=0.3, seed=9))
    frames = list(sim.run_trajectory(frames=3, stride=4))
    assert [f.step for f in frames] == [4, 8, 12]
    with pytest.raises(ValueError):
        list(sim.run_trajectory(frames=1, stride=0))


def test_determinism_across_instances():
    a = LJSimulation(LJConfig(n_atoms=64, density=0.3, seed=10))
    b = LJSimulation(LJConfig(n_atoms=64, density=0.3, seed=10))
    a.step(20)
    b.step(20)
    assert np.array_equal(a.positions, b.positions)
    assert np.array_equal(a.velocities, b.velocities)
