"""Unit tests for the molecular model catalogue (Tables I & II)."""

import pytest

from repro.md.models import (
    APOA1,
    F1_ATPASE,
    JAC,
    MODELS,
    STMV,
    TARGET_FREQUENCY,
    model_by_name,
)
from repro.units import KiB, MiB


def test_catalogue_order_by_size():
    sizes = [m.num_atoms for m in MODELS]
    assert sizes == sorted(sizes)
    assert MODELS[0] is JAC and MODELS[-1] is STMV


def test_table1_atom_counts():
    assert JAC.num_atoms == 23_558
    assert APOA1.num_atoms == 92_224
    assert F1_ATPASE.num_atoms == 327_506
    assert STMV.num_atoms == 1_066_628


def test_table1_frame_sizes_match_paper():
    # codec size must match Table I to two decimals in the paper's units
    assert JAC.frame_bytes / KiB == pytest.approx(644.21, abs=0.005)
    assert APOA1.frame_bytes / MiB == pytest.approx(2.46, abs=0.005)
    assert F1_ATPASE.frame_bytes / MiB == pytest.approx(8.75, abs=0.005)
    assert STMV.frame_bytes / MiB == pytest.approx(28.48, abs=0.005)


def test_table2_ms_per_step():
    assert JAC.ms_per_step == pytest.approx(0.93, abs=0.005)
    assert APOA1.ms_per_step == pytest.approx(2.79, abs=0.005)
    assert F1_ATPASE.ms_per_step == pytest.approx(8.64, abs=0.005)
    assert STMV.ms_per_step == pytest.approx(29.29, abs=0.005)


def test_table2_strides():
    assert [m.paper_stride for m in MODELS] == [880, 294, 92, 28]


def test_paper_frequency_near_target():
    for m in MODELS:
        # the paper prints 0.82 s for all models; F1's actual stride gives
        # ~0.795 s (a known inconsistency) — everything within 4%
        assert m.paper_frequency == pytest.approx(TARGET_FREQUENCY, rel=0.04)


def test_stride_for_frequency_roundtrip():
    for m in (JAC, APOA1, STMV):
        assert m.stride_for_frequency(0.82) == m.paper_stride


def test_stride_for_frequency_validation():
    with pytest.raises(ValueError):
        JAC.stride_for_frequency(0.0)


def test_stride_time_and_steps():
    assert JAC.stride_time(880) == pytest.approx(880 / 1072.92)
    assert JAC.steps_for_frames(128, 880) == 112_640
    with pytest.raises(ValueError):
        JAC.stride_time(0)


def test_data_ratio_stmv_over_jac():
    # the paper's "45.3x more data" claim (Fig. 9 discussion)
    assert STMV.frame_bytes / JAC.frame_bytes == pytest.approx(45.3, abs=0.1)


def test_model_by_name_aliases():
    assert model_by_name("jac") is JAC
    assert model_by_name("STMV") is STMV
    assert model_by_name("f1") is F1_ATPASE
    assert model_by_name(" ApoA1 ") is APOA1
    with pytest.raises(KeyError):
        model_by_name("unobtainium")


def test_str_rendering():
    text = str(JAC)
    assert "JAC" in text and "23,558" in text
