"""Unit tests for the binary frame codec."""

import struct

import numpy as np
import pytest

from repro.errors import ReproError
from repro.md.frame import ATOM_DTYPE, FRAME_HEADER_BYTES, Frame, frame_size


def test_layout_constants():
    assert ATOM_DTYPE.itemsize == 28
    assert FRAME_HEADER_BYTES == 44


def test_frame_size_formula():
    assert frame_size(0) == 44
    assert frame_size(10) == 44 + 280
    with pytest.raises(ValueError):
        frame_size(-1)


def test_zeros_factory():
    f = Frame.zeros(5, step=3, time=0.5)
    assert f.natoms == 5
    assert f.step == 3
    assert np.all(f.positions == 0)


def test_random_factory_fields_populated():
    rng = np.random.default_rng(0)
    f = Frame.random(100, rng, box=50.0)
    assert f.natoms == 100
    assert np.all(f.positions >= 0) and np.all(f.positions <= 50)
    assert np.array_equal(f.atoms["atom_id"], np.arange(100))
    assert f.atoms["mass"].min() >= 1.0


def test_encode_length_matches_nbytes():
    f = Frame.zeros(123)
    assert len(f.encode()) == f.nbytes == frame_size(123)


def test_roundtrip_preserves_everything():
    rng = np.random.default_rng(1)
    f = Frame.random(500, rng, box=25.0, step=77, time=3.25)
    g = Frame.decode(f.encode())
    assert g == f
    assert g.step == 77 and g.time == 3.25
    assert np.array_equal(g.box, f.box)


def test_roundtrip_empty_frame():
    f = Frame.zeros(0)
    assert Frame.decode(f.encode()) == f


def test_decode_rejects_short_payload():
    with pytest.raises(ReproError, match="too short"):
        Frame.decode(b"tiny")


def test_decode_rejects_bad_magic():
    payload = bytearray(Frame.zeros(1).encode())
    payload[:4] = b"NOPE"
    with pytest.raises(ReproError, match="magic"):
        Frame.decode(bytes(payload))


def test_decode_rejects_truncated_atoms():
    payload = Frame.zeros(10).encode()
    with pytest.raises(ReproError, match="mismatch"):
        Frame.decode(payload[:-1])


def test_decode_rejects_bad_version():
    payload = bytearray(Frame.zeros(1).encode())
    payload[4:6] = (99).to_bytes(2, "little")
    with pytest.raises(ReproError, match="version"):
        Frame.decode(bytes(payload))


def test_negative_step_rejected():
    with pytest.raises(ValueError):
        Frame(np.zeros(1, dtype=ATOM_DTYPE), step=-1)


def test_equality_discriminates():
    a = Frame.zeros(3, step=1)
    b = Frame.zeros(3, step=1)
    c = Frame.zeros(3, step=2)
    assert a == b
    assert a != c
    d = Frame.zeros(3, step=1)
    d.atoms["mass"][0] = 5.0
    assert a != d
    assert a.__eq__(42) is NotImplemented


def test_decode_copies_buffer():
    f = Frame.random(10, np.random.default_rng(2))
    payload = bytearray(f.encode())
    g = Frame.decode(bytes(payload))
    payload[50] ^= 0xFF  # mutating the source must not affect the frame
    assert g == Frame.decode(f.encode())


def test_decode_detects_corrupt_atom_payload():
    from repro.errors import IntegrityError

    payload = bytearray(Frame.random(10, np.random.default_rng(3)).encode())
    payload[FRAME_HEADER_BYTES + 7] ^= 0xFF
    with pytest.raises(IntegrityError, match="checksum mismatch"):
        Frame.decode(bytes(payload))
    # a legacy consumer that skips verification gets the damaged frame
    damaged = Frame.decode(bytes(payload), verify=False)
    assert damaged.natoms == 10


def test_decode_detects_corrupt_header_checksum():
    from repro.errors import IntegrityError

    payload = bytearray(Frame.zeros(4).encode())
    payload[12] ^= 0x01  # flip a bit in the stored checksum itself
    with pytest.raises(IntegrityError, match="checksum mismatch"):
        Frame.decode(bytes(payload))


def test_decode_v1_header_compat():
    # v1 stored natoms as a u64 spanning today's natoms+checksum fields
    # and had no flags; craft one by hand and check it still decodes.
    f = Frame.random(7, np.random.default_rng(4), step=9, time=1.5)
    atom_bytes = f.atoms.tobytes()
    header = struct.pack(
        "<4sHHIIQd3f", b"MDFR", 1, 0, 7, 0, 9, 1.5,
        float(f.box[0]), float(f.box[1]), float(f.box[2]),
    )
    g = Frame.decode(header + atom_bytes)
    assert g == f
    # and verify=True is a no-op for v1: no checksum to check
    assert Frame.decode(header + atom_bytes, verify=True) == f
