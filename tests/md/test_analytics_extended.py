"""Tests for the extended analytics (RDF, MSD) and PDB export."""

import numpy as np
import pytest

from repro.md.analytics import mean_squared_displacement, radial_distribution
from repro.md.engine import LJConfig, LJSimulation
from repro.md.frame import ATOM_DTYPE, Frame
from repro.md.pdb import frame_to_pdb, write_pdb


def boxed_frame(positions, box):
    atoms = np.zeros(len(positions), dtype=ATOM_DTYPE)
    atoms["position"] = np.asarray(positions, dtype=np.float32)
    atoms["mass"] = 1.0
    return Frame(atoms, box=np.full(3, box, np.float32))


# ---------------------------------------------------------------------------
# radial distribution function
# ---------------------------------------------------------------------------


def test_rdf_ideal_gas_flat():
    """Uniform random positions -> g(r) ~ 1 away from r=0."""
    rng = np.random.default_rng(0)
    frame = boxed_frame(rng.uniform(0, 20, (800, 3)), box=20.0)
    r, g = radial_distribution(frame, bins=20)
    # ignore the first couple of noisy small-r bins
    assert np.allclose(g[5:], 1.0, atol=0.25)


def test_rdf_lj_fluid_structure():
    """The LJ fluid shows a first-shell peak near r ~ 1.1 sigma."""
    sim = LJSimulation(LJConfig(n_atoms=400, density=0.6, temperature=1.0,
                                seed=1))
    sim.step(150)
    r, g = radial_distribution(sim.frame(), bins=60)
    peak_r = r[np.argmax(g)]
    assert 0.9 < peak_r < 1.4
    assert g.max() > 1.5            # pronounced shell structure
    # excluded volume: essentially no pairs below ~0.8 sigma
    assert g[r < 0.8].max() < 0.2


def test_rdf_validation():
    frame = boxed_frame([[0, 0, 0], [1, 1, 1]], box=10.0)
    with pytest.raises(ValueError):
        radial_distribution(frame, r_max=20.0)
    with pytest.raises(ValueError):
        radial_distribution(frame, bins=0)
    with pytest.raises(ValueError):
        radial_distribution(boxed_frame([[0, 0, 0]], box=10.0))
    with pytest.raises(ValueError):
        radial_distribution(boxed_frame([[0, 0, 0], [1, 0, 0]], box=0.0))


# ---------------------------------------------------------------------------
# mean squared displacement
# ---------------------------------------------------------------------------


def test_msd_static_trajectory_zero():
    frame = boxed_frame([[1, 1, 1], [2, 2, 2]], box=10.0)
    msd = mean_squared_displacement([frame, frame, frame])
    assert np.allclose(msd, 0.0)


def test_msd_linear_drift():
    frames = []
    for k in range(5):
        frames.append(boxed_frame([[1 + 0.1 * k, 0, 0], [3, 3, 3]], box=10.0))
    msd = mean_squared_displacement(frames)
    # one of two atoms moves 0.1k -> msd = (0.1k)^2 / 2
    expected = np.array([(0.1 * k) ** 2 / 2 for k in range(5)])
    assert np.allclose(msd, expected, atol=1e-6)


def test_msd_unwraps_periodic_boundary():
    """An atom crossing the boundary must not appear to jump."""
    box = 10.0
    frames = [
        boxed_frame([[9.8, 5, 5]], box),
        boxed_frame([[0.1, 5, 5]], box),   # crossed the boundary (+0.3)
        boxed_frame([[0.4, 5, 5]], box),
    ]
    msd = mean_squared_displacement(frames)
    assert msd[1] == pytest.approx(0.3 ** 2, rel=1e-4)
    assert msd[2] == pytest.approx(0.6 ** 2, rel=1e-4)


def test_msd_grows_in_fluid():
    sim = LJSimulation(LJConfig(n_atoms=200, density=0.4, temperature=1.5,
                                seed=2))
    sim.step(20)
    frames = list(sim.run_trajectory(frames=6, stride=10))
    msd = mean_squared_displacement(frames)
    assert msd[0] == 0.0
    assert msd[-1] > msd[1] > 0.0


def test_msd_validation():
    with pytest.raises(ValueError):
        mean_squared_displacement([])
    with pytest.raises(ValueError):
        mean_squared_displacement([
            boxed_frame([[0, 0, 0]], 10.0),
            boxed_frame([[0, 0, 0], [1, 1, 1]], 10.0),
        ])


# ---------------------------------------------------------------------------
# PDB export
# ---------------------------------------------------------------------------


def test_pdb_single_frame_structure():
    frame = boxed_frame([[1.5, 2.5, 3.5], [4.0, 5.0, 6.0]], box=25.0)
    text = frame_to_pdb(frame)
    lines = text.splitlines()
    assert lines[0].startswith("CRYST1")
    assert "25.000" in lines[0]
    assert lines[1].startswith("MODEL")
    atom_lines = [l for l in lines if l.startswith("ATOM")]
    assert len(atom_lines) == 2
    # fixed-column coordinates
    assert "   1.500   2.500   3.500" in atom_lines[0]
    assert lines[-1] == "ENDMDL"


def test_pdb_column_widths():
    frame = boxed_frame([[123.456, -2.5, 0.0]], box=200.0)
    atom_line = [l for l in frame_to_pdb(frame).splitlines()
                 if l.startswith("ATOM")][0]
    # PDB coordinate columns: x in 31-38, y in 39-46, z in 47-54 (1-based)
    assert atom_line[30:38] == " 123.456"
    assert atom_line[38:46] == "  -2.500"
    assert atom_line[46:54] == "   0.000"


def test_write_pdb_multi_model(tmp_path):
    rng = np.random.default_rng(3)
    frames = [Frame.random(10, rng, box=30.0, step=i) for i in range(3)]
    path = tmp_path / "traj.pdb"
    count = write_pdb(path, frames)
    assert count == 3
    text = path.read_text()
    assert text.count("MODEL") == 3
    assert text.count("ENDMDL") == 3
    assert text.rstrip().endswith("END")
