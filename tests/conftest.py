"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.corona import corona
from repro.sim.core import Environment
from repro.sim.rng import RngStreams


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep the on-disk result cache out of the user's home directory.

    The experiments CLI caches by default, and several tests drive its
    ``main()`` directly — without this, the suite would write to
    ``~/.cache/repro/results``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def env() -> Environment:
    """A fresh deterministic simulation environment."""
    return Environment()


@pytest.fixture
def rng() -> RngStreams:
    """A deterministic RNG family."""
    return RngStreams(seed=1234)


@pytest.fixture
def two_node_cluster():
    """A two-node Corona-like cluster without jitter."""
    return corona(nodes=2, seed=0)


@pytest.fixture
def one_node_cluster():
    """A single-node Corona-like cluster without jitter."""
    return corona(nodes=1, seed=0)


def drive(env: Environment, generator):
    """Run a generator as a process to completion; return its value."""
    proc = env.process(generator)
    env.run(proc)
    return proc.value


@pytest.fixture
def run_process():
    """Fixture exposing the :func:`drive` helper."""
    return drive
