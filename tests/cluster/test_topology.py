"""Unit tests for nodes, cluster assembly, and the Corona preset."""

import pytest

from repro.cluster.corona import CORONA_MAX_NODES, corona
from repro.cluster.node import Node, NodeConfig
from repro.cluster.topology import Cluster, ClusterConfig
from repro.errors import ConfigError, WorkflowError
from repro.units import TiB


def test_cluster_builds_requested_nodes():
    cluster = Cluster(ClusterConfig(nodes=3))
    assert len(cluster) == 3
    assert [n.node_id for n in cluster.nodes] == ["node00", "node01", "node02"]


def test_cluster_node_lookup():
    cluster = Cluster(ClusterConfig(nodes=2))
    assert cluster.node(1).node_id == "node01"
    assert cluster.node(-1).node_id == "node01"
    assert cluster.node_by_id("node00") is cluster.node(0)
    with pytest.raises(ConfigError):
        cluster.node_by_id("node99")


def test_cluster_validation():
    with pytest.raises(ConfigError):
        Cluster(ClusterConfig(nodes=0))


def test_nodes_attached_to_fabric():
    cluster = Cluster(ClusterConfig(nodes=2))
    assert cluster.fabric.nic("node00") is cluster.node(0).nic
    assert cluster.fabric.nic("node01") is cluster.node(1).nic


def test_gpu_claiming_enforces_limit():
    cluster = Cluster(ClusterConfig(nodes=1))
    node = cluster.node(0)
    for i in range(node.config.gpus):
        assert node.claim_gpu() == i
    assert node.gpus_free == 0
    with pytest.raises(WorkflowError):
        node.claim_gpu()
    node.release_gpu()
    assert node.gpus_free == 1


def test_gpu_release_underflow():
    cluster = Cluster(ClusterConfig(nodes=1))
    with pytest.raises(WorkflowError):
        cluster.node(0).release_gpu()


def test_node_config_validation():
    with pytest.raises(ConfigError):
        NodeConfig(cores=0).validate()
    with pytest.raises(ConfigError):
        NodeConfig(gpus=-1).validate()


def test_corona_preset_shape():
    cluster = corona(nodes=2)
    node = cluster.node(0)
    assert node.config.cores == 48
    assert node.config.gpus == 8
    assert node.config.ssd.capacity == int(3.5 * TiB)


def test_corona_node_limit():
    with pytest.raises(ValueError):
        corona(nodes=CORONA_MAX_NODES + 1)
    with pytest.raises(ValueError):
        corona(nodes=0)


def test_corona_seed_isolation():
    a = corona(nodes=1, seed=1, jitter_cv=0.1)
    b = corona(nodes=1, seed=2, jitter_cv=0.1)
    ja = a.rng.jitter("x", 1.0, 0.1)
    jb = b.rng.jitter("x", 1.0, 0.1)
    assert ja != jb


def test_corona_jitter_propagates_to_devices():
    cluster = corona(nodes=1, jitter_cv=0.07)
    assert cluster.node(0).config.ssd.jitter_cv == 0.07
    assert cluster.config.fabric.jitter_cv == 0.07
