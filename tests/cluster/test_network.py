"""Unit tests for the fabric model."""

import pytest

from repro.cluster.network import Fabric, FabricConfig
from repro.errors import ConfigError, TransferError
from repro.sim.rng import RngStreams
from repro.units import usec


@pytest.fixture
def fabric(env):
    config = FabricConfig(
        link_bandwidth=1000.0,   # 1000 B/s for easy arithmetic
        hop_latency=usec(2),
        hops=2,
        rdma_setup=usec(5),
        message_setup=usec(15),
        jitter_cv=0.0,
    )
    fab = Fabric(env, config, RngStreams(0))
    fab.attach("a")
    fab.attach("b")
    fab.attach("c")
    return fab


def _drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def test_transfer_time(env, fabric):
    elapsed = _drive(env, fabric.transfer("a", "b", 1000))
    assert elapsed == pytest.approx(usec(15) + usec(4) + 1.0)


def test_rdma_cheaper_setup_than_message(env, fabric):
    t_rdma = _drive(env, fabric.rdma_get("b", "a", 0))
    env2 = type(env)()
    assert t_rdma == pytest.approx(usec(5) + usec(4))


def test_loopback_skips_wire(env, fabric):
    elapsed = _drive(env, fabric.message("a", "a", 100))
    assert elapsed == pytest.approx(usec(15) / 2)


def test_unknown_node_rejected(env, fabric):
    with pytest.raises(TransferError):
        _drive(env, fabric.transfer("a", "nope", 10))


def test_double_attach_rejected(env, fabric):
    with pytest.raises(ConfigError):
        fabric.attach("a")


def test_negative_size_rejected(env, fabric):
    with pytest.raises(ValueError):
        _drive(env, fabric.transfer("a", "b", -5))


def test_two_flows_same_source_share_egress(env, fabric):
    times = {}

    def mover(name, dst):
        t = yield from fabric.transfer("a", dst, 1000)
        times[name] = t

    env.process(mover("x", "b"))
    env.process(mover("y", "c"))
    env.run()
    # both share a's egress: 2000 bytes over 1000 B/s
    assert times["x"] == pytest.approx(usec(19) + 2.0)
    assert times["y"] == pytest.approx(usec(19) + 2.0)


def test_two_flows_distinct_paths_full_speed(env, fabric):
    times = {}

    def mover(name, src, dst):
        t = yield from fabric.transfer(src, dst, 1000)
        times[name] = t

    env.process(mover("x", "a", "b"))
    env.process(mover("y", "c", "a"))  # shares nothing directional with x
    env.run()
    # a.egress serves x; a.ingress serves y: independent
    assert times["x"] == pytest.approx(usec(19) + 1.0)
    assert times["y"] == pytest.approx(usec(19) + 1.0)


def test_rdma_data_flows_target_to_initiator(env, fabric):
    def flood():
        # saturate b's egress while an rdma_get pulls FROM b
        yield from fabric.transfer("b", "c", 1000)

    times = {}

    def puller():
        t = yield from fabric.rdma_get("a", "b", 1000)
        times["pull"] = t

    env.process(flood())
    env.process(puller())
    env.run()
    # rdma pull a<-b contends with b->c on b's egress
    assert times["pull"] > 1.5


def test_bisection_limit(env):
    config = FabricConfig(link_bandwidth=1000.0, bisection_bandwidth=500.0,
                          hop_latency=0.0, message_setup=0.0)
    fabric = Fabric(env, config, RngStreams(0))
    fabric.attach("a")
    fabric.attach("b")
    elapsed = _drive(env, fabric.transfer("a", "b", 500))
    assert elapsed == pytest.approx(1.0)  # bisection caps below link speed


def test_stats_accounting(env, fabric):
    _drive(env, fabric.transfer("a", "b", 100))
    _drive(env, fabric.rdma_get("a", "b", 50))
    _drive(env, fabric.message("a", "b"))
    assert fabric.stats.transfers == 1
    assert fabric.stats.rdma_transfers == 1
    assert fabric.stats.messages == 1
    assert fabric.stats.bytes_moved == 150


def test_config_validation():
    with pytest.raises(ConfigError):
        FabricConfig(link_bandwidth=0).validate()
    with pytest.raises(ConfigError):
        FabricConfig(hops=0).validate()
    with pytest.raises(ConfigError):
        FabricConfig(hop_latency=-1).validate()
    with pytest.raises(ConfigError):
        FabricConfig(bisection_bandwidth=0.0).validate()


def test_nic_flow_count(env, fabric):
    fabric.nic("a").egress.transfer(10_000)
    assert fabric.nic("a").active_flows == 1
