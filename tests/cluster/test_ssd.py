"""Unit tests for the SSD device model."""

import pytest

from repro.cluster.ssd import SSDConfig, SSDModel
from repro.errors import ConfigError, StorageError
from repro.sim.rng import RngStreams
from repro.units import usec


@pytest.fixture
def ssd(env):
    config = SSDConfig(
        read_bandwidth=1000.0,
        write_bandwidth=500.0,
        read_latency=usec(10),
        write_latency=usec(20),
        capacity=10_000,
        jitter_cv=0.0,
    )
    return SSDModel(env, config, RngStreams(0))


def _drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def test_write_time_latency_plus_bandwidth(env, ssd):
    elapsed = _drive(env, ssd.write(500))
    assert elapsed == pytest.approx(usec(20) + 1.0)


def test_read_time_latency_plus_bandwidth(env, ssd):
    elapsed = _drive(env, ssd.read(1000))
    assert elapsed == pytest.approx(usec(10) + 1.0)


def test_zero_byte_ops_pay_latency_only(env, ssd):
    elapsed = _drive(env, ssd.write(0))
    assert elapsed == pytest.approx(usec(20))


def test_concurrent_writes_share_bandwidth(env, ssd):
    times = {}

    def writer(name):
        t = yield from ssd.write(500)
        times[name] = t

    env.process(writer("a"))
    env.process(writer("b"))
    env.run()
    assert times["a"] == pytest.approx(usec(20) + 2.0)
    assert times["b"] == pytest.approx(usec(20) + 2.0)


def test_reads_and_writes_use_separate_channels(env, ssd):
    times = {}

    def writer():
        t = yield from ssd.write(500)
        times["w"] = t

    def reader():
        t = yield from ssd.read(1000)
        times["r"] = t

    env.process(writer())
    env.process(reader())
    env.run()
    # no cross-interference: each finishes at its solo time
    assert times["w"] == pytest.approx(usec(20) + 1.0)
    assert times["r"] == pytest.approx(usec(10) + 1.0)


def test_capacity_accounting(env, ssd):
    ssd.allocate(6000)
    assert ssd.used == 6000 and ssd.free == 4000
    ssd.release(1000)
    assert ssd.used == 5000


def test_capacity_overflow_raises(env, ssd):
    with pytest.raises(StorageError):
        ssd.allocate(10_001)


def test_release_more_than_allocated_raises(env, ssd):
    ssd.allocate(100)
    with pytest.raises(StorageError):
        ssd.release(200)


def test_negative_sizes_rejected(env, ssd):
    with pytest.raises(ValueError):
        ssd.allocate(-1)
    with pytest.raises(ValueError):
        _drive(env, ssd.write(-1))


def test_stats_counters(env, ssd):
    _drive(env, ssd.write(100))
    env2_proc = env.process(ssd.read(200))
    env.run()
    assert ssd.stats.writes == 1
    assert ssd.stats.reads == 1
    assert ssd.stats.bytes_written == 100
    assert ssd.stats.bytes_read == 200


def test_jitter_changes_latency(env):
    config = SSDConfig(jitter_cv=0.2)
    ssd = SSDModel(env, config, RngStreams(5))
    times = []

    def op():
        t = yield from ssd.write(0)
        times.append(t)

    for _ in range(10):
        env.process(op())
    env.run()
    assert len(set(times)) > 1  # jitter produced distinct latencies
    assert all(t > 0 for t in times)


def test_config_validation():
    with pytest.raises(ConfigError):
        SSDConfig(read_bandwidth=0).validate()
    with pytest.raises(ConfigError):
        SSDConfig(write_latency=-1).validate()
    with pytest.raises(ConfigError):
        SSDConfig(capacity=0).validate()
    with pytest.raises(ConfigError):
        SSDConfig(jitter_cv=-0.1).validate()
