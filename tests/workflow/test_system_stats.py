"""Tests for the system-level counters attached to workflow results."""

import pytest

from repro.md.models import JAC
from repro.workflow.runner import run_workflow
from repro.workflow.spec import Placement, System, WorkflowSpec


def run(system, frames=6, pairs=2):
    placement = (Placement.SINGLE_NODE if system is System.XFS
                 else Placement.SPLIT)
    spec = WorkflowSpec(system=system, model=JAC, stride=880, frames=frames,
                        pairs=pairs, placement=placement)
    return run_workflow(spec)


def test_stats_keys_present():
    result = run(System.DYAD)
    for key in ("fabric_transfers", "fabric_rdma_transfers",
                "fabric_messages", "fabric_bytes_moved",
                "ssd_bytes_written", "ssd_bytes_read",
                "channel_stale_wakeups", "channel_peak_flows",
                "channel_reschedules"):
        assert key in result.system_stats


def test_channel_health_counters_reflect_traffic():
    result = run(System.DYAD, frames=6, pairs=4)
    stats = result.system_stats
    # every RDMA frame pull re-aims a channel wake-up at least once
    assert stats["channel_reschedules"] >= stats["fabric_rdma_transfers"]
    assert stats["channel_peak_flows"] >= 1.0
    assert stats["channel_stale_wakeups"] >= 0.0


def test_lustre_contention_shows_concurrent_flows():
    result = run(System.LUSTRE, frames=4, pairs=4)
    # four pairs hammering shared OSS channels must overlap at some point
    assert result.system_stats["channel_peak_flows"] >= 2.0


def test_dyad_moves_each_frame_once_over_rdma():
    frames, pairs = 6, 2
    result = run(System.DYAD, frames=frames, pairs=pairs)
    # one rdma chunk per JAC frame (644 KiB < 4 MiB chunk)
    assert result.system_stats["fabric_rdma_transfers"] == frames * pairs


def test_dyad_ssd_accounting_producer_and_consumer_copies():
    frames, pairs = 4, 1
    result = run(System.DYAD, frames=frames, pairs=pairs)
    frame_bytes = JAC.frame_bytes
    # producer staging write + consumer cache write
    assert result.system_stats["ssd_bytes_written"] == 2 * frames * frame_bytes
    # owner-service read + consumer local read
    assert result.system_stats["ssd_bytes_read"] == 2 * frames * frame_bytes


def test_xfs_no_network_traffic():
    result = run(System.XFS)
    assert result.system_stats["fabric_rdma_transfers"] == 0
    assert result.system_stats["fabric_bytes_moved"] == 0


def test_lustre_bytes_cross_fabric_twice():
    frames, pairs = 4, 1
    result = run(System.LUSTRE, frames=frames, pairs=pairs)
    moved = result.system_stats["fabric_bytes_moved"]
    # each frame crosses to the servers (write) and back (read), plus
    # small control traffic
    assert moved >= 2 * frames * pairs * JAC.frame_bytes
    # node-local SSDs are untouched by a pure-Lustre workflow
    assert result.system_stats["ssd_bytes_written"] == 0
