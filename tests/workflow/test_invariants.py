"""Tests for the workflow invariant checker (unit + end-to-end)."""

import dataclasses

import pytest

from repro.dyad.config import DyadConfig
from repro.errors import InvariantViolation
from repro.faults.plan import FaultEvent, FaultPlan
from repro.invariants import InvariantChecker, InvariantConfig
from repro.md.models import JAC
from repro.workflow.runner import run_workflow
from repro.workflow.spec import Placement, System, WorkflowSpec


class _Clock:
    """Stand-in environment: just a settable ``now``."""

    def __init__(self):
        self.now = 0.0


@pytest.fixture
def clock():
    return _Clock()


def nonfatal(clock):
    return InvariantChecker(clock, InvariantConfig(fatal=False))


# ---------------------------------------------------------------------------
# unit: each invariant trips on exactly its own lie
# ---------------------------------------------------------------------------


def test_clean_exchange_has_no_violations(clock):
    checker = InvariantChecker(clock)
    checker.frame_committed("producer0", 0, 0, 100)
    clock.now = 1.0
    checker.frame_consumed("consumer0", 0, 0, 100, 100)
    checker.check_drain()
    checker.check_complete({"consumer0": 0}, frames=1)
    assert checker.violations == []
    assert checker.checks > 0


def test_duplicate_commit_trips_exactly_once(clock):
    checker = nonfatal(clock)
    checker.frame_committed("producer0", 0, 0, 100)
    checker.frame_committed("producer0", 0, 0, 100)
    assert any("committed twice" in v for v in checker.violations)


def test_duplicate_consume_trips_exactly_once(clock):
    checker = nonfatal(clock)
    checker.frame_committed("producer0", 0, 0, 100)
    checker.frame_consumed("consumer0", 0, 0, 100, 100)
    checker.frame_consumed("consumer0", 0, 0, 100, 100)
    assert any("consumed frame 0" in v and "twice" in v
               for v in checker.violations)


def test_consume_before_commit_trips_causality(clock):
    checker = nonfatal(clock)
    checker.frame_consumed("consumer0", 0, 0, 100, 100)
    assert any("causality" in v and "before any commit" in v
               for v in checker.violations)


def test_consume_before_commit_time_trips_causality(clock):
    checker = nonfatal(clock)
    clock.now = 5.0
    checker.frame_committed("producer0", 0, 0, 100)
    clock.now = 2.0  # a read that somehow completed before the commit
    checker.frame_consumed("consumer1", 0, 0, 100, 100)
    assert any("causality" in v and "before its commit" in v
               for v in checker.violations)


def test_commit_time_override_models_stale_publish(clock):
    # DYAD under stale_metadata publishes *before* the bytes land: the
    # commit instant the checker sees is the KVS publish time.
    checker = nonfatal(clock)
    clock.now = 5.0
    checker.frame_committed("producer0", 0, 0, 100, at=1.0)
    clock.now = 2.0
    checker.frame_consumed("consumer0", 0, 0, 100, 100)
    assert checker.violations == []


def test_short_read_trips_conservation(clock):
    checker = nonfatal(clock)
    checker.frame_committed("producer0", 0, 0, 100)
    checker.frame_consumed("consumer0", 0, 0, expected=100, got=40)
    assert any("conservation" in v and "read 40 of 100 bytes" in v
               for v in checker.violations)


def test_commit_size_mismatch_trips_conservation(clock):
    checker = nonfatal(clock)
    checker.frame_committed("producer0", 0, 0, 60)
    checker.frame_consumed("consumer0", 0, 0, expected=100, got=100)
    assert any("its producer committed 60" in v for v in checker.violations)


def test_corrupt_payload_trips_integrity(clock):
    checker = nonfatal(clock)
    checker.frame_committed("producer0", 0, 0, 100)
    checker.frame_consumed("consumer0", 0, 0, 100, 100, corrupt=True)
    assert any("integrity" in v and "corrupted payload" in v
               for v in checker.violations)


def test_clock_regression_trips_monotonic_time(clock):
    checker = nonfatal(clock)
    clock.now = 3.0
    checker.frame_committed("producer0", 0, 0, 100)
    clock.now = 1.0
    checker.frame_committed("producer0", 0, 1, 100)
    assert any("monotonic-time" in v for v in checker.violations)


def test_drain_reports_leaked_locks_and_flows(clock):
    class Locks:
        _paths = {"/a": object(), "/b": object()}

    class Channel:
        active_flows = 3

    checker = nonfatal(clock)
    checker.check_drain(lock_tables=[Locks()], channels=[Channel()])
    assert any("lock path(s) still held" in v for v in checker.violations)
    assert any("3 in-flight flow(s)" in v for v in checker.violations)


def test_completeness_reports_gaps(clock):
    checker = nonfatal(clock)
    checker.frame_committed("producer0", 0, 0, 100)
    checker.frame_consumed("consumer0", 0, 0, 100, 100)
    checker.check_complete({"consumer0": 0}, frames=3)
    assert any("never consumed frame(s) 1, 2" in v
               for v in checker.violations)


def test_fatal_raises_on_first_violation(clock):
    checker = InvariantChecker(clock, InvariantConfig(fatal=True))
    checker.frame_committed("producer0", 0, 0, 100)
    with pytest.raises(InvariantViolation, match="committed twice"):
        checker.frame_committed("producer0", 0, 0, 100)
    assert checker.violation_count == 1


def test_disabled_checker_is_a_noop(clock):
    checker = InvariantChecker(clock, InvariantConfig(enabled=False))
    checker.frame_consumed("consumer0", 0, 0, 100, 1)  # any lie goes
    checker.check_drain()
    checker.check_complete({"consumer0": 0}, frames=5)
    assert checker.checks == 0
    assert checker.violations == []


# ---------------------------------------------------------------------------
# end-to-end: every system runs checked and clean
# ---------------------------------------------------------------------------


def small_spec(system, placement=Placement.SINGLE_NODE, frames=6):
    return WorkflowSpec(system=system, model=JAC, stride=880, frames=frames,
                        pairs=1, placement=placement)


@pytest.mark.parametrize("system,placement", [
    (System.DYAD, Placement.SPLIT),
    (System.XFS, Placement.SINGLE_NODE),
    (System.LUSTRE, Placement.SPLIT),
])
def test_clean_run_checked_and_violation_free(system, placement):
    result = run_workflow(small_spec(system, placement))
    assert result.system_stats["invariant_checks"] > 0
    assert result.system_stats["invariant_violations"] == 0.0
    assert result.invariant_violations == []


def test_disabled_invariants_report_zero_checks():
    result = run_workflow(
        small_spec(System.XFS),
        invariants=InvariantConfig(enabled=False),
    )
    assert result.system_stats["invariant_checks"] == 0.0


# ---------------------------------------------------------------------------
# end-to-end: torn writes — the acceptance scenario
# ---------------------------------------------------------------------------


def torn_plan(spec):
    # one window over the first production; DYAD staging repairs at revert
    period = spec.stride_time
    return FaultPlan(events=(
        FaultEvent("torn_write", at=0.5 * period, target="0",
                   duration=1.2 * period, severity=0.5),
    ))


def test_torn_write_checked_consumer_refetches():
    """Checked DYAD detects the short frame, retries, and completes."""
    spec = small_spec(System.DYAD, Placement.SPLIT)
    result = run_workflow(spec, fault_plan=torn_plan(spec),
                          dyad_config=DyadConfig(max_transfer_retries=40))
    assert result.invariant_violations == []
    assert result.system_stats["dyad_transfer_retries"] > 0


def test_torn_write_unchecked_consumer_reads_short_frame():
    """Legacy mode swallows the torn frame; the checker records the lie."""
    spec = small_spec(System.DYAD, Placement.SPLIT)
    result = run_workflow(
        spec, fault_plan=torn_plan(spec),
        dyad_config=DyadConfig(integrity_checks=False),
        invariants=InvariantConfig(fatal=False),
    )
    assert any("conservation" in v for v in result.invariant_violations)
    assert result.system_stats["invariant_violations"] > 0


def test_torn_write_unchecked_fatal_raises():
    spec = small_spec(System.DYAD, Placement.SPLIT)
    with pytest.raises(InvariantViolation, match="conservation"):
        run_workflow(
            spec, fault_plan=torn_plan(spec),
            dyad_config=DyadConfig(integrity_checks=False),
            invariants=InvariantConfig(fatal=True),
        )


def test_invariant_config_is_cache_stable():
    a = InvariantConfig(fatal=False)
    b = dataclasses.replace(a)
    assert repr(a) == repr(b)
