"""Integration tests for the workflow runner (small configurations)."""

import pytest

from repro.md.models import JAC
from repro.perf.caliper import Category
from repro.workflow.emulator import READ_REGION, SYNC_REGION, WRITE_REGION
from repro.workflow.runner import run_repetitions, run_workflow
from repro.workflow.spec import Placement, System, WorkflowSpec


def small_spec(system, pairs=1, frames=6, placement=None):
    if placement is None:
        placement = (Placement.SPLIT if system is System.LUSTRE
                     else Placement.SINGLE_NODE)
    return WorkflowSpec(system=system, model=JAC, stride=880, frames=frames,
                        pairs=pairs, placement=placement)


@pytest.mark.parametrize("system", [System.DYAD, System.XFS, System.LUSTRE])
def test_runner_completes_and_counts(system):
    spec = small_spec(system)
    result = run_workflow(spec)
    assert len(result.producer_trees) == 1
    assert len(result.consumer_trees) == 1
    assert result.makespan > spec.frames * spec.stride_time


def test_result_metric_decomposition_dyad():
    result = run_workflow(small_spec(System.DYAD))
    assert result.production_movement > 0
    assert result.production_idle == 0.0
    assert result.consumption_movement > 0
    assert result.consumption_idle > 0  # first-frame KVS wait
    assert result.consumption_time == pytest.approx(
        result.consumption_movement + result.consumption_idle
    )


def test_result_metric_decomposition_xfs():
    spec = small_spec(System.XFS)
    result = run_workflow(spec)
    # coarse sync: consumer idle per frame ~ the production period
    assert result.consumption_idle == pytest.approx(
        spec.stride_time, rel=0.05
    )
    assert result.production_idle == 0.0


def test_lustre_trees_have_paper_region_names():
    result = run_workflow(small_spec(System.LUSTRE))
    consumer = result.consumer_trees[0]
    assert consumer.find(SYNC_REGION) is not None
    assert consumer.find(READ_REGION) is not None
    assert consumer.find(SYNC_REGION).category == Category.IDLE
    producer = result.producer_trees[0]
    assert producer.find(WRITE_REGION) is not None
    assert producer.find("md_sleep").category == Category.COMPUTE


def test_dyad_trees_have_paper_region_names():
    result = run_workflow(small_spec(System.DYAD))
    consumer = result.consumer_trees[0]
    for path in [("dyad_consume",), ("dyad_consume", "dyad_fetch"),
                 ("read_single_buf",)]:
        assert consumer.find(*path) is not None, path
    producer = result.producer_trees[0]
    assert producer.find("dyad_produce", "dyad_commit") is not None


def test_dyad_single_node_no_rdma_regions():
    result = run_workflow(small_spec(System.DYAD,
                                     placement=Placement.SINGLE_NODE))
    consumer = result.consumer_trees[0]
    assert consumer.find("dyad_consume", "dyad_get_data") is None
    assert consumer.find("dyad_consume", "dyad_cons_store") is None


def test_dyad_split_has_rdma_regions():
    result = run_workflow(small_spec(System.DYAD, placement=Placement.SPLIT))
    consumer = result.consumer_trees[0]
    assert consumer.find("dyad_consume", "dyad_get_data") is not None
    assert consumer.find("dyad_consume", "dyad_cons_store") is not None


def test_read_counts_match_frames():
    spec = small_spec(System.XFS, pairs=2, frames=5)
    result = run_workflow(spec)
    for tree in result.consumer_trees:
        assert tree.find(READ_REGION).count == 5


def test_determinism_same_seed():
    spec = small_spec(System.DYAD, pairs=2)
    a = run_workflow(spec, seed=42, jitter_cv=0.05)
    b = run_workflow(spec, seed=42, jitter_cv=0.05)
    assert a.consumption_time == b.consumption_time
    assert a.makespan == b.makespan


def test_different_seeds_differ_with_jitter():
    spec = small_spec(System.DYAD, pairs=2)
    a = run_workflow(spec, seed=1, jitter_cv=0.05)
    b = run_workflow(spec, seed=2, jitter_cv=0.05)
    assert a.makespan != b.makespan


def test_run_repetitions_distinct_seeds():
    spec = small_spec(System.DYAD)
    results = run_repetitions(spec, runs=3, jitter_cv=0.05)
    assert len(results) == 3
    assert len({r.seed for r in results}) == 3


def test_run_repetitions_validation():
    with pytest.raises(Exception):
        run_repetitions(small_spec(System.DYAD), runs=0)


def test_thicket_export_tags():
    result = run_workflow(small_spec(System.DYAD, pairs=2))
    ensemble = result.thicket(extra="tag")
    assert len(ensemble) == 4  # 2 producers + 2 consumers
    consumers = ensemble.filter(role="consumer")
    assert len(consumers) == 2
    meta = consumers.metadata()[0]
    assert meta["system"] == "dyad" and meta["model"] == "JAC"
    assert meta["extra"] == "tag"


def test_compute_cv_override():
    spec = small_spec(System.DYAD)
    jittered = run_workflow(spec, seed=3, jitter_cv=0.0, compute_cv=0.1)
    exact = run_workflow(spec, seed=3, jitter_cv=0.0, compute_cv=0.0)
    assert jittered.makespan != exact.makespan
