"""Tests for the workflow CLI."""

import pytest

from repro.errors import WorkflowError
from repro.workflow.__main__ import build_parser, build_spec, main
from repro.workflow.spec import Placement, SyncMode, System, Topology


def parse(*argv):
    return build_parser().parse_args(list(argv))


def test_spec_defaults():
    spec = build_spec(parse("--system", "dyad"))
    assert spec.system is System.DYAD
    assert spec.model.name == "JAC"
    assert spec.stride == 880
    assert spec.placement is Placement.SPLIT


def test_spec_xfs_defaults_single_node():
    spec = build_spec(parse("--system", "xfs", "--pairs", "2"))
    assert spec.placement is Placement.SINGLE_NODE


def test_spec_model_and_stride():
    spec = build_spec(parse("--system", "lustre", "--model", "stmv",
                            "--stride", "10"))
    assert spec.model.name == "STMV"
    assert spec.stride == 10


def test_spec_sync_mode():
    spec = build_spec(parse("--system", "lustre", "--sync", "polling"))
    assert spec.sync_mode is SyncMode.POLLING


def test_sync_ignored_for_dyad():
    spec = build_spec(parse("--system", "dyad", "--sync", "polling"))
    assert spec.sync_mode is SyncMode.COARSE  # spec default; no error


def test_unknown_system_rejected():
    with pytest.raises(SystemExit):
        parse("--system", "nfs")


def test_spec_topology_args():
    spec = build_spec(parse("--system", "dyad", "--topology", "fanout",
                            "--consumers", "8"))
    assert spec.topology is Topology.FANOUT
    assert (spec.producers, spec.consumers, spec.pairs) == (1, 8, 1)


def test_topology_without_sizes_rejected():
    with pytest.raises(WorkflowError, match="consumers >= 1"):
        build_spec(parse("--system", "dyad", "--topology", "fanout"))


def test_pairwise_rejects_stray_topology_sizes():
    # The flags must not be silently ignored for pairwise runs.
    with pytest.raises(WorkflowError, match="sizes via pairs"):
        build_spec(parse("--system", "dyad", "--producers", "3"))


def test_unknown_topology_rejected():
    with pytest.raises(SystemExit):
        parse("--system", "dyad", "--topology", "ring")


def test_main_runs_and_prints(capsys):
    rc = main(["--system", "dyad", "--frames", "4", "--pairs", "1",
               "--runs", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "production movement" in out
    assert "makespan" in out


def test_main_writes_trace(tmp_path, capsys):
    trace_path = tmp_path / "run.json"
    rc = main(["--system", "dyad", "--frames", "3", "--pairs", "1",
               "--trace", str(trace_path)])
    assert rc == 0
    assert trace_path.exists()
