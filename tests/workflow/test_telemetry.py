"""Workflow-level tests of the substrate telemetry layer.

The load-bearing property is the pure-observation guarantee: a run with
telemetry attached is bit-identical (by :func:`result_fingerprint`) to the
same run without it, for every system and for faulty runs. The rest checks
the export surface: Chrome-trace schema, campaign-level ``--trace`` /
``--metrics`` plumbing, and fault windows landing as timeline annotations.
"""

import json

import pytest

from repro.errors import ReproError
from repro.experiments.parallel import (
    RunTask,
    campaign,
    result_fingerprint,
    run_campaign,
)
from repro.experiments.resilience import build_plan
from repro.faults.plan import FaultEvent, FaultPlan
from repro.md.models import JAC, STMV
from repro.perf.metrics import merge_chrome_trace
from repro.workflow.runner import run_workflow
from repro.workflow.spec import Placement, System, WorkflowSpec


def spec_for(system, model=JAC, frames=4, pairs=2):
    placement = (Placement.SINGLE_NODE if system is System.XFS
                 else Placement.SPLIT)
    return WorkflowSpec(system=system, model=model, stride=model.paper_stride,
                        frames=frames, pairs=pairs, placement=placement)


class TestFingerprintNeutrality:
    """Telemetry on vs off: results bit-identical, clean and faulty."""

    @pytest.mark.parametrize("system", [System.DYAD, System.XFS, System.LUSTRE])
    def test_clean_run_neutral(self, system):
        # fig5-style single-node XFS cell plus the fig7-style split cells.
        spec = spec_for(system)
        plain = run_workflow(spec, seed=11, jitter_cv=0.05)
        metered = run_workflow(spec, seed=11, jitter_cv=0.05,
                               trace=True, metrics=True)
        assert result_fingerprint(plain) == result_fingerprint(metered)

    def test_large_model_neutral(self):
        # fig8-style cell: the big model exercises multi-chunk streaming.
        spec = spec_for(System.DYAD, model=STMV, frames=2, pairs=1)
        plain = run_workflow(spec, seed=2, jitter_cv=0.05)
        metered = run_workflow(spec, seed=2, jitter_cv=0.05, metrics=True)
        assert result_fingerprint(plain) == result_fingerprint(metered)

    def test_resilience_run_neutral(self):
        spec = spec_for(System.DYAD, frames=6)
        plan, dyad_config = build_plan(System.DYAD, 0.5, spec)
        kwargs = dict(seed=7, jitter_cv=0.05, fault_plan=plan,
                      dyad_config=dyad_config)
        plain = run_workflow(spec, **kwargs)
        metered = run_workflow(spec, trace=True, metrics=True, **kwargs)
        assert plain.system_stats["faults_applied"] > 0
        assert result_fingerprint(plain) == result_fingerprint(metered)


class TestTimelineContents:
    def test_substrate_instruments_present_and_monotone(self):
        result = run_workflow(spec_for(System.DYAD), seed=1, metrics=True)
        names = result.metrics.names()
        assert any(n.endswith(".egress.utilization") for n in names)
        assert any(n.startswith("ssd.") and n.endswith(".used_bytes")
                   for n in names)
        assert "kvs.commits" in result.metrics
        assert "dyad.retries" in result.metrics
        for name in names:
            series = result.metrics.series(name)
            times = [t for t, _ in series]
            assert times == sorted(times), name

    def test_utilization_bounded_and_active(self):
        result = run_workflow(spec_for(System.LUSTRE), seed=1, metrics=True)
        series = result.metrics.series("lustre.oss0.write.utilization")
        values = [v for _, v in series]
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)
        assert max(values) > 0.0  # the OSS actually absorbed writes
        rpcs = result.metrics.series("lustre.oss0.rpcs.in_service")
        assert max(v for _, v in rpcs) >= 1.0

    def test_channels_drain_to_zero(self):
        result = run_workflow(spec_for(System.DYAD), seed=1, metrics=True)
        for name in result.metrics.names():
            if name.endswith(".flows") or name.endswith(".bytes_in_flight"):
                assert result.metrics[name].value == 0.0, name


class TestChromeTraceSchema:
    def test_merged_trace_valid_with_spans_counters_and_metadata(self, tmp_path):
        result = run_workflow(spec_for(System.DYAD), seed=1,
                              trace=True, metrics=True)
        path = tmp_path / "trace.json"
        with open(path, "w") as fh:
            json.dump(merge_chrome_trace(result.tracer, result.metrics), fh)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "X" in phases and "C" in phases
        named = {(e["pid"], e["tid"]) for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        used = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
        assert used <= named  # complete thread metadata

    def test_fault_windows_exported_as_instants(self):
        spec = spec_for(System.DYAD, frames=6)
        plan, dyad_config = build_plan(System.DYAD, 0.5, spec)
        result = run_workflow(spec, seed=7, jitter_cv=0.05, fault_plan=plan,
                              dyad_config=dyad_config, trace=True, metrics=True)
        doc = merge_chrome_trace(result.tracer, result.metrics)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(result.metrics.annotations)
        assert any(e["name"].startswith("fault.") and e["name"].endswith(".apply")
                   for e in instants)


class TestFaultAnnotations:
    def test_every_applied_window_annotated(self):
        plan = FaultPlan(events=(
            FaultEvent("dyad_crash", at=0.3, target="0", duration=0.2),
            FaultEvent("ssd_degrade", at=0.5, target="1", duration=0.3,
                       severity=4.0),
        ))
        spec = spec_for(System.DYAD, frames=8)
        result = run_workflow(spec, seed=3, jitter_cv=0.05, fault_plan=plan,
                              metrics=True)
        names = [name for _, name, _ in result.metrics.annotations]
        assert names.count("fault.dyad_crash.apply") == 1
        assert names.count("fault.dyad_crash.revert") == 1
        assert names.count("fault.ssd_degrade.apply") == 1
        assert names.count("fault.ssd_degrade.revert") == 1
        # the active-window gauge returned to zero after the last revert
        assert result.metrics["faults.active"].value == 0.0
        targets = {args["target"] for _, _, args in result.metrics.annotations}
        assert targets == {"0", "1"}

    def test_annotation_times_inside_run(self):
        spec = spec_for(System.DYAD, frames=6)
        plan, dyad_config = build_plan(System.DYAD, 0.5, spec)
        result = run_workflow(spec, seed=7, jitter_cv=0.05, fault_plan=plan,
                              dyad_config=dyad_config, metrics=True)
        assert result.metrics.annotations
        for t, _, _ in result.metrics.annotations:
            assert 0.0 <= t <= result.makespan


class TestCampaignPlumbing:
    def _tasks(self, runs=2):
        spec = spec_for(System.DYAD, frames=3, pairs=1)
        return [RunTask(spec=spec, seed=100 + 1000 * r, jitter_cv=0.05)
                for r in range(runs)]

    def test_campaign_exports_once_and_results_identical(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.csv"
        baseline = run_campaign(self._tasks(), jobs=1, use_cache=False)
        with campaign(trace_path=str(trace_path),
                      metrics_path=str(metrics_path)):
            results = run_campaign(self._tasks(), jobs=1, use_cache=False)
            # the claim is one-shot: a second campaign in the same scope
            # does not re-export
            trace_path.unlink()
            run_campaign(self._tasks(1), jobs=1, use_cache=False)
            assert not trace_path.exists()
        assert metrics_path.read_text().startswith("time_s,")
        assert [result_fingerprint(r) for r in results] == \
               [result_fingerprint(r) for r in baseline]
        assert results[0].metrics is not None  # the instrumented repetition
        assert results[1].metrics is None

    def test_telemetry_run_never_cached(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with campaign(trace_path=str(tmp_path / "t.json"),
                      metrics_path=str(tmp_path / "m.json")):
            run_campaign(self._tasks(), jobs=1, use_cache=True,
                         cache_dir=str(cache_dir))
        # second invocation (no telemetry scope): task 0 misses the cache
        # (its instrumented run was not stored), task 1 hits.
        results = run_campaign(self._tasks(), jobs=1, use_cache=True,
                               cache_dir=str(cache_dir))
        assert all(r.metrics is None and r.tracer is None for r in results)

    def test_cache_refuses_metered_results(self, tmp_path):
        from repro.experiments.persist import ResultCache

        result = run_workflow(spec_for(System.DYAD, frames=3, pairs=1),
                              seed=1, metrics=True)
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ReproError):
            cache.store("somekey", result)
