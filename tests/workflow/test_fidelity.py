"""Fidelity-tier differential tests: fluid/hybrid vs the exact tier.

The fluid tiers are approximations with a documented validity envelope
(``docs/performance.md``): whole-workflow timings must agree with the
exact tier within 1e-3 relative on paper-scale configurations. These
tests pin that contract on the fig5/fig7/fig8 shapes (at zero jitter —
jitter draws RNG streams in tier-dependent order, so tolerance-based
comparison is only meaningful with it off) and check the tier metadata
and kernel-health counters surface correctly.

The exact tier itself is pinned bit-identically by the frozen-
fingerprint suite (``tests/sim/test_channel_fingerprints.py``); here we
only confirm ``fidelity="exact"`` is the default and leaves results
untouched.
"""

import math

import pytest

from repro.errors import ConfigError
from repro.md.models import model_by_name
from repro.workflow.runner import run_workflow
from repro.workflow.spec import Placement, SyncMode, System, WorkflowSpec

REL_TOL = 1e-3
ABS_TOL = 1e-6

#: Per-frame completion metrics covered by the tolerance contract, plus
#: the whole-run makespan.
METRICS = (
    "production_time",
    "consumption_time",
    "production_movement",
    "production_idle",
    "consumption_movement",
    "consumption_idle",
    "makespan",
)


def _spec(system, model, pairs, frames, **extras):
    m = model_by_name(model)
    return WorkflowSpec(system=system, model=m, stride=m.paper_stride,
                        frames=frames, pairs=pairs, **extras)


#: Paper-scale configurations, one per reproduced figure family.
CONFIGS = {
    "fig5-xfs": (_spec(System.XFS, "jac", 4, 8,
                       placement=Placement.SINGLE_NODE,
                       sync_mode=SyncMode.COARSE), 5),
    "fig7-dyad": (_spec(System.DYAD, "jac", 8, 8,
                        placement=Placement.SPLIT), 7),
    "fig7-lustre": (_spec(System.LUSTRE, "jac", 8, 8,
                          placement=Placement.SPLIT,
                          sync_mode=SyncMode.COARSE), 7),
    "fig8-dyad-stmv": (_spec(System.DYAD, "stmv", 16, 4,
                             placement=Placement.SPLIT), 3),
}

_exact_cache = {}


def _exact(name):
    if name not in _exact_cache:
        spec, seed = CONFIGS[name]
        _exact_cache[name] = run_workflow(spec, seed=seed, jitter_cv=0.0,
                                          fidelity="exact")
    return _exact_cache[name]


@pytest.mark.parametrize("name", sorted(CONFIGS))
@pytest.mark.parametrize("tier", ["hybrid", "fluid"])
def test_tier_within_tolerance_of_exact(name, tier):
    spec, seed = CONFIGS[name]
    exact = _exact(name)
    got = run_workflow(spec, seed=seed, jitter_cv=0.0, fidelity=tier)
    for metric in METRICS:
        want = getattr(exact, metric)
        have = getattr(got, metric)
        assert math.isclose(have, want, rel_tol=REL_TOL, abs_tol=ABS_TOL), (
            f"{name}/{tier}: {metric} = {have!r}, exact tier = {want!r}"
        )
    # same work was done, not just similar timing: byte and wire-op
    # accounting must match the exact tier exactly (chunk collapse keeps
    # rdma_transfers parity by construction)
    for stat in ("fabric_bytes_moved", "fabric_rdma_transfers",
                 "fabric_transfers", "ssd_bytes_written", "ssd_bytes_read"):
        assert got.system_stats[stat] == exact.system_stats[stat], stat


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_exact_is_default_and_unchanged(name):
    """No-fidelity calls run the exact tier and match it bit for bit."""
    spec, seed = CONFIGS[name]
    exact = _exact(name)
    default = run_workflow(spec, seed=seed, jitter_cv=0.0)
    for metric in METRICS:
        assert getattr(default, metric) == getattr(exact, metric)
    assert default.fidelity == exact.fidelity == "exact"
    assert exact.system_stats["fidelity"] == 0.0
    assert exact.system_stats["fluid_epochs"] == 0.0
    assert exact.system_stats["rate_solves"] == 0.0


@pytest.mark.parametrize("tier,ordinal", [("hybrid", 1.0), ("fluid", 2.0)])
def test_tier_metadata_and_counters(tier, ordinal):
    spec, seed = CONFIGS["fig7-dyad"]
    got = run_workflow(spec, seed=seed, jitter_cv=0.0, fidelity=tier)
    assert got.fidelity == tier
    assert got.system_stats["fidelity"] == ordinal
    assert got.system_stats["fluid_epochs"] > 0.0
    assert got.system_stats["rate_solves"] > 0.0
    # fluid links feed the same channel_* aggregation (peaks are real),
    # but never reschedule nor defuse stale wakeups: the network keeps
    # one wake-up total, re-aimed in place
    assert got.system_stats["channel_peak_flows"] > 0.0
    assert got.system_stats["channel_stale_wakeups"] == 0.0
    assert got.system_stats["channel_reschedules"] == 0.0


def test_unknown_fidelity_rejected():
    spec, seed = CONFIGS["fig7-dyad"]
    with pytest.raises(ConfigError):
        run_workflow(spec, seed=seed, fidelity="turbo")
