"""Unit tests for the workflow specification and placement rules."""

import pytest

from repro.errors import WorkflowError
from repro.md.models import JAC, STMV
from repro.workflow.spec import PROCS_PER_NODE, Placement, System, WorkflowSpec


def test_defaults_are_paper_defaults():
    spec = WorkflowSpec(system=System.DYAD)
    assert spec.model is JAC
    assert spec.stride == 880
    assert spec.frames == 128


def test_xfs_must_be_single_node():
    with pytest.raises(WorkflowError, match="single-node"):
        WorkflowSpec(system=System.XFS, placement=Placement.SPLIT)


def test_lustre_must_be_split():
    with pytest.raises(WorkflowError, match="distributed"):
        WorkflowSpec(system=System.LUSTRE, placement=Placement.SINGLE_NODE)


def test_dyad_allows_both_placements():
    WorkflowSpec(system=System.DYAD, placement=Placement.SINGLE_NODE)
    WorkflowSpec(system=System.DYAD, pairs=8, placement=Placement.SPLIT)


def test_single_node_gpu_limit():
    WorkflowSpec(system=System.XFS, pairs=4)  # 8 procs = 8 GPUs, ok
    with pytest.raises(WorkflowError, match="GPUs"):
        WorkflowSpec(system=System.XFS, pairs=5)


def test_parameter_validation():
    with pytest.raises(WorkflowError):
        WorkflowSpec(system=System.DYAD, stride=0)
    with pytest.raises(WorkflowError):
        WorkflowSpec(system=System.DYAD, frames=0)
    with pytest.raises(WorkflowError):
        WorkflowSpec(system=System.DYAD, pairs=0)


def test_derived_times():
    spec = WorkflowSpec(system=System.DYAD, model=JAC, stride=880)
    assert spec.stride_time == pytest.approx(880 / 1072.92)
    assert spec.analytics_time == spec.stride_time
    assert spec.frame_bytes == JAC.frame_bytes
    assert spec.total_steps == 128 * 880


def test_nodes_required_single():
    spec = WorkflowSpec(system=System.DYAD, pairs=4)
    assert spec.nodes_required == 1


@pytest.mark.parametrize("pairs,nodes", [
    (1, 2), (8, 2), (9, 4), (16, 4), (64, 16), (256, 64),
])
def test_nodes_required_split(pairs, nodes):
    spec = WorkflowSpec(system=System.LUSTRE, pairs=pairs,
                        placement=Placement.SPLIT)
    assert spec.nodes_required == nodes


def test_placements_single_node_collocated():
    spec = WorkflowSpec(system=System.XFS, pairs=3)
    assert spec.placements() == [(0, 0), (0, 0), (0, 0)]


def test_placements_split_halves():
    spec = WorkflowSpec(system=System.LUSTRE, pairs=16,
                        placement=Placement.SPLIT)
    placements = spec.placements()
    producer_nodes = {p for p, _ in placements}
    consumer_nodes = {c for _, c in placements}
    assert producer_nodes == {0, 1}
    assert consumer_nodes == {2, 3}
    # at most 8 processes per node
    for node in range(4):
        count = sum(1 for p, c in placements for x in (p, c) if x == node)
        assert count <= PROCS_PER_NODE


def test_placements_split_balanced():
    spec = WorkflowSpec(system=System.LUSTRE, pairs=12,
                        placement=Placement.SPLIT)
    placements = spec.placements()
    assert len(placements) == 12
    assert max(p for p, _ in placements) < spec.nodes_required // 2


def test_describe_mentions_key_facts():
    spec = WorkflowSpec(system=System.DYAD, model=STMV, stride=28, pairs=2)
    text = spec.describe()
    assert "dyad" in text and "STMV" in text and "pairs=2" in text


def test_spec_is_frozen():
    spec = WorkflowSpec(system=System.DYAD)
    with pytest.raises(AttributeError):
        spec.pairs = 7
