"""Workflow-level tests of the timeline tracer (pipelining made visible)."""

import pytest

from repro.md.models import JAC
from repro.workflow.runner import run_workflow
from repro.workflow.spec import Placement, SyncMode, System, WorkflowSpec


def run(system, sync_mode=SyncMode.COARSE, trace=True):
    placement = (Placement.SPLIT if system is not System.XFS
                 else Placement.SINGLE_NODE)
    kwargs = {}
    if system is not System.DYAD:
        kwargs["sync_mode"] = sync_mode
    spec = WorkflowSpec(system=system, model=JAC, stride=880, frames=8,
                        pairs=1, placement=placement, **kwargs)
    return run_workflow(spec, trace=trace)


def test_tracer_absent_by_default():
    result = run(System.DYAD, trace=False)
    assert result.tracer is None


def test_tracer_records_all_processes():
    result = run(System.DYAD)
    processes = {e.process for e in result.tracer.events}
    assert processes == {"producer0000", "consumer0000"}


def test_dyad_pipelines_traditional_serializes():
    """The paper's central mechanism, read straight off the timelines."""
    dyad = run(System.DYAD)
    lustre = run(System.LUSTRE)
    dyad_overlap = dyad.tracer.overlap("producer0000", "consumer0000")
    lustre_overlap = lustre.tracer.overlap("producer0000", "consumer0000")
    assert lustre_overlap == pytest.approx(0.0, abs=1e-6)
    assert dyad_overlap > 0.5 * dyad.makespan


def test_polling_restores_overlap_for_lustre():
    coarse = run(System.LUSTRE, sync_mode=SyncMode.COARSE)
    polling = run(System.LUSTRE, sync_mode=SyncMode.POLLING)
    assert (polling.tracer.overlap("producer0000", "consumer0000")
            > coarse.tracer.overlap("producer0000", "consumer0000"))


def test_trace_and_calltree_agree():
    result = run(System.DYAD)
    tree = result.consumer_trees[0]
    spans = result.tracer.spans(process="consumer0000", region="dyad_consume")
    assert len(spans) == tree.find("dyad_consume").count
    assert sum(s.duration for s in spans) == pytest.approx(
        tree.find("dyad_consume").time
    )


def test_chrome_export_from_workflow(tmp_path):
    result = run(System.DYAD)
    path = tmp_path / "workflow.trace.json"
    result.tracer.write_chrome_trace(path)
    assert path.stat().st_size > 1000
