"""Tests for the Pegasus-style polling synchronization mode."""

import pytest

from repro.errors import WorkflowError
from repro.md.models import JAC
from repro.perf.caliper import Category
from repro.workflow.emulator import POLL_REGION, READ_REGION, SYNC_REGION
from repro.workflow.runner import run_workflow
from repro.workflow.spec import Placement, SyncMode, System, WorkflowSpec


def spec_with(sync_mode, system=System.LUSTRE, frames=8, pairs=2,
              poll_interval=0.25):
    placement = (Placement.SPLIT if system is System.LUSTRE
                 else Placement.SINGLE_NODE)
    return WorkflowSpec(system=system, model=JAC, stride=880, frames=frames,
                        pairs=pairs, placement=placement,
                        sync_mode=sync_mode, poll_interval=poll_interval)


def test_polling_normalizes_to_coarse_for_dyad():
    """DYAD synchronization is automatic: requesting the manual POLLING
    mode aliases to the canonical COARSE spelling instead of raising
    (COARSE is what every DYAD spec already carries by default), so the
    two spellings share one spec repr, one cache key, and one result
    fingerprint."""
    spec = WorkflowSpec(system=System.DYAD, sync_mode=SyncMode.POLLING)
    assert spec.sync_mode is SyncMode.COARSE
    assert repr(spec) == repr(WorkflowSpec(system=System.DYAD,
                                           sync_mode=SyncMode.COARSE))


def test_poll_interval_validation():
    with pytest.raises(WorkflowError, match="poll_interval"):
        spec_with(SyncMode.POLLING, poll_interval=0.0)


def test_polling_consumer_tree_regions():
    result = run_workflow(spec_with(SyncMode.POLLING))
    consumer = result.consumer_trees[0]
    assert consumer.find(POLL_REGION) is not None
    assert consumer.find(POLL_REGION).category == Category.IDLE
    assert consumer.find(READ_REGION) is not None
    assert consumer.find(SYNC_REGION) is None  # no coarse barrier


def test_polling_reads_every_frame():
    result = run_workflow(spec_with(SyncMode.POLLING, frames=6))
    for tree in result.consumer_trees:
        assert tree.find(READ_REGION).count == 6


def test_polling_overlaps_and_cuts_idle():
    coarse = run_workflow(spec_with(SyncMode.COARSE, frames=16))
    polling = run_workflow(spec_with(SyncMode.POLLING, frames=16))
    # fine-grained discovery: idle is bounded by ~2 poll intervals instead
    # of the full production period
    assert polling.consumption_idle < 0.6 * coarse.consumption_idle
    # producer/consumer overlap shortens the whole workflow
    assert polling.makespan < coarse.makespan


def test_polling_idle_scales_with_interval():
    fast = run_workflow(spec_with(SyncMode.POLLING, poll_interval=0.05))
    slow = run_workflow(spec_with(SyncMode.POLLING, poll_interval=0.4))
    assert slow.consumption_idle > fast.consumption_idle


def test_polling_works_on_xfs_single_node():
    result = run_workflow(spec_with(SyncMode.POLLING, system=System.XFS))
    assert result.consumption_movement > 0
    assert result.consumer_trees[0].find(POLL_REGION) is not None


def test_polling_adds_mds_stat_load():
    """Polling consumers hammer the MDS with stat RPCs."""
    coarse = run_workflow(spec_with(SyncMode.COARSE, frames=8, pairs=4))
    polling = run_workflow(spec_with(SyncMode.POLLING, frames=8, pairs=4,
                                     poll_interval=0.05))
    # counted indirectly: polling reads are slightly slower than coarse
    # reads because they compete with the stat storm at the MDS, yet the
    # data still arrives intact
    for tree in polling.consumer_trees:
        assert tree.find(READ_REGION).count == 8
    assert polling.consumption_idle < coarse.consumption_idle


def test_dyad_still_beats_polling():
    polling = run_workflow(spec_with(SyncMode.POLLING, frames=16))
    dyad = run_workflow(
        WorkflowSpec(system=System.DYAD, model=JAC, stride=880, frames=16,
                     pairs=2, placement=Placement.SPLIT)
    )
    assert dyad.consumption_time < polling.consumption_time
