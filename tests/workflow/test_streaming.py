"""Tests for the streaming transports (windowed / pubsub / nbuffer).

Three levels:

- **unit** — :class:`~repro.workflow.streaming.StreamChannel` credit
  window, condition-loop wake-up tolerance, and the injector-facing
  hold/release fault surface;
- **invariants** — the flow-control family (bounded-window,
  credit-conservation, backpressure-liveness, stream-drain) trips on
  exactly its own lie;
- **end-to-end** — every mode x system combination completes with a
  balanced credit ledger and zero violations, nbuffer is exactly the
  W=2 windowed schedule, runs are fingerprint-deterministic, and a
  crafted leak deadlocks into a *cycle-naming* StallError (not a
  timeout).
"""

import pytest

from repro.errors import StallError, WorkflowError
from repro.experiments.parallel import result_fingerprint
from repro.faults.plan import FaultEvent, FaultPlan
from repro.invariants import InvariantChecker, InvariantConfig
from repro.md.models import JAC
from repro.perf.caliper import Category
from repro.sim.core import Environment
from repro.workflow.runner import run_workflow
from repro.workflow.spec import Placement, SyncMode, System, WorkflowSpec
from repro.workflow.streaming import (
    BACKPRESSURE_REGION,
    STREAM_WAIT_REGION,
    StreamChannel,
    flow_occupancy,
)

MODES = (SyncMode.WINDOWED, SyncMode.PUBSUB, SyncMode.NBUFFER)
SYSTEMS = (System.DYAD, System.XFS, System.LUSTRE)

FRAMES = 6
PAIRS = 2


def _spec(system, mode, frames=FRAMES, pairs=PAIRS, window=2, **kwargs):
    placement = (Placement.SINGLE_NODE if system is System.XFS
                 else Placement.SPLIT)
    return WorkflowSpec(system=system, model=JAC, stride=880, frames=frames,
                        pairs=pairs, placement=placement, sync_mode=mode,
                        window=window, **kwargs)


def _channel(env, window=2):
    return StreamChannel(env, pair=0, window=window,
                         producer_role="producer0", consumer_role="consumer0",
                         producer_node="node00", consumer_node="node01")


# ---------------------------------------------------------------------------
# spec surface
# ---------------------------------------------------------------------------


def test_window_validation():
    with pytest.raises(WorkflowError, match="window"):
        _spec(System.XFS, SyncMode.WINDOWED, window=0)


def test_nbuffer_is_fixed_double_buffer():
    with pytest.raises(WorkflowError, match="W=2 special case"):
        _spec(System.XFS, SyncMode.NBUFFER, window=3)
    assert _spec(System.XFS, SyncMode.NBUFFER).effective_window == 2


def test_streaming_flag_and_repr_neutrality():
    assert not WorkflowSpec(system=System.DYAD).is_streaming
    assert _spec(System.DYAD, SyncMode.PUBSUB).is_streaming
    # Cache keys / fingerprints hash repr(spec): pre-streaming specs must
    # render byte-identically, so the default window stays invisible.
    assert "window" not in repr(WorkflowSpec(system=System.XFS))
    assert "window=4" in repr(_spec(System.XFS, SyncMode.WINDOWED, window=4))


# ---------------------------------------------------------------------------
# unit: StreamChannel credit window
# ---------------------------------------------------------------------------


def test_backpressure_blocks_producer_at_window():
    env = Environment()
    channel = _channel(env, window=2)
    acquired = []

    def producer():
        for k in range(4):
            yield from channel.acquire_credit(k)
            acquired.append((k, env.now))
            channel.publish(k)

    def consumer():
        for k in range(4):
            yield from channel.wait_frame(k)
            yield env.timeout(0.5)
            channel.release_credit(k)

    env.process(producer())
    env.process(consumer())
    env.run()
    # Frames 0/1 fill the window at t=0; every further credit waits for
    # a consumer return at t=0.5k.
    assert [k for k, _ in acquired] == [0, 1, 2, 3]
    assert acquired[0][1] == 0.0 and acquired[1][1] == 0.0
    assert acquired[2][1] == pytest.approx(0.5)
    assert acquired[3][1] == pytest.approx(1.0)
    assert channel.peak_in_flight == 2
    assert channel.producer_blocks == 2
    assert channel.blocked_time == pytest.approx(1.0)
    assert channel.credits_issued == channel.credits_returned == 4
    assert channel.armed_watches() == []


def test_wait_frame_tolerates_foreign_and_duplicate_wakeups():
    env = Environment()
    channel = _channel(env)
    woke = []

    def consumer():
        yield from channel.wait_frame(1)
        woke.append(env.now)

    def producer():
        yield env.timeout(0.1)
        channel.publish(0)   # foreign frame: broadcast wakes the watcher
        yield env.timeout(0.1)
        channel.publish(1)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert woke == [pytest.approx(0.2)]
    assert channel.spurious_wakeups == 1


def test_hold_notifications_queues_and_redelivers():
    env = Environment()
    channel = _channel(env)
    woke = []

    def consumer():
        yield from channel.wait_frame(0)
        woke.append(env.now)

    def producer():
        yield env.timeout(0.1)
        channel.publish(0)           # plane is down: wake-up lost
        yield env.timeout(0.4)
        channel.release_notifications()

    channel.hold_notifications()
    env.process(consumer())
    env.process(producer())
    env.run()
    assert channel.lost_wakeups == 1
    assert channel.redeliveries == 1
    assert channel.undelivered_frames() == []
    assert woke == [pytest.approx(0.5)]


def test_hold_returns_leaks_credit_until_release():
    env = Environment()
    channel = _channel(env, window=1)
    acquired = []

    def producer():
        yield from channel.acquire_credit(0)
        channel.publish(0)
        yield from channel.acquire_credit(1)
        acquired.append(env.now)

    def consumer():
        yield from channel.wait_frame(0)
        channel.release_credit(0)    # deferred: the credit leaks
        yield env.timeout(1.0)
        channel.release_returns()    # recovery flushes the return

    channel.hold_returns()
    env.process(producer())
    env.process(consumer())
    env.run()
    assert channel.deferred_return_count == 1
    assert channel.deferred_returns() == []
    assert acquired == [pytest.approx(1.0)]
    assert channel.credits_issued == 2
    assert channel.credits_returned == 1  # frame 1's credit is still held


def test_occupancy_names_holders_and_waiters():
    env = Environment()
    channel = _channel(env, window=1)

    def producer():
        yield from channel.acquire_credit(0)
        channel.publish(0)
        yield from channel.acquire_credit(1)  # blocks forever

    def consumer():
        yield from channel.wait_frame(1)      # never delivered

    env.process(producer())
    env.process(consumer())
    env.run()
    text = flow_occupancy([channel])
    assert "1/1 credit(s) in flight" in text
    assert "held for frame(s) 0" in text
    assert "awaiting return by consumer0" in text
    assert "producer0 blocked" in text
    assert "consumer0 watch armed on frame(s) 1" in text


# ---------------------------------------------------------------------------
# invariants: the flow-control family trips on its own lie
# ---------------------------------------------------------------------------


class _Clock:
    def __init__(self):
        self.now = 0.0


def _nonfatal():
    return InvariantChecker(_Clock(), InvariantConfig(fatal=False))


def test_bounded_window_invariant_trips():
    checker = _nonfatal()
    checker.credit_issued("producer0", 0, 2, in_flight=3, window=2)
    assert any("bounded-window" in v for v in checker.violations)


def test_credit_conservation_invariant_trips():
    checker = _nonfatal()
    checker.credit_returned("consumer0", 0, 1, issued=5, returned=3, held=1)
    assert any("credit-conservation" in v for v in checker.violations)


def test_backpressure_liveness_invariant_trips():
    checker = _nonfatal()
    checker.producer_unblocked("producer0", 0, waited=2.0, horizon=1.0)
    assert any("backpressure-liveness" in v for v in checker.violations)
    # no horizon declared: counted, never tripped
    checker2 = _nonfatal()
    checker2.producer_unblocked("producer0", 0, waited=2.0, horizon=None)
    assert checker2.violations == []


def test_stream_drain_invariant_trips_on_leak():
    env = Environment()
    channel = _channel(env, window=2)
    channel.credits_issued = 3   # one credit never returned
    channel.credits_returned = 2
    checker = _nonfatal()
    checker.check_stream_drain([channel])
    assert any("leaked 1 credit" in v for v in checker.violations)


# ---------------------------------------------------------------------------
# end-to-end: every mode x system combination
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("system", SYSTEMS, ids=lambda s: s.value)
@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_streaming_completes_with_balanced_ledger(system, mode):
    result = run_workflow(_spec(system, mode))   # checker fatal by default
    assert result.invariant_violations == []
    stats = result.system_stats
    expected = float(FRAMES * PAIRS)
    assert stats["stream_credits_issued"] == expected
    assert stats["stream_credits_returned"] == expected
    assert stats["stream_peak_in_flight"] <= 2
    assert stats["stream_lost_wakeups"] == 0


def test_nbuffer_is_windowed_w2_schedule():
    windowed = run_workflow(_spec(System.XFS, SyncMode.WINDOWED, window=2))
    nbuffer = run_workflow(_spec(System.XFS, SyncMode.NBUFFER))
    assert nbuffer.makespan == windowed.makespan


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_streaming_runs_are_deterministic(mode):
    a = run_workflow(_spec(System.DYAD, mode), seed=3, jitter_cv=0.05)
    b = run_workflow(_spec(System.DYAD, mode), seed=3, jitter_cv=0.05)
    assert result_fingerprint(a) == result_fingerprint(b)


def test_streaming_regions_in_call_trees():
    result = run_workflow(_spec(System.XFS, SyncMode.WINDOWED, window=1))
    producer = result.producer_trees[0]
    consumer = result.consumer_trees[0]
    assert producer.find(BACKPRESSURE_REGION) is not None
    assert producer.find(BACKPRESSURE_REGION).category == Category.IDLE
    assert consumer.find(STREAM_WAIT_REGION) is not None
    assert consumer.find(STREAM_WAIT_REGION).category == Category.IDLE


def test_crafted_leak_deadlocks_with_cycle_naming_stall(monkeypatch):
    # Leak every credit: the window drains, the producer parks forever,
    # and the fault-free runner must *diagnose* the cycle, not hang or
    # time out.
    monkeypatch.setattr(StreamChannel, "release_credit",
                        lambda self, frame: None)
    with pytest.raises(StallError) as exc:
        run_workflow(_spec(System.XFS, SyncMode.WINDOWED, pairs=1))
    msg = str(exc.value)
    assert "streaming deadlock" in msg
    assert "producer0" in msg
    assert "awaiting return by consumer0" in msg
    assert "credit(s) in flight" in msg
    assert "timeout" not in msg.lower()


def test_backpressure_liveness_horizon_end_to_end():
    # A consumer-side link flap stalls reads; the producer's block
    # outlives a deliberately tight declared horizon.
    spec = _spec(System.LUSTRE, SyncMode.WINDOWED, pairs=1, frames=8,
                 window=1)
    plan = FaultPlan(events=(
        FaultEvent("link_flap", at=1.0, target="1", duration=3.0),
    ))
    strict = run_workflow(
        spec, fault_plan=plan,
        invariants=InvariantConfig(fatal=False, liveness_horizon=0.5),
    )
    assert any("backpressure-liveness" in v
               for v in strict.invariant_violations)
    # The same run under the default (derived) horizon is clean.
    clean = run_workflow(spec, fault_plan=plan)
    assert clean.invariant_violations == []
    assert clean.system_stats["stream_producer_blocks"] >= 1
