"""End-to-end tests for the non-pairwise workflow topologies.

Four levels:

- **completion** — every shape x system x sync combination runs through
  the full workflow layer with the invariant checker fatal and reports
  zero violations;
- **shared-read tier** — DYAD fan-out pulls each frame over RDMA once
  per consumer node (the single-flight staging tier); disabling the
  tier restores per-consumer pulls;
- **ledgers** — streaming topologies balance per-edge credit ledgers
  and the pool accounts every task exactly once;
- **determinism / chaos** — runs are fingerprint-deterministic, the
  DYAD polling spelling is end-to-end identical to coarse, and the
  chaos topology grid survives seeded fault plans.
"""

import pytest

from repro.chaos import chaos_workloads, execute_plan, random_plan
from repro.dyad.config import DyadConfig
from repro.experiments.parallel import result_fingerprint
from repro.md.models import JAC
from repro.workflow.runner import run_workflow
from repro.workflow.spec import (
    Placement, SyncMode, System, Topology, WorkflowSpec,
)

FRAMES = 4

SHAPES = {
    Topology.FANOUT: {"consumers": 3},
    Topology.FANIN: {"producers": 3},
    Topology.POOL: {"producers": 2, "consumers": 3},
}


def _spec(topology, system, sync=SyncMode.COARSE, frames=FRAMES, **overrides):
    sizes = dict(SHAPES[topology], **overrides)
    placement = (Placement.SINGLE_NODE if system is System.XFS
                 else Placement.SPLIT)
    extras = {"window": 2} if sync.is_streaming else {}
    return WorkflowSpec(system=system, model=JAC, frames=frames, pairs=1,
                        placement=placement, sync_mode=sync,
                        topology=topology, **sizes, **extras)


# ---------------------------------------------------------------------------
# completion: every shape x system x sync
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("system", list(System), ids=lambda s: s.value)
@pytest.mark.parametrize("topology", list(SHAPES), ids=lambda t: t.value)
@pytest.mark.parametrize(
    "sync", (SyncMode.COARSE, SyncMode.POLLING, SyncMode.WINDOWED),
    ids=lambda m: m.value,
)
def test_topology_completes_zero_violations(topology, system, sync):
    result = run_workflow(_spec(topology, system, sync))  # checker fatal
    assert result.invariant_violations == []
    assert result.makespan > 0
    spec = result.spec
    assert len(result.producer_trees) == spec.n_producers
    assert len(result.consumer_trees) == spec.n_consumers


@pytest.mark.parametrize("system", list(System), ids=lambda s: s.value)
def test_topology_pubsub_completes(system):
    result = run_workflow(_spec(Topology.FANOUT, system, SyncMode.PUBSUB))
    assert result.invariant_violations == []


# ---------------------------------------------------------------------------
# the shared-read staging tier
# ---------------------------------------------------------------------------


def test_dyad_fanout_single_flight_pull_per_frame_per_node():
    # 4 consumers share one split node: the first miss pulls, the other
    # three wait on the in-flight pull and then hit the staging cache.
    spec = _spec(Topology.FANOUT, System.DYAD, consumers=4)
    result = run_workflow(spec)
    stats = result.system_stats
    assert stats["fabric_rdma_transfers"] == float(FRAMES)
    assert stats["dyad_cache_hits"] == float(3 * FRAMES)
    assert stats["dyad_shared_read_waits"] == float(3 * FRAMES)


def test_shared_read_tier_disabled_restores_per_consumer_pulls():
    spec = _spec(Topology.FANOUT, System.DYAD, consumers=4)
    result = run_workflow(
        spec, dyad_config=DyadConfig(shared_read_cache=False)
    )
    stats = result.system_stats
    assert stats["dyad_shared_read_waits"] == 0.0
    # Without single-flight coalescing the concurrent misses each pull.
    assert stats["fabric_rdma_transfers"] > float(FRAMES)


def test_fanin_pulls_every_stream():
    # No sharing to exploit: the reduce consumer pulls N streams x K
    # frames, each exactly once.
    spec = _spec(Topology.FANIN, System.DYAD)
    result = run_workflow(spec)
    assert result.system_stats["fabric_rdma_transfers"] == float(3 * FRAMES)


# ---------------------------------------------------------------------------
# ledgers: per-edge credits, pool exactly-once accounting
# ---------------------------------------------------------------------------


def test_fanout_windowed_one_ledger_per_edge():
    # Fan-out runs one credit window per consumer edge: M x frames
    # credits issued and every one returned.
    spec = _spec(Topology.FANOUT, System.DYAD, sync=SyncMode.WINDOWED,
                 consumers=4)
    stats = run_workflow(spec).system_stats
    assert stats["stream_credits_issued"] == float(4 * FRAMES)
    assert stats["stream_credits_returned"] == float(4 * FRAMES)
    assert stats["stream_lost_wakeups"] == 0


def test_fanin_windowed_one_ledger_per_stream():
    spec = _spec(Topology.FANIN, System.LUSTRE, sync=SyncMode.WINDOWED)
    stats = run_workflow(spec).system_stats
    assert stats["stream_credits_issued"] == float(3 * FRAMES)
    assert stats["stream_credits_returned"] == float(3 * FRAMES)


@pytest.mark.parametrize("sync", (SyncMode.COARSE, SyncMode.WINDOWED),
                         ids=lambda m: m.value)
def test_pool_accounts_every_task_exactly_once(sync):
    spec = _spec(Topology.POOL, System.DYAD, sync=sync)
    stats = run_workflow(spec).system_stats
    assert stats["pool_tasks_total"] == float(2 * FRAMES)
    assert stats["pool_workers"] == 3.0
    assert stats["pool_max_claimed"] >= stats["pool_min_claimed"]
    assert stats["pool_max_claimed"] <= float(2 * FRAMES)


def test_pool_work_actually_spreads():
    # With more tasks than one worker can monopolize, at least two
    # workers claim something (greedy stealing, frame-major order).
    spec = _spec(Topology.POOL, System.XFS, frames=8)
    stats = run_workflow(spec).system_stats
    assert stats["pool_max_claimed"] < stats["pool_tasks_total"]


# ---------------------------------------------------------------------------
# determinism + sync aliasing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("topology", list(SHAPES), ids=lambda t: t.value)
def test_topology_runs_are_deterministic(topology):
    spec = _spec(topology, System.DYAD)
    a = run_workflow(spec, seed=3, jitter_cv=0.05)
    b = run_workflow(spec, seed=3, jitter_cv=0.05)
    assert result_fingerprint(a) == result_fingerprint(b)


def test_dyad_polling_spelling_is_end_to_end_identical():
    polling = run_workflow(
        _spec(Topology.FANOUT, System.DYAD, SyncMode.POLLING), seed=5
    )
    coarse = run_workflow(
        _spec(Topology.FANOUT, System.DYAD, SyncMode.COARSE), seed=5
    )
    assert result_fingerprint(polling) == result_fingerprint(coarse)


# ---------------------------------------------------------------------------
# chaos: the topology workload grid survives seeded fault plans
# ---------------------------------------------------------------------------


def test_chaos_topology_grid_survives_seeded_plans():
    workloads = chaos_workloads(frames=4, topology=True)
    assert len(workloads) == 6
    assert all(w.topology is not Topology.PAIRWISE for w in workloads)
    for i, spec in enumerate(workloads):
        plan = random_plan(seed=100 + i, spec=spec)
        outcome = execute_plan(spec, plan, seed=i)
        assert not outcome.failed, (
            f"{spec.describe()}: {outcome.classification}: {outcome.detail}"
        )
