"""Unit tests for the topology fields of the workflow specification.

Covers the validation/normalization rules of the four
:class:`~repro.workflow.spec.Topology` shapes, node assignment under the
8 procs/node cap, the pairwise ``placements()`` boundary past one full
node, and the repr pins that keep cache keys and fingerprints stable:

- pairwise specs render byte-identically to pre-topology specs;
- DYAD's POLLING spelling normalizes to COARSE (one canonical automatic
  sync, identical repr for both spellings).
"""

import pytest

from repro.errors import WorkflowError
from repro.workflow.spec import (
    PROCS_PER_NODE,
    Placement,
    SyncMode,
    System,
    Topology,
    WorkflowSpec,
)


def _spec(topology, system=System.DYAD, placement=Placement.SPLIT, **kwargs):
    return WorkflowSpec(system=system, topology=topology,
                        placement=placement, **kwargs)


# ---------------------------------------------------------------------------
# validation and normalization
# ---------------------------------------------------------------------------


def test_pairwise_rejects_topology_sizes():
    with pytest.raises(WorkflowError, match="sizes via pairs"):
        WorkflowSpec(system=System.DYAD, producers=1)
    with pytest.raises(WorkflowError, match="sizes via pairs"):
        WorkflowSpec(system=System.DYAD, consumers=2)


@pytest.mark.parametrize("topology,sizes", [
    (Topology.FANOUT, {"consumers": 4}),
    (Topology.FANIN, {"producers": 4}),
    (Topology.POOL, {"producers": 2, "consumers": 3}),
])
def test_non_pairwise_rejects_pairs(topology, sizes):
    with pytest.raises(WorkflowError, match="leave pairs at 1"):
        _spec(topology, pairs=3, **sizes)


def test_negative_sizes_rejected():
    with pytest.raises(WorkflowError, match="non-negative"):
        _spec(Topology.FANOUT, producers=-1, consumers=4)


def test_fanout_normalizes_singular_producer():
    spec = _spec(Topology.FANOUT, consumers=4)
    assert spec.producers == 1
    assert (spec.n_producers, spec.n_consumers, spec.streams) == (1, 4, 1)
    with pytest.raises(WorkflowError, match="exactly one producer"):
        _spec(Topology.FANOUT, producers=2, consumers=4)
    with pytest.raises(WorkflowError, match="consumers >= 1"):
        _spec(Topology.FANOUT)


def test_fanin_normalizes_singular_consumer():
    spec = _spec(Topology.FANIN, producers=3)
    assert spec.consumers == 1
    assert (spec.n_producers, spec.n_consumers, spec.streams) == (3, 1, 3)
    with pytest.raises(WorkflowError, match="exactly one consumer"):
        _spec(Topology.FANIN, producers=3, consumers=2)
    with pytest.raises(WorkflowError, match="producers >= 1"):
        _spec(Topology.FANIN)


def test_pool_needs_both_sides():
    spec = _spec(Topology.POOL, producers=2, consumers=3)
    assert (spec.n_producers, spec.n_consumers, spec.streams) == (2, 3, 2)
    with pytest.raises(WorkflowError, match="pool"):
        _spec(Topology.POOL, producers=2)
    with pytest.raises(WorkflowError, match="pool"):
        _spec(Topology.POOL, consumers=3)


def test_single_node_topology_cap_is_total_processes():
    # 1 producer + 7 consumers = 8 procs: exactly fills the node.
    _spec(Topology.FANOUT, system=System.XFS,
          placement=Placement.SINGLE_NODE, consumers=PROCS_PER_NODE - 1)
    with pytest.raises(WorkflowError, match="at most 8 processes"):
        _spec(Topology.FANOUT, system=System.XFS,
              placement=Placement.SINGLE_NODE, consumers=PROCS_PER_NODE)


def test_dyad_polling_normalizes_to_coarse():
    spec = WorkflowSpec(system=System.DYAD, sync_mode=SyncMode.POLLING)
    assert spec.sync_mode is SyncMode.COARSE
    # The two spellings alias: byte-identical repr, hence identical
    # cache keys and result fingerprints.
    assert repr(spec) == repr(
        WorkflowSpec(system=System.DYAD, sync_mode=SyncMode.COARSE)
    )


def test_posix_polling_not_normalized():
    spec = WorkflowSpec(system=System.XFS, sync_mode=SyncMode.POLLING)
    assert spec.sync_mode is SyncMode.POLLING


# ---------------------------------------------------------------------------
# node assignment
# ---------------------------------------------------------------------------


def test_fanout_split_consumers_share_one_node():
    # Up to 8 consumers land on one node: the shared-staging-cache
    # configuration the read-amplification experiment measures.
    spec = _spec(Topology.FANOUT, consumers=8)
    assert spec.nodes_required == 2
    assert spec.producer_nodes() == [0]
    assert spec.consumer_nodes() == [1] * 8


def test_fanout_split_consumers_overflow_to_second_node():
    spec = _spec(Topology.FANOUT, consumers=9)
    assert spec.nodes_required == 3
    assert spec.consumer_nodes() == [1] * 8 + [2]


def test_fanin_split_consumer_after_producer_side():
    spec = _spec(Topology.FANIN, producers=9)
    # 9 producers need 2 nodes; the reduce consumer starts on node 2.
    assert spec.nodes_required == 3
    assert spec.producer_nodes() == [0] * 8 + [1]
    assert spec.consumer_nodes() == [2]


def test_pool_split_sides_packed_independently():
    spec = _spec(Topology.POOL, producers=2, consumers=10)
    assert spec.nodes_required == 3
    assert spec.producer_nodes() == [0, 0]
    assert spec.consumer_nodes() == [1] * 8 + [2, 2]


def test_single_node_topology_everything_on_node_zero():
    spec = _spec(Topology.POOL, system=System.XFS,
                 placement=Placement.SINGLE_NODE, producers=2, consumers=3)
    assert spec.nodes_required == 1
    assert spec.producer_nodes() == [0, 0]
    assert spec.consumer_nodes() == [0, 0, 0]


def test_pairwise_node_lists_match_placements():
    spec = WorkflowSpec(system=System.LUSTRE, pairs=12,
                        placement=Placement.SPLIT)
    placements = spec.placements()
    assert spec.producer_nodes() == [pn for pn, _ in placements]
    assert spec.consumer_nodes() == [cn for _, cn in placements]


# ---------------------------------------------------------------------------
# placements(): pairwise-only, boundary past one full node
# ---------------------------------------------------------------------------


def test_placements_rejected_for_topology_specs():
    spec = _spec(Topology.FANOUT, consumers=4)
    with pytest.raises(WorkflowError, match="pairwise-only"):
        spec.placements()


def test_placements_split_boundary_one_full_node():
    spec = WorkflowSpec(system=System.LUSTRE, pairs=PROCS_PER_NODE,
                        placement=Placement.SPLIT)
    assert spec.nodes_required == 2
    assert spec.placements() == [(0, 1)] * PROCS_PER_NODE


def test_placements_split_boundary_past_one_full_node():
    # pairs=9 crosses the per-node cap: the 9th pair opens a second
    # producer node AND shifts the consumer side to start at node 2.
    spec = WorkflowSpec(system=System.LUSTRE, pairs=PROCS_PER_NODE + 1,
                        placement=Placement.SPLIT)
    assert spec.nodes_required == 4
    placements = spec.placements()
    assert placements[:PROCS_PER_NODE] == [(0, 2)] * PROCS_PER_NODE
    assert placements[PROCS_PER_NODE] == (1, 3)
    for node in range(spec.nodes_required):
        procs = sum(1 for p, c in placements for x in (p, c) if x == node)
        assert procs <= PROCS_PER_NODE


# ---------------------------------------------------------------------------
# repr / fingerprint neutrality and description
# ---------------------------------------------------------------------------


def test_pairwise_repr_has_no_topology_fields():
    # Cache keys and fingerprints hash repr(spec): pairwise specs must
    # render byte-identically to pre-topology specs.
    text = repr(WorkflowSpec(system=System.DYAD, pairs=4))
    assert "topology" not in text
    assert "producers" not in text
    assert "consumers" not in text


def test_pairwise_repr_pinned_to_pre_topology_string():
    assert repr(WorkflowSpec(system=System.XFS)) == (
        "WorkflowSpec(system=<System.XFS: 'xfs'>, "
        "model=MolecularModel(name='JAC', num_atoms=23558, "
        "steps_per_second=1072.92, paper_stride=880, "
        "paper_frame_bytes=659671), "
        "stride=880, frames=128, pairs=1, "
        "placement=<Placement.SINGLE_NODE: 'single-node'>, "
        "sync_mode=<SyncMode.COARSE: 'coarse'>, poll_interval=0.25)"
    )


def test_topology_repr_appends_shape_fields():
    text = repr(_spec(Topology.FANOUT, consumers=4))
    assert "topology=<Topology.FANOUT: 'fanout'>" in text
    assert "producers=1" in text and "consumers=4" in text
    # Distinct shapes must never collide in the cache.
    assert text != repr(_spec(Topology.FANIN, producers=4))


def test_describe_topology_shape():
    assert "fanout 1->4" in _spec(Topology.FANOUT, consumers=4).describe()
    assert "pairs=2" in WorkflowSpec(system=System.DYAD, pairs=2).describe()
