"""In-process integration tests for the experiment server.

Most tests run the server in ``inline`` mode (thread pool): start it on
a unix socket under ``tmp_path``, speak the real wire protocol through
:class:`~repro.service.client.ServiceClient`, and shut down cleanly.
The crash-retry test uses a real ``spawn`` worker pool with the
injected-fault hook shared with the campaign runner.
"""

import asyncio
import json
import os
import threading

import pytest

import repro.service.server as server_mod
from repro.service import (
    ExperimentServer,
    Journal,
    ServerConfig,
    ServiceClient,
    SharedResultStore,
)
from repro.service.jobs import JobSpec


def _config(tmp_path, **overrides):
    overrides.setdefault("inline", True)
    overrides.setdefault("workers", 2)
    return ServerConfig(
        socket_path=str(tmp_path / "svc.sock"),
        journal_path=str(tmp_path / "journal.jsonl"),
        cache_dir=str(tmp_path / "cache"),
        **overrides,
    )


def _job(tenant="alice", system="dyad", seed=0, **extra):
    payload = {"tenant": tenant, "system": system, "frames": 2,
               "seed": seed}
    payload.update(extra)
    return payload


async def _with_server(config, body):
    server = ExperimentServer(config)
    await server.start()
    client = ServiceClient(config.socket_path)
    try:
        return await body(server, client)
    finally:
        await client.close()
        await server.shutdown()


def run(config, body):
    return asyncio.run(_with_server(config, body))


# ---------------------------------------------------------------------------
# basic serving
# ---------------------------------------------------------------------------


def test_submit_wait_returns_computed_result(tmp_path):
    async def body(server, client):
        response = await client.submit(_job())
        assert response["ok"] and response["state"] == "done"
        assert response["source"] == "computed"
        assert response["fingerprint"] and response["makespan"] > 0
        assert server.counters["completed"] == 1
        return response

    run(_config(tmp_path), body)


def test_no_wait_then_status_poll(tmp_path):
    async def body(server, client):
        response = await client.submit(_job(), wait=False)
        assert response["ok"]
        job_id = response["job_id"]
        while True:
            status = await client.status(job_id)
            if status["state"] in ("done", "failed"):
                break
            await asyncio.sleep(0.02)
        assert status["state"] == "done"

    run(_config(tmp_path), body)


def test_identical_resubmission_hits_shared_store(tmp_path):
    async def body(server, client):
        first = await client.submit(_job(tenant="alice"))
        second = await client.submit(_job(tenant="bob"))
        assert first["source"] == "computed"
        assert second["source"] == "hit"
        assert second["fingerprint"] == first["fingerprint"]
        # bob's hit on alice's entry is cross-tenant dedup
        assert server.store.cross_tenant_dedup == 1

    run(_config(tmp_path), body)


def test_concurrent_duplicates_coalesce_in_flight(tmp_path):
    async def body(server, client):
        others = [ServiceClient(server.config.socket_path)
                  for _ in range(3)]
        try:
            responses = await asyncio.gather(
                client.submit(_job(seed=5)),
                *(c.submit(_job(seed=5)) for c in others),
            )
        finally:
            for c in others:
                await c.close()
        assert all(r["state"] == "done" for r in responses)
        assert len({r["fingerprint"] for r in responses}) == 1
        sources = sorted(r["source"] for r in responses)
        assert sources.count("computed") == 1
        assert server.counters["dedup_inflight"] >= 1

    run(_config(tmp_path), body)


def test_bad_request_does_not_kill_connection(tmp_path):
    async def body(server, client):
        bad = await client.request({"op": "submit",
                                    "job": {"tenant": "x", "system": "zfs"}})
        assert not bad["ok"] and bad["error"] == "bad_request"
        assert await client.ping()
        unknown = await client.request({"op": "frobnicate"})
        assert unknown["error"] == "unknown_op"

    run(_config(tmp_path), body)


def test_unknown_job_status(tmp_path):
    async def body(server, client):
        response = await client.status("job-999")
        assert not response["ok"] and response["error"] == "unknown_job"

    run(_config(tmp_path), body)


# ---------------------------------------------------------------------------
# admission, shedding, breaker
# ---------------------------------------------------------------------------


@pytest.fixture()
def gated_execute(monkeypatch):
    """Hold job execution at a gate so tests control queue buildup.

    Without this, a warm interpreter finishes the 2-frame jobs faster
    than the next submit arrives and queue depth never builds.
    """
    gate = threading.Event()
    real = server_mod._execute_task

    def slow(task):
        gate.wait(30)
        return real(task)

    monkeypatch.setattr(server_mod, "_execute_task", slow)
    yield gate
    gate.set()


def test_budget_rejection_over_the_wire(tmp_path, gated_execute):
    async def body(server, client):
        # distinct seeds so nothing dedups; budget 1 admits exactly one
        first = await client.submit(_job(seed=100), wait=False)
        assert first["ok"]
        second = await client.submit(_job(seed=101), wait=False)
        assert not second["ok"]
        assert second["error"] == "budget_exceeded"
        assert second["retry_after"] > 0
        gated_execute.set()  # let the first job finish so drain works

    run(_config(tmp_path, tenant_budget=1, workers=1), body)


async def _gathered_submits(server, jobs, gate, total):
    """Submit each job on its own connection (a waiting submit blocks
    its connection), release the gate once all are admitted, gather."""
    clients = [ServiceClient(server.config.socket_path) for _ in jobs]
    try:
        waits = [asyncio.ensure_future(c.submit(job))
                 for c, job in zip(clients, jobs)]
        while server.queue.depth + server._running < total:
            await asyncio.sleep(0.01)
        gate.set()
        return await asyncio.gather(*waits)
    finally:
        for c in clients:
            await c.close()


def test_queue_pressure_sheds_to_cheaper_tier(tmp_path, gated_execute):
    async def body(server, client):
        responses = await _gathered_submits(
            server, [_job(seed=200 + i) for i in range(6)],
            gated_execute, 6,
        )
        assert all(r["state"] == "done" for r in responses)
        shed = [r for r in responses if r["shed_to"]]
        assert shed, "no job was shed despite hybrid_at=1"
        assert all(r["fidelity"] in ("hybrid", "fluid") for r in shed)
        assert server.counters["shed"] == len(shed)

    run(_config(tmp_path, shed_hybrid_depth=1, shed_fluid_depth=4,
                workers=1), body)


def test_non_degradable_jobs_run_exact_under_pressure(tmp_path,
                                                      gated_execute):
    async def body(server, client):
        responses = await _gathered_submits(
            server,
            [_job(seed=300 + i, degradable=False) for i in range(4)],
            gated_execute, 4,
        )
        assert all(r["state"] == "done" for r in responses)
        assert all(r["shed_to"] is None for r in responses)
        assert all(r["fidelity"] == "exact" for r in responses)

    run(_config(tmp_path, shed_hybrid_depth=1, shed_fluid_depth=2,
                workers=1), body)


def test_deterministic_failure_opens_breaker(tmp_path, monkeypatch):
    from repro.errors import ReproError

    def boom(task):
        raise ReproError("injected deterministic failure")

    monkeypatch.setattr(server_mod, "_execute_task", boom)

    async def body(server, client):
        for i in range(2):
            response = await client.submit(_job(seed=400 + i))
            assert response["state"] == "failed"
            assert "injected" in response["error"]
        # two consecutive dyad failures tripped the breaker
        rejected = await client.submit(_job(seed=402))
        assert not rejected["ok"]
        assert rejected["error"] == "circuit_open"
        assert rejected["retry_after"] > 0
        # other kinds are unaffected (their breaker is independent);
        # xfs fails too but is admitted
        other = await client.submit(_job(system="xfs", seed=403))
        assert other["state"] == "failed"
        assert server.counters["rejected_circuit"] == 1

    run(_config(tmp_path, breaker_threshold=2, breaker_cooldown=60.0), body)


def test_drain_rejects_new_work(tmp_path):
    async def body(server, client):
        await client.submit(_job())
        drained = await client.drain()
        assert drained["ok"]
        response = await client.submit(_job(seed=1))
        assert not response["ok"] and response["error"] == "draining"

    run(_config(tmp_path), body)


# ---------------------------------------------------------------------------
# journal resume (in-process)
# ---------------------------------------------------------------------------


def test_resume_reexecutes_unfinished_journaled_job(tmp_path):
    config = _config(tmp_path)
    spec = JobSpec(tenant="alice", frames=2, seed=9)
    journal = Journal(config.journal_path)
    journal.append({"ev": "submit", "id": "job-0", "job": spec.to_wire(),
                    "key": None, "t": 0.0})
    journal.append({"ev": "start", "id": "job-0", "fidelity": "exact"})
    journal.close()

    async def body(server, client):
        assert server.counters["resumed"] == 1
        await server._idle.wait()
        record = server.records["job-0"]
        assert record.state == "done"
        assert record.source == "computed"
        # the next id does not collide with the replayed one
        response = await client.submit(_job(seed=10), wait=False)
        assert response["job_id"] == "job-1"

    run(config, body)


def test_resume_completes_from_store_without_recompute(tmp_path):
    config = _config(tmp_path)
    spec = JobSpec(tenant="alice", frames=2, seed=9)
    # the result landed in the store but the "done" record never made
    # it to the journal (killed in between): resume must serve the
    # cached result, not recompute
    store = SharedResultStore(config.cache_dir)
    key = store.key_for(spec)
    from repro.experiments.parallel import _execute_task

    store.store(key, _execute_task(spec.run_task()), "alice")
    journal = Journal(config.journal_path)
    journal.append({"ev": "submit", "id": "job-0", "job": spec.to_wire(),
                    "key": key, "t": 0.0})
    journal.close()

    async def body(server, client):
        record = server.records["job-0"]
        assert record.state == "done"
        assert record.source == "hit"
        assert server.counters["resumed"] == 1

    run(config, body)


def test_resume_folds_counters_and_compacts(tmp_path):
    config = _config(tmp_path)
    spec = JobSpec(tenant="alice", frames=2, seed=9)
    journal = Journal(config.journal_path)
    journal.append({"ev": "submit", "id": "job-0", "job": spec.to_wire(),
                    "key": "k", "t": 0.0})
    journal.append({"ev": "retry", "id": "job-0", "attempts": 2})
    journal.append({"ev": "done", "id": "job-0", "key": "k",
                    "fingerprint": "f", "makespan": 1.0, "latency": 0.5,
                    "source": "computed"})
    journal.close()

    async def body(server, client):
        assert server.counters["completed"] == 1
        assert server.counters["retries"] == 2
        stats = await client.stats()
        assert stats["counters"]["retries"] == 2

    run(config, body)
    # boot-time compaction folded the journal but kept the attempts
    events = [json.loads(line)
              for line in open(config.journal_path) if line.strip()]
    assert {"ev": "retry", "id": "job-0", "attempts": 2} in events


# ---------------------------------------------------------------------------
# worker-crash retry (real spawn pool)
# ---------------------------------------------------------------------------


def test_worker_crash_is_detected_and_retried(tmp_path, monkeypatch):
    fault_dir = tmp_path / "faults"
    fault_dir.mkdir()
    monkeypatch.setenv("REPRO_WORKER_FAULT_DIR", str(fault_dir))
    monkeypatch.setenv("REPRO_WORKER_CRASH_SEEDS", "555")
    monkeypatch.setenv("REPRO_JOBS_OVERSUBSCRIBE", "1")

    async def body(server, client):
        response = await client.submit(_job(seed=555))
        assert response["state"] == "done"
        assert response["attempts"] == 1  # one crash, one successful rerun
        assert server.counters["retries"] == 1
        assert os.path.exists(fault_dir / "crash-555")

    run(_config(tmp_path, inline=False, workers=1, max_retries=2), body)


# ---------------------------------------------------------------------------
# hot-path overhaul: zero-copy delivery, fusion, batched admission
# ---------------------------------------------------------------------------


def test_result_op_streams_stored_bytes(tmp_path):
    async def body(server, client):
        submit = await client.submit(_job(seed=11))
        assert submit["state"] == "done"
        header, result = await client.fetch_result(key=submit["key"])
        assert header["ok"] and header["key"] == submit["key"]
        assert header["length"] > 0
        # the streamed frame decodes to the same result the store holds
        from repro.experiments.parallel import result_fingerprint
        assert result_fingerprint(result) == submit["fingerprint"]
        # by job_id too
        header2, result2 = await client.fetch_result(
            job_id=submit["job_id"]
        )
        assert header2["key"] == submit["key"]
        # the connection survives the mixed JSON+binary framing
        assert await client.ping()

    run(_config(tmp_path), body)


def test_result_op_unknown_key_and_job(tmp_path):
    async def body(server, client):
        header, result = await client.fetch_result(key="0" * 64)
        assert header == {"ok": False, "error": "unknown_result"}
        assert result is None
        header, _ = await client.fetch_result(job_id="nope")
        assert header["error"] == "unknown_job"
        assert await client.ping()

    run(_config(tmp_path), body)


def test_status_carries_result_handle_when_done(tmp_path):
    async def body(server, client):
        submit = await client.submit(_job(seed=12))
        status = await client.status(submit["job_id"])
        handle = status["result_handle"]
        assert handle["length"] > 0 and handle["offset"] >= 0
        # the handle addresses exactly the bytes the result op streams
        header, _ = await client.fetch_result(key=submit["key"])
        assert header["length"] == handle["length"]

    run(_config(tmp_path), body)


def test_small_jobs_fuse_into_multi_job_dispatches(tmp_path):
    # stall the runners until every submission is queued, then release:
    # the claim loop must fuse the backlog into multi-job worker tasks
    async def body(server, client):
        gate = asyncio.Event()
        original = server_mod.ExperimentServer._claim_batch

        def gated(self):
            if not gate.is_set():
                return []  # runners find nothing until the backlog built
            return original(self)

        server_mod.ExperimentServer._claim_batch = gated
        try:
            clients = [ServiceClient(server.config.socket_path)
                       for _ in range(6)]
            try:
                submits = [
                    asyncio.ensure_future(
                        c.submit(_job(seed=20 + i, tenant=f"t{i}"))
                    )
                    for i, c in enumerate(clients)
                ]
                await asyncio.sleep(0.2)
                gate.set()
                server._work.set()  # wake the parked runners
                responses = await asyncio.gather(*submits)
            finally:
                for c in clients:
                    await c.close()
        finally:
            server_mod.ExperimentServer._claim_batch = original
        assert all(r["state"] == "done" for r in responses)
        assert server.dispatch["fused_batches"] >= 1
        assert server.dispatch["max_batch"] > 1
        # fusion respects the configured ceiling
        assert server.dispatch["max_batch"] <= server.config.fuse_small_jobs

    run(_config(tmp_path, fuse_small_jobs=4), body)


def test_batched_admission_coalesces_same_tick_duplicates(tmp_path):
    # identical submissions staged in one event-loop tick must collapse
    # onto one primary before touching the fair queue
    async def body(server, client):
        clients = [ServiceClient(server.config.socket_path)
                   for _ in range(5)]
        try:
            responses = await asyncio.gather(
                *(c.submit(_job(seed=30)) for c in clients)
            )
        finally:
            for c in clients:
                await c.close()
        assert all(r["state"] == "done" for r in responses)
        assert len({r["fingerprint"] for r in responses}) == 1
        computed = sum(1 for r in responses if r["source"] == "computed")
        assert computed == 1
        assert server.admission["batches"] >= 1
        assert server.admission["jobs"] >= 1

    run(_config(tmp_path), body)


def test_group_commit_amortizes_journal_syncs_over_the_wire(tmp_path):
    async def body(server, client):
        clients = [ServiceClient(server.config.socket_path)
                   for _ in range(8)]
        try:
            await asyncio.gather(
                *(c.submit(_job(seed=40 + i)) for i, c in enumerate(clients))
            )
        finally:
            for c in clients:
                await c.close()
        stats = await client.stats()
        journal = stats["journal"]
        assert journal["records"] > journal["syncs"]
        assert journal["avg_events_per_sync"] > 1.0
        return journal

    run(_config(tmp_path, commit_window=0.005), body)
