"""Shared multi-tenant result store accounting."""

from repro.service.jobs import JobSpec
from repro.service.store import SharedResultStore


def _spec(**kwargs):
    kwargs.setdefault("tenant", "alice")
    kwargs.setdefault("frames", 2)
    return JobSpec(**kwargs)


def test_key_is_content_addressed_not_tenant_addressed(tmp_path):
    store = SharedResultStore(str(tmp_path))
    alice = store.key_for(_spec(tenant="alice"))
    bob = store.key_for(_spec(tenant="bob"))
    assert alice == bob  # same computation, same address


def test_key_depends_on_effective_fidelity(tmp_path):
    store = SharedResultStore(str(tmp_path))
    spec = _spec()
    assert store.key_for(spec) != store.key_for(spec, "fluid")
    assert store.key_for(spec, "exact") == store.key_for(spec)


def test_per_tenant_counters_and_cross_tenant_dedup(tmp_path):
    store = SharedResultStore(str(tmp_path))
    key = store.key_for(_spec())
    assert store.load(key, "alice") is None
    assert store.misses["alice"] == 1

    store.store(key, {"makespan": 1.0}, "alice")
    assert store.load(key, "alice") == {"makespan": 1.0}
    assert store.cross_tenant_dedup == 0

    # bob hitting alice's entry is the cross-tenant dedup the service
    # advertises
    assert store.load(key, "bob") == {"makespan": 1.0}
    assert store.cross_tenant_dedup == 1
    assert store.hits == {"alice": 1, "bob": 1}

    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["stores"] == {"alice": 1}
    assert stats["cross_tenant_dedup"] == 1
