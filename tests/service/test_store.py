"""Shared multi-tenant result store accounting."""

from types import SimpleNamespace

from repro.service.jobs import JobSpec
from repro.service.store import SharedResultStore


def _spec(**kwargs):
    kwargs.setdefault("tenant", "alice")
    kwargs.setdefault("frames", 2)
    return JobSpec(**kwargs)


def test_key_is_content_addressed_not_tenant_addressed(tmp_path):
    store = SharedResultStore(str(tmp_path))
    alice = store.key_for(_spec(tenant="alice"))
    bob = store.key_for(_spec(tenant="bob"))
    assert alice == bob  # same computation, same address


def test_key_depends_on_effective_fidelity(tmp_path):
    store = SharedResultStore(str(tmp_path))
    spec = _spec()
    assert store.key_for(spec) != store.key_for(spec, "fluid")
    assert store.key_for(spec, "exact") == store.key_for(spec)


def test_per_tenant_counters_and_cross_tenant_dedup(tmp_path):
    store = SharedResultStore(str(tmp_path))
    key = store.key_for(_spec())
    assert store.load(key, "alice") is None
    assert store.misses["alice"] == 1

    store.store(key, {"makespan": 1.0}, "alice")
    assert store.load(key, "alice") == {"makespan": 1.0}
    assert store.cross_tenant_dedup == 0

    # bob hitting alice's entry is the cross-tenant dedup the service
    # advertises
    assert store.load(key, "bob") == {"makespan": 1.0}
    assert store.cross_tenant_dedup == 1
    assert store.hits == {"alice": 1, "bob": 1}

    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["stores"] == {"alice": 1}
    assert stats["cross_tenant_dedup"] == 1


# -- zero-copy delivery structures ----------------------------------------

def test_fetch_resolves_metadata_and_zero_copy_payload(tmp_path):
    from repro.experiments.persist import decode_result

    store = SharedResultStore(str(tmp_path))
    key = store.key_for(_spec())
    store.store(key, SimpleNamespace(makespan=2.5), "alice", fingerprint="fp-1")
    stored = store.fetch(key, "bob")
    assert stored.key == key
    assert stored.fingerprint == "fp-1"
    assert stored.makespan == 2.5
    view = stored.payload()
    assert isinstance(view, memoryview)
    # the framed bytes stream verbatim: decoding them client-side gives
    # back the published result
    assert decode_result(view) == SimpleNamespace(makespan=2.5)
    assert stored.result() == SimpleNamespace(makespan=2.5)


def test_handle_is_an_index_only_lookup(tmp_path):
    store = SharedResultStore(str(tmp_path))
    key = store.key_for(_spec())
    assert store.handle(key) is None
    store.store(key, SimpleNamespace(makespan=1.0), "alice")
    handle = store.handle(key)
    assert handle["segment"] == store.segment.path
    view = store.segment.view(handle["offset"], handle["length"])
    assert len(view) == handle["length"]


def test_lru_eviction_falls_back_to_cache_directory(tmp_path):
    store = SharedResultStore(str(tmp_path), lru_entries=2)
    keys = []
    for seed in range(3):
        key = store.key_for(_spec(seed=seed))
        store.store(key, SimpleNamespace(makespan=float(seed)), "alice")
        keys.append(key)
    # capacity 2: the first key was evicted from the in-memory index
    assert store.handle(keys[0]) is None
    assert store.handle(keys[2]) is not None
    before = store.lru_misses
    # ...but the cache directory still serves it (and re-warms the LRU)
    assert store.fetch(keys[0], "alice").makespan == 0.0
    assert store.lru_misses == before + 1
    assert store.handle(keys[0]) is not None


def test_lru_hit_counters_feed_the_perf_gate(tmp_path):
    store = SharedResultStore(str(tmp_path))
    key = store.key_for(_spec())
    store.store(key, SimpleNamespace(makespan=1.0), "alice")
    for _ in range(5):
        assert store.fetch(key, "alice") is not None
    stats = store.stats()
    assert stats["lru_hits"] >= 5
    assert stats["lru_misses"] == 0
    assert stats["segment"]["records"] == 1


def test_segment_rebuilds_index_across_restart(tmp_path):
    store = SharedResultStore(str(tmp_path))
    key = store.key_for(_spec())
    store.store(key, SimpleNamespace(makespan=3.0), "alice")
    store.close()
    # a fresh store over the same root re-scans the segment: the handle
    # is servable again without touching the cache directory
    reopened = SharedResultStore(str(tmp_path))
    assert reopened.handle(key) is not None
    assert reopened.fetch(key, "bob").makespan == 3.0
    reopened.close()


def test_torn_segment_tail_is_truncated_not_fatal(tmp_path):
    store = SharedResultStore(str(tmp_path))
    key = store.key_for(_spec())
    store.store(key, SimpleNamespace(makespan=1.0), "alice")
    store.close()
    seg_path = store.segment.path
    with open(seg_path, "ab") as fh:
        fh.write(b"RPSG" + b"\x00" * 10)  # crash mid-append
    reopened = SharedResultStore(str(tmp_path))
    assert reopened.fetch(key, "alice").makespan == 1.0
    assert reopened.segment.stats()["records"] == 0  # nothing re-appended
    reopened.close()
