"""Admission control: budgets, bounded depth, weighted fair dispatch."""

import pytest

from repro.errors import AdmissionError
from repro.service.admission import FairQueue
from repro.service.jobs import JobRecord, JobSpec


def _record(tenant, job_id="job-0", frames=2):
    return JobRecord(job_id=job_id,
                     spec=JobSpec(tenant=tenant, frames=frames))


def test_fifo_for_single_tenant():
    queue = FairQueue()
    for i in range(3):
        queue.submit(_record("alice", f"job-{i}"))
    order = [queue.next_job().job_id for _ in range(3)]
    assert order == ["job-0", "job-1", "job-2"]
    assert queue.next_job() is None


def test_budget_rejection_carries_retry_hint():
    queue = FairQueue(default_budget=2, retry_after=lambda depth: 7.5)
    queue.submit(_record("alice", "job-0"))
    queue.submit(_record("alice", "job-1"))
    with pytest.raises(AdmissionError) as excinfo:
        queue.submit(_record("alice", "job-2"))
    assert excinfo.value.reason == "budget_exceeded"
    assert excinfo.value.retry_after == 7.5
    assert queue.rejected["budget_exceeded"] == 1
    # other tenants are unaffected
    queue.submit(_record("bob", "job-3"))


def test_release_frees_budget():
    queue = FairQueue(default_budget=1)
    queue.submit(_record("alice", "job-0"))
    queue.next_job()
    with pytest.raises(AdmissionError):
        queue.submit(_record("alice", "job-1"))
    queue.release("alice")  # job-0 reached a terminal state
    queue.submit(_record("alice", "job-1"))
    assert queue.admitted("alice") == 1


def test_queue_full_rejection():
    queue = FairQueue(max_depth=2, default_budget=100)
    queue.submit(_record("alice", "job-0"))
    queue.submit(_record("bob", "job-1"))
    with pytest.raises(AdmissionError) as excinfo:
        queue.submit(_record("carol", "job-2"))
    assert excinfo.value.reason == "queue_full"
    assert queue.rejected["queue_full"] == 1


def test_force_bypasses_limits_for_replayed_jobs():
    queue = FairQueue(max_depth=1, default_budget=1)
    queue.submit(_record("alice", "job-0"))
    # journal replay must never drop admitted work on this incarnation's
    # limits
    queue.submit(_record("alice", "job-1"), force=True)
    queue.submit(_record("alice", "job-2"), force=True)
    assert queue.depth == 3


def test_burst_tenant_cannot_starve_patient_tenant():
    # alice sprays 10 jobs up front; bob submits one right after. SFQ
    # must dispatch bob's job near the front, not behind the burst.
    queue = FairQueue(default_budget=100)
    for i in range(10):
        queue.submit(_record("alice", f"alice-{i}"))
    queue.submit(_record("bob", "bob-0"))
    order = []
    while True:
        record = queue.next_job()
        if record is None:
            break
        order.append(record.job_id)
    assert order.index("bob-0") <= 1


def test_weights_bias_dispatch_share():
    # at weight 2, heavy gets ~2 dispatches for each of light's
    queue = FairQueue(default_budget=100,
                      weights={"heavy": 2.0, "light": 1.0})
    for i in range(8):
        queue.submit(_record("heavy", f"h-{i}"))
        queue.submit(_record("light", f"l-{i}"))
    first_six = [queue.next_job().job_id for _ in range(6)]
    heavy_share = sum(1 for j in first_six if j.startswith("h-"))
    assert heavy_share == 4  # 2:1 split of the first 6 slots


def test_idle_tenant_reenters_at_current_virtual_time():
    queue = FairQueue(default_budget=100)
    for i in range(4):
        queue.submit(_record("alice", f"a-{i}"))
    for _ in range(4):
        queue.next_job()
    # bob was idle the whole time: no banked credit lets him jump a
    # fresh alice burst 4 deep
    queue.submit(_record("alice", "a-new"))
    queue.submit(_record("bob", "b-0"))
    dispatched = {queue.next_job().job_id, queue.next_job().job_id}
    assert dispatched == {"a-new", "b-0"}


def test_stats_shape():
    queue = FairQueue()
    queue.submit(_record("alice"))
    stats = queue.stats()
    assert stats["depth"] == 1
    assert stats["tenants"]["alice"]["admitted"] == 1

# -- batched admission (one tick's submissions in one queue op) -----------

def test_batch_admission_matches_sequential_semantics():
    # the same submissions, batched vs sequential, must admit/reject
    # identically and dispatch in the same fair order
    def build():
        return FairQueue(default_budget=3, max_depth=100)

    records = ([_record("alice", f"a-{i}") for i in range(5)]
               + [_record("bob", f"b-{i}") for i in range(2)])
    batched = build()
    outcomes = batched.submit_batch([_record(r.spec.tenant, r.job_id)
                                     for r in records])
    sequential = build()
    expected = []
    for r in records:
        try:
            sequential.submit(_record(r.spec.tenant, r.job_id))
            expected.append(None)
        except AdmissionError as exc:
            expected.append(exc.reason)
    assert [o.reason if o else None for o in outcomes] == expected
    batched_order = [r.job_id for r in batched.next_batch(100)]
    sequential_order = [r.job_id for r in sequential.next_batch(100)]
    assert batched_order == sequential_order


def test_batch_admission_preserves_weighted_fair_share():
    # tenant weights must bias dispatch exactly as under per-job
    # submission, even when the whole burst lands as one batch op
    queue = FairQueue(default_budget=100,
                      weights={"heavy": 2.0, "light": 1.0})
    batch = []
    for i in range(8):
        batch.append(_record("heavy", f"h-{i}"))
        batch.append(_record("light", f"l-{i}"))
    assert all(o is None for o in queue.submit_batch(batch))
    first_six = [queue.next_job().job_id for _ in range(6)]
    heavy_share = sum(1 for j in first_six if j.startswith("h-"))
    assert heavy_share == 4  # 2:1 split of the first 6 slots


def test_batch_budget_exhaustion_mid_batch_is_positional():
    # a tenant running out of budget mid-batch keeps its earlier
    # admissions; only the overflow is rejected, and other tenants in
    # the same batch are untouched
    queue = FairQueue(default_budget=2, max_depth=100)
    outcomes = queue.submit_batch([
        _record("alice", "a-0"),
        _record("alice", "a-1"),
        _record("alice", "a-2"),   # alice's budget is now spent
        _record("bob", "b-0"),
        _record("alice", "a-3"),
    ])
    reasons = [o.reason if o else None for o in outcomes]
    assert reasons == [None, None, "budget_exceeded", None,
                       "budget_exceeded"]
    assert queue.rejected["budget_exceeded"] == 2
    assert queue.admitted("alice") == 2
    assert queue.admitted("bob") == 1


def test_batch_depth_limit_counts_in_batch_admissions():
    # the depth check must see earlier in-batch admissions, not the
    # stale pre-batch heap size
    queue = FairQueue(default_budget=100, max_depth=3)
    outcomes = queue.submit_batch(
        [_record("alice", f"a-{i}") for i in range(5)]
    )
    reasons = [o.reason if o else None for o in outcomes]
    assert reasons == [None, None, None, "queue_full", "queue_full"]
    assert queue.depth == 3


def test_batch_retry_hints_are_monotone_per_reason():
    # clients that submitted in order must re-arrive in order: a later
    # rejection never advertises a shorter wait than an earlier one,
    # even when the raw estimator is noisy or non-monotone
    hints = iter([5.0, 1.0, 3.0])
    queue = FairQueue(default_budget=0, max_depth=100,
                      retry_after=lambda depth: next(hints))
    outcomes = queue.submit_batch(
        [_record("alice", f"a-{i}") for i in range(3)]
    )
    waits = [o.retry_after for o in outcomes]
    assert waits == [5.0, 5.0, 5.0]
    assert all(o.reason == "budget_exceeded" for o in outcomes)


def test_batch_peek_matches_next_job():
    queue = FairQueue(default_budget=100)
    queue.submit_batch([_record("alice", "a-0"), _record("bob", "b-0")])
    head = queue.peek()
    assert queue.next_job() is head
    assert queue.peek().job_id != head.job_id
