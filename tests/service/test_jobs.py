"""Unit tests for service job specs and records."""

import pytest

from repro.errors import ReproError, ServiceError
from repro.faults import FaultEvent, FaultPlan
from repro.service.jobs import DONE, QUEUED, JobRecord, JobSpec
from repro.workflow.spec import Placement, System


def test_spec_defaults_build_valid_workflow():
    spec = JobSpec(tenant="alice")
    ws = spec.workflow_spec()
    assert ws.system is System.DYAD
    assert spec.kind == "dyad"


def test_spec_lustre_defaults_to_split_placement():
    spec = JobSpec(tenant="alice", system="lustre")
    assert spec.workflow_spec().placement is Placement.SPLIT


def test_spec_rejects_unknown_fidelity_and_empty_tenant():
    # direct construction surfaces the underlying validation error
    # family; from_wire() wraps everything as ServiceError for the wire
    with pytest.raises(ReproError):
        JobSpec(tenant="alice", fidelity="psychic")
    with pytest.raises(ServiceError):
        JobSpec(tenant="")


def test_spec_validates_workflow_rules_eagerly():
    # single-node placement fits at most 4 pairs (8 procs/node): the
    # error surfaces at construction, not at dispatch
    with pytest.raises(Exception):
        JobSpec(tenant="alice", system="xfs", pairs=5)


def test_wire_round_trip_preserves_identity():
    spec = JobSpec(tenant="bob", system="xfs", frames=4, pairs=2,
                   seed=9, jitter_cv=0.1, fidelity="hybrid",
                   degradable=False)
    clone = JobSpec.from_wire(spec.to_wire())
    assert clone == spec


def test_wire_round_trip_with_fault_plan():
    plan = FaultPlan(events=(FaultEvent("link_flap", at=1.0, duration=0.5),))
    spec = JobSpec(tenant="carol", fault_plan=plan)
    clone = JobSpec.from_wire(spec.to_wire())
    assert clone.fault_plan == plan


def test_from_wire_rejects_garbage():
    with pytest.raises(ServiceError):
        JobSpec.from_wire({"tenant": "x", "system": "zfs"})
    with pytest.raises(ServiceError):
        JobSpec.from_wire({"tenant": "x", "frames": "many"})


def test_run_task_fidelity_override():
    spec = JobSpec(tenant="alice", fidelity="exact")
    assert spec.run_task().fidelity == "exact"
    assert spec.run_task("fluid").fidelity == "fluid"


def test_cost_scales_with_work():
    small = JobSpec(tenant="a", frames=2, pairs=1)
    big = JobSpec(tenant="a", frames=8, pairs=2)
    assert big.cost() > small.cost()


def test_record_terminal_and_status_view():
    record = JobRecord(job_id="job-1", spec=JobSpec(tenant="alice"))
    assert record.state == QUEUED and not record.terminal
    record.state = DONE
    assert record.terminal
    view = record.to_dict()
    assert view["job_id"] == "job-1"
    assert view["state"] == "done"
    assert view["tenant"] == "alice"
