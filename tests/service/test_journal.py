"""Crash-consistency of the append-only job journal."""

import json
import os

import pytest

from repro.errors import JournalError
from repro.service.journal import Journal, replay_events


def _events(n):
    return [{"ev": "submit", "id": f"job-{i}"} for i in range(n)]


def test_missing_file_is_a_fresh_server(tmp_path):
    assert replay_events(str(tmp_path / "nope.jsonl")) == []


def test_append_replay_round_trip(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = Journal(path)
    for event in _events(3):
        journal.append(event)
    journal.close()
    assert replay_events(path) == _events(3)


def test_torn_final_line_is_dropped(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = Journal(path)
    for event in _events(2):
        journal.append(event)
    journal.close()
    with open(path, "a") as fh:
        fh.write('{"ev": "done", "id": "jo')  # crash mid-append
    assert replay_events(path) == _events(2)


def test_torn_final_line_with_newline_is_dropped(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = Journal(path)
    journal.append(_events(1)[0])
    journal.close()
    with open(path, "a") as fh:
        fh.write('{"ev": "done", "id"\n')
    assert replay_events(path) == _events(1)


def test_interior_corruption_raises(tmp_path):
    path = str(tmp_path / "j.jsonl")
    lines = [json.dumps(e) for e in _events(3)]
    lines[1] = lines[1][:5]  # torn record *not* at the tail
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="corrupt journal record"):
        replay_events(path)


def test_non_record_line_raises(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with open(path, "w") as fh:
        fh.write('{"no_ev_field": 1}\n')
    with pytest.raises(JournalError, match="not a journal record"):
        replay_events(path)


def test_compact_rewrites_atomically_and_keeps_appending(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = Journal(path)
    for event in _events(5):
        journal.append(event)
    journal.compact(_events(2))
    journal.append({"ev": "done", "id": "job-0"})
    journal.close()
    assert replay_events(path) == _events(2) + [{"ev": "done", "id": "job-0"}]
    assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]


def test_append_after_close_raises(tmp_path):
    journal = Journal(str(tmp_path / "j.jsonl"))
    journal.close()
    with pytest.raises(JournalError):
        journal.append({"ev": "submit"})
