"""Crash-consistency of the append-only job journal."""

import json
import os

import pytest

from repro.errors import JournalError
from repro.service.journal import Journal, replay_events


def _events(n):
    return [{"ev": "submit", "id": f"job-{i}"} for i in range(n)]


def test_missing_file_is_a_fresh_server(tmp_path):
    assert replay_events(str(tmp_path / "nope.jsonl")) == []


def test_append_replay_round_trip(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = Journal(path)
    for event in _events(3):
        journal.append(event)
    journal.close()
    assert replay_events(path) == _events(3)


def test_torn_final_line_is_dropped(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = Journal(path)
    for event in _events(2):
        journal.append(event)
    journal.close()
    with open(path, "a") as fh:
        fh.write('{"ev": "done", "id": "jo')  # crash mid-append
    assert replay_events(path) == _events(2)


def test_torn_final_line_with_newline_is_dropped(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = Journal(path)
    journal.append(_events(1)[0])
    journal.close()
    with open(path, "a") as fh:
        fh.write('{"ev": "done", "id"\n')
    assert replay_events(path) == _events(1)


def test_interior_corruption_raises(tmp_path):
    path = str(tmp_path / "j.jsonl")
    lines = [json.dumps(e) for e in _events(3)]
    lines[1] = lines[1][:5]  # torn record *not* at the tail
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="corrupt journal record"):
        replay_events(path)


def test_non_record_line_raises(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with open(path, "w") as fh:
        fh.write('{"no_ev_field": 1}\n')
    with pytest.raises(JournalError, match="not a journal record"):
        replay_events(path)


def test_compact_rewrites_atomically_and_keeps_appending(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = Journal(path)
    for event in _events(5):
        journal.append(event)
    journal.compact(_events(2))
    journal.append({"ev": "done", "id": "job-0"})
    journal.close()
    assert replay_events(path) == _events(2) + [{"ev": "done", "id": "job-0"}]
    assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]


def test_append_after_close_raises(tmp_path):
    journal = Journal(str(tmp_path / "j.jsonl"))
    journal.close()
    with pytest.raises(JournalError):
        journal.append({"ev": "submit"})


# -- streaming replay ------------------------------------------------------

def test_iter_events_streams_what_replay_returns(tmp_path):
    from repro.service.journal import iter_events

    path = str(tmp_path / "j.jsonl")
    journal = Journal(path)
    for event in _events(4):
        journal.append(event)
    journal.close()
    assert list(iter_events(path)) == replay_events(path)
    assert list(iter_events(str(tmp_path / "nope.jsonl"))) == []


# -- group commit ----------------------------------------------------------

def _run_committer(tmp_path, body):
    import asyncio

    from repro.service.journal import GroupCommitter

    async def scenario():
        journal = Journal(str(tmp_path / "j.jsonl"))
        committer = GroupCommitter(journal, window=0.005, max_batch=64)
        committer.start()
        try:
            return await body(journal, committer)
        finally:
            await committer.stop()
            journal.close()

    return asyncio.run(scenario())


def test_group_commit_amortizes_fsyncs(tmp_path):
    import asyncio

    async def body(journal, committer):
        await asyncio.gather(
            *(committer.commit(e) for e in _events(50))
        )
        return journal.appended, journal.syncs

    appended, syncs = _run_committer(tmp_path, body)
    assert appended == 50
    # 50 concurrent commits share a handful of windows, not 50 fsyncs
    assert syncs < 10
    assert sorted(e["id"] for e in replay_events(str(tmp_path / "j.jsonl"))
                  ) == sorted(e["id"] for e in _events(50))


def test_commit_is_a_durability_barrier(tmp_path):
    # when the commit future resolves, the event must already be
    # re-readable from disk — no ack-before-durable window
    async def body(journal, committer):
        await committer.commit({"ev": "submit", "id": "job-0"})
        return replay_events(str(tmp_path / "j.jsonl"))

    events = _run_committer(tmp_path, body)
    assert {"ev": "submit", "id": "job-0"} in events


def test_commit_batch_is_one_barrier_for_many_events(tmp_path):
    async def body(journal, committer):
        await committer.commit_batch(_events(5))
        return replay_events(str(tmp_path / "j.jsonl"))

    assert _run_committer(tmp_path, body) == _events(5)


def test_enqueued_events_are_flushed_on_stop(tmp_path):
    async def body(journal, committer):
        for event in _events(3):
            committer.enqueue(event)
        # no barrier awaited: stop() must still drain them durably

    _run_committer(tmp_path, body)
    assert replay_events(str(tmp_path / "j.jsonl")) == _events(3)


def test_committer_falls_back_to_synchronous_append_when_stopped(tmp_path):
    # boot-time replay appends before the serving loop (and committer)
    # exist; the same API must stay durable without a running task
    import asyncio

    from repro.service.journal import GroupCommitter

    async def scenario():
        journal = Journal(str(tmp_path / "j.jsonl"))
        committer = GroupCommitter(journal)
        committer.enqueue(_events(1)[0])
        await committer.commit({"ev": "submit", "id": "job-1"})
        journal.close()

    asyncio.run(scenario())
    assert [e["id"] for e in replay_events(str(tmp_path / "j.jsonl"))
            ] == ["job-0", "job-1"]


def test_committer_stats_shape(tmp_path):
    async def body(journal, committer):
        await committer.commit_batch(_events(4))
        return committer.stats()

    stats = _run_committer(tmp_path, body)
    assert stats["window"] == 0.005
    assert stats["commits"] >= 1
    assert stats["events"] == 4
    assert stats["avg_events_per_sync"] >= 1.0
    assert stats["max_events_per_sync"] <= 64


def test_committer_rejects_bad_parameters(tmp_path):
    from repro.service.journal import GroupCommitter

    journal = Journal(str(tmp_path / "j.jsonl"))
    with pytest.raises(JournalError):
        GroupCommitter(journal, window=-0.001)
    with pytest.raises(JournalError):
        GroupCommitter(journal, max_batch=0)
    journal.close()
