"""The kill-resume chaos acceptance test.

Runs the same fixed-seed mixed-tenant load twice against subprocess
servers: once uninterrupted, once with the server SIGKILLed mid-campaign
and restarted on the same journal + cache. The restarted run must lose
zero jobs, resolve duplicates with zero extra side effects, and produce
*identical* per-content-key fingerprints to the uninterrupted twin.

Shedding is disabled (degradable=False and a sky-high threshold) so the
effective fidelity — and therefore the content keys — are deterministic
across the two runs.
"""

import asyncio
import json
import os
import signal
import subprocess
import time

import pytest

from repro.service.__main__ import server_command
from repro.service.loadgen import run_load

SEED = 77
LOAD = dict(clients=10, jobs_per_client=2, distinct_jobs=6, frames=2,
            seed=SEED, degradable=False, deadline=180.0)


def _spawn(tmp_path, name):
    workdir = tmp_path / name
    workdir.mkdir()
    socket_path = str(workdir / "svc.sock")
    journal_path = str(workdir / "journal.jsonl")
    cmd = server_command(socket_path, journal_path,
                         str(workdir / "cache"), workers=2,
                         shed_hybrid_depth=10_000)
    env = dict(os.environ, REPRO_JOBS_OVERSUBSCRIBE="1")
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    return proc, cmd, env, socket_path, journal_path


def _stop(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def test_sigkill_resume_loses_nothing_and_matches_uninterrupted(tmp_path):
    # -- run A: uninterrupted reference ---------------------------------
    proc, _, _, socket_path, _ = _spawn(tmp_path, "reference")
    try:
        reference = asyncio.run(run_load(socket_path, **LOAD))
    finally:
        _stop(proc)
    assert reference["lost_jobs"] == 0
    assert reference["outcomes"]["failed"] == 0
    assert reference["divergent_fingerprints"] == {}
    assert len(reference["fingerprints"]) == LOAD["distinct_jobs"]

    # -- run B: SIGKILL the server mid-campaign, restart on the same
    # journal + cache ----------------------------------------------------
    proc, cmd, env, socket_path, journal_path = _spawn(tmp_path, "chaos")

    async def chaotic_load():
        nonlocal proc
        load = asyncio.ensure_future(run_load(socket_path, **LOAD))
        # kill only once accepted-but-unfinished work is provably
        # journaled, so the restart has something to resume
        deadline = time.monotonic() + 60.0
        while not load.done() and time.monotonic() < deadline:
            try:
                with open(journal_path, "rb") as fh:
                    if fh.read().count(b'"ev": "submit"') >= 4:
                        break
            except OSError:
                pass
            await asyncio.sleep(0.02)
        assert not load.done(), "load finished before the kill"
        proc.kill()  # SIGKILL: no drain, no warning
        proc.wait()
        proc = subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        return await load

    try:
        chaos = asyncio.run(chaotic_load())
    finally:
        _stop(proc)

    # zero lost jobs: every one of the 20 submissions reached "done"
    assert chaos["lost_jobs"] == 0
    assert chaos["outcomes"]["failed"] == 0
    assert chaos["outcomes"]["done"] == LOAD["clients"] * LOAD["jobs_per_client"]
    # duplicates had zero side effects: one fingerprint per content key
    assert chaos["divergent_fingerprints"] == {}
    # post-resume results are byte-identical to the uninterrupted run
    assert chaos["fingerprints"] == reference["fingerprints"]


def test_restarted_server_resumes_from_journal(tmp_path):
    # direct restart semantics: journal from a killed server is replayed
    # and already-cached work is not recomputed
    proc, cmd, env, socket_path, journal_path = _spawn(tmp_path, "resume")

    async def drive():
        nonlocal proc
        first = await run_load(socket_path, clients=4, jobs_per_client=1,
                               distinct_jobs=4, frames=2, seed=SEED,
                               degradable=False, deadline=120.0)
        assert first["lost_jobs"] == 0
        proc.kill()
        proc.wait()
        proc = subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        # the same load against the restarted server is served entirely
        # from the shared store — nothing recomputed
        second = await run_load(socket_path, clients=4, jobs_per_client=1,
                                distinct_jobs=4, frames=2, seed=SEED,
                                degradable=False, deadline=120.0)
        assert second["lost_jobs"] == 0
        assert second["sources"]["computed"] == 0
        assert second["fingerprints"] == first["fingerprints"]

    try:
        asyncio.run(drive())
    finally:
        _stop(proc)
