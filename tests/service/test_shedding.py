"""Load-shedding policy: depth-thresholded fidelity downgrades."""

import pytest

from repro.service.jobs import JobSpec
from repro.service.shedding import SheddingPolicy


def _spec(fidelity="exact", degradable=True):
    return JobSpec(tenant="alice", fidelity=fidelity, degradable=degradable)


def test_below_threshold_runs_as_requested():
    policy = SheddingPolicy(hybrid_at=16, fluid_at=48)
    assert policy.choose(15, _spec()) is None
    assert policy.shed == 0


def test_hybrid_then_fluid_thresholds():
    policy = SheddingPolicy(hybrid_at=16, fluid_at=48)
    assert policy.choose(16, _spec()) == "hybrid"
    assert policy.choose(47, _spec()) == "hybrid"
    assert policy.choose(48, _spec()) == "fluid"
    assert policy.shed == 3


def test_non_degradable_jobs_are_never_shed():
    policy = SheddingPolicy(hybrid_at=1, fluid_at=1)
    assert policy.choose(1000, _spec(degradable=False)) is None
    assert policy.shed == 0


def test_never_upgrades_a_cheaper_request():
    policy = SheddingPolicy(hybrid_at=16, fluid_at=48)
    # fluid request under hybrid pressure: hybrid would be an *upgrade*
    assert policy.choose(20, _spec(fidelity="fluid")) is None
    # hybrid request under hybrid pressure: already there
    assert policy.choose(20, _spec(fidelity="hybrid")) is None
    # hybrid request under fluid pressure: downgrade one tier
    assert policy.choose(50, _spec(fidelity="hybrid")) == "fluid"


def test_validates_thresholds():
    with pytest.raises(ValueError):
        SheddingPolicy(hybrid_at=0, fluid_at=5)
    with pytest.raises(ValueError):
        SheddingPolicy(hybrid_at=10, fluid_at=5)
