"""Client-side backoff: the DyadConfig retry schedule, seed-jittered.

The service client reuses the transfer-layer's retry discipline
(capped exponential backoff scaled by a jitter factor drawn uniformly
from ``[1, 1 + jitter]``) with a *seeded* RNG: a fixed seed reproduces
the exact reconnect timeline run over run, while per-client seeds
de-synchronize a reconnecting herd.
"""

import random

from repro.service.client import ServiceClient


def _client(**kwargs):
    kwargs.setdefault("seed", 0)
    return ServiceClient("/tmp/unused.sock", **kwargs)


def test_backoff_is_capped_exponential_without_jitter():
    client = _client(connect_backoff=0.02, backoff_cap=0.1,
                     backoff_jitter=0.0)
    delays = [client._backoff_delay(a) for a in range(6)]
    # min(0.02 * 2^a, 0.1): doubles until the cap, then flat
    assert delays == [0.02, 0.04, 0.08, 0.1, 0.1, 0.1]


def test_backoff_jitter_is_deterministic_per_seed():
    a = [_client(seed=7)._backoff_delay(n) for n in range(5)]
    b = [_client(seed=7)._backoff_delay(n) for n in range(5)]
    assert a == b  # same seed, same timeline
    c = [_client(seed=8)._backoff_delay(n) for n in range(5)]
    assert a != c  # distinct seeds spread the herd


def test_backoff_jitter_stays_within_the_advertised_band():
    client = _client(connect_backoff=0.02, backoff_cap=0.1,
                     backoff_jitter=0.25, seed=3)
    for attempt in range(20):
        base = min(0.02 * 2 ** attempt, 0.1)
        delay = client._backoff_delay(attempt)
        assert base <= delay <= base * 1.25


def test_backoff_mirrors_dyad_config_schedule():
    # same discipline as DyadConfig's transfer retries: delay(a) =
    # min(base * 2^a, cap) * u, u ~ U[1, 1 + jitter] from a seeded
    # stream — byte-for-byte reproducible given the seed
    base, cap, jitter, seed = 0.0005, 0.05, 0.25, 42
    client = _client(connect_backoff=base, backoff_cap=cap,
                     backoff_jitter=jitter, seed=seed)
    rng = random.Random(seed)
    expected = [min(base * 2 ** a, cap) * (1 + jitter * rng.random())
                for a in range(8)]
    assert [client._backoff_delay(a) for a in range(8)] == expected


# ---------------------------------------------------------------- result CLI


def test_result_cli_requires_a_selector(capsys):
    """``result`` without --key/--job-id exits 2 before ever connecting."""
    from repro.service.__main__ import main

    assert main(["result", "--socket", "/tmp/does-not-exist.sock"]) == 2
    assert "one of --key / --job-id" in capsys.readouterr().err


def test_result_cli_parses_key_and_job_selectors():
    from repro.service.__main__ import build_parser

    args = build_parser().parse_args(
        ["result", "--socket", "/tmp/s.sock", "--job-id", "job-3"])
    assert (args.command, args.job_id, args.key) == ("result", "job-3", None)
    args = build_parser().parse_args(
        ["result", "--socket", "/tmp/s.sock", "--key", "abc"])
    assert (args.job_id, args.key) == (None, "abc")
