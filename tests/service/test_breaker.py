"""Circuit-breaker state machine (injectable clock, no sleeping)."""

import pytest

from repro.service.breaker import CircuitBreaker


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def clock():
    return Clock()


def test_closed_admits(clock):
    breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
    allowed, retry_after = breaker.check("dyad")
    assert allowed and retry_after == 0.0


def test_opens_after_threshold_consecutive_failures(clock):
    breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
    for _ in range(2):
        breaker.record_failure("dyad")
    assert breaker.state("dyad") == "closed"
    breaker.record_failure("dyad")
    assert breaker.state("dyad") == "open"
    allowed, retry_after = breaker.check("dyad")
    assert not allowed and retry_after == pytest.approx(10.0)


def test_success_resets_consecutive_count(clock):
    breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
    breaker.record_failure("dyad")
    breaker.record_success("dyad")
    breaker.record_failure("dyad")
    assert breaker.state("dyad") == "closed"


def test_half_open_admits_single_probe(clock):
    breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
    breaker.record_failure("dyad")
    clock.now = 10.0
    allowed, _ = breaker.check("dyad")
    assert allowed and breaker.state("dyad") == "half-open"
    # the second caller is held back while the probe is out
    allowed, retry_after = breaker.check("dyad")
    assert not allowed and retry_after == 10.0


def test_probe_success_closes(clock):
    breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
    breaker.record_failure("dyad")
    clock.now = 10.0
    assert breaker.check("dyad")[0]
    breaker.record_success("dyad")
    assert breaker.state("dyad") == "closed"
    assert breaker.check("dyad")[0]


def test_probe_failure_reopens_for_full_cooldown(clock):
    breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
    breaker.record_failure("dyad")
    clock.now = 10.0
    assert breaker.check("dyad")[0]
    breaker.record_failure("dyad")
    assert breaker.state("dyad") == "open"
    clock.now = 15.0
    allowed, retry_after = breaker.check("dyad")
    assert not allowed and retry_after == pytest.approx(5.0)


def test_kinds_are_independent(clock):
    breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
    breaker.record_failure("lustre")
    assert breaker.state("lustre") == "open"
    assert breaker.check("dyad")[0]


def test_trip_count_in_stats(clock):
    breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
    breaker.record_failure("dyad")
    clock.now = 10.0
    breaker.check("dyad")
    breaker.record_failure("dyad")  # probe failed: second trip
    assert breaker.stats()["dyad"]["trips"] == 2


def test_validates_parameters(clock):
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown=0.0)
