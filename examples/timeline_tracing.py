#!/usr/bin/env python3
"""Timeline tracing: *see* DYAD's pipelining vs the coarse barrier.

Runs the same JAC workload through DYAD and through Lustre with the
traditional coarse-grained synchronization, records full region timelines,
prints producer/consumer work-overlap statistics, and exports Chrome-trace
JSON files you can open in ``chrome://tracing`` or https://ui.perfetto.dev.

Run with::

    python examples/timeline_tracing.py [output_dir]
"""

import sys
from pathlib import Path

from repro.md import JAC
from repro.workflow import Placement, System, WorkflowSpec, run_workflow
from repro.workflow.spec import SyncMode


def run(system, sync_mode=SyncMode.COARSE):
    kwargs = {} if system is System.DYAD else {"sync_mode": sync_mode}
    spec = WorkflowSpec(
        system=system, model=JAC, stride=JAC.paper_stride, frames=16,
        pairs=2, placement=Placement.SPLIT, **kwargs,
    )
    return run_workflow(spec, jitter_cv=0.05, trace=True)


def report(label, result):
    tracer = result.tracer
    overlap = tracer.overlap("producer0000", "consumer0000")
    print(f"{label:16s} makespan={result.makespan:7.2f}s  "
          f"pair-0 work overlap={overlap:6.2f}s "
          f"({overlap / result.makespan:5.1%} of the run)  "
          f"spans={len(tracer.events)}")
    return tracer


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    print("Tracing 16 JAC frames, 2 pairs, 2 nodes:\n")
    runs = {
        "dyad": run(System.DYAD),
        "lustre-coarse": run(System.LUSTRE, SyncMode.COARSE),
        "lustre-polling": run(System.LUSTRE, SyncMode.POLLING),
    }
    for label, result in runs.items():
        tracer = report(label, result)
        path = out_dir / f"trace-{label}.json"
        tracer.write_chrome_trace(path)
        print(f"{'':16s} -> {path}")

    print("\nReading the traces:")
    print("- dyad: producer and consumer lanes are busy simultaneously —")
    print("  the consumer is always exactly one frame behind (pipelined);")
    print("- lustre-coarse: the consumer lane is one long explicit_sync")
    print("  block followed by reads after the producer finished — the")
    print("  'serialized execution' the paper describes;")
    print("- lustre-polling: overlap is back, at the price of poll_sync")
    print("  idle slices and stat() traffic before every read.")


if __name__ == "__main__":
    main()
