#!/usr/bin/env python3
"""Real-machine miniature of the paper's comparison — wall-clock seconds.

Runs the same producer/consumer workload twice on *this* machine with real
threads and real files:

- through the DYAD-protocol local backend (staging dirs + blocking KVS
  watch + flock fast path), and
- through a shared directory with Pegasus-style polling discovery (the
  traditional manual synchronization).

Frames are genuine encoded MD frames. The report decomposes each path's
time with the same Caliper instrumentation the simulator uses, so you can
see the polling idle with your own eyes — the qualitative Finding 1 of
the paper, reproduced in actual seconds on actual hardware.

Run with::

    python examples/real_machine_comparison.py
"""

import tempfile

import numpy as np

from repro.backends.local import run_local_comparison
from repro.md import Frame
from repro.units import fmt_time

FRAMES = 10
PAIRS = 2
PRODUCE_PERIOD = 0.005  # "MD compute" between frames (fast producer)
POLL_INTERVAL = 0.02    # traditional path's discovery granularity


def main() -> None:
    rng = np.random.default_rng(0)
    payloads = {
        (pair, k): Frame.random(2000, rng, step=k).encode()
        for pair in range(PAIRS)
        for k in range(FRAMES)
    }

    with tempfile.TemporaryDirectory(prefix="repro-real-") as root:
        reports = run_local_comparison(
            root,
            frame_source=lambda pair, k: payloads[(pair, k)],
            frames=FRAMES,
            pairs=PAIRS,
            produce_period=PRODUCE_PERIOD,
            poll_interval=POLL_INTERVAL,
        )

    print(f"{PAIRS} pairs x {FRAMES} frames of "
          f"{len(payloads[(0, 0)])} B, produced every "
          f"{fmt_time(PRODUCE_PERIOD)}:\n")
    for name, report in reports.items():
        assert report.ok, report.errors
        idle = movement = 0.0
        for pname, tree in report.caliper.trees().items():
            if pname.startswith("consumer"):
                idle += tree.total_by_category("idle")
                movement += tree.total_by_category("movement")
        n = PAIRS * FRAMES
        sync_overhead = max(idle / n - PRODUCE_PERIOD, 0.0)
        print(f"{name:11s} wall={report.elapsed:6.3f}s  "
              f"consumer idle={fmt_time(idle / n)}/frame  "
              f"(sync overhead ~{fmt_time(sync_overhead)})  "
              f"movement={fmt_time(movement / n)}/frame")

    print("\nDYAD's blocking watch wakes consumers the instant a frame is")
    print("committed; the shared-dir path pays up to a poll interval of")
    print("discovery latency per frame — the same synchronization gap the")
    print("paper measures, here in real wall-clock time.")


if __name__ == "__main__":
    main()
