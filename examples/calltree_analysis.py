#!/usr/bin/env python3
"""Thicket-style call-tree analysis of a DYAD workflow (paper Fig. 9).

Runs a two-node DYAD workflow for JAC and STMV, aggregates the per-process
Caliper call trees into a Thicket ensemble, renders the mean consumer tree
for each model, and uses the call-path query language to drill into the
regions the paper discusses (``dyad_fetch``, ``dyad_get_data``,
``dyad_cons_store``, ``read_single_buf``).

Run with::

    python examples/calltree_analysis.py
"""

from repro.md import JAC, STMV
from repro.perf import Thicket
from repro.units import fmt_time
from repro.workflow import Placement, System, WorkflowSpec, run_workflow

FRAMES = 32
PAIRS = 8


def analyze(model):
    spec = WorkflowSpec(
        system=System.DYAD, model=model, stride=model.paper_stride,
        frames=FRAMES, pairs=PAIRS, placement=Placement.SPLIT,
    )
    result = run_workflow(spec, jitter_cv=0.05)

    ensemble = result.thicket()
    consumers: Thicket = ensemble.filter(role="consumer")
    mean_tree = consumers.aggregate("mean")
    mean_tree.label = f"mean consumer call tree, {model.name} ({PAIRS} pairs)"

    print(mean_tree.render(metric="time", unit=1e-3 * FRAMES, fmt="{:.3f} ms"))
    print()

    # call-path queries, Hatchet style
    movement_nodes = consumers.query("**/dyad_*")
    print(f"query '**/dyad_*' matched: "
          f"{', '.join(sorted(n.name for n in movement_nodes))}")
    idle_nodes = consumers.query(["**", {"category": "idle"}])
    for node in idle_nodes:
        print(f"idle region {'/'.join(node.path())}: "
              f"{fmt_time(node.time)} total per consumer")

    # per-path ensemble statistics (mean ± std across pairs)
    stats = consumers.node_stats("dyad_consume", "dyad_get_data")
    print(f"dyad_get_data across {stats.n} consumers: "
          f"{fmt_time(stats.mean / FRAMES)}/frame "
          f"± {fmt_time(stats.std / FRAMES)}")
    return mean_tree


def main() -> None:
    trees = {}
    for model in (JAC, STMV):
        print(f"===== {model.name} =====")
        trees[model.name] = analyze(model)
        print()

    def movement(tree):
        total = 0.0
        for path in [("dyad_consume", "dyad_get_data"),
                     ("dyad_consume", "dyad_cons_store"),
                     ("read_single_buf",)]:
            node = tree.find(*path)
            total += node.time if node else 0.0
        return total / FRAMES

    jac_move = movement(trees["JAC"])
    stmv_move = movement(trees["STMV"])
    data_ratio = STMV.frame_bytes / JAC.frame_bytes
    print(f"STMV moves {data_ratio:.1f}x more data than JAC, but DYAD's "
          f"movement time grows only {stmv_move / jac_move:.1f}x "
          "(paper: 33.6x) — fixed per-operation costs amortize.")


if __name__ == "__main__":
    main()
