#!/usr/bin/env python3
"""Simulation steering end-to-end: detect, terminate, fork.

The paper's Section II-B motivation, executed for real: "researchers who
study the data as it is generated to steer the simulation (e.g.,
terminate or fork a trajectory)". This example runs a live LJ simulation
through the in-situ pipeline; when the eigenvalue analytics flag a sudden
structural change, the pipeline **terminates** the trajectory, and the
driver **forks** it into independent replicas (perturbed velocities) that
explore onward from the event — each through its own pipeline.

Everything is real: real MD engine, real threads, real files through the
DYAD-protocol backend, real contact-matrix eigenvalues.

Run with::

    python examples/steered_simulation.py
"""

from repro.insitu import (
    EigenvalueSteering,
    EngineSource,
    InSituPipeline,
    ObservableRecorder,
)
from repro.md import LJConfig, radius_of_gyration

SUBSETS = {"helix-1-2": range(0, 40), "helix-1-3": range(40, 80)}


def run_pipeline(source, label, max_frames=30, threshold=1.5):
    steering = EigenvalueSteering(
        SUBSETS, cutoff=3.0, threshold=threshold, warmup=4,
    )
    recorder = ObservableRecorder({"rg": radius_of_gyration})
    pipeline = InSituPipeline(source=source, sinks=[steering, recorder])
    report = pipeline.run(max_frames=max_frames)
    rg = recorder.series["rg"]
    print(f"[{label}] frames={report.frames_consumed:3d} "
          f"terminated={report.terminated_early!s:5s} "
          f"Rg {rg[0]:.2f} -> {rg[-1]:.2f}  "
          f"events={len(steering.events)}")
    for step, subset, value in steering.events[:2]:
        print(f"[{label}]   event: {subset} jumped to λ={value:.2f} "
              f"at step {step}")
    return report, steering


def main() -> None:
    print("Phase 1: primary trajectory with steering analytics\n")
    primary = EngineSource(
        LJConfig(n_atoms=240, density=0.45, temperature=1.4, seed=11),
        stride=10,
    )
    report, steering = run_pipeline(primary, "primary")

    if not report.terminated_early:
        print("\nno structural event detected — nothing to fork")
        return

    print("\nPhase 2: event detected -> fork the trajectory into replicas")
    print("(same positions, perturbed velocities: independent exploration")
    print(" of phase space around the event, per the paper's Section II-B)\n")
    for replica in range(2):
        fork = primary.fork(seed=100 + replica, velocity_jitter=0.08)
        run_pipeline(fork, f"fork-{replica}", max_frames=12,
                     threshold=6.0)  # forks just explore; steer less eagerly

    print("\nThe detect->terminate->fork loop closed without any data ever")
    print("touching a parallel file system: frames moved producer->consumer")
    print("through node-local staging with watch-based synchronization.")


if __name__ == "__main__":
    main()
