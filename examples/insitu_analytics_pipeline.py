#!/usr/bin/env python3
"""A *real* in-situ analytics pipeline through the DYAD protocol.

This is the paper's Fig. 1 as running code, with nothing emulated:

- the producer thread runs a genuine Lennard-Jones MD simulation
  (:mod:`repro.md.engine`), encodes each frame with the binary codec, and
  stages it through the real-threads DYAD backend (real files, real
  ``fcntl`` locks, a blocking KVS watch for first-touch sync);
- the consumer thread pulls each frame as it appears, decodes it, and
  runs the paper's style of in-situ analytics — radius of gyration plus
  largest-eigenvalue tracking of two atom-subset contact matrices
  ("Helix 1-2 / Helix 1-3"), flagging sudden structural changes.

Run with::

    python examples/insitu_analytics_pipeline.py
"""

import tempfile
import threading
import time

from repro.backends.local import LocalDyad
from repro.md import (
    EigenvalueTracker,
    Frame,
    LJConfig,
    LJSimulation,
    radius_of_gyration,
)

N_FRAMES = 12
STRIDE = 10


def producer(dyad: LocalDyad, done: threading.Event) -> None:
    """MD simulation: run STRIDE steps, stage a frame, repeat."""
    sim = LJSimulation(LJConfig(
        n_atoms=300, density=0.45, temperature=1.2, seed=7,
    ))
    for index, frame in enumerate(sim.run_trajectory(N_FRAMES, STRIDE)):
        payload = frame.encode()
        dyad.produce("node00", f"traj/frame{index:04d}.mdfr", payload)
        print(f"[producer] staged frame {index} "
              f"(step {frame.step}, {len(payload)} bytes, "
              f"T={sim.instantaneous_temperature:.2f})")
    done.set()


def consumer(dyad: LocalDyad) -> None:
    """In-situ analytics: consume frames as they appear."""
    tracker = EigenvalueTracker(
        subsets={
            "helix-1-2": range(0, 40),
            "helix-1-3": range(40, 80),
        },
        cutoff=3.0,
        threshold=2.5,
        warmup=4,
    )
    reference = None
    for index in range(N_FRAMES):
        payload = dyad.consume("node01", f"traj/frame{index:04d}.mdfr",
                               timeout=60.0)
        frame = Frame.decode(payload)
        if reference is None:
            reference = frame
        events = tracker.ingest(frame)
        rg = radius_of_gyration(frame)
        print(f"[consumer] frame {index}: Rg={rg:.3f}  "
              + "  ".join(
                  f"λ({name})={series[-1]:.2f}"
                  for name, series in tracker.series.items()
              ))
        for step, subset, value in events:
            print(f"[consumer] *** sudden change in {subset} at step {step} "
                  f"(λ={value:.2f}) — steer the simulation!")

    print("\n[consumer] eigenvalue summary:")
    for name, stats in tracker.summary().items():
        print(f"  {name}: mean={stats['mean']:.2f} std={stats['std']:.2f} "
              f"range=[{stats['min']:.2f}, {stats['max']:.2f}]")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="dyad-insitu-") as root:
        dyad = LocalDyad(root, nodes=2)
        done = threading.Event()
        start = time.monotonic()
        threads = [
            threading.Thread(target=producer, args=(dyad, done), name="prod"),
            threading.Thread(target=consumer, args=(dyad,), name="cons"),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        print(f"\npipeline complete in {time.monotonic() - start:.2f}s "
              f"({N_FRAMES} frames, real MD + real files + real locks)")


if __name__ == "__main__":
    main()
