#!/usr/bin/env python3
"""Quickstart: compare DYAD and Lustre on a two-node MD workflow.

Runs the paper's basic experiment shape — JAC frames moving from one
producer node to one consumer node — through both data-management systems
on the simulated Corona cluster, and prints the production/consumption
decomposition the paper plots in its figures.

Run with::

    python examples/quickstart.py
"""

from repro.md import JAC
from repro.units import to_msec, to_usec
from repro.workflow import Placement, System, WorkflowSpec, run_workflow


def main() -> None:
    print("Quickstart: JAC frames, 8 producer-consumer pairs, 2 nodes")
    print(f"model: {JAC}")
    print()

    results = {}
    for system in (System.DYAD, System.LUSTRE):
        spec = WorkflowSpec(
            system=system,
            model=JAC,
            stride=JAC.paper_stride,   # one frame every ~0.82 s
            frames=64,
            pairs=8,
            placement=Placement.SPLIT,
        )
        print(f"running: {spec.describe()}")
        results[system] = run_workflow(spec, jitter_cv=0.05)

    print()
    header = (f"{'system':8s} {'prod move':>12s} {'prod idle':>12s} "
              f"{'cons move':>12s} {'cons idle':>12s} {'cons total':>12s}")
    print(header)
    print("-" * len(header))
    for system, r in results.items():
        print(
            f"{system.value:8s} "
            f"{to_usec(r.production_movement):9.1f} us "
            f"{to_usec(r.production_idle):9.1f} us "
            f"{to_msec(r.consumption_movement):9.3f} ms "
            f"{to_msec(r.consumption_idle):9.3f} ms "
            f"{to_msec(r.consumption_time):9.3f} ms"
        )

    dyad, lustre = results[System.DYAD], results[System.LUSTRE]
    print()
    print(f"DYAD production is "
          f"{lustre.production_movement / dyad.production_movement:.1f}x faster "
          "(paper: ~7.5x)")
    print(f"DYAD overall consumption is "
          f"{lustre.consumption_time / dyad.consumption_time:.1f}x faster "
          "(paper: ~197x) — the coarse-sync idle dominates Lustre")


if __name__ == "__main__":
    main()
