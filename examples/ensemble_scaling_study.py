#!/usr/bin/env python3
"""A custom ensemble-scaling study using the public workflow API.

Sweeps the number of producer-consumer pairs well beyond the paper's grid
(up to 64 pairs on 16 nodes), for two molecular models, and renders simple
text charts of the per-frame consumption time. Demonstrates how to build
new studies — different grids, models, metrics — on top of the library
rather than rerunning the canned experiments.

Run with::

    python examples/ensemble_scaling_study.py
"""

from repro.md import JAC, STMV
from repro.units import to_msec
from repro.workflow import Placement, System, WorkflowSpec, run_workflow

PAIR_GRID = (4, 8, 16, 32, 64)
FRAMES = 32


def bar(value: float, scale: float, width: int = 40) -> str:
    filled = min(width, int(round(width * value / scale))) if scale else 0
    return "#" * filled


def sweep(model, stride):
    print(f"\n=== {model.name} (frame {model.frame_bytes / 2**20:.2f} MiB, "
          f"stride {stride}) ===")
    rows = []
    for pairs in PAIR_GRID:
        row = {"pairs": pairs}
        for system in (System.DYAD, System.LUSTRE):
            spec = WorkflowSpec(
                system=system, model=model, stride=stride, frames=FRAMES,
                pairs=pairs, placement=Placement.SPLIT,
            )
            result = run_workflow(spec, jitter_cv=0.05)
            row[system.value] = result.consumption_movement
        rows.append(row)

    scale = max(r["lustre"] for r in rows)
    print(f"{'pairs':>6s}  {'dyad (ms)':>10s}  {'lustre (ms)':>11s}  "
          f"lustre consumption movement")
    for row in rows:
        print(f"{row['pairs']:6d}  {to_msec(row['dyad']):10.3f}  "
              f"{to_msec(row['lustre']):11.3f}  {bar(row['lustre'], scale)}")
    worst = max(r["lustre"] / r["dyad"] for r in rows)
    best = min(r["lustre"] / r["dyad"] for r in rows)
    print(f"DYAD advantage across the sweep: {best:.1f}x - {worst:.1f}x")


def main() -> None:
    print("Ensemble scaling study: consumption data-movement per frame")
    sweep(JAC, JAC.paper_stride)
    sweep(STMV, STMV.paper_stride)


if __name__ == "__main__":
    main()
