"""Setuptools entry point.

The pyproject.toml carries all metadata; this file exists so that editable
installs work on minimal/offline environments that lack the ``wheel``
package required by PEP 660 builds.
"""

from setuptools import setup

setup()
