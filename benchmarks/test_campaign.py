"""Campaign-engine benchmarks: kernel throughput, fan-out, cache.

Unlike the figure benchmarks (which assert the *paper's* shapes), this
module tracks the performance of the campaign engine itself and emits a
machine-readable ``BENCH_campaign.json`` at the repository root:

- ``kernel``: DES events/second on the timeout-dominated and the
  channel-contended (64 concurrent flows per fluid channel) workloads,
  compared against the recorded baseline in
  ``benchmarks/baseline_campaign.json`` *and* against the retained naive
  reference channel on the identical workload (a machine-noise-immune
  speedup measurement);
- ``campaign``: wall time of a representative repetition campaign run
  serially vs. fanned out over worker processes (plus a bit-identity
  check between the two);
- ``cache``: cold vs. warm wall time through the on-disk result cache.

Numbers are recorded honestly for whatever machine runs the suite —
``cpu_count`` is part of the payload because the parallel speedup is
bounded by it: on a box with fewer cores than requested jobs the
``campaign`` section reports ``parallel_speedup: null`` and
``speedup_target_applies: false`` instead of a misleading ratio (a
1-core container running 4 workers measures ~0.5× "speedup" that says
nothing about the engine). Thresholds are asserted only under
``REPRO_BENCH_STRICT=1``, which is meant for the hardware class the
baseline was recorded on; CI's cross-machine gate is
``benchmarks/perf_guard.py``.
"""

import json
import os
import pathlib
import random
import time

import pytest

from repro.experiments.parallel import (
    RunTask,
    default_jobs,
    result_fingerprint,
    run_campaign,
)
from repro.sim.core import Environment, Event
from repro.sim.reference import ReferenceSharedBandwidth
from repro.sim.resources import SharedBandwidth
from repro.workflow.spec import Placement, System, WorkflowSpec

ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = ROOT / "benchmarks" / "baseline_campaign.json"
OUTPUT_PATH = ROOT / "BENCH_campaign.json"

STRICT = os.environ.get("REPRO_BENCH_STRICT", "0") == "1"

#: What the kernel fast path must deliver over the recorded baseline.
KERNEL_SPEEDUP_TARGET = 1.5
#: What 4-way fan-out must deliver when >= 4 cores are actually available.
CAMPAIGN_SPEEDUP_TARGET = 3.0

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write whatever was measured, even if a later test fails."""
    yield
    payload = {
        # 2: contended workload became the 64-flow channel fan-out;
        #    campaign section gained jobs_requested/jobs_effective and a
        #    null speedup in the degenerate (clamped) case.
        "schema": 2,
        "cpu_count": os.cpu_count(),
        "python": ".".join(map(str, __import__("sys").version_info[:3])),
        "strict": STRICT,
        **RESULTS,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=1) + "\n")


def best_rate(fn, repeats=5):
    """Best events/second over ``repeats`` runs (least-noise estimator)."""
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = fn()
        elapsed = time.perf_counter() - t0
        best = max(best, events / elapsed)
    return best


# ---------------------------------------------------------------------------
# kernel throughput (events/second)
# ---------------------------------------------------------------------------
# Keep these workloads in lockstep with benchmarks/baseline_campaign.json:
# the baseline was recorded with exactly these shapes.

def timeout_workload(n_procs=64, per_proc=2000):
    """Timeout-dominated: the allocation profile of every I/O model."""
    env = Environment()

    def ticker():
        for _ in range(per_proc):
            yield env.timeout(1.0)

    for _ in range(n_procs):
        env.process(ticker())
    env.run()
    return n_procs * per_proc


def _channel_fanout(cls, flows=64, rounds=300):
    """High-fan-out contention: ``flows`` concurrent transfers per channel.

    One driver bursts 64 mixed-size transfers into a single fluid-flow
    channel and waits for the round to drain, 300 times — the arrival
    pattern of a many-pair fan-out hammering one OSS/NIC (Figs. 7/8/12 at
    scale). Returns the number of kernel events dispatched (``env._seq``),
    so the rate is comparable across channel implementations: both
    schedule the identical event timeline.
    """
    env = Environment()
    chan = cls(env, bandwidth=1e9)
    rng = random.Random(42)
    sizes = [rng.choice((1e5, 1e6, 5e6, 2e7)) for _ in range(flows)]

    def driver():
        for _ in range(rounds):
            gate = Event(env)
            left = [flows]

            def _done(_ev, gate=gate, left=left):
                left[0] -= 1
                if not left[0]:
                    gate.succeed(None)

            for size in sizes:
                chan.transfer(size).callbacks.append(_done)
            yield gate

    env.process(driver())
    env.run()
    return env._seq


def contended_workload():
    """The production virtual-time channel under 64-flow contention."""
    return _channel_fanout(SharedBandwidth)


def reference_contended_workload():
    """The retained naive O(n²) channel on the identical workload."""
    return _channel_fanout(ReferenceSharedBandwidth)


def test_kernel_throughput_vs_baseline():
    baseline = json.loads(BASELINE_PATH.read_text())
    timeout_rate = best_rate(timeout_workload)
    contended_rate = best_rate(contended_workload, repeats=7)
    reference_rate = best_rate(reference_contended_workload, repeats=3)
    RESULTS["kernel"] = {
        "timeout_events_per_sec": round(timeout_rate, 1),
        "contended_events_per_sec": round(contended_rate, 1),
        "reference_contended_events_per_sec": round(reference_rate, 1),
        # same workload, same machine, same minute: immune to box noise
        "channel_speedup_vs_reference": round(
            contended_rate / reference_rate, 2),
        "baseline_timeout_events_per_sec": baseline["timeout_events_per_sec"],
        "baseline_contended_events_per_sec": baseline["contended_events_per_sec"],
        "timeout_speedup_vs_baseline": round(
            timeout_rate / baseline["timeout_events_per_sec"], 3),
        "contended_speedup_vs_baseline": round(
            contended_rate / baseline["contended_events_per_sec"], 3),
        "speedup_target": KERNEL_SPEEDUP_TARGET,
    }
    assert timeout_rate > 0 and contended_rate > 0
    assert contended_rate > reference_rate, (
        "virtual-time channel slower than the naive reference"
    )
    if STRICT:
        assert timeout_rate >= KERNEL_SPEEDUP_TARGET * baseline[
            "timeout_events_per_sec"]


# ---------------------------------------------------------------------------
# campaign fan-out (serial vs --jobs 4)
# ---------------------------------------------------------------------------

def campaign_tasks(seeds=10):
    """A representative two-system campaign slice (Fig. 6 shape at the
    paper's full 128 frames, 8 pairs, ``seeds`` repetitions per system)."""
    specs = [
        WorkflowSpec(system=System.DYAD, frames=128, pairs=8,
                     placement=Placement.SPLIT),
        WorkflowSpec(system=System.LUSTRE, frames=128, pairs=8,
                     placement=Placement.SPLIT),
    ]
    return [
        RunTask(spec=spec, seed=1000 * r, jitter_cv=0.05)
        for spec in specs
        for r in range(seeds)
    ]


def test_campaign_serial_vs_parallel(monkeypatch):
    tasks = campaign_tasks()
    jobs_requested = 4
    jobs_effective = default_jobs(jobs_requested)  # clamped to cpu_count
    # Fewer than 2 effective workers means fan-out cannot help here: a
    # measured "speedup" would only describe spawn overhead, so it is
    # reported as null. The pooled run still executes (with the clamp
    # lifted) because the bit-identity guarantee must hold on every box.
    degenerate = jobs_effective < 2
    if degenerate:
        monkeypatch.setenv("REPRO_JOBS_OVERSUBSCRIBE", "1")
    t0 = time.perf_counter()
    serial = run_campaign(tasks, jobs=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_campaign(tasks, jobs=jobs_requested)
    parallel_s = time.perf_counter() - t0
    identical = ([result_fingerprint(r) for r in serial]
                 == [result_fingerprint(r) for r in parallel])
    RESULTS["campaign"] = {
        "tasks": len(tasks),
        "jobs_requested": jobs_requested,
        "jobs_effective": jobs_effective,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "parallel_speedup": (None if degenerate
                             else round(serial_s / parallel_s, 3)),
        "parallel_bit_identical_to_serial": identical,
        "speedup_target": CAMPAIGN_SPEEDUP_TARGET,
        "speedup_target_applies": jobs_effective >= 4,
    }
    assert identical, (
        f"jobs={jobs_requested} diverged from the serial campaign"
    )
    if STRICT and jobs_effective >= 4:
        assert serial_s / parallel_s >= CAMPAIGN_SPEEDUP_TARGET


# ---------------------------------------------------------------------------
# result-cache hit speedup
# ---------------------------------------------------------------------------

def test_cache_hit_speedup(tmp_path):
    tasks = campaign_tasks(seeds=3)
    t0 = time.perf_counter()
    cold = run_campaign(tasks, jobs=1, use_cache=True,
                        cache_dir=str(tmp_path))
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = run_campaign(tasks, jobs=1, use_cache=True,
                        cache_dir=str(tmp_path))
    warm_s = time.perf_counter() - t0
    identical = ([result_fingerprint(r) for r in cold]
                 == [result_fingerprint(r) for r in warm])
    RESULTS["cache"] = {
        "tasks": len(tasks),
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "hit_speedup": round(cold_s / warm_s, 2),
        "hits_bit_identical_to_cold": identical,
    }
    assert identical, "cache hits diverged from the cold campaign"
    assert warm_s < cold_s
