"""Campaign-engine benchmarks: kernel throughput, fan-out, cache.

Unlike the figure benchmarks (which assert the *paper's* shapes), this
module tracks the performance of the campaign engine itself and emits a
machine-readable ``BENCH_campaign.json`` at the repository root:

- ``kernel``: DES events/second on the timeout-dominated and the
  resource-contended workloads, compared against the recorded
  pre-optimization baseline in ``benchmarks/baseline_campaign.json``;
- ``campaign``: wall time of a representative repetition campaign run
  serially vs. fanned out over 4 worker processes (plus a bit-identity
  check between the two);
- ``cache``: cold vs. warm wall time through the on-disk result cache.

Numbers are recorded honestly for whatever machine runs the suite —
``cpu_count`` is part of the payload because the parallel speedup is
bounded by it (on a 1-core container ``jobs=4`` cannot beat serial).
Thresholds are asserted only under ``REPRO_BENCH_STRICT=1``, which is
meant for the hardware class the baseline was recorded on.
"""

import json
import os
import pathlib
import time

import pytest

from repro.experiments.parallel import (
    RunTask,
    result_fingerprint,
    run_campaign,
)
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.workflow.spec import Placement, System, WorkflowSpec

ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = ROOT / "benchmarks" / "baseline_campaign.json"
OUTPUT_PATH = ROOT / "BENCH_campaign.json"

STRICT = os.environ.get("REPRO_BENCH_STRICT", "0") == "1"

#: What the kernel fast path must deliver over the recorded baseline.
KERNEL_SPEEDUP_TARGET = 1.5
#: What 4-way fan-out must deliver when >= 4 cores are actually available.
CAMPAIGN_SPEEDUP_TARGET = 3.0

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write whatever was measured, even if a later test fails."""
    yield
    payload = {
        "schema": 1,
        "cpu_count": os.cpu_count(),
        "python": ".".join(map(str, __import__("sys").version_info[:3])),
        "strict": STRICT,
        **RESULTS,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=1) + "\n")


def best_rate(fn, repeats=5):
    """Best events/second over ``repeats`` runs (least-noise estimator)."""
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = fn()
        elapsed = time.perf_counter() - t0
        best = max(best, events / elapsed)
    return best


# ---------------------------------------------------------------------------
# kernel throughput (events/second)
# ---------------------------------------------------------------------------
# Keep these workloads in lockstep with benchmarks/baseline_campaign.json:
# the baseline was recorded with exactly these shapes.

def timeout_workload(n_procs=64, per_proc=2000):
    """Timeout-dominated: the allocation profile of every I/O model."""
    env = Environment()

    def ticker():
        for _ in range(per_proc):
            yield env.timeout(1.0)

    for _ in range(n_procs):
        env.process(ticker())
    env.run()
    return n_procs * per_proc


def contended_workload(n_procs=32, per_proc=500):
    """Acquire/release churn through a contended FIFO resource."""
    env = Environment()
    res = Resource(env, 4)

    def worker():
        for _ in range(per_proc):
            yield from res.acquire(0.001)

    for _ in range(n_procs):
        env.process(worker())
    env.run()
    return n_procs * per_proc


def test_kernel_throughput_vs_baseline():
    baseline = json.loads(BASELINE_PATH.read_text())
    timeout_rate = best_rate(timeout_workload)
    contended_rate = best_rate(contended_workload)
    RESULTS["kernel"] = {
        "timeout_events_per_sec": round(timeout_rate, 1),
        "contended_events_per_sec": round(contended_rate, 1),
        "baseline_timeout_events_per_sec": baseline["timeout_events_per_sec"],
        "baseline_contended_events_per_sec": baseline["contended_events_per_sec"],
        "timeout_speedup_vs_baseline": round(
            timeout_rate / baseline["timeout_events_per_sec"], 3),
        "contended_speedup_vs_baseline": round(
            contended_rate / baseline["contended_events_per_sec"], 3),
        "speedup_target": KERNEL_SPEEDUP_TARGET,
    }
    assert timeout_rate > 0 and contended_rate > 0
    if STRICT:
        assert timeout_rate >= KERNEL_SPEEDUP_TARGET * baseline[
            "timeout_events_per_sec"]


# ---------------------------------------------------------------------------
# campaign fan-out (serial vs --jobs 4)
# ---------------------------------------------------------------------------

def campaign_tasks(seeds=10):
    """A representative two-system campaign slice (Fig. 6 shape at the
    paper's full 128 frames, 8 pairs, ``seeds`` repetitions per system)."""
    specs = [
        WorkflowSpec(system=System.DYAD, frames=128, pairs=8,
                     placement=Placement.SPLIT),
        WorkflowSpec(system=System.LUSTRE, frames=128, pairs=8,
                     placement=Placement.SPLIT),
    ]
    return [
        RunTask(spec=spec, seed=1000 * r, jitter_cv=0.05)
        for spec in specs
        for r in range(seeds)
    ]


def test_campaign_serial_vs_parallel():
    tasks = campaign_tasks()
    t0 = time.perf_counter()
    serial = run_campaign(tasks, jobs=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_campaign(tasks, jobs=4)
    parallel_s = time.perf_counter() - t0
    identical = ([result_fingerprint(r) for r in serial]
                 == [result_fingerprint(r) for r in parallel])
    RESULTS["campaign"] = {
        "tasks": len(tasks),
        "jobs": 4,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3),
        "parallel_bit_identical_to_serial": identical,
        "speedup_target": CAMPAIGN_SPEEDUP_TARGET,
        "speedup_target_applies": (os.cpu_count() or 1) >= 4,
    }
    assert identical, "jobs=4 diverged from the serial campaign"
    if STRICT and (os.cpu_count() or 1) >= 4:
        assert serial_s / parallel_s >= CAMPAIGN_SPEEDUP_TARGET


# ---------------------------------------------------------------------------
# result-cache hit speedup
# ---------------------------------------------------------------------------

def test_cache_hit_speedup(tmp_path):
    tasks = campaign_tasks(seeds=3)
    t0 = time.perf_counter()
    cold = run_campaign(tasks, jobs=1, use_cache=True,
                        cache_dir=str(tmp_path))
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = run_campaign(tasks, jobs=1, use_cache=True,
                        cache_dir=str(tmp_path))
    warm_s = time.perf_counter() - t0
    identical = ([result_fingerprint(r) for r in cold]
                 == [result_fingerprint(r) for r in warm])
    RESULTS["cache"] = {
        "tasks": len(tasks),
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "hit_speedup": round(cold_s / warm_s, 2),
        "hits_bit_identical_to_cold": identical,
    }
    assert identical, "cache hits diverged from the cold campaign"
    assert warm_s < cold_s
