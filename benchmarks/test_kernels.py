"""Micro-benchmarks of the library's own hot paths.

Not a paper figure — these track the performance of the substrates the
reproduction is built on (DES event throughput, bandwidth-sharing, the
frame codec, the LJ engine), so regressions in the simulator itself are
visible separately from changes in the modelled systems.
"""

import random

import numpy as np

from repro.md.engine import LJConfig, LJSimulation
from repro.md.frame import Frame
from repro.sim.core import Environment, Event
from repro.sim.resources import Resource, SharedBandwidth


def test_event_loop_throughput(benchmark):
    """Schedule+dispatch cost of plain timeout events."""

    def run_events():
        env = Environment()

        def ticker():
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(ticker())
        env.run()
        return env.now

    assert benchmark(run_events) == 10_000.0


def test_resource_queue_throughput(benchmark):
    """Acquire/release churn through a contended FIFO resource."""

    def run_queue():
        env = Environment()
        res = Resource(env, 2)
        done = []

        def worker():
            for _ in range(200):
                yield from res.acquire(0.001)
            done.append(True)

        for _ in range(10):
            env.process(worker())
        env.run()
        return len(done)

    assert benchmark(run_queue) == 10


def test_shared_bandwidth_recompute_cost(benchmark):
    """Fluid-flow rescheduling with churning flow sets."""

    def run_flows():
        env = Environment()
        chan = SharedBandwidth(env, 1e6)
        finished = []

        def mover(i):
            yield env.timeout(i * 0.0001)
            yield chan.transfer(1000.0 + i)
            finished.append(i)

        for i in range(500):
            env.process(mover(i))
        env.run()
        return len(finished)

    assert benchmark(run_flows) == 500


def test_shared_bandwidth_high_fanout_64_flows(benchmark):
    """64 concurrent flows per channel — the contention hot path.

    Bursts of 64 mixed-size transfers into one channel, round after
    round: the arrival pattern of a many-pair fan-out hammering a single
    OSS/NIC (Figs. 7/8/12 at scale). This is the workload the
    virtual-time rewrite targets; the naive O(n²) channel re-timed all
    64 flows on every arrival and completion.
    """

    flows, rounds = 64, 40
    rng = random.Random(42)
    sizes = [rng.choice((1e5, 1e6, 5e6, 2e7)) for _ in range(flows)]

    def run_fanout():
        env = Environment()
        chan = SharedBandwidth(env, 1e9)

        def driver():
            for _ in range(rounds):
                gate = Event(env)
                left = [flows]

                def _done(_ev, gate=gate, left=left):
                    left[0] -= 1
                    if not left[0]:
                        gate.succeed(None)

                for size in sizes:
                    chan.transfer(size).callbacks.append(_done)
                yield gate

        env.process(driver())
        env.run()
        return chan.bytes_moved

    moved = benchmark(run_fanout)
    assert moved == rounds * sum(sizes)


def test_frame_codec_encode(benchmark):
    frame = Frame.random(100_000, np.random.default_rng(0))

    payload = benchmark(frame.encode)
    assert len(payload) == frame.nbytes


def test_frame_codec_decode(benchmark):
    frame = Frame.random(100_000, np.random.default_rng(0))
    payload = frame.encode()

    decoded = benchmark(Frame.decode, payload)
    assert decoded.natoms == 100_000


def test_lj_engine_steps_per_second(benchmark):
    sim = LJSimulation(LJConfig(n_atoms=500, density=0.5, seed=0))

    benchmark.pedantic(sim.step, args=(5,), rounds=3, iterations=1)
    assert sim.step_index >= 15
