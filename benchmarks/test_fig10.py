"""Fig. 10 — Lustre Thicket call trees (JAC vs STMV).

Paper: ``explicit_sync`` constant across models; data movement scales
sublinearly thanks to striping (12.3× for 45.3× more data). Our model's
OSS-contention (which drives the Fig. 8b widening) makes the measured
movement ratio larger than 12.3×; we assert sublinearity vs. an
uncontended single-stream bound instead (see module note in
repro.experiments.fig10_lustre_calltree).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig10_lustre_calltree
from repro.workflow.emulator import READ_REGION, SYNC_REGION


def test_fig10(benchmark, grid):
    fig = run_once(benchmark, fig10_lustre_calltree.run, **grid)
    print()
    print(fig.render())

    jac, stmv = fig.per_frame["JAC"], fig.per_frame["STMV"]
    # explicit_sync constant across the two models (paper's key claim)
    assert stmv[SYNC_REGION] == pytest.approx(jac[SYNC_REGION], rel=0.1)
    # sync dominates movement for both (what limits Lustre's scalability)
    assert jac[SYNC_REGION] > 10 * jac[READ_REGION]
    assert stmv[SYNC_REGION] > stmv[READ_REGION]
    # movement grows with model size
    assert stmv[READ_REGION] > 5 * jac[READ_REGION]
