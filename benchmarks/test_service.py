"""Serving-layer benchmark: the chaos-soak behind ``BENCH_service.json``.

Boots a private experiment server and drives the full chaos smoke —
hundreds of concurrent synthetic clients across mixed tenants with
deliberate duplicate submissions, one injected worker crash, and one
SIGKILL + restart of the server mid-run — then asserts the serving
guarantees and records p50/p99 submit-to-result latency plus the
shed/retry/dedup counters at the repository root.

The same scenario is CI's ``service-smoke`` job
(``python -m repro.service smoke``); running it here keeps the bench
artifact and the CI gate byte-compatible. Thresholds are asserted only
under ``REPRO_BENCH_STRICT=1``; the structural zero-loss assertions
always run.
"""

import json
import os
import pathlib

import pytest

from repro.service.__main__ import main as service_main

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = ROOT / "BENCH_service.json"

STRICT = os.environ.get("REPRO_BENCH_STRICT", "0") == "1"

#: concurrent synthetic clients (the ISSUE's acceptance floor is 200)
CLIENTS = 200
#: p99 submit-to-result latency budget under strict mode, in seconds —
#: generous because the box computes every distinct cell at least once
LATENCY_P99_BUDGET = 60.0

RESULTS = {}


@pytest.fixture(scope="module")
def smoke_report():
    exit_code = service_main([
        "smoke",
        "--clients", str(CLIENTS),
        "--jobs-per-client", "2",
        "--output", str(OUTPUT_PATH),
    ])
    report = json.loads(OUTPUT_PATH.read_text())
    RESULTS.update(exit_code=exit_code, report=report)
    return report


def test_chaos_smoke_passes(smoke_report):
    assert RESULTS["exit_code"] == 0, smoke_report["failures"]
    assert smoke_report["failures"] == []


def test_zero_lost_jobs_under_chaos(smoke_report):
    assert smoke_report["clients"] == CLIENTS
    assert smoke_report["lost_jobs"] == 0
    assert smoke_report["outcomes"]["done"] == smoke_report["submitted"]
    assert smoke_report["divergent_fingerprints"] == {}
    assert smoke_report["server_kills"] == 1


def test_counters_reported(smoke_report):
    counters = smoke_report["server_stats"]["counters"]
    assert counters["retries"] >= 1          # the injected worker crash
    assert counters["dedup_inflight"] >= 1   # duplicate submissions
    assert smoke_report["latency_p50"] is not None
    assert smoke_report["latency_p99"] is not None
    assert smoke_report["latency_p50"] <= smoke_report["latency_p99"]


def test_sustained_phase_exactly_once(smoke_report):
    """The warm hot-path phase keeps the same serving guarantees."""
    sustained = smoke_report["sustained"]
    assert sustained["lost_jobs"] == 0
    assert sustained["outcomes"]["done"] == sustained["submitted"]
    assert sustained["throughput"] > 0


def test_delivery_phase_serves_every_fetch(smoke_report):
    """Zero-copy result delivery: every fetched key decodes client-side."""
    delivery = smoke_report["delivery"]
    assert delivery["delivered"] == delivery["fetches"] > 0
    assert delivery["fetches_per_second"] > 0


def test_group_commit_amortization_visible_in_artifact(smoke_report):
    """The artifact itself must prove the journal batched its fsyncs."""
    journal = smoke_report["server_stats"]["journal"]
    assert journal["records"] > journal["syncs"] >= 1
    assert journal["avg_events_per_sync"] > 1.0
    dispatch = smoke_report["server_stats"]["dispatch"]
    assert dispatch["jobs"] >= dispatch["batches"] >= 1


def test_latency_budget(smoke_report):
    if not STRICT:
        pytest.skip("latency threshold asserted under REPRO_BENCH_STRICT=1")
    assert smoke_report["latency_p99"] <= LATENCY_P99_BUDGET
