"""Fig. 9 — DYAD Thicket call trees (JAC vs STMV).

Paper: 45.3× more data costs DYAD only ≈33.6× more movement time;
``dyad_fetch`` is ≈2.1× cheaper per call for STMV (less KVS pressure).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig9_dyad_calltree
from repro.md.models import JAC, STMV


def test_fig9(benchmark, grid):
    fig = run_once(benchmark, fig9_dyad_calltree.run, **grid)
    print()
    print(fig.render())

    move = {
        model: sum(v for k, v in values.items()
                   if k != "dyad_consume/dyad_fetch")
        for model, values in fig.per_frame.items()
    }
    data_ratio = STMV.frame_bytes / JAC.frame_bytes
    time_ratio = move["STMV"] / move["JAC"]
    # paper: 33.6x for 45.3x more data — assert strong sublinearity in a band
    assert 20.0 < time_ratio < data_ratio, time_ratio

    # every Fig. 9 region exists in both trees
    for model in ("JAC", "STMV"):
        tree = fig.trees[model]
        for path in [("dyad_consume", "dyad_fetch"),
                     ("dyad_consume", "dyad_get_data"),
                     ("dyad_consume", "dyad_cons_store"),
                     ("read_single_buf",)]:
            assert tree.find(*path) is not None, (model, path)

    # fetch does not blow up for STMV (paper: it *improves* 2.1x)
    fetch = {m: v["dyad_consume/dyad_fetch"] for m, v in fig.per_frame.items()}
    assert fetch["STMV"] <= fetch["JAC"] * 1.5, fetch
