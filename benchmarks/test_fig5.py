"""Fig. 5 — single-node DYAD vs XFS ensemble scaling.

Paper: DYAD production ≈1.4× slower than XFS; DYAD overall consumption
≈192.9× faster (two orders of magnitude), consumption idle-dominated for
XFS.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig5_single_node


def test_fig5(benchmark, grid):
    fig = run_once(benchmark, fig5_single_node.run, **grid)
    print()
    print(fig.render())

    prod = fig.ratio("production_movement", "dyad", "xfs")
    cons = fig.ratio("consumption_time", "xfs", "dyad")
    # paper: 1.4x slower production
    assert 1.15 < prod < 1.9, prod
    # paper: 192.9x faster consumption — assert the order of magnitude
    assert cons > 25, cons
    # idle dominates XFS consumption at every ensemble size
    for pairs in fig.xs:
        cell = fig.cell(pairs, "xfs")
        assert cell.consumption_idle.mean > 10 * cell.consumption_movement.mean
    # production has no significant idle for either system
    for pairs in fig.xs:
        for system in fig.systems:
            cell = fig.cell(pairs, system)
            assert cell.production_idle.mean < 0.05 * cell.production_movement.mean
