"""Fig. 11 — JAC frame-frequency scaling (strides 1/5/10/50).

Paper: movement flat across strides for both systems; DYAD production
≈4.8× faster; idle grows with stride for both, with DYAD far lower.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig11_jac_stride


def test_fig11(benchmark, grid):
    fig = run_once(benchmark, fig11_jac_stride.run, **grid)
    print()
    print(fig.render())

    prod = fig.ratio("production_movement", "lustre", "dyad")
    assert 3.0 < prod < 10.0, prod  # paper: 4.8x

    lo, hi = fig.xs[0], fig.xs[-1]
    for system in fig.systems:
        # movement approximately flat across strides
        m_lo = fig.cell(lo, system).consumption_movement.mean
        m_hi = fig.cell(hi, system).consumption_movement.mean
        assert 0.5 < m_hi / m_lo < 2.0, (system, m_lo, m_hi)
        # idle grows with stride
        assert (fig.cell(hi, system).consumption_idle.mean
                > fig.cell(lo, system).consumption_idle.mean), system

    # DYAD idle stays far below Lustre idle at every stride
    for stride in fig.xs:
        dyad_idle = fig.cell(stride, "dyad").consumption_idle.mean
        lustre_idle = fig.cell(stride, "lustre").consumption_idle.mean
        assert lustre_idle > 10 * dyad_idle, stride

    # the overall gap widens as stride grows (Finding 5)
    assert (fig.ratio("consumption_time", "lustre", "dyad", x=hi)
            > fig.ratio("consumption_time", "lustre", "dyad", x=lo))
