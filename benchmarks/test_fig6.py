"""Fig. 6 — two-node DYAD vs Lustre (JAC).

Paper: DYAD ≈7.5× faster production, ≈6.9× faster consumer movement,
≈197.4× faster overall consumption.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig6_two_node


def test_fig6(benchmark, grid):
    fig = run_once(benchmark, fig6_two_node.run, **grid)
    print()
    print(fig.render())

    prod = fig.ratio("production_movement", "lustre", "dyad")
    move = fig.ratio("consumption_movement", "lustre", "dyad")
    total = fig.ratio("consumption_time", "lustre", "dyad")
    assert 4.0 < prod < 11.0, prod        # paper: 7.5x
    assert 2.0 < move < 10.0, move        # paper: 6.9x
    assert total > 25, total              # paper: 197.4x
    # DYAD production stays flat as pairs grow (network hop is cheap)
    first = fig.cell(fig.xs[0], "dyad").production_movement.mean
    last = fig.cell(fig.xs[-1], "dyad").production_movement.mean
    assert last / first < 1.5
