"""Fig. 12 — STMV frame-frequency scaling (strides 1/5/10/50).

Paper: DYAD production ≈2.0× faster; DYAD's movement improves up to
≈1.4× at high stride (lower contention); overall gap 13.0→192.2×,
widening with stride.
"""

from benchmarks.conftest import full_fidelity, run_once
from repro.experiments import fig12_stmv_stride


def test_fig12(benchmark, grid):
    kwargs = dict(grid)
    if not full_fidelity():
        kwargs["frames"] = 48
    fig = run_once(benchmark, fig12_stmv_stride.run, **kwargs)
    print()
    print(fig.render())

    prod = fig.ratio("production_movement", "lustre", "dyad")
    assert 1.3 < prod < 6.0, prod  # paper: 2.0x

    lo, hi = fig.xs[0], fig.xs[-1]
    # DYAD movement improves (or at least does not degrade) at high stride
    improvement = (fig.cell(lo, "dyad").consumption_movement.mean
                   / fig.cell(hi, "dyad").consumption_movement.mean)
    assert improvement >= 0.95, improvement  # paper: up to 1.4x

    # overall gap widens with stride (paper: 13.0 -> 192.2x)
    low_gap = fig.ratio("consumption_time", "lustre", "dyad", x=lo)
    high_gap = fig.ratio("consumption_time", "lustre", "dyad", x=hi)
    assert high_gap > low_gap > 1.0, (low_gap, high_gap)
    assert high_gap > 10, high_gap
