"""T1/T2/Fig3 — the model catalogue tables (exact reproduction checks)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import tables
from repro.md.models import JAC, MODELS, STMV
from repro.units import KiB, MiB


def test_table1(benchmark):
    result = run_once(benchmark, tables.run)
    rows = result.table1
    assert [r[0] for r in rows] == ["JAC", "ApoA1", "F1 ATPase", "STMV"]
    assert rows[0][2] == "644.21 KiB"
    assert rows[1][2] == "2.46 MiB"
    assert rows[2][2] == "8.75 MiB"
    assert rows[3][2] == "28.48 MiB"
    assert rows[0][3] == "1072.92"


def test_table2(benchmark):
    result = run_once(benchmark, tables.run)
    rows = result.table2
    assert [r[3] for r in rows] == ["880", "294", "92", "28"]
    assert [r[2] for r in rows] == ["0.93", "2.79", "8.64", "29.29"]


def test_fig3(benchmark):
    result = run_once(benchmark, tables.run)
    # codec frame sizes deviate from the paper's by < 0.2% for all models
    for row in result.fig3:
        assert float(row[-1].rstrip("%")) < 0.2
    # and the headline 45.3x data ratio holds
    assert STMV.frame_bytes / JAC.frame_bytes == pytest.approx(45.3, abs=0.1)
