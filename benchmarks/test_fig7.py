"""Fig. 7 — multi-node scaling to 64 nodes / 256 pairs (JAC).

Paper: production flat with ensemble size for both; DYAD ≈5.3× (prod) /
≈5.8× (cons movement) / ≈192× (overall) faster than Lustre.
"""

from benchmarks.conftest import full_fidelity, run_once
from repro.experiments import fig7_multi_node


def test_fig7(benchmark, grid):
    kwargs = dict(grid)
    if not full_fidelity():
        kwargs["frames"] = 48  # 256-pair runs dominate; trim frames a bit
    fig = run_once(benchmark, fig7_multi_node.run, **kwargs)
    print()
    print(fig.render())

    prod = fig.ratio("production_movement", "lustre", "dyad")
    move = fig.ratio("consumption_movement", "lustre", "dyad")
    total = fig.ratio("consumption_time", "lustre", "dyad")
    assert 3.5 < prod < 10.0, prod   # paper: 5.3x
    assert 2.0 < move < 10.0, move   # paper: 5.8x
    assert total > 20, total         # paper: 192x
    # production stable across the whole ensemble range for both systems
    for system in fig.systems:
        values = [fig.cell(x, system).production_movement.mean for x in fig.xs]
        assert max(values) / min(values) < 1.6, (system, values)
