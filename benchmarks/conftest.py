"""Shared benchmark configuration.

Every figure benchmark runs its experiment **once** per benchmark round
(the experiments are internally repeated/aggregated already) and then
asserts the paper's qualitative shape on the result, so a benchmark run
doubles as the reproduction's acceptance test.

Grid sizes default to a reduced-but-faithful configuration so the full
benchmark suite completes in a few minutes; set ``REPRO_BENCH_FULL=1``
to run the paper's full grids (10 runs × 128 frames, 256 pairs).
"""

from __future__ import annotations

import os

import pytest


def full_fidelity() -> bool:
    """True when the paper's full grids were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def grid():
    """Benchmark grid parameters (runs, frames)."""
    if full_fidelity():
        return {"runs": 10, "frames": 128}
    return {"runs": 2, "frames": 64}


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
