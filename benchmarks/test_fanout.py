"""Fan-out extension benchmark (1 producer → k consumers).

Not a paper figure — quantifies DYAD's staging-cache advantage for the
"more diverse workflows" the paper's future work names. Shape asserted:
DYAD's transfers grow sublinearly with fan-out (cache hits absorb the
extra consumers) while Lustre's cold reads grow linearly, so DYAD's
per-consumer advantage widens.
"""

from benchmarks.conftest import run_once
from repro.experiments import extension_fanout


def test_fanout(benchmark, grid):
    result = run_once(benchmark, extension_fanout.run,
                      runs=grid["runs"], frames=min(grid["frames"], 32))
    print()
    print(result.render())

    fanouts = sorted(result.grid["dyad"])
    lo, hi = fanouts[0], fanouts[-1]
    dyad, lustre = result.grid["dyad"], result.grid["lustre"]

    # lustre reads scale linearly with consumers; dyad transfers do not
    assert lustre[hi].transfers == (hi // lo) * lustre[lo].transfers
    assert dyad[hi].transfers < 0.5 * lustre[hi].transfers
    assert dyad[hi].cache_hits > 0

    # per-consumer advantage widens with fan-out
    def ratio(f):
        return (lustre[f].consumption_movement
                / dyad[f].consumption_movement)

    assert ratio(hi) > ratio(lo)
