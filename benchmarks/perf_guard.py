"""CI perf-guard: fail on a >20% contended-kernel throughput regression.

Run after ``benchmarks/test_campaign.py`` has written
``BENCH_campaign.json``::

    python benchmarks/perf_guard.py

Compares the measured ``kernel.contended_events_per_sec`` against
``benchmarks/baseline_campaign.json`` and exits non-zero when the
measured rate falls below ``(1 - TOLERANCE)`` of the baseline. The
tolerance absorbs run-to-run noise on shared CI runners; a genuine
kernel regression (the naive channel coming back, a hot-path
deoptimization) loses far more than 20%.
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Allowed fractional shortfall vs the recorded baseline.
TOLERANCE = 0.20


def check(bench_path: pathlib.Path, baseline_path: pathlib.Path,
          tolerance: float = TOLERANCE) -> int:
    """Return 0 when within budget, 1 on regression. Prints a verdict."""
    bench = json.loads(bench_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    measured = bench["kernel"]["contended_events_per_sec"]
    recorded = baseline["contended_events_per_sec"]
    floor = (1.0 - tolerance) * recorded
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"perf-guard [{verdict}]: contended_events_per_sec = "
        f"{measured:,.0f} (baseline {recorded:,.0f}, "
        f"floor {floor:,.0f} = baseline - {tolerance:.0%})"
    )
    if measured < floor:
        print(
            "perf-guard: the contended kernel benchmark regressed more "
            "than the tolerated noise band. If the slowdown is intended, "
            "refresh benchmarks/baseline_campaign.json in the same PR "
            "and explain why in docs/performance.md."
        )
        return 1
    return 0


def main(argv: list | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    bench = pathlib.Path(argv[0]) if argv else ROOT / "BENCH_campaign.json"
    baseline = (pathlib.Path(argv[1]) if len(argv) > 1
                else ROOT / "benchmarks" / "baseline_campaign.json")
    if not bench.exists():
        print(f"perf-guard: {bench} not found — run "
              "`python -m pytest benchmarks/test_campaign.py` first")
        return 2
    return check(bench, baseline)


if __name__ == "__main__":
    sys.exit(main())
