"""CI perf-guard: fail on kernel or fluid-tier performance regressions.

Run after the benchmark suites have written their payloads::

    python -m pytest benchmarks/test_campaign.py   # -> BENCH_campaign.json
    python -m pytest benchmarks/test_fluid.py      # -> BENCH_fluid.json
    python benchmarks/perf_guard.py

Two gates:

- ``kernel``: the measured ``kernel.contended_events_per_sec`` in
  ``BENCH_campaign.json`` must stay within ``TOLERANCE`` of
  ``benchmarks/baseline_campaign.json``. The tolerance absorbs
  run-to-run noise on shared CI runners; a genuine kernel regression
  (the naive channel coming back, a hot-path deoptimization) loses far
  more than 20%.
- ``fluid``: when ``BENCH_fluid.json`` exists (the fluid-differential CI
  job produces it; the quick-bench job does not), the fluid tier's
  contended-workload speedup over the exact tier must clear the floor in
  ``benchmarks/baseline_fluid.json`` — a same-machine wall-time ratio,
  immune to box noise — and the million-flow admission throughput must
  stay within ``FLUID_TOLERANCE`` of its recorded baseline.

Missing files exit 2 with instructions; missing keys (a bench/baseline
schema drift) exit 2 with the offending dotted key named instead of a
bare ``KeyError``. Regressions exit 1.
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Allowed fractional shortfall vs the recorded kernel baseline.
TOLERANCE = 0.20
#: Allowed fractional shortfall vs the recorded million-flow throughput
#: (absolute flows/sec varies more across runner generations than the
#: kernel events/sec number does, hence the wider band).
FLUID_TOLERANCE = 0.50


class MissingKey(KeyError):
    """A payload lacks an expected key; carries the dotted path."""

    def __init__(self, dotted: str, path: pathlib.Path) -> None:
        super().__init__(dotted)
        self.dotted = dotted
        self.path = path

    def __str__(self) -> str:
        return (
            f"perf-guard: {self.path} has no key {self.dotted!r} — the "
            "benchmark payload and the guard disagree on schema. "
            "Re-run the benchmark suite that writes this file; if its "
            "schema changed intentionally, update benchmarks/perf_guard.py "
            "and the recorded baseline in the same PR."
        )


def _get(payload: dict, dotted: str, path: pathlib.Path):
    """Fetch a dotted key from nested dicts; raise MissingKey, not KeyError."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise MissingKey(dotted, path)
        node = node[part]
    return node


def check_kernel(bench_path: pathlib.Path, baseline_path: pathlib.Path,
                 tolerance: float = TOLERANCE) -> int:
    """Contended-kernel throughput gate. 0 within budget, 1 on regression."""
    bench = json.loads(bench_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    measured = _get(bench, "kernel.contended_events_per_sec", bench_path)
    recorded = _get(baseline, "contended_events_per_sec", baseline_path)
    floor = (1.0 - tolerance) * recorded
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"perf-guard [{verdict}]: contended_events_per_sec = "
        f"{measured:,.0f} (baseline {recorded:,.0f}, "
        f"floor {floor:,.0f} = baseline - {tolerance:.0%})"
    )
    if measured < floor:
        print(
            "perf-guard: the contended kernel benchmark regressed more "
            "than the tolerated noise band. If the slowdown is intended, "
            "refresh benchmarks/baseline_campaign.json in the same PR "
            "and explain why in docs/performance.md."
        )
        return 1
    return 0


def check_fluid(bench_path: pathlib.Path, baseline_path: pathlib.Path,
                tolerance: float = FLUID_TOLERANCE) -> int:
    """Fluid-tier gate: contended speedup floor + flow throughput floor."""
    bench = json.loads(bench_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    status = 0

    speedup = _get(bench, "contended.speedup_fluid_vs_exact", bench_path)
    floor = _get(baseline, "contended_speedup_floor", baseline_path)
    verdict = "OK" if speedup >= floor else "REGRESSION"
    print(
        f"perf-guard [{verdict}]: fluid contended speedup = "
        f"{speedup:.2f}x over exact (floor {floor:.1f}x; same-machine "
        "ratio, no noise tolerance)"
    )
    if speedup < floor:
        print(
            "perf-guard: the fluid tier no longer clears its contended-"
            "workload speedup floor. This ratio is measured back-to-back "
            "on one machine, so it is a real regression in the flow-level "
            "engine (or an exact-tier speedup worth recording), not noise."
        )
        status = 1

    measured = _get(bench, "million_flows.flows_per_sec", bench_path)
    recorded = _get(baseline, "million_flows_per_sec", baseline_path)
    floor = (1.0 - tolerance) * recorded
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"perf-guard [{verdict}]: million-flow throughput = "
        f"{measured:,.0f} flows/s (baseline {recorded:,.0f}, "
        f"floor {floor:,.0f} = baseline - {tolerance:.0%})"
    )
    if measured < floor:
        print(
            "perf-guard: fluid-engine flow admission throughput regressed "
            "more than the tolerated noise band. If the slowdown is "
            "intended, refresh benchmarks/baseline_fluid.json in the same "
            "PR and explain why in docs/performance.md."
        )
        status = 1
    return status


def main(argv: list | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    bench = pathlib.Path(argv[0]) if argv else ROOT / "BENCH_campaign.json"
    baseline = (pathlib.Path(argv[1]) if len(argv) > 1
                else ROOT / "benchmarks" / "baseline_campaign.json")
    if not bench.exists():
        print(f"perf-guard: {bench} not found — run "
              "`python -m pytest benchmarks/test_campaign.py` first")
        return 2
    try:
        status = check_kernel(bench, baseline)
        fluid_bench = ROOT / "BENCH_fluid.json"
        if fluid_bench.exists():
            fluid_status = check_fluid(
                fluid_bench, ROOT / "benchmarks" / "baseline_fluid.json"
            )
            status = status or fluid_status
        else:
            print(
                "perf-guard: BENCH_fluid.json not present — skipping the "
                "fluid-tier gate (run `python -m pytest "
                "benchmarks/test_fluid.py` to produce it)"
            )
    except MissingKey as exc:
        print(exc)
        return 2
    return status


if __name__ == "__main__":
    sys.exit(main())
