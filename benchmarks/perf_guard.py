"""CI perf-guard: fail on kernel or fluid-tier performance regressions.

Run after the benchmark suites have written their payloads::

    python -m pytest benchmarks/test_campaign.py   # -> BENCH_campaign.json
    python -m pytest benchmarks/test_fluid.py      # -> BENCH_fluid.json
    python benchmarks/perf_guard.py

Two gates:

- ``kernel``: the measured ``kernel.contended_events_per_sec`` in
  ``BENCH_campaign.json`` must stay within ``TOLERANCE`` of
  ``benchmarks/baseline_campaign.json``. The tolerance absorbs
  run-to-run noise on shared CI runners; a genuine kernel regression
  (the naive channel coming back, a hot-path deoptimization) loses far
  more than 20%.
- ``fluid``: when ``BENCH_fluid.json`` exists (the fluid-differential CI
  job produces it; the quick-bench job does not), the fluid tier's
  contended-workload speedup over the exact tier must clear the floor in
  ``benchmarks/baseline_fluid.json`` — a same-machine wall-time ratio,
  immune to box noise — and the million-flow admission throughput must
  stay within ``FLUID_TOLERANCE`` of its recorded baseline.
- ``service``: when ``BENCH_service.json`` exists (the service-smoke CI
  job produces it via ``python -m repro.service smoke``), the serving
  hot path is gated the same two ways. Same-run ratios with **no**
  noise tolerance: group-commit amortization (journal records per
  fsync — the signature of the batched journal; a regression to
  one-fsync-per-event reads ~1.0) and the result-store LRU hit ratio.
  Absolute numbers against ``benchmarks/baseline_service.json`` with a
  tolerance band: warm sustained submit throughput and chaos-smoke p99
  latency, each also printed as the implied multiple over the recorded
  pre-overhaul (PR 7) reference. ``--service`` as the first argument
  runs this gate alone (the service-smoke job has no campaign bench).

Missing files exit 2 with instructions; missing keys (a bench/baseline
schema drift) exit 2 with the offending dotted key named instead of a
bare ``KeyError``. Regressions exit 1.
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Allowed fractional shortfall vs the recorded kernel baseline.
TOLERANCE = 0.20
#: Allowed fractional shortfall vs the recorded million-flow throughput
#: (absolute flows/sec varies more across runner generations than the
#: kernel events/sec number does, hence the wider band).
FLUID_TOLERANCE = 0.50
#: Allowed fractional shortfall vs the recorded sustained service
#: throughput (an asyncio loop juggling 200 live connections is very
#: sensitive to runner generation and neighbors).
SERVICE_TOLERANCE = 0.50
#: Allowed fractional overshoot of the recorded chaos-smoke p99 — the
#: single noisiest number in the repo: it is the latency of the handful
#: of clients that ride the SIGKILL, so scheduler jitter on a loaded
#: runner lands on it directly.
SERVICE_P99_TOLERANCE = 0.75


class MissingKey(KeyError):
    """A payload lacks an expected key; carries the dotted path."""

    def __init__(self, dotted: str, path: pathlib.Path) -> None:
        super().__init__(dotted)
        self.dotted = dotted
        self.path = path

    def __str__(self) -> str:
        return (
            f"perf-guard: {self.path} has no key {self.dotted!r} — the "
            "benchmark payload and the guard disagree on schema. "
            "Re-run the benchmark suite that writes this file; if its "
            "schema changed intentionally, update benchmarks/perf_guard.py "
            "and the recorded baseline in the same PR."
        )


def _get(payload: dict, dotted: str, path: pathlib.Path):
    """Fetch a dotted key from nested dicts; raise MissingKey, not KeyError."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise MissingKey(dotted, path)
        node = node[part]
    return node


def check_kernel(bench_path: pathlib.Path, baseline_path: pathlib.Path,
                 tolerance: float = TOLERANCE) -> int:
    """Contended-kernel throughput gate. 0 within budget, 1 on regression."""
    bench = json.loads(bench_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    measured = _get(bench, "kernel.contended_events_per_sec", bench_path)
    recorded = _get(baseline, "contended_events_per_sec", baseline_path)
    floor = (1.0 - tolerance) * recorded
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"perf-guard [{verdict}]: contended_events_per_sec = "
        f"{measured:,.0f} (baseline {recorded:,.0f}, "
        f"floor {floor:,.0f} = baseline - {tolerance:.0%})"
    )
    if measured < floor:
        print(
            "perf-guard: the contended kernel benchmark regressed more "
            "than the tolerated noise band. If the slowdown is intended, "
            "refresh benchmarks/baseline_campaign.json in the same PR "
            "and explain why in docs/performance.md."
        )
        return 1
    return 0


def check_fluid(bench_path: pathlib.Path, baseline_path: pathlib.Path,
                tolerance: float = FLUID_TOLERANCE) -> int:
    """Fluid-tier gate: contended speedup floor + flow throughput floor."""
    bench = json.loads(bench_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    status = 0

    speedup = _get(bench, "contended.speedup_fluid_vs_exact", bench_path)
    floor = _get(baseline, "contended_speedup_floor", baseline_path)
    verdict = "OK" if speedup >= floor else "REGRESSION"
    print(
        f"perf-guard [{verdict}]: fluid contended speedup = "
        f"{speedup:.2f}x over exact (floor {floor:.1f}x; same-machine "
        "ratio, no noise tolerance)"
    )
    if speedup < floor:
        print(
            "perf-guard: the fluid tier no longer clears its contended-"
            "workload speedup floor. This ratio is measured back-to-back "
            "on one machine, so it is a real regression in the flow-level "
            "engine (or an exact-tier speedup worth recording), not noise."
        )
        status = 1

    measured = _get(bench, "million_flows.flows_per_sec", bench_path)
    recorded = _get(baseline, "million_flows_per_sec", baseline_path)
    floor = (1.0 - tolerance) * recorded
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"perf-guard [{verdict}]: million-flow throughput = "
        f"{measured:,.0f} flows/s (baseline {recorded:,.0f}, "
        f"floor {floor:,.0f} = baseline - {tolerance:.0%})"
    )
    if measured < floor:
        print(
            "perf-guard: fluid-engine flow admission throughput regressed "
            "more than the tolerated noise band. If the slowdown is "
            "intended, refresh benchmarks/baseline_fluid.json in the same "
            "PR and explain why in docs/performance.md."
        )
        status = 1
    return status


def check_service(bench_path: pathlib.Path, baseline_path: pathlib.Path,
                  tolerance: float = SERVICE_TOLERANCE,
                  p99_tolerance: float = SERVICE_P99_TOLERANCE) -> int:
    """Serving hot-path gate: amortization/LRU ratios + perf floors."""
    bench = json.loads(bench_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    status = 0

    # Same-run ratios first: machine-noise-immune, so no tolerance.
    records = _get(bench, "server_stats.journal.records", bench_path)
    syncs = _get(bench, "server_stats.journal.syncs", bench_path)
    amortization = records / max(syncs, 1)
    floor = _get(baseline, "journal_amortization_floor", baseline_path)
    verdict = "OK" if amortization >= floor else "REGRESSION"
    print(
        f"perf-guard [{verdict}]: journal amortization = "
        f"{amortization:.1f} events/fsync (floor {floor:.0f}; same-run "
        "ratio, no noise tolerance — per-event fsync reads ~1.0)"
    )
    if amortization < floor:
        print(
            "perf-guard: the journal is syncing nearly per event again — "
            "the group-commit window collapsed (committer not running, "
            "window zeroed, or barriers forcing solo commits). This "
            "ratio does not depend on machine speed; it is a real "
            "serving-hot-path regression."
        )
        status = 1

    hits = _get(bench, "server_stats.store.lru_hits", bench_path)
    misses = _get(bench, "server_stats.store.lru_misses", bench_path)
    hit_ratio = hits / max(hits + misses, 1)
    floor = _get(baseline, "lru_hit_ratio_floor", baseline_path)
    verdict = "OK" if hit_ratio >= floor else "REGRESSION"
    print(
        f"perf-guard [{verdict}]: result-store LRU hit ratio = "
        f"{hit_ratio:.2f} (floor {floor:.2f}; same-run ratio, no noise "
        "tolerance)"
    )
    if hit_ratio < floor:
        print(
            "perf-guard: the smoke workload's repeated cells are missing "
            "the in-memory result index and falling through to segment "
            "reads — check the LRU capacity and the store-hit fast path."
        )
        status = 1

    # Absolute numbers second: recorded on the authoring box, so a
    # tolerance band absorbs runner-generation differences.
    measured = _get(bench, "sustained.throughput", bench_path)
    recorded = _get(baseline, "sustained_jobs_per_sec", baseline_path)
    pr7 = _get(baseline, "pr7_reference.sustained_jobs_per_sec",
               baseline_path)
    floor = (1.0 - tolerance) * recorded
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"perf-guard [{verdict}]: sustained submit throughput = "
        f"{measured:,.0f} jobs/s, {measured / pr7:.1f}x the pre-overhaul "
        f"reference of {pr7:,.0f} (baseline {recorded:,.0f}, floor "
        f"{floor:,.0f} = baseline - {tolerance:.0%})"
    )
    if measured < floor:
        print(
            "perf-guard: the warm serving hot path (batched admission + "
            "group commit + LRU hits) regressed more than the tolerated "
            "noise band. If the slowdown is intended, refresh "
            "benchmarks/baseline_service.json in the same PR and explain "
            "why in docs/service.md."
        )
        status = 1

    measured = _get(bench, "latency_p99", bench_path)
    recorded = _get(baseline, "smoke_p99_seconds", baseline_path)
    pr7 = _get(baseline, "pr7_reference.smoke_p99_seconds", baseline_path)
    ceiling = (1.0 + p99_tolerance) * recorded
    verdict = "OK" if measured <= ceiling else "REGRESSION"
    print(
        f"perf-guard [{verdict}]: chaos-smoke p99 latency = "
        f"{measured:.2f}s, {pr7 / measured:.1f}x under the pre-overhaul "
        f"reference of {pr7:.2f}s (baseline {recorded:.2f}s, ceiling "
        f"{ceiling:.2f}s = baseline + {p99_tolerance:.0%})"
    )
    if measured > ceiling:
        print(
            "perf-guard: the kill-riding clients' recovery latency blew "
            "past the tolerated band — check the restart path (journal "
            "replay, pool prewarm, dispatch-time store check) before "
            "refreshing the baseline."
        )
        status = 1
    return status


def main(argv: list | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--service":
        # service-smoke CI job: only BENCH_service.json exists there
        bench = (pathlib.Path(argv[1]) if len(argv) > 1
                 else ROOT / "BENCH_service.json")
        baseline = (pathlib.Path(argv[2]) if len(argv) > 2
                    else ROOT / "benchmarks" / "baseline_service.json")
        if not bench.exists():
            print(f"perf-guard: {bench} not found — run "
                  "`python -m repro.service smoke --output "
                  "BENCH_service.json` first")
            return 2
        try:
            return check_service(bench, baseline)
        except MissingKey as exc:
            print(exc)
            return 2
    bench = pathlib.Path(argv[0]) if argv else ROOT / "BENCH_campaign.json"
    baseline = (pathlib.Path(argv[1]) if len(argv) > 1
                else ROOT / "benchmarks" / "baseline_campaign.json")
    if not bench.exists():
        print(f"perf-guard: {bench} not found — run "
              "`python -m pytest benchmarks/test_campaign.py` first")
        return 2
    try:
        status = check_kernel(bench, baseline)
        fluid_bench = ROOT / "BENCH_fluid.json"
        if fluid_bench.exists():
            fluid_status = check_fluid(
                fluid_bench, ROOT / "benchmarks" / "baseline_fluid.json"
            )
            status = status or fluid_status
        else:
            print(
                "perf-guard: BENCH_fluid.json not present — skipping the "
                "fluid-tier gate (run `python -m pytest "
                "benchmarks/test_fluid.py` to produce it)"
            )
        service_bench = ROOT / "BENCH_service.json"
        if service_bench.exists():
            service_status = check_service(
                service_bench, ROOT / "benchmarks" / "baseline_service.json"
            )
            status = status or service_status
        else:
            print(
                "perf-guard: BENCH_service.json not present — skipping "
                "the service gate (run `python -m repro.service smoke` "
                "to produce it)"
            )
    except MissingKey as exc:
        print(exc)
        return 2
    return status


if __name__ == "__main__":
    sys.exit(main())
