"""Ablation benchmark: the contribution of each DYAD design choice.

Not a paper figure — the DESIGN.md-promised ablation study quantifying
the mechanisms the paper credits in its Fig. 2 (RDMA, consumer staging,
no per-frame durability tax) against the synchronization alternatives the
paper describes for traditional systems (coarse barrier vs Pegasus-style
polling).
"""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablations(benchmark, grid):
    result = run_once(benchmark, ablations.run,
                      runs=grid["runs"], frames=min(grid["frames"], 48))
    print()
    print(result.render())

    for model in ("JAC", "STMV"):
        base = result.cell(model, "dyad")
        # RDMA buys movement time, more for bigger frames
        assert (result.cell(model, "dyad-eager").consumption_movement.mean
                > base.consumption_movement.mean)
        # consumer staging costs movement (its value is re-read locality,
        # which this single-read workload does not exercise)
        assert (result.cell(model, "dyad-nocache").consumption_movement.mean
                < base.consumption_movement.mean)
        # per-frame durability costs production
        assert (result.cell(model, "dyad-fsync").production_time
                > base.production_time)
        # polling sync: better than coarse, still far behind DYAD
        coarse = result.cell(model, "lustre-coarse")
        polling = result.cell(model, "lustre-polling")
        assert polling.consumption_idle.mean < coarse.consumption_idle.mean
        assert base.consumption_time < polling.consumption_time
