"""Fidelity-tier benchmarks: contended speedup, 10k nodes, million flows.

Tracks the performance claims of the ``fluid``/``hybrid`` tiers and
emits a machine-readable ``BENCH_fluid.json`` at the repository root:

- ``contended``: wall time of a 64-puller chunked-RDMA fan-in (the
  arrival pattern that makes the exact tier's event count explode: 64
  pulls x 8 concurrent chunks x 3 channel memberships per epoch) on all
  three tiers, with the fluid-vs-exact speedup measured on the same
  machine in the same minute — immune to box noise — and the tiers'
  makespan agreement asserted within the documented 1e-3 tolerance;
- ``fanout_10k``: a 10,000-node fan-out campaign on the fluid tier
  (corona() caps at 121 real Corona nodes; this builds the cluster
  directly), checked against the analytic egress-bottleneck makespan;
- ``million_flows``: a synthetic 1e6-flow workload through one
  :class:`~repro.sim.fluid.FluidNetwork`, reporting sustained flows/sec
  and the kernel-health counters.

Like ``test_campaign.py``, thresholds are asserted only under
``REPRO_BENCH_STRICT=1``; CI's cross-machine gate is
``benchmarks/perf_guard.py`` against ``benchmarks/baseline_fluid.json``.
"""

import json
import os
import pathlib
import time

import pytest

from repro.cluster.topology import Cluster, ClusterConfig
from repro.dyad.rdma import RdmaTransport
from repro.sim.core import Environment, Event
from repro.sim.fluid import FluidNetwork

ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = ROOT / "benchmarks" / "baseline_fluid.json"
OUTPUT_PATH = ROOT / "BENCH_fluid.json"

STRICT = os.environ.get("REPRO_BENCH_STRICT", "0") == "1"

#: Contended-workload wall-time speedup the fluid tier must deliver over
#: the exact tier (the ISSUE's headline acceptance number).
FLUID_SPEEDUP_TARGET = 10.0
#: Tier agreement on the contended fan-in makespan.
MAKESPAN_REL_TOL = 1e-3

MIB = 1 << 20

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write whatever was measured, even if a later test fails."""
    yield
    payload = {
        "schema": 1,
        "cpu_count": os.cpu_count(),
        "python": ".".join(map(str, __import__("sys").version_info[:3])),
        "strict": STRICT,
        **RESULTS,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=1) + "\n")


# ---------------------------------------------------------------------------
# contended chunked-RDMA fan-in: exact vs hybrid vs fluid
# ---------------------------------------------------------------------------

def _fan_in(fidelity, pullers=64, frame=32 * MIB, chunk=4 * MIB, rounds=20):
    """64 nodes pulling 32 MiB frames (4 MiB chunks) from one target.

    Every round each puller issues one chunked RDMA get, so the target's
    egress channel carries up to ``pullers * frame/chunk`` concurrent
    flows on the exact tier. Returns (wall seconds, simulated makespan,
    kernel events dispatched, cluster).
    """
    cluster = Cluster(ClusterConfig(nodes=pullers + 1, fidelity=fidelity))
    env = cluster.env
    transport = RdmaTransport(cluster.fabric, chunk)
    target = cluster.node(0).node_id

    def puller(me):
        for _ in range(rounds):
            yield from transport.get(me, target, frame)

    for node in cluster.nodes[1:]:
        env.process(puller(node.node_id))
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    return wall, env.now, env._seq, cluster


def test_contended_fan_in_speedup():
    walls, makespans, events = {}, {}, {}
    for tier in ("exact", "hybrid", "fluid"):
        wall, makespan, seq, cluster = _fan_in(tier)
        walls[tier], makespans[tier], events[tier] = wall, makespan, seq
        if tier == "fluid":
            net = cluster.fluid
            fluid_counters = {
                "fluid_epochs": net.fluid_epochs,
                "rate_solves": net.rate_solves,
                "flows_admitted": net.flows_admitted,
            }
    rel_err = {
        tier: abs(makespans[tier] - makespans["exact"]) / makespans["exact"]
        for tier in ("hybrid", "fluid")
    }
    RESULTS["contended"] = {
        "pullers": 64,
        "frame_bytes": 32 * MIB,
        "chunk_bytes": 4 * MIB,
        "rounds": 20,
        "wall_seconds": {t: round(w, 4) for t, w in walls.items()},
        "kernel_events": events,
        "makespan_seconds": round(makespans["exact"], 6),
        "makespan_rel_err": {t: round(e, 9) for t, e in rel_err.items()},
        "speedup_hybrid_vs_exact": round(walls["exact"] / walls["hybrid"], 2),
        "speedup_fluid_vs_exact": round(walls["exact"] / walls["fluid"], 2),
        "speedup_target": FLUID_SPEEDUP_TARGET,
        **fluid_counters,
    }
    assert rel_err["hybrid"] <= MAKESPAN_REL_TOL
    assert rel_err["fluid"] <= MAKESPAN_REL_TOL
    # the fluid tiers must strictly shrink the event count; wall-clock
    # thresholds stay behind STRICT (shared runners are noisy)
    assert events["fluid"] < events["exact"]
    assert events["hybrid"] < events["exact"]
    if STRICT:
        assert walls["exact"] / walls["fluid"] >= FLUID_SPEEDUP_TARGET


# ---------------------------------------------------------------------------
# 10k-node fan-out campaign (fluid tier)
# ---------------------------------------------------------------------------

def test_fanout_10k_nodes():
    nodes, frame, rounds = 10_000, 1 * MIB, 2
    t0 = time.perf_counter()
    cluster = Cluster(ClusterConfig(nodes=nodes, fidelity="fluid"))
    build = time.perf_counter() - t0
    env = cluster.env
    fabric = cluster.fabric
    src = cluster.node(0).node_id

    def pusher(dst):
        for _ in range(rounds):
            yield from fabric.transfer(src, dst, frame)

    for node in cluster.nodes[1:]:
        env.process(pusher(node.node_id))
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    flows = rounds * (nodes - 1)
    # all (nodes-1) concurrent pushes bottleneck on the source egress
    analytic = flows * frame / fabric.config.link_bandwidth
    rel_err = abs(env.now - analytic) / analytic
    RESULTS["fanout_10k"] = {
        "nodes": nodes,
        "frame_bytes": frame,
        "rounds": rounds,
        "flows": flows,
        "build_seconds": round(build, 3),
        "wall_seconds": round(wall, 3),
        "flows_per_sec": round(flows / wall, 1),
        "makespan_seconds": round(env.now, 6),
        "analytic_makespan_seconds": round(analytic, 6),
        "makespan_rel_err_vs_analytic": round(rel_err, 9),
        "fluid_epochs": cluster.fluid.fluid_epochs,
        "rate_solves": cluster.fluid.rate_solves,
    }
    assert cluster.fluid.flows_completed == flows
    # folded latencies add microseconds to a multi-second makespan
    assert rel_err < 1e-2
    if STRICT:
        assert wall < 60.0


# ---------------------------------------------------------------------------
# million-flow synthetic workload (raw FluidNetwork)
# ---------------------------------------------------------------------------

def test_million_flows():
    total, burst, npaths = 1_000_000, 20_000, 64
    env = Environment()
    net = FluidNetwork(env)
    # heterogeneous paths: two bandwidth tiers so every burst drains in
    # several distinct departure epochs instead of one degenerate pop
    paths = [(net.link(4e9 if i % 2 else 2e9), net.link(4e9))
             for i in range(npaths)]
    sizes = (1e5, 1e6, 5e6, 2e7)

    def driver():
        issued = 0
        round_no = 0
        while issued < total:
            b = min(burst, total - issued)
            issued += b
            gate = Event(env)
            left = [b]

            def _done(_ev, gate=gate, left=left):
                left[0] -= 1
                if not left[0]:
                    gate.succeed(None)

            size = sizes[round_no % len(sizes)]
            round_no += 1
            for j in range(b):
                eg, ing = paths[j % npaths]
                net.transfer(size, (eg, ing)).callbacks.append(_done)
            yield gate

    env.process(driver())
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    RESULTS["million_flows"] = {
        "flows": total,
        "burst": burst,
        "paths": npaths,
        "wall_seconds": round(wall, 3),
        "flows_per_sec": round(total / wall, 1),
        "sim_seconds": round(env.now, 3),
        "fluid_epochs": net.fluid_epochs,
        "rate_solves": net.rate_solves,
    }
    assert net.flows_completed == total
    assert net.active_flows == 0
    if STRICT:
        baseline = json.loads(BASELINE_PATH.read_text())
        floor = 0.5 * baseline["million_flows_per_sec"]
        assert total / wall >= floor
