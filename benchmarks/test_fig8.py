"""Fig. 8 — molecular model size scaling (DYAD vs Lustre, 16 pairs).

Paper: movement grows with model size for both; DYAD wins production
2.1-6.3×; the consumption-movement gap *widens* with size (1.6→6.0×);
overall 121-334× (idle-dominated for Lustre at every size).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig8_model_scaling


def test_fig8(benchmark, grid):
    fig = run_once(benchmark, fig8_model_scaling.run, **grid)
    print()
    print(fig.render())

    order = fig.xs  # JAC .. STMV by size
    # movement grows monotonically with model size for both systems
    for system in fig.systems:
        moves = [fig.cell(x, system).consumption_movement.mean for x in order]
        assert moves == sorted(moves), (system, moves)
        prods = [fig.cell(x, system).production_movement.mean for x in order]
        assert prods == sorted(prods), (system, prods)

    # DYAD faster at production for every model, within a sane band
    for x in order:
        ratio = fig.ratio("production_movement", "lustre", "dyad", x=x)
        assert 1.5 < ratio < 12.0, (x, ratio)

    # the consumption-movement gap widens from smallest to largest model
    first_gap = fig.ratio("consumption_movement", "lustre", "dyad", x=order[0])
    last_gap = fig.ratio("consumption_movement", "lustre", "dyad", x=order[-1])
    assert last_gap > first_gap > 1.0, (first_gap, last_gap)

    # overall consumption: DYAD wins by >10x at every size (paper: 121-334x)
    for x in order:
        assert fig.ratio("consumption_time", "lustre", "dyad", x=x) > 10
