"""Unit helpers used throughout the library.

All simulation times are ``float`` **seconds** and all sizes are ``int``
**bytes**. These helpers exist so that device configurations and experiment
definitions read like the paper ("644.21 KiB", "2 GB/s", "20 us") instead of
bare magic numbers.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Sizes (bytes)
# ---------------------------------------------------------------------------

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB


def kib(n: float) -> int:
    """Return ``n`` KiB as an integer byte count (rounded)."""
    return int(round(n * KiB))


def mib(n: float) -> int:
    """Return ``n`` MiB as an integer byte count (rounded)."""
    return int(round(n * MiB))


def gib(n: float) -> int:
    """Return ``n`` GiB as an integer byte count (rounded)."""
    return int(round(n * GiB))


# ---------------------------------------------------------------------------
# Times (seconds)
# ---------------------------------------------------------------------------

USEC: float = 1e-6
MSEC: float = 1e-3
SEC: float = 1.0
MINUTE: float = 60.0


def usec(n: float) -> float:
    """Return ``n`` microseconds in seconds."""
    return n * USEC


def msec(n: float) -> float:
    """Return ``n`` milliseconds in seconds."""
    return n * MSEC


def to_usec(seconds: float) -> float:
    """Convert seconds to microseconds (for reporting, cf. Fig. 5a/7a)."""
    return seconds / USEC


def to_msec(seconds: float) -> float:
    """Convert seconds to milliseconds (for reporting, cf. Fig. 5b/8)."""
    return seconds / MSEC


# ---------------------------------------------------------------------------
# Bandwidth (bytes / second)
# ---------------------------------------------------------------------------


def gb_per_s(n: float) -> float:
    """Decimal gigabytes per second, as disk/NIC vendors quote them."""
    return n * GB


def mb_per_s(n: float) -> float:
    """Decimal megabytes per second."""
    return n * MB


def transfer_time(nbytes: int, bandwidth: float, latency: float = 0.0) -> float:
    """Ideal time to move ``nbytes`` over a ``bandwidth`` B/s channel.

    ``latency`` is a fixed per-operation setup cost added on top. Raises
    ``ZeroDivisionError`` if bandwidth is zero; callers validate configs via
    :mod:`repro.errors.ConfigError` before getting here.
    """
    return latency + nbytes / bandwidth


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count, binary units (e.g. ``'28.48 MiB'``)."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration with an auto-selected unit."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds / USEC:.2f} us"
    if seconds < 1.0:
        return f"{seconds / MSEC:.2f} ms"
    if seconds < MINUTE:
        return f"{seconds:.3f} s"
    return f"{seconds / MINUTE:.2f} min"
