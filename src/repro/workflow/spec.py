"""Workflow specification: workload, system, and placement.

Encodes the paper's experimental parameters (Section IV-C):

- equal numbers of producer and consumer processes, linked pairwise;
- at most 8 processes per node (one per GPU on Corona);
- single-node placement (DYAD or XFS) collocates each pair; split
  placement (DYAD or Lustre) puts all producers on one half of the nodes
  and all consumers on the other;
- each producer runs ``frames × stride`` MD steps and writes ``frames``
  frames; each consumer runs ``frames`` iterations of read + analytics
  sleep, with the sleep matched to the frame-generation period.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import WorkflowError
from repro.md.models import JAC, MolecularModel

__all__ = [
    "System", "Placement", "SyncMode", "Topology", "WorkflowSpec",
    "PROCS_PER_NODE",
]

#: The paper's placement cap: 8 GPUs per Corona node.
PROCS_PER_NODE = 8


class System(enum.Enum):
    """Data-management system under test."""

    DYAD = "dyad"
    XFS = "xfs"
    LUSTRE = "lustre"


class Placement(enum.Enum):
    """Where producers and consumers run."""

    SINGLE_NODE = "single-node"   # every pair collocated on node 0
    SPLIT = "split"               # producers on one half, consumers on the other


class Topology(enum.Enum):
    """Shape of the producer/consumer dependency graph.

    The paper measures 1:1 links only; the other shapes cover the
    N-producer/M-consumer task-parallel analysis workloads of the
    related work (task-parallel trajectory analysis):

    - ``PAIRWISE`` — the paper's shape: ``pairs`` independent 1:1 links,
      each producer feeding exactly one consumer.
    - ``FANOUT`` — one producer feeds ``consumers`` independent analytics
      consumers; every consumer reads every frame (monitoring +
      reduction + visualization off one simulation).
    - ``FANIN`` — ``producers`` simulations feed one reduce/aggregate
      consumer that folds frame *k* of every input stream before its
      per-frame analytics step.
    - ``POOL`` — a work-stealing consumer pool: ``producers`` streams
      publish per-frame tasks into a shared frame-major queue that
      ``consumers`` workers claim greedily (each frame analyzed exactly
      once by whichever worker gets there first).
    """

    PAIRWISE = "pairwise"
    FANOUT = "fanout"
    FANIN = "fanin"
    POOL = "pool"


class SyncMode(enum.Enum):
    """Synchronization pattern linking each producer/consumer pair.

    The paper (Section III) lists the manual mechanisms workflows use when
    the storage system provides none: MPI primitives / coarse barriers,
    and file-system polling in workflow managers like Pegasus. DYAD's
    automatic synchronization ignores those two. The three *streaming*
    modes extend the comparison beyond the paper (see
    ``docs/streaming.md``): per-frame pipelines with a bounded in-flight
    window and credit-based backpressure, applicable to every system
    including DYAD.
    """

    COARSE = "coarse"      # consumer phase starts after the producer phase
    POLLING = "polling"    # consumer polls stat() per frame (Pegasus-style)
    WINDOWED = "windowed"  # ADIOS2-SST-style bounded window, credit backpressure
    PUBSUB = "pubsub"      # per-frame pub/sub over the KVS watch machinery
    NBUFFER = "nbuffer"    # double buffering: the W=2 windowed special case

    @property
    def is_streaming(self) -> bool:
        """True for the per-frame pipelined (windowed family) modes."""
        return self in (SyncMode.WINDOWED, SyncMode.PUBSUB, SyncMode.NBUFFER)


@dataclass(frozen=True)
class WorkflowSpec:
    """One workflow configuration (= one bar group in a paper figure)."""

    system: System
    model: MolecularModel = JAC
    stride: int = 880
    frames: int = 128
    pairs: int = 1
    placement: Placement = Placement.SINGLE_NODE
    sync_mode: SyncMode = SyncMode.COARSE
    poll_interval: float = 0.25   # seconds between stat() polls (POLLING)
    window: int = 2               # in-flight frames W (streaming modes only)
    topology: Topology = Topology.PAIRWISE
    producers: int = 0            # producer count (non-pairwise topologies)
    consumers: int = 0            # consumer count (non-pairwise topologies)

    def __repr__(self) -> str:
        # Hand-rolled to stay byte-identical to the pre-streaming
        # dataclass repr for pre-streaming specs: the repr feeds result
        # fingerprints and cache keys, so fields added after
        # ``poll_interval`` appear only when they differ from their
        # defaults (pairwise specs never print topology fields).
        base = (
            f"{self.__class__.__qualname__}(system={self.system!r}, "
            f"model={self.model!r}, stride={self.stride!r}, "
            f"frames={self.frames!r}, pairs={self.pairs!r}, "
            f"placement={self.placement!r}, sync_mode={self.sync_mode!r}, "
            f"poll_interval={self.poll_interval!r}"
        )
        if self.window != 2:
            base += f", window={self.window!r}"
        if self.topology is not Topology.PAIRWISE:
            base += (
                f", topology={self.topology!r}, "
                f"producers={self.producers!r}, "
                f"consumers={self.consumers!r}"
            )
        return base + ")"

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise WorkflowError(f"stride must be >= 1, got {self.stride}")
        if self.frames < 1:
            raise WorkflowError(f"frames must be >= 1, got {self.frames}")
        if self.pairs < 1:
            raise WorkflowError(f"pairs must be >= 1, got {self.pairs}")
        if self.system is System.XFS and self.placement is not Placement.SINGLE_NODE:
            raise WorkflowError(
                "XFS cannot move data between nodes; use single-node placement"
            )
        if self.system is System.LUSTRE and self.placement is not Placement.SPLIT:
            raise WorkflowError(
                "the Lustre configuration of the paper is distributed; "
                "use split placement"
            )
        self._init_topology()
        if (self.topology is Topology.PAIRWISE
                and self.placement is Placement.SINGLE_NODE
                and self.pairs * 2 > PROCS_PER_NODE):
            raise WorkflowError(
                f"single-node placement fits at most {PROCS_PER_NODE // 2} pairs "
                f"(8 GPUs, 2 per pair); got {self.pairs}"
            )
        if self.poll_interval <= 0:
            raise WorkflowError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        if self.system is System.DYAD and self.sync_mode is SyncMode.POLLING:
            # DYAD's KVS provides the signalling, so both manual modes
            # (coarse and polling) mean the same thing: DYAD's automatic
            # sync. Normalizing to COARSE (the default) makes the two
            # spellings alias — identical repr, hence identical cache
            # keys and fingerprints — instead of one raising and the
            # other being silently accepted.
            object.__setattr__(self, "sync_mode", SyncMode.COARSE)
        if self.window < 1:
            raise WorkflowError(f"window must be >= 1, got {self.window}")
        if self.sync_mode is SyncMode.NBUFFER and self.window != 2:
            raise WorkflowError(
                "N-buffer double buffering is the W=2 special case; "
                f"got window={self.window} (use WINDOWED for other sizes)"
            )

    def _init_topology(self) -> None:
        """Validate and normalize the topology fields.

        Pairwise specs must leave ``producers``/``consumers`` unset (0) so
        their repr stays byte-identical to pre-topology specs. Non-pairwise
        topologies fix the singular side to 1 (a fan-out has one producer,
        a fan-in one consumer) and require the plural side explicitly.
        """
        if self.producers < 0 or self.consumers < 0:
            raise WorkflowError(
                "producers/consumers must be non-negative, got "
                f"{self.producers}/{self.consumers}"
            )
        if self.topology is Topology.PAIRWISE:
            if self.producers or self.consumers:
                raise WorkflowError(
                    "pairwise topology sizes via pairs; leave "
                    "producers/consumers unset"
                )
            return
        if self.pairs != 1:
            raise WorkflowError(
                f"{self.topology.value} topology sizes via "
                f"producers/consumers; leave pairs at 1 (got {self.pairs})"
            )
        if self.topology is Topology.FANOUT:
            if self.producers == 0:
                object.__setattr__(self, "producers", 1)
            if self.producers != 1:
                raise WorkflowError(
                    f"fan-out has exactly one producer, got {self.producers}"
                )
            if self.consumers < 1:
                raise WorkflowError(
                    "fan-out needs consumers >= 1 (the M in 1->M)"
                )
        elif self.topology is Topology.FANIN:
            if self.consumers == 0:
                object.__setattr__(self, "consumers", 1)
            if self.consumers != 1:
                raise WorkflowError(
                    f"fan-in has exactly one consumer, got {self.consumers}"
                )
            if self.producers < 1:
                raise WorkflowError(
                    "fan-in needs producers >= 1 (the N in N->1)"
                )
        else:  # POOL
            if self.producers < 1 or self.consumers < 1:
                raise WorkflowError(
                    "a consumer pool needs producers >= 1 and "
                    "consumers >= 1, got "
                    f"{self.producers}/{self.consumers}"
                )
        if (self.placement is Placement.SINGLE_NODE
                and self.producers + self.consumers > PROCS_PER_NODE):
            raise WorkflowError(
                f"single-node placement fits at most {PROCS_PER_NODE} "
                f"processes (one per GPU); got "
                f"{self.producers} producer(s) + {self.consumers} "
                "consumer(s)"
            )

    # -- derived workload quantities ------------------------------------------------
    @property
    def stride_time(self) -> float:
        """Seconds of MD compute between consecutive frames."""
        return self.model.stride_time(self.stride)

    @property
    def analytics_time(self) -> float:
        """Consumer per-iteration analytics sleep (matched to frequency)."""
        return self.stride_time

    @property
    def frame_bytes(self) -> int:
        """Bytes per frame."""
        return self.model.frame_bytes

    @property
    def is_streaming(self) -> bool:
        """True when the sync mode is one of the per-frame pipelines."""
        return self.sync_mode.is_streaming

    @property
    def effective_window(self) -> int:
        """The bounded in-flight window W the streaming transport enforces."""
        return 2 if self.sync_mode is SyncMode.NBUFFER else self.window

    @property
    def total_steps(self) -> int:
        """MD steps each producer runs."""
        return self.model.steps_for_frames(self.frames, self.stride)

    # -- topology-derived process counts --------------------------------------
    @property
    def n_producers(self) -> int:
        """Producer processes the run spawns."""
        return self.pairs if self.topology is Topology.PAIRWISE else self.producers

    @property
    def n_consumers(self) -> int:
        """Consumer processes the run spawns."""
        return self.pairs if self.topology is Topology.PAIRWISE else self.consumers

    @property
    def streams(self) -> int:
        """Independent frame streams written (one per producer; fan-out's
        single producer writes stream 0 that every consumer reads)."""
        return self.pairs if self.topology is Topology.PAIRWISE else self.producers

    # -- placement ------------------------------------------------------------
    @property
    def nodes_required(self) -> int:
        """Compute nodes the ensemble needs."""
        if self.placement is Placement.SINGLE_NODE:
            return 1
        if self.topology is Topology.PAIRWISE:
            per_side = -(-self.pairs // PROCS_PER_NODE)
            return 2 * per_side
        producer_side = -(-self.producers // PROCS_PER_NODE)
        consumer_side = -(-self.consumers // PROCS_PER_NODE)
        return producer_side + consumer_side

    def placements(self) -> List[Tuple[int, int]]:
        """``(producer_node_index, consumer_node_index)`` per pair.

        Pairwise-only; topology runs place sides independently via
        :meth:`producer_nodes`/:meth:`consumer_nodes`.
        """
        if self.topology is not Topology.PAIRWISE:
            raise WorkflowError(
                f"placements() is pairwise-only; {self.topology.value} "
                "topologies use producer_nodes()/consumer_nodes()"
            )
        if self.placement is Placement.SINGLE_NODE:
            return [(0, 0) for _ in range(self.pairs)]
        per_side = self.nodes_required // 2
        out: List[Tuple[int, int]] = []
        for pair in range(self.pairs):
            producer_node = pair // PROCS_PER_NODE
            consumer_node = per_side + pair // PROCS_PER_NODE
            out.append((producer_node, consumer_node))
        return out

    def producer_nodes(self) -> List[int]:
        """Node index of each producer process (packed 8 per node).

        Works for every topology; pairwise delegates to
        :meth:`placements` so the two mappings can never drift.
        """
        if self.topology is Topology.PAIRWISE:
            return [pn for pn, _cn in self.placements()]
        if self.placement is Placement.SINGLE_NODE:
            return [0] * self.producers
        return [i // PROCS_PER_NODE for i in range(self.producers)]

    def consumer_nodes(self) -> List[int]:
        """Node index of each consumer process (packed 8 per node).

        With split placement, consumers start on the first node after the
        producer side — so a fan-out of up to 8 consumers shares one node
        (and one DYAD staging cache), the configuration that measures
        read amplification against Lustre's per-consumer cold reads.
        """
        if self.topology is Topology.PAIRWISE:
            return [cn for _pn, cn in self.placements()]
        if self.placement is Placement.SINGLE_NODE:
            return [0] * self.consumers
        producer_side = -(-self.producers // PROCS_PER_NODE)
        return [producer_side + j // PROCS_PER_NODE
                for j in range(self.consumers)]

    def describe(self) -> str:
        """One-line human description."""
        if self.topology is Topology.PAIRWISE:
            shape = f"pairs={self.pairs}"
        else:
            shape = (f"{self.topology.value} "
                     f"{self.producers}->{self.consumers}")
        return (
            f"{self.system.value} | {self.model.name} | stride={self.stride} "
            f"| {shape} | frames={self.frames} "
            f"| {self.placement.value} ({self.nodes_required} node(s))"
        )
