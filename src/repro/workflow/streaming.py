"""Streaming transport: per-frame pipelines with bounded backpressure.

The paper compares DYAD against coarse barriers and stat()-polling; the
natural follow-up (PAPERS.md: openPMD/ADIOS2 streaming pipelines) is a
per-frame *streaming* sync mode. This module implements the three
streaming variants of :class:`~repro.workflow.spec.SyncMode` for every
system under test:

- **windowed** — ADIOS2-SST-style: the producer publishes frame *i* as
  soon as it lands, but a bounded in-flight window of ``W`` frames with
  credit-based backpressure blocks it when the consumer falls behind.
  Frame-availability notifications ride an in-memory side channel (the
  same zero-cost idiom as the coarse barrier's :class:`Signal`); DYAD
  keeps its own KVS-based discovery and uses the channel for credits
  only.
- **pubsub** — per-frame pub/sub over the KVS watch machinery: the
  consumer *subscribes* (arms a watch) for every frame instead of the
  lookup-then-watch first-touch protocol, paying the registration RPC
  and notification push per frame. POSIX runs get a dedicated KVS broker
  on node 0 as the control plane.
- **nbuffer** — classic double buffering: the ``W=2`` special case of
  the windowed transport on node-local staging.

Every per-pair transport is a :class:`StreamChannel`: the credit window,
the notification plane, and the fault surface the injector composes with
(``hold_notifications`` queues wake-ups like a crashed notifier,
``hold_returns`` defers credit returns like a partitioned control link —
both flush on release, exercising the lost-wakeup and credit-leak
recovery paths). The channel reports every credit movement to the
:class:`~repro.invariants.InvariantChecker` flow-control family and can
describe its occupancy (credits held, armed watches, blocked producer)
for cycle-naming :class:`~repro.errors.StallError` diagnosis — see
``docs/streaming.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import StallError
from repro.perf.caliper import Category
from repro.sim.core import Environment, Event
from repro.workflow.spec import SyncMode, System, WorkflowSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.invariants import InvariantChecker

__all__ = [
    "StreamChannel",
    "StreamingSetup",
    "spawn_streaming",
    "flow_occupancy",
    "default_liveness_horizon",
    "stream_key",
    "BACKPRESSURE_REGION",
    "STREAM_WAIT_REGION",
]

#: Producer idle region: blocked on window credits (backpressure).
BACKPRESSURE_REGION = "stream_backpressure"
#: Consumer idle region: waiting for the next frame's availability event.
STREAM_WAIT_REGION = "stream_wait_frame"


def stream_key(pair: int, frame: int) -> str:
    """Pub/sub control-plane key of one frame of one pair."""
    return f"stream/pair{pair:04d}/frame{frame:05d}"


def default_liveness_horizon(spec: WorkflowSpec) -> float:
    """Generous backpressure-liveness bound derived from the workload.

    A legitimate backpressure block lasts about one consumer iteration;
    the default horizon allows the *whole* serial workload plus a floor,
    so only a genuinely wedged window (or a crafted tight horizon via
    :class:`~repro.invariants.InvariantConfig`) trips the invariant.
    """
    return 60.0 + 100.0 * spec.frames * max(spec.stride_time, 1e-3)


class StreamChannel:
    """One pair's streaming transport: credit window + notification plane.

    Pure bookkeeping plus :class:`~repro.sim.core.Event` parking — the
    channel never advances simulated time by itself, so healthy streaming
    runs stay bit-reproducible. Consumer waits use the classic
    condition-variable re-check loop, which is what makes the channel
    tolerate duplicate, spurious, and (after a ``hold``) redelivered
    wake-ups without double-consuming a frame.
    """

    def __init__(
        self,
        env: Environment,
        pair: int,
        window: int,
        producer_role: str,
        consumer_role: str,
        producer_node: str,
        consumer_node: str,
        checker: Optional["InvariantChecker"] = None,
        liveness_horizon: Optional[float] = None,
    ) -> None:
        self.env = env
        self.pair = pair
        self.window = window
        self.producer_role = producer_role
        self.consumer_role = consumer_role
        self.producer_node = producer_node
        self.consumer_node = consumer_node
        self.checker = checker
        self.liveness_horizon = liveness_horizon
        # -- credit window state --
        self._free = window
        self._credit_waiters: List[Event] = []
        self._holders: Dict[int, float] = {}   # frame -> credit issue time
        self._blocked_since: Optional[float] = None
        # -- notification plane state --
        self._delivered = set()                # frames whose wake-up fired
        self._undelivered: List[int] = []      # published while plane down
        self._frame_waiters: List[Tuple[int, Event]] = []
        # -- fault-composition holds (refcounted by the injector) --
        self._notify_holds = 0
        self._return_holds = 0
        self._deferred: List[int] = []         # returns queued while held
        # -- counters (surfaced as stream_* system stats) --
        self.credits_issued = 0
        self.credits_returned = 0
        self.peak_in_flight = 0
        self.producer_blocks = 0
        self.blocked_time = 0.0
        self.spurious_wakeups = 0
        self.lost_wakeups = 0
        self.redeliveries = 0
        self.deferred_return_count = 0

    # -- producer side -------------------------------------------------------
    def acquire_credit(self, frame: int) -> Generator:
        """Generator: block until a window credit frees; returns wait secs."""
        start = self.env.now
        if self._free == 0:
            self.producer_blocks += 1
            self._blocked_since = start
        while self._free == 0:
            event = Event(self.env)
            self._credit_waiters.append(event)
            yield event
        if self._blocked_since is not None:
            waited = self.env.now - start
            self.blocked_time += waited
            self._blocked_since = None
            if self.checker is not None:
                self.checker.producer_unblocked(
                    self.producer_role, self.pair, waited,
                    self.liveness_horizon,
                )
        self._free -= 1
        self.credits_issued += 1
        self._holders[frame] = self.env.now
        in_flight = self.credits_issued - self.credits_returned
        if in_flight > self.peak_in_flight:
            self.peak_in_flight = in_flight
        if self.checker is not None:
            self.checker.credit_issued(
                self.producer_role, self.pair, frame, in_flight, self.window
            )
        return self.env.now - start

    def publish(self, frame: int) -> None:
        """The producer committed ``frame``: fire (or queue) its wake-up."""
        if self._notify_holds > 0:
            # The notification plane is down (crashed service / partitioned
            # side channel): the wake-up that should fire now is lost and
            # will be redelivered when the plane comes back.
            self._undelivered.append(frame)
            self.lost_wakeups += 1
            return
        self._deliver(frame)

    def _deliver(self, frame: int) -> None:
        self._delivered.add(frame)
        # Broadcast: every parked watcher re-checks its own frame (the
        # condition loop in wait_frame absorbs foreign/duplicate wakes).
        waiters, self._frame_waiters = self._frame_waiters, []
        for _frame, event in waiters:
            event.succeed(frame)

    # -- consumer side -------------------------------------------------------
    def wait_frame(self, frame: int) -> Generator:
        """Generator: park until ``frame`` has been delivered."""
        while frame not in self._delivered:
            event = Event(self.env)
            self._frame_waiters.append((frame, event))
            yield event
            if frame not in self._delivered:
                # A redelivery or a foreign frame's broadcast woke us:
                # tolerated by re-checking and re-parking.
                self.spurious_wakeups += 1

    def release_credit(self, frame: int) -> None:
        """The consumer finished ``frame``: return its window credit."""
        if self._return_holds > 0:
            # The credit-return path is down: the credit leaks until the
            # hold lifts (the producer keeps blocking — detection — and
            # the flush below is the recovery).
            self._deferred.append(frame)
            self.deferred_return_count += 1
            return
        self._apply_return(frame)

    def _apply_return(self, frame: int) -> None:
        self._holders.pop(frame, None)
        self._free += 1
        self.credits_returned += 1
        if self.checker is not None:
            self.checker.credit_returned(
                self.consumer_role, self.pair, frame,
                self.credits_issued, self.credits_returned,
                len(self._holders),
            )
        waiters, self._credit_waiters = self._credit_waiters, []
        for event in waiters:
            event.succeed(frame)

    # -- fault surface (composed by the injector, refcounted) ----------------
    def hold_notifications(self) -> None:
        """Notification plane down: publishes queue instead of firing."""
        self._notify_holds += 1

    def release_notifications(self) -> None:
        """Plane restored: redeliver every queued wake-up (recovery)."""
        self._notify_holds -= 1
        if self._notify_holds == 0 and self._undelivered:
            pending, self._undelivered = self._undelivered, []
            for frame in pending:
                self.redeliveries += 1
                self._deliver(frame)

    def hold_returns(self) -> None:
        """Credit-return path down: returns defer (credits leak)."""
        self._return_holds += 1

    def release_returns(self) -> None:
        """Return path restored: flush deferred returns (recovery)."""
        self._return_holds -= 1
        if self._return_holds == 0 and self._deferred:
            pending, self._deferred = self._deferred, []
            for frame in pending:
                self._apply_return(frame)

    # -- diagnosis -----------------------------------------------------------
    def armed_watches(self) -> List[int]:
        """Frames with a consumer watch currently armed."""
        return sorted(frame for frame, _event in self._frame_waiters)

    def undelivered_frames(self) -> List[int]:
        """Published frames whose wake-up is still queued (plane down)."""
        return list(self._undelivered)

    def deferred_returns(self) -> List[int]:
        """Consumed frames whose credit return is still deferred."""
        return list(self._deferred)

    def occupancy(self) -> str:
        """One-line window state naming who holds what (StallError detail)."""
        held = sorted(self._holders)
        in_flight = self.credits_issued - self.credits_returned
        parts = [f"pair{self.pair}: {in_flight}/{self.window} credit(s) in flight"]
        if held:
            shown = ",".join(str(f) for f in held[:6])
            parts.append(
                f"credit(s) held for frame(s) {shown} awaiting return by "
                f"{self.consumer_role}"
            )
        if self._blocked_since is not None:
            parts.append(
                f"{self.producer_role} blocked "
                f"{self.env.now - self._blocked_since:.6g}s awaiting a credit"
            )
        armed = self.armed_watches()
        if armed:
            shown = ",".join(str(f) for f in armed[:6])
            parts.append(
                f"{self.consumer_role} watch armed on frame(s) {shown}"
            )
        if self._undelivered:
            parts.append(
                f"{len(self._undelivered)} wake-up(s) queued undelivered"
            )
        if self._deferred:
            parts.append(
                f"{len(self._deferred)} credit return(s) deferred"
            )
        return ", ".join(parts)


def flow_occupancy(channels: List[StreamChannel]) -> str:
    """Join every channel's occupancy line (guarded-run diagnosis)."""
    return "; ".join(channel.occupancy() for channel in channels)


def raise_if_stalled(env: Environment, processes, channels: List[StreamChannel],
                     reason: str) -> None:
    """Raise a cycle-naming :class:`StallError` if any process is stuck.

    The heap draining with streaming processes still parked is a
    flow-control deadlock (leaked credit, lost wake-up with no recovery);
    the message names the cycle — who is blocked, who holds which credit,
    which watch is armed — instead of timing out.
    """
    stuck = [role for role, proc in processes if proc.is_alive]
    if not stuck:
        return
    raise StallError(
        f"streaming deadlock at t={env.now:.6g}s ({reason}): "
        f"{len(stuck)} process(es) stuck [{', '.join(stuck)}] — "
        f"window state: {flow_occupancy(channels)}"
    )


# ---------------------------------------------------------------------------
# process bodies
# ---------------------------------------------------------------------------


def _streaming_producer(env, spec, channel, write_frame, annotator, pair,
                        compute) -> Generator:
    """Generic streaming producer: MD sleep, credit, write, publish."""
    for k in range(spec.frames):
        annotator.begin("md_sleep", Category.COMPUTE)
        yield env.timeout(
            compute.sample(f"pair{pair}.frame{k}", spec.stride_time)
        )
        annotator.end("md_sleep")
        annotator.begin(BACKPRESSURE_REGION, Category.IDLE)
        yield from channel.acquire_credit(k)
        annotator.end(BACKPRESSURE_REGION)
        yield from write_frame(k)
        channel.publish(k)


def _streaming_consumer(env, spec, channel, wait_frame, read_frame, annotator,
                        pair, compute) -> Generator:
    """Generic streaming consumer: wait, read, return credit, analyze."""
    for k in range(spec.frames):
        if wait_frame is not None:
            yield from wait_frame(k)
        yield from read_frame(k)
        channel.release_credit(k)
        annotator.begin("analytics_sleep", Category.COMPUTE)
        yield env.timeout(
            compute.sample(f"pair{pair}.frame{k}", spec.analytics_time)
        )
        annotator.end("analytics_sleep")


# ---------------------------------------------------------------------------
# wiring
# ---------------------------------------------------------------------------


@dataclass
class StreamingSetup:
    """Everything the runner needs back from :func:`spawn_streaming`."""

    #: ``(role, Process)`` pairs for stall diagnostics
    processes: List = field(default_factory=list)
    #: one :class:`StreamChannel` per pair
    channels: List[StreamChannel] = field(default_factory=list)
    #: the POSIX pub/sub control-plane broker (``None`` otherwise)
    broker: Optional[object] = None
    #: DYAD consumer clients (``[]`` for POSIX systems)
    consumers: List = field(default_factory=list)


def _posix_write_frame(env, spec, fs, node_id, annotator, pair, checker,
                       root: str = "/data") -> Callable[[int], Generator]:
    from repro.workflow.emulator import WRITE_REGION, frame_path

    def write_frame(k: int) -> Generator:
        annotator.begin(WRITE_REGION, Category.MOVEMENT)
        handle = yield from fs.open(frame_path(root, pair, k), "w",
                                    client=node_id)
        try:
            yield from handle.write(spec.frame_bytes)
            if checker is not None:
                checker.frame_committed(
                    f"producer{pair}", pair, k, spec.frame_bytes
                )
        finally:
            yield from handle.close()
        annotator.end(WRITE_REGION)

    return write_frame


def _posix_read_frame(env, spec, fs, node_id, annotator, pair, checker,
                      root: str = "/data") -> Callable[[int], Generator]:
    from repro.workflow.emulator import READ_REGION, frame_path

    def read_frame(k: int) -> Generator:
        path = frame_path(root, pair, k)
        annotator.begin(READ_REGION, Category.MOVEMENT)
        handle = yield from fs.open(path, "r", client=node_id)
        try:
            count, _payload = yield from handle.read()
        finally:
            yield from handle.close()
        annotator.end(READ_REGION)
        if checker is not None:
            checker.frame_consumed(
                f"consumer{pair}", pair, k, spec.frame_bytes, count,
                fs.is_corrupt(path),
            )

    return read_frame


def spawn_streaming(
    env: Environment,
    spec: WorkflowSpec,
    cluster,
    placements,
    producer_anns,
    consumer_anns,
    compute,
    checker: Optional["InvariantChecker"] = None,
    runtime=None,
    fs=None,
    liveness_horizon: Optional[float] = None,
) -> StreamingSetup:
    """Spawn streaming producer/consumer pairs for any system under test.

    - DYAD: the DYAD client protocol is unchanged (its KVS *is* the
      per-frame discovery plane); the channel adds the bounded credit
      window on top. ``pubsub`` makes the consumer subscribe (arm the
      watch) for every frame instead of lookup-then-watch.
    - XFS/Lustre ``windowed``/``nbuffer``: frame availability rides the
      channel's in-memory side channel (SST-style).
    - XFS/Lustre ``pubsub``: a dedicated KVS broker on node 0 carries
      per-frame commit/watch RPCs as the control plane.
    """
    from repro.workflow.emulator import frame_path

    window = spec.effective_window
    if liveness_horizon is None:
        liveness_horizon = default_liveness_horizon(spec)
    setup = StreamingSetup()
    broker = None
    if spec.system is not System.DYAD:
        # The staging tree is created before the timed phase, exactly as
        # the coarse/polling spawn path does.
        for pair in range(spec.pairs):
            fs.makedirs(f"/data/pair{pair:04d}")
        if spec.sync_mode is SyncMode.PUBSUB:
            from repro.kvs.store import KVS

            broker = KVS(env, cluster.fabric, cluster.node(0).node_id,
                         attach=False)
            setup.broker = broker

    for pair, (pn, cn) in enumerate(placements):
        producer_node = cluster.node(pn).node_id
        consumer_node = cluster.node(cn).node_id
        channel = StreamChannel(
            env, pair, window,
            producer_role=f"producer{pair}", consumer_role=f"consumer{pair}",
            producer_node=producer_node, consumer_node=consumer_node,
            checker=checker, liveness_horizon=liveness_horizon,
        )
        setup.channels.append(channel)
        p_ann, c_ann = producer_anns[pair], consumer_anns[pair]

        if spec.system is System.DYAD:
            producer = runtime.producer(producer_node, f"prod{pair}")
            consumer = runtime.consumer(consumer_node, f"cons{pair}")
            setup.consumers.append(consumer)
            root = runtime.config.managed_root
            subscribe = spec.sync_mode is SyncMode.PUBSUB

            def write_frame(k, _client=producer, _ann=p_ann, _pair=pair,
                            _root=root):
                yield from _client.produce(
                    frame_path(_root, _pair, k), spec.frame_bytes,
                    annotator=_ann,
                )
                if checker is not None:
                    checker.frame_committed(
                        f"producer{_pair}", _pair, k, spec.frame_bytes,
                        at=_client.last_commit_time,
                    )

            def read_frame(k, _client=consumer, _ann=c_ann, _pair=pair,
                           _root=root, _subscribe=subscribe):
                yield from _client.consume(
                    frame_path(_root, _pair, k), annotator=_ann,
                    subscribe=_subscribe,
                )
                if checker is not None:
                    checker.frame_consumed(
                        f"consumer{_pair}", _pair, k, spec.frame_bytes,
                        _client.last_consume_bytes,
                        _client.last_consume_corrupt,
                    )

            # DYAD's own KVS sync is the discovery plane; no channel wait.
            wait_frame = None
        else:
            write_inner = _posix_write_frame(
                env, spec, fs, producer_node, p_ann, pair, checker
            )
            read_frame = _posix_read_frame(
                env, spec, fs, consumer_node, c_ann, pair, checker
            )
            if spec.sync_mode is SyncMode.PUBSUB:
                def write_frame(k, _inner=write_inner, _node=producer_node,
                                _pair=pair):
                    yield from _inner(k)
                    # Per-frame commit on the control plane (one RPC).
                    yield from broker.commit(
                        _node, stream_key(_pair, k), spec.frame_bytes
                    )

                def wait_frame(k, _ann=c_ann, _node=consumer_node,
                               _pair=pair):
                    _ann.begin(STREAM_WAIT_REGION, Category.IDLE)
                    yield from broker.wait_for(_node, stream_key(_pair, k))
                    _ann.end(STREAM_WAIT_REGION)
            else:
                write_frame = write_inner

                def wait_frame(k, _ann=c_ann, _channel=channel):
                    _ann.begin(STREAM_WAIT_REGION, Category.IDLE)
                    yield from _channel.wait_frame(k)
                    _ann.end(STREAM_WAIT_REGION)

        setup.processes.append((f"producer{pair}", env.process(
            _streaming_producer(
                env, spec, channel, write_frame, p_ann, pair, compute
            )
        )))
        setup.processes.append((f"consumer{pair}", env.process(
            _streaming_consumer(
                env, spec, channel, wait_frame, read_frame, c_ann, pair,
                compute
            )
        )))
    return setup
