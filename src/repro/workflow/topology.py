"""Non-pairwise workflow topologies: fan-out, fan-in, work-stealing pool.

The paper measures 1:1 producer/consumer links only; this module spawns
the N:M shapes of :class:`~repro.workflow.spec.Topology` on the same
substrates, sync modes, and invariant machinery:

- **fan-out (1→M)** — one producer writes stream 0; every consumer reads
  every frame of it. With DYAD and split placement the consumers share a
  node-local staging cache, so the shared-read single-flight tier (see
  :class:`~repro.dyad.config.DyadConfig.shared_read_cache`) bounds the
  workload to one RDMA pull per frame per node, against Lustre's one
  cold OST read per frame per *consumer* — the read-amplification
  comparison the ``topology`` experiment reports.
- **fan-in (N→1)** — N producers each write their own stream; one reduce
  consumer folds frame *k* of every stream before its per-frame
  analytics step. Drain adds the *aggregation-completeness* invariant.
- **pool (N→M work stealing)** — per-frame ``(stream, frame)`` tasks go
  into a shared frame-major :class:`TaskQueue`; M workers claim greedily,
  so a slow worker sheds load to fast ones. Drain adds the pool-wide
  exactly-once invariant (per-role bookkeeping cannot see two *different*
  workers claiming the same task).

Streaming sync modes generalize per **edge**: each producer→consumer
edge gets its own :class:`~repro.workflow.streaming.StreamChannel` with
its own credit ledger — a fan-out producer must hold a credit on *every*
consumer's channel before writing a frame (the slowest consumer applies
backpressure), a fan-in producer only on its own reducer edge. The fault
injector composes with the per-edge channels unchanged: holds key on
each channel's ``producer_node``/``consumer_node``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Callable, Dict, Generator, List, Optional, Tuple,
)

from repro.errors import FileNotFound
from repro.perf.caliper import Category
from repro.sim.core import Environment
from repro.sim.resources import Signal
from repro.workflow import emulator
from repro.workflow.spec import SyncMode, System, Topology, WorkflowSpec
from repro.workflow.streaming import (
    BACKPRESSURE_REGION,
    STREAM_WAIT_REGION,
    StreamChannel,
    default_liveness_horizon,
    stream_key,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.invariants import InvariantChecker

__all__ = ["TaskQueue", "TopologySetup", "spawn_topology"]


class TaskQueue:
    """Deterministic work-stealing queue of ``(stream, frame)`` tasks.

    Tasks are ordered frame-major (frame 0 of every stream before frame 1
    of any), matching how a trajectory-analysis pool drains time steps.
    ``claim`` is pure bookkeeping — no simulated time — so the steal
    order is decided entirely by when each worker finishes its previous
    task. Claims are recorded per worker for load-balance reporting.
    """

    def __init__(self, streams: int, frames: int) -> None:
        self._tasks = deque(
            (s, k) for k in range(frames) for s in range(streams)
        )
        self.total = streams * frames
        #: worker role -> tasks it claimed, in claim order
        self.claimed: Dict[str, List[Tuple[int, int]]] = {}

    def claim(self, role: str) -> Optional[Tuple[int, int]]:
        """Next unclaimed task, or ``None`` when the queue is drained."""
        if not self._tasks:
            return None
        task = self._tasks.popleft()
        self.claimed.setdefault(role, []).append(task)
        return task

    def per_worker(self) -> Dict[str, int]:
        """Tasks claimed per worker (load-balance view)."""
        return {role: len(tasks) for role, tasks in self.claimed.items()}


@dataclass
class TopologySetup:
    """Everything the runner needs back from :func:`spawn_topology`.

    Duck-compatible with the pairwise
    :class:`~repro.workflow.streaming.StreamingSetup` where the runner
    reads ``channels``/``broker``/``consumers``/``processes``.
    """

    spec: WorkflowSpec
    #: ``(role, Process)`` pairs for stall diagnostics
    processes: List = field(default_factory=list)
    #: one :class:`StreamChannel` per producer→consumer edge (streaming
    #: modes only; empty otherwise)
    channels: List[StreamChannel] = field(default_factory=list)
    #: the POSIX pub/sub control-plane broker (``None`` otherwise)
    broker: Optional[object] = None
    #: DYAD consumer clients (``[]`` for POSIX systems)
    consumers: List = field(default_factory=list)
    #: the work-stealing queue (``POOL`` topology only)
    queue: Optional[TaskQueue] = None

    def check_complete(self, checker: "InvariantChecker") -> None:
        """Run the topology-appropriate drain-completeness invariants."""
        spec = self.spec
        if spec.topology is Topology.FANOUT:
            checker.check_complete_edges(
                [(f"consumer{j}", 0) for j in range(spec.consumers)],
                spec.frames,
            )
        elif spec.topology is Topology.FANIN:
            checker.check_aggregation("consumer0", spec.streams, spec.frames)
        else:  # POOL
            checker.check_pool(
                [f"consumer{j}" for j in range(spec.consumers)],
                spec.streams, spec.frames,
            )

    def recovery_errors(self) -> List[str]:
        """Per-consumer completion accounting after a faulted run.

        Mirrors the pairwise runner's ``fast_hits + kvs_waits == frames``
        recovery check, generalized per topology (only DYAD clients carry
        these counters; POSIX runs return ``[]``).
        """
        if not self.consumers:
            return []
        spec = self.spec
        errors: List[str] = []
        if spec.topology is Topology.POOL:
            got = sum(c.fast_hits + c.kvs_waits for c in self.consumers)
            want = spec.streams * spec.frames
            if got != want:
                errors.append(
                    f"the consumer pool completed {got} of {want} tasks "
                    "despite finishing"
                )
            return errors
        for j, consumer in enumerate(self.consumers):
            got = consumer.fast_hits + consumer.kvs_waits
            want = (spec.frames if spec.topology is Topology.FANOUT
                    else spec.streams * spec.frames)
            if got != want:
                errors.append(
                    f"consumer{j} completed {got} of {want} frame reads "
                    "despite finishing"
                )
        return errors


# ---------------------------------------------------------------------------
# per-system task closures
# ---------------------------------------------------------------------------


def _posix_read_task(env, spec, fs, node_id, ann, role, checker,
                     root: str = "/data") -> Callable:
    """``read_task(s, k)``: read one frame of one stream through ``fs``."""

    def read_task(s: int, k: int) -> Generator:
        path = emulator.frame_path(root, s, k)
        ann.begin(emulator.READ_REGION, Category.MOVEMENT)
        handle = yield from fs.open(path, "r", client=node_id)
        try:
            count, _payload = yield from handle.read()
        finally:
            yield from handle.close()
        ann.end(emulator.READ_REGION)
        if checker is not None:
            checker.frame_consumed(
                role, s, k, spec.frame_bytes, count, fs.is_corrupt(path)
            )
        elif count != spec.frame_bytes:
            raise AssertionError(
                f"stream {s} frame {k}: read {count} bytes, "
                f"expected {spec.frame_bytes}"
            )

    return read_task


def _dyad_read_task(spec, client, ann, role, root, checker,
                    subscribe: bool = False) -> Callable:
    """``read_task(s, k)``: consume one frame through a DYAD client."""

    def read_task(s: int, k: int) -> Generator:
        yield from client.consume(
            emulator.frame_path(root, s, k), annotator=ann,
            subscribe=subscribe,
        )
        if checker is not None:
            checker.frame_consumed(
                role, s, k, spec.frame_bytes,
                client.last_consume_bytes, client.last_consume_corrupt,
            )

    return read_task


def _poll_wait_task(env, spec, fs, node_id, ann,
                    root: str = "/data") -> Callable:
    """``wait_task(s, k)``: Pegasus-style two-stable-stats polling."""

    def wait_task(s: int, k: int) -> Generator:
        path = emulator.frame_path(root, s, k)
        ann.begin(emulator.POLL_REGION, Category.IDLE)
        last_version = None
        while True:
            try:
                st = yield from fs.stat(path, client=node_id)
            except FileNotFound:
                st = None
            if st is not None and st.version == last_version:
                break  # two consecutive identical observations: stable
            last_version = st.version if st is not None else None
            yield env.timeout(spec.poll_interval)
        ann.end(emulator.POLL_REGION)

    return wait_task


def _barrier_wait_ready(ann, barriers) -> Callable:
    """``wait_ready()``: park until every producer's coarse barrier fires."""

    def wait_ready() -> Generator:
        ann.begin(emulator.SYNC_REGION, Category.IDLE)
        for barrier in barriers:
            yield barrier.wait()
        ann.end(emulator.SYNC_REGION)

    return wait_ready


# ---------------------------------------------------------------------------
# process bodies
# ---------------------------------------------------------------------------


def _analytics(env, spec, ann, compute, key) -> Generator:
    ann.begin("analytics_sleep", Category.COMPUTE)
    yield env.timeout(compute.sample(key, spec.analytics_time))
    ann.end("analytics_sleep")


def _streaming_topology_producer(env, spec, s, channels, write_frame, ann,
                                 compute) -> Generator:
    """Streaming producer of stream ``s`` holding a credit per edge.

    A fan-out producer owns M edges: it must acquire a credit on *every*
    consumer's channel before writing frame ``k`` (the slowest consumer
    applies the backpressure), then publishes on all of them. Fan-in and
    pool producers own exactly one edge each.
    """
    for k in range(spec.frames):
        ann.begin("md_sleep", Category.COMPUTE)
        yield env.timeout(
            compute.sample(f"stream{s}.frame{k}", spec.stride_time)
        )
        ann.end("md_sleep")
        ann.begin(BACKPRESSURE_REGION, Category.IDLE)
        for channel in channels:
            yield from channel.acquire_credit(k)
        ann.end(BACKPRESSURE_REGION)
        yield from write_frame(k)
        for channel in channels:
            channel.publish(k)


def _fanout_consumer(env, spec, j, ann, compute, wait_ready, wait_task,
                     read_task, release) -> Generator:
    """Fan-out consumer ``j``: read every frame of stream 0."""
    if wait_ready is not None:
        yield from wait_ready()
    for k in range(spec.frames):
        if wait_task is not None:
            yield from wait_task(0, k)
        yield from read_task(0, k)
        if release is not None:
            release(0, k)
        yield from _analytics(env, spec, ann, compute,
                              f"consumer{j}.frame{k}")


def _fanin_consumer(env, spec, ann, compute, wait_ready, wait_task,
                    read_task, release) -> Generator:
    """Fan-in reducer: fold frame ``k`` of every stream, then one
    analytics step (the reduce) per frame index."""
    if wait_ready is not None:
        yield from wait_ready()
    for k in range(spec.frames):
        for s in range(spec.streams):
            if wait_task is not None:
                yield from wait_task(s, k)
            yield from read_task(s, k)
            if release is not None:
                release(s, k)
        yield from _analytics(env, spec, ann, compute,
                              f"consumer0.frame{k}")


def _pool_consumer(env, spec, j, queue, ann, compute, wait_ready, wait_task,
                   read_task, release) -> Generator:
    """Pool worker ``j``: greedily claim and analyze queued tasks."""
    if wait_ready is not None:
        yield from wait_ready()
    role = f"consumer{j}"
    step = 0
    while True:
        task = queue.claim(role)
        if task is None:
            break
        s, k = task
        if wait_task is not None:
            yield from wait_task(s, k)
        yield from read_task(s, k)
        if release is not None:
            release(s, k)
        yield from _analytics(env, spec, ann, compute,
                              f"{role}.task{step}")
        step += 1


# ---------------------------------------------------------------------------
# wiring
# ---------------------------------------------------------------------------


def _edge_channels(env, spec, checker, liveness_horizon, producer_node_ids,
                   consumer_node_ids) -> Tuple[List[StreamChannel], Dict]:
    """One :class:`StreamChannel` per producer→consumer edge.

    Returns ``(channels, by_key)`` where the lookup key is the consumer
    index for fan-out edges and the stream index otherwise (fan-in and
    pool edges are per input stream; the pool's channels name the whole
    worker pool as their consumer side).
    """
    window = spec.effective_window
    channels: List[StreamChannel] = []
    by_key: Dict[int, StreamChannel] = {}
    if spec.topology is Topology.FANOUT:
        for j in range(spec.consumers):
            channel = StreamChannel(
                env, 0, window,
                producer_role="producer0",
                consumer_role=f"consumer{j}",
                producer_node=producer_node_ids[0],
                consumer_node=consumer_node_ids[j],
                checker=checker, liveness_horizon=liveness_horizon,
            )
            channels.append(channel)
            by_key[j] = channel
    else:
        pool = spec.topology is Topology.POOL
        for s in range(spec.streams):
            channel = StreamChannel(
                env, s, window,
                producer_role=f"producer{s}",
                consumer_role="pool" if pool else "consumer0",
                producer_node=producer_node_ids[s],
                consumer_node=consumer_node_ids[0],
                checker=checker, liveness_horizon=liveness_horizon,
            )
            channels.append(channel)
            by_key[s] = channel
    return channels, by_key


def spawn_topology(
    env: Environment,
    spec: WorkflowSpec,
    cluster,
    producer_anns,
    consumer_anns,
    compute,
    checker: Optional["InvariantChecker"] = None,
    runtime=None,
    fs=None,
    liveness_horizon: Optional[float] = None,
) -> TopologySetup:
    """Spawn a non-pairwise workflow for any system and sync mode.

    Sync semantics mirror the pairwise paths:

    - DYAD under ``coarse``/``polling`` uses its automatic KVS
      synchronization (the spec normalizes both manual modes to COARSE);
    - XFS/Lustre ``coarse`` parks every consumer until *all* producers
      fired their phase barriers; ``polling`` stat-polls per task;
    - the streaming modes run per-edge credit windows (see
      :func:`_streaming_topology_producer`), with DYAD keeping KVS
      discovery and POSIX ``pubsub`` using a node-0 broker.
    """
    if liveness_horizon is None:
        liveness_horizon = default_liveness_horizon(spec)
    setup = TopologySetup(spec=spec)
    producer_node_ids = [cluster.node(n).node_id
                         for n in spec.producer_nodes()]
    consumer_node_ids = [cluster.node(n).node_id
                         for n in spec.consumer_nodes()]
    is_dyad = spec.system is System.DYAD
    streaming = spec.is_streaming
    root = runtime.config.managed_root if is_dyad else "/data"
    subscribe = streaming and spec.sync_mode is SyncMode.PUBSUB

    if not is_dyad:
        for s in range(spec.streams):
            fs.makedirs(f"/data/pair{s:04d}")

    broker = None
    if streaming and not is_dyad and spec.sync_mode is SyncMode.PUBSUB:
        from repro.kvs.store import KVS

        broker = KVS(env, cluster.fabric, cluster.node(0).node_id,
                     attach=False)
        setup.broker = broker

    channels_by_key: Dict[int, StreamChannel] = {}
    if streaming:
        setup.channels, channels_by_key = _edge_channels(
            env, spec, checker, liveness_horizon,
            producer_node_ids, consumer_node_ids,
        )

    if spec.topology is Topology.POOL:
        setup.queue = TaskQueue(spec.streams, spec.frames)

    # -- producers -----------------------------------------------------------
    barriers: List[Signal] = []
    for s in range(spec.streams):
        p_ann = producer_anns[s]
        node_id = producer_node_ids[s]
        if streaming:
            if spec.topology is Topology.FANOUT:
                edge_channels = list(setup.channels)
            else:
                edge_channels = [channels_by_key[s]]
            if is_dyad:
                producer = runtime.producer(node_id, f"prod{s}")

                def write_frame(k, _client=producer, _ann=p_ann, _s=s):
                    yield from _client.produce(
                        emulator.frame_path(root, _s, k), spec.frame_bytes,
                        annotator=_ann,
                    )
                    if checker is not None:
                        checker.frame_committed(
                            f"producer{_s}", _s, k, spec.frame_bytes,
                            at=_client.last_commit_time,
                        )
            else:
                from repro.workflow.streaming import _posix_write_frame

                write_inner = _posix_write_frame(
                    env, spec, fs, node_id, p_ann, s, checker
                )
                if broker is not None:
                    def write_frame(k, _inner=write_inner, _node=node_id,
                                    _s=s):
                        yield from _inner(k)
                        yield from broker.commit(
                            _node, stream_key(_s, k), spec.frame_bytes
                        )
                else:
                    write_frame = write_inner
            setup.processes.append((f"producer{s}", env.process(
                _streaming_topology_producer(
                    env, spec, s, edge_channels, write_frame, p_ann, compute
                )
            )))
        elif is_dyad:
            producer = runtime.producer(node_id, f"prod{s}")
            setup.processes.append((f"producer{s}", env.process(
                emulator.dyad_producer(
                    env, spec, producer, p_ann, s, compute, checker=checker
                )
            )))
        else:
            barrier = Signal(env)
            barriers.append(barrier)
            setup.processes.append((f"producer{s}", env.process(
                emulator.posix_producer(
                    env, spec, fs, node_id, barrier, p_ann, s,
                    compute=compute, checker=checker,
                )
            )))

    # -- consumers -----------------------------------------------------------
    for j in range(spec.consumers):
        c_ann = consumer_anns[j]
        node_id = consumer_node_ids[j]
        role = f"consumer{j}"
        wait_ready = None
        wait_task = None
        release = None
        if is_dyad:
            client = runtime.consumer(node_id, f"cons{j}")
            setup.consumers.append(client)
            read_task = _dyad_read_task(
                spec, client, c_ann, role, root, checker,
                subscribe=subscribe,
            )
            # DYAD's KVS is the discovery plane; streaming only adds the
            # per-edge credit window on top.
        else:
            read_task = _posix_read_task(
                env, spec, fs, node_id, c_ann, role, checker
            )
            if streaming:
                if broker is not None:
                    def wait_task(s, k, _ann=c_ann, _node=node_id):
                        _ann.begin(STREAM_WAIT_REGION, Category.IDLE)
                        yield from broker.wait_for(_node, stream_key(s, k))
                        _ann.end(STREAM_WAIT_REGION)
                else:
                    def wait_task(s, k, _ann=c_ann, _j=j):
                        channel = (channels_by_key[_j]
                                   if spec.topology is Topology.FANOUT
                                   else channels_by_key[s])
                        _ann.begin(STREAM_WAIT_REGION, Category.IDLE)
                        yield from channel.wait_frame(k)
                        _ann.end(STREAM_WAIT_REGION)
            elif spec.sync_mode is SyncMode.POLLING:
                wait_task = _poll_wait_task(env, spec, fs, node_id, c_ann)
            else:
                wait_ready = _barrier_wait_ready(c_ann, barriers)
        if streaming:
            def release(s, k, _j=j):
                channel = (channels_by_key[_j]
                           if spec.topology is Topology.FANOUT
                           else channels_by_key[s])
                channel.release_credit(k)

        if spec.topology is Topology.FANOUT:
            body = _fanout_consumer(
                env, spec, j, c_ann, compute, wait_ready, wait_task,
                read_task, release,
            )
        elif spec.topology is Topology.FANIN:
            body = _fanin_consumer(
                env, spec, c_ann, compute, wait_ready, wait_task,
                read_task, release,
            )
        else:
            body = _pool_consumer(
                env, spec, j, setup.queue, c_ann, compute, wait_ready,
                wait_task, read_task, release,
            )
        setup.processes.append((role, env.process(body)))
    return setup
