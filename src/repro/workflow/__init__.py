"""The MD-inspired point-to-point producer/consumer workflow.

This is the paper's test harness (Section IV-C): an ensemble of
producer/consumer pairs. Producers emulate MD simulation — a fixed-duration
"MD sleep" per step, a frame written through the data-management system
every *stride* steps. Consumers read each frame, then run an analytics
sleep matched to the frame-generation frequency.

- :mod:`repro.workflow.spec` — workload specification and placement rules;
- :mod:`repro.workflow.emulator` — the producer/consumer process bodies
  for each data-management system (DYAD / XFS / Lustre), including the
  coarse-grained barrier synchronization the traditional systems need;
- :mod:`repro.workflow.runner` — builds the cluster + system, runs the
  ensemble, and returns instrumented results.
"""

from repro.workflow.runner import WorkflowResult, run_workflow, run_repetitions
from repro.workflow.spec import Placement, System, WorkflowSpec

__all__ = [
    "WorkflowResult",
    "run_workflow",
    "run_repetitions",
    "Placement",
    "System",
    "WorkflowSpec",
]
