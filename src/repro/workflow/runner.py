"""Workflow orchestration: build, run, and summarize one configuration.

:func:`run_workflow` assembles a Corona-like cluster sized for the spec,
instantiates the system under test (DYAD runtime, an XFS mount, or Lustre
servers + client FS), spawns one producer and one consumer process per
pair with Caliper annotation, runs the simulation to completion, and
returns a :class:`WorkflowResult` with the per-process call trees and the
paper's headline metrics (per-frame production/consumption time split into
data movement and idle).

:func:`run_repetitions` repeats a spec with different seeds (the paper
runs every configuration 10 times) and returns the list of results.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.corona import corona
from repro.dyad.config import DyadConfig
from repro.dyad.service import DyadRuntime
from repro.errors import StallError, WorkflowError
from repro.faults.plan import FaultPlan
from repro.invariants import InvariantChecker, InvariantConfig
from repro.perf.caliper import Caliper, Category
from repro.perf.calltree import CallTree
from repro.perf.metrics import MetricsTimeline
from repro.perf.thicket import Thicket
from repro.perf.trace import Tracer
from repro.sim.fluid import Fidelity
from repro.sim.resources import Signal, channel_health
from repro.storage.lustre import LustreConfig, LustreFileSystem, LustreServers
from repro.storage.xfs import XFSConfig, XFSFileSystem
from repro.workflow import emulator, streaming, topology
from repro.workflow.spec import (
    Placement, SyncMode, System, Topology, WorkflowSpec,
)

__all__ = ["WorkflowResult", "run_workflow", "run_repetitions"]


@dataclass
class WorkflowResult:
    """Instrumented outcome of one workflow run."""

    spec: WorkflowSpec
    seed: int
    makespan: float
    producer_trees: List[CallTree]
    consumer_trees: List[CallTree]
    #: populated when run_workflow(..., trace=True): the full timeline
    tracer: Optional[Tracer] = None
    #: populated when run_workflow(..., metrics=True): substrate telemetry
    metrics: Optional[MetricsTimeline] = None
    #: system-level counters of the run (network transfers, bytes, ...)
    system_stats: Dict[str, float] = field(default_factory=dict)
    #: invariant violations recorded by a non-fatal checker (fatal
    #: checkers raise instead; clean runs leave this empty)
    invariant_violations: List[str] = field(default_factory=list)
    #: simulation tier the run used ("exact" / "hybrid" / "fluid"); the
    #: numeric ordinal is also in ``system_stats["fidelity"]``
    fidelity: str = "exact"

    # -- the paper's metrics ------------------------------------------------------
    def _per_frame(self, trees: List[CallTree], category: str) -> float:
        """Mean per-frame seconds of a category across processes."""
        if not trees:
            return 0.0
        totals = [t.total_by_category(category) for t in trees]
        return float(np.mean(totals)) / self.spec.frames

    @property
    def production_movement(self) -> float:
        """Mean data-movement seconds per produced frame."""
        return self._per_frame(self.producer_trees, Category.MOVEMENT)

    @property
    def production_idle(self) -> float:
        """Mean idle (synchronization) seconds per produced frame."""
        return self._per_frame(self.producer_trees, Category.IDLE)

    @property
    def production_time(self) -> float:
        """Movement + idle per produced frame (the paper's bar height)."""
        return self.production_movement + self.production_idle

    @property
    def consumption_movement(self) -> float:
        """Mean data-movement seconds per consumed frame."""
        return self._per_frame(self.consumer_trees, Category.MOVEMENT)

    @property
    def consumption_idle(self) -> float:
        """Mean idle (synchronization) seconds per consumed frame."""
        return self._per_frame(self.consumer_trees, Category.IDLE)

    @property
    def consumption_time(self) -> float:
        """Movement + idle per consumed frame."""
        return self.consumption_movement + self.consumption_idle

    def thicket(self, **extra_tags) -> Thicket:
        """All trees of this run as a Thicket ensemble."""
        ensemble = Thicket()
        for i, tree in enumerate(self.producer_trees):
            ensemble.add(
                tree, role="producer", pair=i, seed=self.seed,
                system=self.spec.system.value, model=self.spec.model.name,
                stride=self.spec.stride, pairs=self.spec.pairs, **extra_tags,
            )
        for i, tree in enumerate(self.consumer_trees):
            ensemble.add(
                tree, role="consumer", pair=i, seed=self.seed,
                system=self.spec.system.value, model=self.spec.model.name,
                stride=self.spec.stride, pairs=self.spec.pairs, **extra_tags,
            )
        return ensemble


def _default_event_budget(spec: WorkflowSpec) -> int:
    """Stall-watchdog event budget scaled to the workload size.

    A healthy run dispatches a few hundred events per frame per pair;
    20k leaves two orders of magnitude of headroom for retry storms and
    degraded windows while still tripping long before a spin becomes a
    multi-minute hang. For non-pairwise topologies the wider side of the
    graph (``max(producers, consumers)``) plays the role of ``pairs``.
    """
    span = max(spec.pairs, spec.n_producers, spec.n_consumers)
    return 1_000_000 + 20_000 * spec.frames * span


def run_workflow(
    spec: WorkflowSpec,
    seed: int = 0,
    jitter_cv: float = 0.0,
    compute_cv: Optional[float] = None,
    dyad_config: Optional[DyadConfig] = None,
    xfs_config: Optional[XFSConfig] = None,
    lustre_config: Optional[LustreConfig] = None,
    trace: bool = False,
    metrics: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    invariants: Optional[InvariantConfig] = None,
    fidelity: str = "exact",
) -> WorkflowResult:
    """Run one workflow configuration on a fresh simulated cluster.

    ``jitter_cv`` controls device-time jitter; ``compute_cv`` (defaulting
    to ``jitter_cv``) controls MD/analytics sleep jitter, which
    decorrelates the ensemble's otherwise perfectly lockstep pairs.
    With ``trace=True`` the result additionally carries a
    :class:`~repro.perf.trace.Tracer` with the full region timeline
    (Chrome-trace exportable). With ``metrics=True`` it carries a
    :class:`~repro.perf.metrics.MetricsTimeline` with every substrate's
    utilization series (see ``docs/observability.md``); telemetry is pure
    observation — results are bit-identical with it on or off.

    ``fault_plan`` injects scheduled/probabilistic faults (see
    :mod:`repro.faults`) and switches the DES loop to the guarded variant:
    a run whose recovery deadlocks or spins raises
    :class:`~repro.errors.StallError` naming the stuck processes instead
    of hanging or returning silently-incomplete metrics.

    ``invariants`` configures the run's
    :class:`~repro.invariants.InvariantChecker` (default: enabled and
    fatal). The checker is pure bookkeeping — it adds no simulated time
    and clean-run results are bit-identical with it on or off.

    ``fidelity`` selects the simulation tier (``exact`` / ``hybrid`` /
    ``fluid``, see :class:`repro.sim.fluid.Fidelity`): ``exact`` keeps
    bit-reproducible per-channel timelines; the others delegate bulk byte
    movement to a flow-level solver within the tolerances documented in
    ``docs/performance.md``.
    """
    tier = Fidelity.coerce(fidelity)
    cluster = corona(nodes=spec.nodes_required, seed=seed, jitter_cv=jitter_cv,
                     fidelity=tier.value)
    env = cluster.env
    checker = InvariantChecker(env, invariants)
    compute = emulator.ComputeModel(
        cluster.rng, jitter_cv if compute_cv is None else compute_cv
    )
    tracer = Tracer(clock=lambda: env.now) if trace else None
    timeline = MetricsTimeline(clock=lambda: env.now) if metrics else None
    caliper = Caliper(clock=lambda: env.now)
    annotate = tracer.annotator if tracer else caliper.annotator
    topology_run = spec.topology is not Topology.PAIRWISE
    placements = None if topology_run else spec.placements()

    producer_anns = [
        annotate(f"producer{p:04d}") for p in range(spec.n_producers)
    ]
    consumer_anns = [
        annotate(f"consumer{p:04d}") for p in range(spec.n_consumers)
    ]

    # claim one GPU per process, as the paper's placement does
    if topology_run:
        for n in spec.producer_nodes() + spec.consumer_nodes():
            cluster.node(n).claim_gpu()
    else:
        for (pn, cn) in placements:
            cluster.node(pn).claim_gpu()
            cluster.node(cn).claim_gpu()

    runtime = None
    servers = None
    fs = None
    topo = None  # TopologySetup for the non-pairwise graph shapes
    streams = None  # StreamingSetup for the windowed/pubsub/nbuffer modes
    consumers: List = []
    processes: List = []  # (role, Process) for stall diagnostics
    if spec.system is System.DYAD:
        config = dyad_config
        if fault_plan is not None and fault_plan.transfer_fault_rate > 0.0:
            # Merge the plan's probabilistic transfer faults into the DYAD
            # config (the plan wins; an explicit config fault_rate of the
            # same value is a no-op replace and keys identically).
            config = dataclasses.replace(
                config or DyadConfig(),
                fault_rate=fault_plan.transfer_fault_rate,
            )
        runtime = DyadRuntime(cluster, config=config)
        if topology_run:
            topo = topology.spawn_topology(
                env, spec, cluster, producer_anns, consumer_anns, compute,
                checker=checker, runtime=runtime,
                liveness_horizon=checker.config.liveness_horizon,
            )
        elif spec.is_streaming:
            streams = streaming.spawn_streaming(
                env, spec, cluster, placements, producer_anns, consumer_anns,
                compute, checker=checker, runtime=runtime,
                liveness_horizon=checker.config.liveness_horizon,
            )
            processes = streams.processes
            consumers = streams.consumers
        else:
            for pair, (pn, cn) in enumerate(placements):
                producer = runtime.producer(
                    cluster.node(pn).node_id, f"prod{pair}"
                )
                consumer = runtime.consumer(
                    cluster.node(cn).node_id, f"cons{pair}"
                )
                consumers.append(consumer)
                processes.append((f"producer{pair}", env.process(
                    emulator.dyad_producer(
                        env, spec, producer, producer_anns[pair], pair,
                        compute, checker=checker,
                    )
                )))
                processes.append((f"consumer{pair}", env.process(
                    emulator.dyad_consumer(
                        env, spec, consumer, consumer_anns[pair], pair,
                        compute, checker=checker,
                    )
                )))
    elif spec.system is System.XFS:
        fs = XFSFileSystem(cluster.node(0), config=xfs_config)
        fs.makedirs("/data")
        if topology_run:
            topo = topology.spawn_topology(
                env, spec, cluster, producer_anns, consumer_anns, compute,
                checker=checker, fs=fs,
                liveness_horizon=checker.config.liveness_horizon,
            )
        elif spec.is_streaming:
            streams = streaming.spawn_streaming(
                env, spec, cluster, placements, producer_anns, consumer_anns,
                compute, checker=checker, fs=fs,
                liveness_horizon=checker.config.liveness_horizon,
            )
            processes = streams.processes
        else:
            processes = _spawn_posix(
                env, spec, fs, cluster, placements, producer_anns,
                consumer_anns, compute, checker,
            )
    elif spec.system is System.LUSTRE:
        servers = LustreServers(env, cluster.fabric, lustre_config, cluster.rng)
        fs = LustreFileSystem(servers)
        fs.makedirs("/data")
        if topology_run:
            topo = topology.spawn_topology(
                env, spec, cluster, producer_anns, consumer_anns, compute,
                checker=checker, fs=fs,
                liveness_horizon=checker.config.liveness_horizon,
            )
        elif spec.is_streaming:
            streams = streaming.spawn_streaming(
                env, spec, cluster, placements, producer_anns, consumer_anns,
                compute, checker=checker, fs=fs,
                liveness_horizon=checker.config.liveness_horizon,
            )
            processes = streams.processes
        else:
            processes = _spawn_posix(
                env, spec, fs, cluster, placements, producer_anns,
                consumer_anns, compute, checker,
            )
    else:  # pragma: no cover - enum is exhaustive
        raise WorkflowError(f"unknown system {spec.system!r}")

    if topo is not None:
        processes = topo.processes
        consumers = topo.consumers
        if spec.is_streaming:
            # TopologySetup duck-types StreamingSetup where the rest of
            # the run reads it (.channels / .broker / .processes).
            streams = topo

    if timeline is not None:
        # Attach probes after every substrate exists but before the first
        # event runs; attachment only registers gauges, it never schedules.
        cluster.fabric.attach_metrics(timeline)
        for node in cluster.nodes:
            node.ssd.attach_metrics(timeline, f"ssd.{node.node_id}")
        if runtime is not None:
            runtime.attach_metrics(timeline)
        if servers is not None:
            servers.attach_metrics(timeline)

    ann_by_role: Dict[str, object] = {}
    for p, ann in enumerate(producer_anns):
        ann_by_role[f"producer{p}"] = ann
    for p, ann in enumerate(consumer_anns):
        ann_by_role[f"consumer{p}"] = ann

    def _stuck_detail() -> List[str]:
        """Describe each stuck process by the last event it completed."""
        parts = []
        for role, proc in processes:
            if not proc.is_alive:
                continue
            last = getattr(ann_by_role.get(role), "last_completed", None)
            if last is not None:
                parts.append(
                    f"{role} (last completed {last[0]!r} at t={last[1]:.6g}s)"
                )
            else:
                parts.append(f"{role} (completed no events)")
        return parts

    injector = None
    if fault_plan is None:
        env.run()
        if streams is not None:
            # Streaming can deadlock without any fault (a mis-tuned window
            # against a consumer that never returns a credit), and run()
            # silently drains the heap in that case. Name the flow-control
            # cycle — who holds which credit, which watch is armed —
            # instead of returning a short makespan.
            streaming.raise_if_stalled(
                env, processes, streams.channels,
                "fault-free run drained the heap",
            )
    else:
        from repro.faults.inject import FaultInjector

        injector = FaultInjector(
            fault_plan, cluster, dyad=runtime, lustre=servers, fs=fs,
            metrics=timeline,
            streams=streams.channels if streams is not None else None,
            brokers=[streams.broker]
            if streams is not None and streams.broker is not None else None,
        )
        injector.start()
        guard_detail = None
        if streams is not None:
            guard_detail = lambda: (  # noqa: E731 - one-shot diagnosis hook
                "window state: "
                + streaming.flow_occupancy(streams.channels)
            )
        try:
            env.run_guarded(
                max_events=fault_plan.max_events or _default_event_budget(spec),
                max_time=fault_plan.max_time,
                detail=guard_detail,
            )
        except StallError as err:
            # Budget/horizon exhausted: name what each stuck process was
            # last seen finishing so a shrunk chaos repro is readable.
            detail = _stuck_detail()
            if detail:
                raise StallError(
                    f"{err} — stuck: {'; '.join(detail)}"
                ) from None
            raise
        # The guarded loop returning is necessary but not sufficient: a
        # recovery deadlock (e.g. a consumer parked on a link that never
        # came back) drains the heap with processes still waiting, which
        # run() would silently accept and report as a short makespan.
        stuck = _stuck_detail()
        if stuck:
            flow = ""
            if streams is not None:
                flow = (" — window state: "
                        + streaming.flow_occupancy(streams.channels))
            raise StallError(
                f"workflow ended at t={env.now:.6g}s with "
                f"{len(stuck)} process(es) still waiting: "
                f"{'; '.join(stuck)} — the fault plan's recovery never "
                f"completed{flow}"
            )
        # Recovery correctness: every frame must have arrived despite the
        # injected faults (the retry loop re-requests lost frames).
        if topo is not None:
            errors = topo.recovery_errors()
            if errors:
                raise WorkflowError(
                    "; ".join(errors)
                    + " — recovery accounting is inconsistent"
                )
        else:
            for pair, consumer in enumerate(consumers):
                got = consumer.fast_hits + consumer.kvs_waits
                if got != spec.frames:
                    raise WorkflowError(
                        f"consumer{pair} completed {got} of {spec.frames} "
                        "frames despite finishing — recovery accounting is "
                        "inconsistent"
                    )
    fabric = cluster.fabric
    system_stats = {
        "fabric_transfers": float(fabric.stats.transfers),
        "fabric_rdma_transfers": float(fabric.stats.rdma_transfers),
        "fabric_messages": float(fabric.stats.messages),
        "fabric_bytes_moved": float(fabric.stats.bytes_moved),
        "fabric_link_stalls": float(fabric.stats.link_stalls),
        "ssd_bytes_written": float(
            sum(node.ssd.stats.bytes_written for node in cluster.nodes)
        ),
        "ssd_bytes_read": float(
            sum(node.ssd.stats.bytes_read for node in cluster.nodes)
        ),
    }
    # Kernel-health counters over every fluid-flow channel in the run, so
    # a kernel-bench regression (wake-up churn, re-schedule storms) is
    # diagnosable from experiment output alone.
    channels = list(fabric.channels())
    for node in cluster.nodes:
        channels.extend(node.ssd.channels())
    if servers is not None:
        channels.extend(servers.channels())
    health = channel_health(channels)
    system_stats.update({
        "channel_stale_wakeups": float(health["stale_wakeups_defused"]),
        "channel_peak_flows": float(health["peak_concurrent_flows"]),
        "channel_reschedules": float(health["reschedules"]),
    })
    # Fidelity-tier metadata + flow-level kernel-health counters. The tier
    # is stored as its numeric ordinal (system_stats values are floats by
    # contract — they render as float.hex in result fingerprints).
    system_stats["fidelity"] = float(tier.ordinal)
    if cluster.fluid is not None:
        system_stats["fluid_epochs"] = float(cluster.fluid.fluid_epochs)
        system_stats["rate_solves"] = float(cluster.fluid.rate_solves)
    else:
        system_stats["fluid_epochs"] = 0.0
        system_stats["rate_solves"] = 0.0
    # End-of-run invariants: no leaked locks or in-flight flows, and every
    # consumer drained its full frame sequence.
    lock_tables = []
    if fs is not None:
        lock_tables.append(fs.locks)
    if runtime is not None:
        lock_tables.extend(
            s.staging.locks for s in runtime.services.values()
        )
    checker.check_drain(lock_tables, channels)
    if streams is not None:
        # Flow-control drain: credits home, no armed watches, nothing
        # published-but-undelivered, no deferred credit returns.
        checker.check_stream_drain(streams.channels)
    if topo is not None:
        topo.check_complete(checker)
    else:
        checker.check_complete(
            {f"consumer{p}": p for p in range(spec.pairs)}, spec.frames
        )
    system_stats["invariant_checks"] = float(checker.checks)
    system_stats["invariant_violations"] = float(checker.violation_count)
    if streams is not None:
        chans = streams.channels
        system_stats.update({
            "stream_window": float(spec.effective_window),
            "stream_credits_issued": float(
                sum(c.credits_issued for c in chans)
            ),
            "stream_credits_returned": float(
                sum(c.credits_returned for c in chans)
            ),
            "stream_peak_in_flight": float(
                max((c.peak_in_flight for c in chans), default=0)
            ),
            "stream_producer_blocks": float(
                sum(c.producer_blocks for c in chans)
            ),
            "stream_blocked_time": float(
                sum(c.blocked_time for c in chans)
            ),
            "stream_spurious_wakeups": float(
                sum(c.spurious_wakeups for c in chans)
            ),
            "stream_lost_wakeups": float(
                sum(c.lost_wakeups for c in chans)
            ),
            "stream_redeliveries": float(
                sum(c.redeliveries for c in chans)
            ),
            "stream_deferred_returns": float(
                sum(c.deferred_return_count for c in chans)
            ),
        })
        if streams.broker is not None:
            system_stats.update({
                "stream_broker_commits": float(streams.broker.stats.commits),
                "stream_broker_watches": float(streams.broker.stats.watches),
                "stream_broker_dropped_watches": float(
                    streams.broker.stats.dropped_watches
                ),
                "stream_broker_lost_wakeups": float(
                    streams.broker.stats.lost_wakeups
                ),
            })
    if runtime is not None:
        system_stats.update({
            "dyad_kvs_waits": float(sum(c.kvs_waits for c in consumers)),
            "dyad_fast_hits": float(sum(c.fast_hits for c in consumers)),
            "dyad_cache_hits": float(sum(c.cache_hits for c in consumers)),
            "dyad_shared_read_waits": float(
                sum(c.shared_read_waits for c in consumers)
            ),
            "dyad_transfer_retries": float(
                sum(c.transfer_retries for c in consumers)
            ),
            "dyad_transport_faults": float(runtime.rdma.faults_injected),
            "dyad_service_crashes": float(
                sum(s.crashes for s in runtime.services.values())
            ),
            "dyad_refused_gets": float(
                sum(s.refused_gets for s in runtime.services.values())
            ),
            "dyad_dropped_watches": float(runtime.kvs.stats.dropped_watches),
            "dyad_lost_wakeups": float(runtime.kvs.stats.lost_wakeups),
        })
    if topo is not None and topo.queue is not None:
        claimed = topo.queue.per_worker()
        loads = [claimed.get(f"consumer{j}", 0)
                 for j in range(spec.consumers)]
        system_stats.update({
            "pool_tasks_total": float(topo.queue.total),
            "pool_workers": float(spec.consumers),
            "pool_max_claimed": float(max(loads)),
            "pool_min_claimed": float(min(loads)),
        })
    if injector is not None:
        system_stats["faults_applied"] = float(injector.applied)
        system_stats["faults_reverted"] = float(injector.reverted)
    return WorkflowResult(
        spec=spec,
        seed=seed,
        makespan=env.now,
        producer_trees=[ann.finish() for ann in producer_anns],
        consumer_trees=[ann.finish() for ann in consumer_anns],
        tracer=tracer,
        metrics=timeline,
        system_stats=system_stats,
        invariant_violations=list(checker.violations),
        fidelity=tier.value,
    )


def _spawn_posix(env, spec, fs, cluster, placements, producer_anns, consumer_anns,
                 compute, checker):
    """Spawn traditional producer/consumer pairs with per-pair barriers.

    The subdirectory tree is created up front (the paper's harness sets up
    its staging directories before the timed phase). Returns the spawned
    ``(role, Process)`` pairs for stall diagnostics."""
    processes = []
    for pair in range(spec.pairs):
        fs.makedirs(f"/data/pair{pair:04d}")
    for pair, (pn, cn) in enumerate(placements):
        barrier = Signal(env)
        processes.append((f"producer{pair}", env.process(
            emulator.posix_producer(
                env, spec, fs, cluster.node(pn).node_id, barrier,
                producer_anns[pair], pair, compute=compute, checker=checker,
            )
        )))
        if spec.sync_mode is SyncMode.POLLING:
            processes.append((f"consumer{pair}", env.process(
                emulator.posix_consumer_polling(
                    env, spec, fs, cluster.node(cn).node_id,
                    consumer_anns[pair], pair, compute=compute,
                    checker=checker,
                )
            )))
        else:
            processes.append((f"consumer{pair}", env.process(
                emulator.posix_consumer(
                    env, spec, fs, cluster.node(cn).node_id, barrier,
                    consumer_anns[pair], pair, compute=compute,
                    checker=checker,
                )
            )))
    return processes


def run_repetitions(
    spec: WorkflowSpec,
    runs: int = 10,
    base_seed: int = 0,
    jitter_cv: float = 0.05,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    invariants: Optional[InvariantConfig] = None,
    fidelity: Optional[str] = None,
    **system_configs,
) -> List[WorkflowResult]:
    """Run ``runs`` repetitions with distinct seeds (paper: 10 runs).

    Each repetition is a pure function of ``(spec, seed, jitter_cv,
    fault_plan, system_configs, fidelity)``, so the set fans out across ``jobs``
    worker processes (default: ``REPRO_JOBS`` or the enclosing
    :func:`repro.experiments.parallel.campaign` scope, else serial) and
    can be memoized in the on-disk result cache (``use_cache``). Results
    are ordered by repetition index and bit-identical to a serial,
    uncached run.
    """
    if runs < 1:
        raise WorkflowError(f"runs must be >= 1, got {runs}")
    # Imported lazily: repro.experiments depends on this module at import
    # time; at call time both are fully initialized.
    from repro.experiments.parallel import (
        RunTask,
        default_fault_plan,
        default_fidelity,
        run_campaign,
    )

    fault_plan = default_fault_plan(fault_plan)
    fidelity = default_fidelity(fidelity)
    tasks = [
        RunTask(
            spec=spec, seed=base_seed + 1000 * r, jitter_cv=jitter_cv,
            system_configs=system_configs, fault_plan=fault_plan,
            invariants=invariants, fidelity=fidelity,
        )
        for r in range(runs)
    ]
    return run_campaign(
        tasks, jobs=jobs, use_cache=use_cache, cache_dir=cache_dir
    )
