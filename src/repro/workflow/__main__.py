"""CLI for ad-hoc workflow runs: ``python -m repro.workflow …``.

Examples::

    python -m repro.workflow --system dyad --model jac --pairs 8
    python -m repro.workflow --system lustre --model stmv --stride 10 \\
        --frames 64 --sync polling --runs 3
    python -m repro.workflow --system dyad --trace /tmp/run.trace.json
    python -m repro.workflow --system dyad --topology fanout --consumers 8
    python -m repro.workflow --system lustre --topology pool \\
        --producers 2 --consumers 3 --sync windowed
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.md.models import model_by_name
from repro.perf.report import table
from repro.units import to_msec, to_usec
from repro.workflow.runner import run_repetitions, run_workflow
from repro.workflow.spec import (
    Placement, SyncMode, System, Topology, WorkflowSpec,
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workflow",
        description="Run one MD-workflow configuration and print its "
                    "movement/idle decomposition.",
    )
    parser.add_argument("--system", required=True,
                        choices=[s.value for s in System])
    parser.add_argument("--model", default="jac",
                        help="jac | apoa1 | f1 | stmv")
    parser.add_argument("--stride", type=int, default=None,
                        help="MD steps per frame (default: the model's "
                             "Table II stride)")
    parser.add_argument("--frames", type=int, default=64)
    parser.add_argument("--pairs", type=int, default=None,
                        help="producer/consumer pairs for the pairwise "
                             "topology (default 4; fixed at 1 otherwise)")
    parser.add_argument("--topology", default="pairwise",
                        choices=[t.value for t in Topology],
                        help="workflow graph shape: pairwise 1:1 links, "
                             "fanout 1->M, fanin N->1 reduce, or a "
                             "work-stealing consumer pool")
    parser.add_argument("--producers", type=int, default=0,
                        help="producer count for fanin/pool (fanout "
                             "fixes it at 1)")
    parser.add_argument("--consumers", type=int, default=0,
                        help="consumer count for fanout/pool (fanin "
                             "fixes it at 1)")
    parser.add_argument("--placement", default=None,
                        choices=[p.value for p in Placement],
                        help="default: single-node for xfs, split otherwise")
    parser.add_argument("--sync", default="coarse",
                        choices=[m.value for m in SyncMode],
                        help="sync mode: coarse/polling are manual sync "
                             "for xfs/lustre (ignored by dyad); the "
                             "streaming modes windowed/pubsub/nbuffer "
                             "apply to every system")
    parser.add_argument("--window", type=int, default=2,
                        help="in-flight frame window W for --sync "
                             "windowed (nbuffer is fixed at W=2)")
    parser.add_argument("--runs", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the repetitions "
                             "(default: REPRO_JOBS or 1)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jitter", type=float, default=0.05,
                        help="device/compute jitter cv")
    parser.add_argument("--fidelity", default=None,
                        choices=["exact", "hybrid", "fluid"],
                        help="simulation tier (default: REPRO_FIDELITY "
                             "or exact)")
    parser.add_argument("--trace", default=None,
                        help="write a merged Chrome trace JSON of run 0 "
                             "(spans + substrate counters) here")
    parser.add_argument("--metrics", default=None,
                        help="write run 0's substrate telemetry timeline "
                             "here (JSON, or CSV if the name ends in .csv)")
    return parser


def build_spec(args) -> WorkflowSpec:
    """Translate CLI arguments into a :class:`WorkflowSpec`."""
    system = System(args.system)
    model = model_by_name(args.model)
    if args.placement is not None:
        placement = Placement(args.placement)
    else:
        placement = (Placement.SINGLE_NODE if system is System.XFS
                     else Placement.SPLIT)
    extras = {}
    sync = SyncMode(args.sync)
    # The streaming transports apply to every system; the manual
    # coarse/polling modes model XFS/Lustre-only sync scripts, and the
    # spec normalizes them to COARSE for DYAD (its KVS provides the
    # signalling, so the manual spellings alias the automatic mode).
    extras["sync_mode"] = sync
    if sync.is_streaming:
        extras["window"] = args.window if sync is SyncMode.WINDOWED else 2
    topology = Topology(args.topology)
    if topology is not Topology.PAIRWISE:
        extras["topology"] = topology
        extras["producers"] = args.producers
        extras["consumers"] = args.consumers
        pairs = 1 if args.pairs is None else args.pairs
    else:
        # Pass stray sizes through so the spec rejects them loudly
        # (pairwise sizes via --pairs) instead of ignoring the flags.
        if args.producers or args.consumers:
            extras["producers"] = args.producers
            extras["consumers"] = args.consumers
        pairs = 4 if args.pairs is None else args.pairs
    return WorkflowSpec(
        system=system,
        model=model,
        stride=args.stride if args.stride is not None else model.paper_stride,
        frames=args.frames,
        pairs=pairs,
        placement=placement,
        **extras,
    )


def main(argv=None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"argument --jobs: must be >= 1, got {args.jobs}")
    spec = build_spec(args)
    print(f"running: {spec.describe()} (runs={args.runs})")

    results = run_repetitions(
        spec, runs=args.runs, base_seed=args.seed, jitter_cv=args.jitter,
        jobs=args.jobs, fidelity=args.fidelity,
    )
    if args.trace or args.metrics:
        from repro.perf.metrics import write_chrome_trace

        from repro.experiments.parallel import default_fidelity

        traced = run_workflow(spec, seed=args.seed, jitter_cv=args.jitter,
                              trace=True, metrics=True,
                              fidelity=default_fidelity(args.fidelity))
        if args.trace:
            write_chrome_trace(args.trace, traced.tracer, traced.metrics)
            print(f"wrote {args.trace}")
        if args.metrics:
            if args.metrics.endswith(".csv"):
                traced.metrics.write_csv(args.metrics)
            else:
                traced.metrics.write_json(args.metrics)
            print(f"wrote {args.metrics}")

    def stat(metric):
        values = [getattr(r, metric) for r in results]
        return float(np.mean(values)), float(np.std(values))

    rows = []
    for label, metric, conv, unit in [
        ("production movement", "production_movement", to_usec, "us"),
        ("production idle", "production_idle", to_usec, "us"),
        ("consumption movement", "consumption_movement", to_msec, "ms"),
        ("consumption idle", "consumption_idle", to_msec, "ms"),
        ("consumption total", "consumption_time", to_msec, "ms"),
    ]:
        mean, std = stat(metric)
        rows.append([label, f"{conv(mean):.3f} {unit}", f"{conv(std):.3f} {unit}"])
    rows.append(["makespan", f"{np.mean([r.makespan for r in results]):.2f} s", ""])
    print(table(["metric (per frame)", "mean", "std over runs"], rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
