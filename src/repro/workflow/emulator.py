"""Producer/consumer process bodies for each data-management system.

The emulation follows the paper exactly (Section IV-C):

- a producer runs ``stride`` MD steps (a fixed-duration *MD sleep*), then
  serializes a frame and writes it through the system under test;
- a consumer reads a frame, deserializes it, then runs an analytics sleep
  matched to the frame-generation frequency;
- with XFS/Lustre, synchronization is the *coarse-grained* manual pattern
  the paper describes ("serialized execution of the producer and
  consumer"): the consumer's iterations begin only after its producer
  completes, and all of that waiting is accounted to one
  ``explicit_sync`` idle region — so per-iteration consumer idle equals
  the frame-production period, while the producer (whose partner is
  already waiting) never blocks;
- with DYAD, producer and consumer run pipelined, and synchronization is
  DYAD's automatic multi-protocol mechanism (KVS watch on first touch,
  flock fast path after).

Region names match the paper's Figs. 9-10 call trees
(``dyad_consume/dyad_fetch/dyad_get_data/dyad_cons_store``,
``read_single_buf``, ``FilesystemReader::read_single_buf``,
``explicit_sync``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.dyad.client import DyadConsumerClient, DyadProducerClient

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.invariants import InvariantChecker
from repro.perf.caliper import Annotator, Category
from repro.sim.core import Environment
from repro.sim.resources import Signal
from repro.sim.rng import RngStreams
from repro.storage.posixfs import PosixFileSystem
from repro.workflow.spec import SyncMode, WorkflowSpec


class ComputeModel:
    """Per-process compute-time sampling for MD and analytics sleeps.

    Real MD steps are not metronome-exact; a small coefficient of
    variation decorrelates the otherwise-lockstep pairs of the ensemble
    (with cv=0 every producer would hit the storage system at the same
    instant forever, overstating contention relative to the paper's
    measurements).

    The stream key is shared by a pair's producer MD sleep and consumer
    analytics sleep for the same frame index, mirroring the paper's
    harness where the consumer sleep is *set equal to* the production
    period: the pair stays phase-locked (the producer runs exactly one
    frame ahead after the first synchronization), while different pairs
    drift apart through their independent per-frame draws.
    """

    def __init__(self, rng: Optional[RngStreams] = None, cv: float = 0.0) -> None:
        if cv < 0:
            raise ValueError(f"compute cv must be non-negative, got {cv}")
        self.rng = rng
        self.cv = cv

    def sample(self, stream: str, mean: float) -> float:
        """One sleep duration around ``mean``."""
        if self.rng is None or self.cv == 0.0:
            return mean
        return self.rng.jitter(stream, mean, self.cv)


_EXACT = ComputeModel()

__all__ = [
    "ComputeModel",
    "dyad_producer",
    "dyad_consumer",
    "posix_producer",
    "posix_consumer",
    "posix_consumer_polling",
    "frame_path",
    "READ_REGION",
    "WRITE_REGION",
    "SYNC_REGION",
    "POLL_REGION",
]

#: Region names matching the paper's call trees.
READ_REGION = "FilesystemReader::read_single_buf"
WRITE_REGION = "write_single_buf"
SYNC_REGION = "explicit_sync"
POLL_REGION = "poll_sync"


def frame_path(root: str, pair: int, frame: int) -> str:
    """Canonical managed path of one frame of one pair."""
    return f"{root}/pair{pair:04d}/frame{frame:05d}.mdfr"


# ---------------------------------------------------------------------------
# DYAD workflow: concurrent, pipelined, automatic synchronization.
# ---------------------------------------------------------------------------


def dyad_producer(
    env: Environment,
    spec: WorkflowSpec,
    client: DyadProducerClient,
    annotator: Annotator,
    pair: int,
    compute: ComputeModel = _EXACT,
    checker: Optional["InvariantChecker"] = None,
) -> Generator:
    """Generator: MD-sleep then produce, ``spec.frames`` times."""
    root = client.runtime.config.managed_root
    for k in range(spec.frames):
        annotator.begin("md_sleep", Category.COMPUTE)
        yield env.timeout(compute.sample(f"pair{pair}.frame{k}", spec.stride_time))
        annotator.end("md_sleep")
        yield from client.produce(
            frame_path(root, pair, k), spec.frame_bytes, annotator=annotator
        )
        if checker is not None:
            # The commit instant is the KVS publish (which a stale_metadata
            # window moves ahead of the staged bytes).
            checker.frame_committed(
                f"producer{pair}", pair, k, spec.frame_bytes,
                at=client.last_commit_time,
            )


def dyad_consumer(
    env: Environment,
    spec: WorkflowSpec,
    client: DyadConsumerClient,
    annotator: Annotator,
    pair: int,
    compute: ComputeModel = _EXACT,
    checker: Optional["InvariantChecker"] = None,
) -> Generator:
    """Generator: consume then analytics-sleep, ``spec.frames`` times."""
    root = client.runtime.config.managed_root
    for k in range(spec.frames):
        yield from client.consume(frame_path(root, pair, k), annotator=annotator)
        if checker is not None:
            checker.frame_consumed(
                f"consumer{pair}", pair, k, spec.frame_bytes,
                client.last_consume_bytes, client.last_consume_corrupt,
            )
        annotator.begin("analytics_sleep", Category.COMPUTE)
        yield env.timeout(compute.sample(f"pair{pair}.frame{k}", spec.analytics_time))
        annotator.end("analytics_sleep")


# ---------------------------------------------------------------------------
# Traditional POSIX workflow (XFS / Lustre): coarse-grained manual sync.
# ---------------------------------------------------------------------------


def posix_producer(
    env: Environment,
    spec: WorkflowSpec,
    fs: PosixFileSystem,
    node_id: str,
    barrier: Signal,
    annotator: Annotator,
    pair: int,
    root: str = "/data",
    compute: ComputeModel = _EXACT,
    checker: Optional["InvariantChecker"] = None,
) -> Generator:
    """Generator: produce all frames, then release the pair barrier.

    The producer never waits: by the time it finishes, its consumer is
    already parked in the barrier (matching the paper's observation that
    producers show no significant idle time).
    """
    for k in range(spec.frames):
        annotator.begin("md_sleep", Category.COMPUTE)
        yield env.timeout(compute.sample(f"pair{pair}.frame{k}", spec.stride_time))
        annotator.end("md_sleep")
        annotator.begin(WRITE_REGION, Category.MOVEMENT)
        handle = yield from fs.open(frame_path(root, pair, k), "w", client=node_id)
        try:
            yield from handle.write(spec.frame_bytes)
            if checker is not None:
                # Data is fully visible once the write lands (a polling
                # consumer may legally read before close completes).
                checker.frame_committed(
                    f"producer{pair}", pair, k, spec.frame_bytes
                )
        finally:
            yield from handle.close()
        annotator.end(WRITE_REGION)
    barrier.fire_once(env.now)


def posix_consumer(
    env: Environment,
    spec: WorkflowSpec,
    fs: PosixFileSystem,
    node_id: str,
    barrier: Signal,
    annotator: Annotator,
    pair: int,
    root: str = "/data",
    compute: ComputeModel = _EXACT,
    checker: Optional["InvariantChecker"] = None,
) -> Generator:
    """Generator: wait for the producer phase, then read + analyze each frame."""
    annotator.begin(SYNC_REGION, Category.IDLE)
    yield barrier.wait()
    annotator.end(SYNC_REGION)
    for k in range(spec.frames):
        path = frame_path(root, pair, k)
        annotator.begin(READ_REGION, Category.MOVEMENT)
        handle = yield from fs.open(path, "r", client=node_id)
        try:
            count, _payload = yield from handle.read()
        finally:
            yield from handle.close()
        annotator.end(READ_REGION)
        if checker is not None:
            checker.frame_consumed(
                f"consumer{pair}", pair, k, spec.frame_bytes, count,
                fs.is_corrupt(path),
            )
        elif count != spec.frame_bytes:
            raise AssertionError(
                f"pair {pair} frame {k}: read {count} bytes, "
                f"expected {spec.frame_bytes}"
            )
        annotator.begin("analytics_sleep", Category.COMPUTE)
        yield env.timeout(compute.sample(f"pair{pair}.frame{k}", spec.analytics_time))
        annotator.end("analytics_sleep")


def posix_consumer_polling(
    env: Environment,
    spec: WorkflowSpec,
    fs: PosixFileSystem,
    node_id: str,
    annotator: Annotator,
    pair: int,
    root: str = "/data",
    compute: ComputeModel = _EXACT,
    checker: Optional["InvariantChecker"] = None,
) -> Generator:
    """Generator: Pegasus-style polling consumer (fine-grained manual sync).

    Instead of one coarse barrier, the consumer discovers each frame by
    polling ``stat()`` every ``spec.poll_interval`` seconds until the file
    exists with a stable size, then reads it. This overlaps producer and
    consumer (unlike the coarse pattern) at the price of discovery latency
    (~half the poll interval per frame) and a metadata-request load on the
    file system — the trade-off the paper's Section III describes for
    workflow managers.

    Note a correctness subtlety the coarse barrier does not have: a poller
    can observe a file mid-write. Stability is checked by requiring two
    consecutive polls to report the same version, which is why discovery
    costs at least one full poll interval after creation.
    """
    from repro.errors import FileNotFound

    for k in range(spec.frames):
        path = frame_path(root, pair, k)
        annotator.begin(POLL_REGION, Category.IDLE)
        last_version = None
        while True:
            try:
                st = yield from fs.stat(path, client=node_id)
            except FileNotFound:
                st = None
            if st is not None and st.version == last_version:
                break  # two consecutive identical observations: stable
            last_version = st.version if st is not None else None
            yield env.timeout(spec.poll_interval)
        annotator.end(POLL_REGION)
        annotator.begin(READ_REGION, Category.MOVEMENT)
        handle = yield from fs.open(path, "r", client=node_id)
        try:
            count, _payload = yield from handle.read()
        finally:
            yield from handle.close()
        annotator.end(READ_REGION)
        if checker is not None:
            checker.frame_consumed(
                f"consumer{pair}", pair, k, spec.frame_bytes, count,
                fs.is_corrupt(path),
            )
        elif count != spec.frame_bytes:
            raise AssertionError(
                f"pair {pair} frame {k}: read {count} bytes, "
                f"expected {spec.frame_bytes}"
            )
        annotator.begin("analytics_sleep", Category.COMPUTE)
        yield env.timeout(compute.sample(f"pair{pair}.frame{k}", spec.analytics_time))
        annotator.end("analytics_sleep")
