"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, validated description of everything that
goes wrong during a run: a schedule of :class:`FaultEvent` windows (crash
this DYAD service at t=3 s for 0.5 s, halve that SSD's bandwidth from
t=1 s …) plus a probabilistic per-transfer fault rate. Plans are plain
data — hashable, ``repr``-stable, serializable — so they participate in
the result-cache content hash and campaign workers can receive them
pickled. The :mod:`repro.faults.inject` module turns a plan into live
simulation processes.

Every random choice a plan induces (transfer faults, retry jitter) is
drawn from the run's named, seeded RNG streams: the same plan + seed
reproduces bit-identical metrics, which the resilience tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple

from repro.errors import FaultPlanError

__all__ = ["FaultEvent", "FaultPlan", "FAULT_KINDS", "INTEGRITY_KINDS"]

#: Recognized fault kinds → what the injector does during the window.
FAULT_KINDS = (
    "node_crash",       # link down + DYAD service crash; warm restart after
    "ssd_degrade",      # node SSD channels throttled by `severity`
    "link_flap",        # fabric link down; traffic stalls until restore
    "lustre_slowdown",  # Lustre MDS/OSS degraded by `severity`
    "dyad_crash",       # DYAD service down; remote gets fail + retry
    "torn_write",       # writes land only `severity` of their bytes
    "bit_corrupt",      # each write/transfer corrupted with prob. `rate`
    "stale_metadata",   # metadata visible before data (DYAD KVS / Lustre)
)

#: Kinds whose `severity` is a slowdown factor (must be >= 1).
_DEGRADE_KINDS = frozenset({"ssd_degrade", "lustre_slowdown"})

#: Integrity kinds corrupt *data* rather than availability/performance.
INTEGRITY_KINDS = frozenset({"torn_write", "bit_corrupt", "stale_metadata"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault window.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at:
        Simulation time (seconds) the fault strikes.
    target:
        What it strikes. Node kinds take a node id (``"node00"``) or a
        node index as a string (``"0"``); ``lustre_slowdown`` takes
        ``""`` (all servers), ``"mds"``, or ``"oss<i>"``.
    duration:
        Window length in seconds; the injector reverts the fault at
        ``at + duration``.
    severity:
        Slowdown factor for the degrade kinds (>= 1). ``torn_write``
        reinterprets it as the *fraction* of each write's declared bytes
        that actually land (in ``(0, 1)``); ``stale_metadata`` on Lustre
        reads it as the size/mtime lag in seconds. Ignored otherwise.
    rate:
        Per-operation probability for ``bit_corrupt`` (each write or
        remote transfer inside the window is corrupted with this
        probability, drawn from the run's seeded RNG). Ignored by the
        other kinds.
    """

    kind: str
    at: float
    target: str = ""
    duration: float = 0.0
    severity: float = 1.0
    rate: float = 0.0

    @property
    def until(self) -> float:
        """End of the fault window."""
        return self.at + self.duration

    def validate(self) -> None:
        """Raise :class:`FaultPlanError` on an invalid event."""
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise FaultPlanError(
                f"{self.kind}: duration must be positive, got {self.duration}"
                " (permanent faults are expressed with a duration past the"
                " planned horizon)"
            )
        if self.kind in _DEGRADE_KINDS and self.severity < 1.0:
            raise FaultPlanError(
                f"{self.kind}: severity is a slowdown factor and must be"
                f" >= 1, got {self.severity}"
            )
        if self.kind == "torn_write" and not 0.0 < self.severity < 1.0:
            raise FaultPlanError(
                "torn_write: severity is the fraction of declared bytes"
                f" that land and must be in (0, 1), got {self.severity}"
            )
        if self.kind == "stale_metadata" and self.severity < 0.0:
            raise FaultPlanError(
                "stale_metadata: severity is the metadata lag in seconds"
                f" and must be >= 0, got {self.severity}"
            )
        if self.kind == "bit_corrupt":
            if not 0.0 < self.rate <= 1.0:
                raise FaultPlanError(
                    "bit_corrupt: rate is a per-operation corruption"
                    f" probability and must be in (0, 1], got {self.rate}"
                )
        elif not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(
                f"{self.kind}: rate must be in [0, 1], got {self.rate}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, validated fault schedule for one run.

    Attributes
    ----------
    events:
        Scheduled fault windows (stored sorted by strike time).
    transfer_fault_rate:
        Probability in ``[0, 1)`` that any single DYAD remote-get attempt
        fails (merged into the DYAD config's ``fault_rate`` by the
        workflow runner).
    max_events:
        Stall-watchdog event budget for the guarded DES loop; ``None``
        lets the runner derive one from the workload size.
    max_time:
        Stall-watchdog simulated-time horizon in seconds (``None`` = no
        horizon).
    """

    events: Tuple[FaultEvent, ...] = ()
    transfer_fault_rate: float = 0.0
    max_events: Optional[int] = None
    max_time: Optional[float] = None

    def __post_init__(self) -> None:
        events = tuple(sorted(self.events, key=lambda e: (e.at, e.kind, e.target)))
        object.__setattr__(self, "events", events)
        self.validate()

    def validate(self) -> None:
        """Raise :class:`FaultPlanError` on any invalid aspect."""
        for event in self.events:
            event.validate()
        if not 0.0 <= self.transfer_fault_rate < 1.0:
            raise FaultPlanError(
                "transfer_fault_rate must be in [0, 1), got "
                f"{self.transfer_fault_rate}"
            )
        if self.max_events is not None and self.max_events < 1:
            raise FaultPlanError("max_events must be >= 1")
        if self.max_time is not None and self.max_time <= 0:
            raise FaultPlanError("max_time must be positive")
        # Overlapping windows — even of the same (kind, target) — are
        # legal: the injector derives each substrate's state from the set
        # of currently-active windows (degradations multiply, outages
        # hold until the last window lifts), so an early revert can never
        # cancel a later fault mid-window.

    @property
    def is_trivial(self) -> bool:
        """True when the plan injects nothing (watchdog-only plans)."""
        return not self.events and self.transfer_fault_rate == 0.0

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-compatible) for reports and persistence."""
        return {
            "events": [
                {f.name: getattr(e, f.name) for f in fields(FaultEvent)}
                for e in self.events
            ],
            "transfer_fault_rate": self.transfer_fault_rate,
            "max_events": self.max_events,
            "max_time": self.max_time,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            events=tuple(FaultEvent(**e) for e in data.get("events", ())),
            transfer_fault_rate=data.get("transfer_fault_rate", 0.0),
            max_events=data.get("max_events"),
            max_time=data.get("max_time"),
        )
