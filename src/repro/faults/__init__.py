"""Deterministic fault injection for the simulated substrates.

Declare *what goes wrong* as a :class:`~repro.faults.plan.FaultPlan`
(scheduled crash/degradation windows + a probabilistic transfer fault
rate); the :class:`~repro.faults.inject.FaultInjector` applies it to a
live run. All randomness routes through the run's seeded RNG streams, so
faulty runs are exactly as reproducible as fault-free ones.

See ``docs/resilience.md`` for the schema and recovery semantics.
"""

from repro.faults.inject import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan

__all__ = ["FaultPlan", "FaultEvent", "FaultInjector", "FAULT_KINDS"]
