"""Turn a :class:`~repro.faults.plan.FaultPlan` into live simulation faults.

The :class:`FaultInjector` resolves every event's target against the run's
cluster / DYAD runtime / Lustre servers *before* the simulation starts (a
bad plan fails fast with :class:`~repro.errors.FaultPlanError`, not three
simulated hours in), then spawns one lightweight process per event that
sleeps until the strike time, applies the fault, sleeps the window, and
reverts it.

Fault semantics per kind:

- ``node_crash`` — the node's fabric link goes down *and* its DYAD
  service (when present) crashes. Staged frames survive on the node-local
  SSD, so the restart is warm: consumers re-request lost frames through
  the client retry loop and succeed once the service is back.
- ``link_flap`` — the link goes down only. Traffic touching the node
  stalls (delayed, not failed) until restore, which is safe for systems
  without a retry path (Lustre, plain POSIX over the fabric).
- ``dyad_crash`` — the DYAD service refuses remote gets with
  :class:`~repro.errors.TransferError`, exercising the consumer's capped
  exponential backoff until the restart.
- ``ssd_degrade`` — the node's SSD read/write channels are throttled by
  ``severity``; in-flight transfers slow down mid-stream.
- ``lustre_slowdown`` — Lustre servers degrade by ``severity``
  (``target`` picks all / ``"mds"`` / ``"oss<i>"``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.cluster.topology import Cluster
from repro.errors import FaultPlanError
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a plan's fault windows onto a run's simulated substrates."""

    def __init__(
        self,
        plan: FaultPlan,
        cluster: Cluster,
        dyad: Optional[object] = None,
        lustre: Optional[object] = None,
    ) -> None:
        plan.validate()
        self.plan = plan
        self.cluster = cluster
        self.dyad = dyad
        self.lustre = lustre
        self.env = cluster.env
        #: fault windows applied so far (strike side)
        self.applied = 0
        #: fault windows reverted so far (restore side)
        self.reverted = 0
        # Resolve every event now: (event, apply, revert) triples.
        self._actions: List[Tuple[FaultEvent, Callable, Callable]] = [
            (event, *self._resolve(event)) for event in plan.events
        ]

    # -- target resolution ---------------------------------------------------
    def _node(self, event: FaultEvent):
        """The cluster node an event targets ('' = node 0, 'N' = index)."""
        target = event.target or "0"
        if target.isdigit():
            index = int(target)
            if not 0 <= index < len(self.cluster.nodes):
                raise FaultPlanError(
                    f"{event.kind}: node index {index} out of range "
                    f"(cluster has {len(self.cluster.nodes)} nodes)"
                )
            return self.cluster.node(index)
        for node in self.cluster.nodes:
            if node.node_id == target:
                return node
        raise FaultPlanError(
            f"{event.kind}: no node {target!r} in cluster"
        )

    def _dyad_service(self, event: FaultEvent, node_id: str):
        if self.dyad is None:
            raise FaultPlanError(
                f"{event.kind} at t={event.at}: plan targets a DYAD service"
                " but the run has no DYAD runtime (non-DYAD system?)"
            )
        return self.dyad.service(node_id)

    def _resolve(self, event: FaultEvent) -> Tuple[Callable, Callable]:
        """(apply, revert) callables for one event; validates the target."""
        kind = event.kind
        fabric = self.cluster.fabric
        if kind == "link_flap":
            node = self._node(event)
            return (lambda: fabric.fail_link(node.node_id),
                    lambda: fabric.restore_link(node.node_id))
        if kind == "ssd_degrade":
            node = self._node(event)
            return (lambda: node.ssd.degrade(event.severity),
                    lambda: node.ssd.restore())
        if kind == "dyad_crash":
            node = self._node(event)
            service = self._dyad_service(event, node.node_id)
            return service.crash, service.restart
        if kind == "node_crash":
            node = self._node(event)
            service = None
            if self.dyad is not None:
                service = self.dyad.service(node.node_id)

            def apply() -> None:
                fabric.fail_link(node.node_id)
                if service is not None:
                    service.crash()

            def revert() -> None:
                if service is not None:
                    service.restart()
                fabric.restore_link(node.node_id)

            return apply, revert
        if kind == "lustre_slowdown":
            if self.lustre is None:
                raise FaultPlanError(
                    f"lustre_slowdown at t={event.at}: the run has no"
                    " Lustre servers"
                )
            servers = self.lustre
            servers._fault_targets(event.target)  # validate selector now
            return (lambda: servers.degrade(event.severity, event.target),
                    lambda: servers.restore(event.target))
        raise FaultPlanError(f"unknown fault kind {kind!r}")  # pragma: no cover

    # -- scheduling ----------------------------------------------------------
    def _window(self, event: FaultEvent, apply: Callable, revert: Callable):
        """Process: wait for the strike time, fault, wait, recover."""
        delay = event.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        apply()
        self.applied += 1
        yield self.env.timeout(event.duration)
        revert()
        self.reverted += 1

    def start(self) -> None:
        """Spawn one simulation process per scheduled fault window."""
        for event, apply, revert in self._actions:
            self.env.process(self._window(event, apply, revert))
