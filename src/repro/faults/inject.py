"""Turn a :class:`~repro.faults.plan.FaultPlan` into live simulation faults.

The :class:`FaultInjector` resolves every event's target against the run's
cluster / DYAD runtime / Lustre servers / client file system *before* the
simulation starts (a bad plan fails fast with
:class:`~repro.errors.FaultPlanError`, not three simulated hours in), then
spawns one lightweight process per event that sleeps until the strike
time, applies the fault, sleeps the window, and reverts it.

Windows on the same target may overlap or abut, so faults never set
substrate state directly: each substrate's effective state is *derived*
from the set of currently-active windows and recomputed on every apply
and revert. Degradations compose multiplicatively (two 2x slowdowns make
a 4x), outages hold until the **last** enclosing window lifts (a
``dyad_crash`` nested inside a ``node_crash`` must not resurrect the
service early), corruption rates combine as independent probabilities,
and metadata lags take the maximum.

Fault semantics per kind:

- ``node_crash`` — the node's fabric link goes down *and* its DYAD
  service (when present) crashes. Staged frames survive on the node-local
  SSD, so the restart is warm: consumers re-request lost frames through
  the client retry loop and succeed once the service is back.
- ``link_flap`` — the link goes down only. Traffic touching the node
  stalls (delayed, not failed) until restore, which is safe for systems
  without a retry path (Lustre, plain POSIX over the fabric).
- ``dyad_crash`` — the DYAD service refuses remote gets with
  :class:`~repro.errors.TransferError`, exercising the consumer's capped
  exponential backoff until the restart.
- ``ssd_degrade`` — the node's SSD read/write channels are throttled by
  ``severity``; in-flight transfers slow down mid-stream.
- ``lustre_slowdown`` — Lustre servers degrade by ``severity``
  (``target`` picks all / ``"mds"`` / ``"oss<i>"``).
- ``torn_write`` — writes land only ``severity`` of their declared bytes
  while the window is open. On DYAD the target node's staging FS tears
  and the revert *repairs* (the producer re-publishes after the service
  restart); on XFS/Lustre the revert leaves frames short — journal
  replay truncates to what landed, and readers see the damage.
- ``bit_corrupt`` — each transfer/write flips payload bytes with
  probability ``rate`` (seeded stream, drawn only inside the window).
  DYAD corrupts in-flight RDMA pulls; XFS/Lustre corrupt at-rest writes.
- ``stale_metadata`` — DYAD publishes the KVS record *before* the bytes
  are staged (consumers can win the race and must retry); Lustre's MDS
  answers ``stat`` with attributes up to ``severity`` seconds old. XFS
  has no metadata server to lag, so targeting it is a plan error.

Streaming runs (see :mod:`repro.workflow.streaming`) compose further:
a held link also partitions the per-pair stream channel's control plane
(producer-side notification wake-ups are queued as *lost* until restore;
consumer-side credit returns defer, leaking the credit for the window's
duration), and a crashed service or node hosting a KVS broker drops the
broker's armed watch table — parked watchers receive a loss sentinel and
recover by re-arming (see ``KVS.drop_watches``). Both surfaces are
refcounted with the underlying link/service holds, so overlapping
windows compose exactly like every other fault.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.topology import Cluster
from repro.errors import FaultPlanError
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a plan's fault windows onto a run's simulated substrates."""

    def __init__(
        self,
        plan: FaultPlan,
        cluster: Cluster,
        dyad: Optional[object] = None,
        lustre: Optional[object] = None,
        fs: Optional[object] = None,
        metrics: Optional[object] = None,
        streams: Optional[List[object]] = None,
        brokers: Optional[List[object]] = None,
    ) -> None:
        plan.validate()
        self.plan = plan
        self.cluster = cluster
        self.dyad = dyad
        self.lustre = lustre
        self.fs = fs
        self.env = cluster.env
        #: per-pair stream channels whose control plane faults compose with
        #: link holds (streaming runs only; empty otherwise)
        self.streams: List[object] = list(streams) if streams else []
        #: KVS brokers whose watch tables die with their host node/service
        self.brokers: List[object] = list(brokers) if brokers else []
        if self.streams and dyad is not None and dyad.kvs not in self.brokers:
            # The DYAD metadata KVS is a broker too: streaming consumers
            # parked in per-frame watches must survive its host crashing.
            self.brokers.append(dyad.kvs)
        #: fault windows applied so far (strike side)
        self.applied = 0
        #: fault windows reverted so far (restore side)
        self.reverted = 0
        #: telemetry timeline: every window edge becomes an instant
        #: annotation and the ``faults.active`` gauge tracks open windows
        self.metrics = metrics
        self._m_active = metrics.gauge("faults.active") if metrics else None
        # -- active-window composition state (see module docstring) --
        # node index -> active SSD slowdown factors
        self._ssd_factors: Dict[int, List[float]] = {}
        # "mds" / ("oss", i) -> active Lustre slowdown factors
        self._lustre_factors: Dict[object, List[float]] = {}
        # node_id -> open windows holding the fabric link down
        self._link_refs: Dict[str, int] = {}
        # node_id -> open windows holding the DYAD service crashed
        self._service_refs: Dict[str, int] = {}
        # node_id -> open windows forcing publish-before-stage
        self._stale_refs: Dict[str, int] = {}
        # active Lustre metadata lags (max wins)
        self._stale_lags: List[float] = []
        # target fs id -> (fs, active torn fractions, repair on last lift)
        self._torn: Dict[int, Tuple[object, List[float], bool]] = {}
        # target id -> (armable, active corruption rates)
        self._corrupt: Dict[int, Tuple[object, List[float]]] = {}
        self._corrupt_gen = None  # lazily-created seeded stream
        # Resolve every event now: (event, apply, revert) triples.
        self._actions: List[Tuple[FaultEvent, Callable, Callable]] = [
            (event, *self._resolve(event)) for event in plan.events
        ]

    # -- target resolution ---------------------------------------------------
    def _node(self, event: FaultEvent):
        """The cluster node an event targets ('' = node 0, 'N' = index)."""
        target = event.target or "0"
        if target.isdigit():
            index = int(target)
            if not 0 <= index < len(self.cluster.nodes):
                raise FaultPlanError(
                    f"{event.kind}: node index {index} out of range "
                    f"(cluster has {len(self.cluster.nodes)} nodes)"
                )
            return self.cluster.node(index)
        for node in self.cluster.nodes:
            if node.node_id == target:
                return node
        raise FaultPlanError(
            f"{event.kind}: no node {target!r} in cluster"
        )

    def _dyad_service(self, event: FaultEvent, node_id: str):
        if self.dyad is None:
            raise FaultPlanError(
                f"{event.kind} at t={event.at}: plan targets a DYAD service"
                " but the run has no DYAD runtime (non-DYAD system?)"
            )
        return self.dyad.service(node_id)

    def _data_fs(self, event: FaultEvent):
        """The file system a data-integrity event tears/corrupts.

        DYAD runs route to the target node's staging FS; POSIX runs route
        to the shared client FS (XFS mount or Lustre client).
        """
        if self.dyad is not None:
            node = self._node(event)
            return self._dyad_service(event, node.node_id).staging
        if self.fs is None:
            raise FaultPlanError(
                f"{event.kind} at t={event.at}: the run has neither a DYAD"
                " runtime nor a client file system to damage"
            )
        return self.fs

    def _draw(self) -> float:
        """One uniform draw from the injector's seeded corruption stream.

        The stream exists only once a window actually fires, so clean
        runs and plans without ``bit_corrupt`` make no extra RNG draws.
        """
        if self._corrupt_gen is None:
            self._corrupt_gen = self.cluster.rng.stream("faults.bit_corrupt")
        return float(self._corrupt_gen.random())

    # -- composed-state transitions ------------------------------------------
    def _drop_broker_watches(self, node_id: str) -> None:
        """A crash on ``node_id`` loses every armed watch of brokers it
        hosts; parked watchers get the loss sentinel and re-arm."""
        for broker in self.brokers:
            if broker.server_node == node_id:
                broker.drop_watches()

    def _hold_link(self, node_id: str) -> None:
        refs = self._link_refs.get(node_id, 0)
        if refs == 0:
            self.cluster.fabric.fail_link(node_id)
            # A cross-node stream channel's control plane rides this link:
            # producer-side wake-ups are lost (queued for redelivery),
            # consumer-side credit returns defer (the credit leaks until
            # the link is back and the producer may block meanwhile).
            for channel in self.streams:
                if channel.producer_node == channel.consumer_node:
                    continue
                if channel.producer_node == node_id:
                    channel.hold_notifications()
                if channel.consumer_node == node_id:
                    channel.hold_returns()
        self._link_refs[node_id] = refs + 1

    def _release_link(self, node_id: str) -> None:
        refs = self._link_refs.get(node_id, 0) - 1
        self._link_refs[node_id] = refs
        if refs == 0:
            self.cluster.fabric.restore_link(node_id)
            for channel in self.streams:
                if channel.producer_node == channel.consumer_node:
                    continue
                if channel.producer_node == node_id:
                    channel.release_notifications()
                if channel.consumer_node == node_id:
                    channel.release_returns()

    def _hold_service(self, service) -> None:
        refs = self._service_refs.get(service.node.node_id, 0)
        if refs == 0:
            service.crash()
            self._drop_broker_watches(service.node.node_id)
        self._service_refs[service.node.node_id] = refs + 1

    def _release_service(self, service) -> None:
        refs = self._service_refs.get(service.node.node_id, 0) - 1
        self._service_refs[service.node.node_id] = refs
        if refs == 0:
            service.restart()

    def _set_ssd(self, index: int) -> None:
        factors = self._ssd_factors.get(index, [])
        ssd = self.cluster.node(index).ssd
        if factors:
            product = 1.0
            for f in factors:
                product *= f
            ssd.degrade(product)
        else:
            ssd.restore()

    def _set_lustre(self, component) -> None:
        factors = self._lustre_factors.get(component, [])
        target = "mds" if component == "mds" else f"oss{component[1]}"
        if factors:
            product = 1.0
            for f in factors:
                product *= f
            self.lustre.degrade(product, target)
        else:
            self.lustre.restore(target)

    def _set_torn(self, key: int) -> None:
        fs, fractions, repair = self._torn[key]
        if fractions:
            # Overlapping tears compose to the most severe active fraction.
            fs.arm_torn_writes(min(fractions))
        else:
            fs.disarm_torn_writes(repair=repair)

    def _set_corrupt(self, key: int) -> None:
        armable, rates = self._corrupt[key]
        if rates:
            # Independent windows: P(any flips) = 1 - prod(1 - r_i).
            survive = 1.0
            for r in rates:
                survive *= 1.0 - r
            armable.arm_corruption(min(1.0, 1.0 - survive), self._draw)
        else:
            armable.disarm_corruption()

    def _set_stale_lag(self) -> None:
        self.lustre.stale_lag = max(self._stale_lags, default=0.0)

    def _resolve(self, event: FaultEvent) -> Tuple[Callable, Callable]:
        """(apply, revert) callables for one event; validates the target."""
        kind = event.kind
        if kind == "link_flap":
            node = self._node(event)
            return (lambda: self._hold_link(node.node_id),
                    lambda: self._release_link(node.node_id))
        if kind == "ssd_degrade":
            node = self._node(event)
            index = self.cluster.nodes.index(node)
            factors = self._ssd_factors.setdefault(index, [])

            def apply() -> None:
                factors.append(event.severity)
                self._set_ssd(index)

            def revert() -> None:
                factors.remove(event.severity)
                self._set_ssd(index)

            return apply, revert
        if kind == "dyad_crash":
            node = self._node(event)
            service = self._dyad_service(event, node.node_id)
            return (lambda: self._hold_service(service),
                    lambda: self._release_service(service))
        if kind == "node_crash":
            node = self._node(event)
            service = None
            if self.dyad is not None:
                service = self.dyad.service(node.node_id)

            def apply() -> None:
                self._hold_link(node.node_id)
                if service is not None:
                    self._hold_service(service)
                else:
                    # No DYAD service (POSIX pub/sub): the crash still
                    # loses any broker watch table the node hosts.
                    self._drop_broker_watches(node.node_id)

            def revert() -> None:
                if service is not None:
                    self._release_service(service)
                self._release_link(node.node_id)

            return apply, revert
        if kind == "lustre_slowdown":
            if self.lustre is None:
                raise FaultPlanError(
                    f"lustre_slowdown at t={event.at}: the run has no"
                    " Lustre servers"
                )
            touch_mds, indices = self.lustre._fault_targets(event.target)
            components: List[object] = ["mds"] if touch_mds else []
            components.extend(("oss", i) for i in indices)

            def apply() -> None:
                for component in components:
                    self._lustre_factors.setdefault(component, []).append(
                        event.severity
                    )
                    self._set_lustre(component)

            def revert() -> None:
                for component in components:
                    self._lustre_factors[component].remove(event.severity)
                    self._set_lustre(component)

            return apply, revert
        if kind == "torn_write":
            fs = self._data_fs(event)
            # DYAD staging repairs on revert (the producer re-publishes
            # after the restart); a shared POSIX FS keeps the short frames
            # (journal replay truncates to what landed).
            entry = self._torn.setdefault(
                id(fs), (fs, [], self.dyad is not None)
            )

            def apply() -> None:
                entry[1].append(event.severity)
                self._set_torn(id(fs))

            def revert() -> None:
                entry[1].remove(event.severity)
                self._set_torn(id(fs))

            return apply, revert
        if kind == "bit_corrupt":
            # DYAD corrupts the RDMA pull in flight; POSIX corrupts the
            # write at rest.
            if self.dyad is not None:
                armable = self.dyad
            elif self.fs is not None:
                armable = self.fs
            else:
                raise FaultPlanError(
                    f"bit_corrupt at t={event.at}: the run has neither a"
                    " DYAD runtime nor a client file system to corrupt"
                )
            entry = self._corrupt.setdefault(id(armable), (armable, []))

            def apply() -> None:
                entry[1].append(event.rate)
                self._set_corrupt(id(armable))

            def revert() -> None:
                entry[1].remove(event.rate)
                self._set_corrupt(id(armable))

            return apply, revert
        if kind == "stale_metadata":
            if self.dyad is not None:
                node = self._node(event)
                service = self._dyad_service(event, node.node_id)
                node_id = service.node.node_id

                def apply() -> None:
                    refs = self._stale_refs.get(node_id, 0)
                    service.stale_publish = True
                    self._stale_refs[node_id] = refs + 1

                def revert() -> None:
                    refs = self._stale_refs.get(node_id, 0) - 1
                    self._stale_refs[node_id] = refs
                    if refs == 0:
                        service.stale_publish = False

                return apply, revert
            if self.lustre is not None:
                servers = self.lustre

                def apply() -> None:
                    self._stale_lags.append(event.severity)
                    self._set_stale_lag()

                def revert() -> None:
                    self._stale_lags.remove(event.severity)
                    self._set_stale_lag()

                return apply, revert
            raise FaultPlanError(
                f"stale_metadata at t={event.at}: XFS is node-local and has"
                " no metadata server to lag (use a DYAD or Lustre run)"
            )
        raise FaultPlanError(f"unknown fault kind {kind!r}")  # pragma: no cover

    # -- scheduling ----------------------------------------------------------
    def _window(self, event: FaultEvent, apply: Callable, revert: Callable):
        """Process: wait for the strike time, fault, wait, recover."""
        delay = event.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        apply()
        self.applied += 1
        if self.metrics is not None:
            self._annotate(event, "apply")
        yield self.env.timeout(event.duration)
        revert()
        self.reverted += 1
        if self.metrics is not None:
            self._annotate(event, "revert")

    def _annotate(self, event: FaultEvent, edge: str) -> None:
        """Mark a window edge on the telemetry timeline."""
        self.metrics.instant(
            f"fault.{event.kind}.{edge}",
            target=event.target,
            at=event.at,
            duration=event.duration,
            severity=event.severity,
            rate=event.rate,
        )
        self._m_active.set(
            float(self.applied - self.reverted)
        )

    def start(self) -> None:
        """Spawn one simulation process per scheduled fault window."""
        for event, apply, revert in self._actions:
            self.env.process(self._window(event, apply, revert))
