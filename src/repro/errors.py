"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate between subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Error inside the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event loop ran out of events while processes were still waiting.

    Raised by :meth:`repro.sim.core.Environment.run` when ``until`` has not
    been reached but no future event exists, which means at least one process
    is blocked forever (a classic producer/consumer deadlock).
    """


class StallError(SimulationError):
    """The simulation exceeded its watchdog budget or ended incomplete.

    Raised by :meth:`repro.sim.core.Environment.run_guarded` when the
    event budget or time horizon is exhausted (a recovery loop that spins
    instead of progressing), and by the workflow runner when the event
    heap drains while producer/consumer processes are still waiting (a
    recovery deadlock that would otherwise return silently-incomplete
    results). The message names the stuck processes / exhausted budget so
    a faulty fault plan is diagnosable rather than a hang.
    """


class Interrupt(SimulationError):
    """Thrown *into* a simulated process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.core.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class StorageError(ReproError):
    """Base class for file-system errors (simulated POSIX layer)."""


class FileNotFound(StorageError):
    """Path does not exist in the simulated namespace (ENOENT)."""


class FileExists(StorageError):
    """Exclusive create hit an existing path (EEXIST)."""


class IsADirectory(StorageError):
    """Data operation attempted on a directory (EISDIR)."""


class NotADirectory(StorageError):
    """Path component used as directory is a regular file (ENOTDIR)."""


class InvalidHandle(StorageError):
    """Operation on a closed or foreign file handle (EBADF)."""


class LockError(StorageError):
    """Advisory lock acquisition failed (non-blocking flock on held lock)."""


class KVSError(ReproError):
    """Key-value store failure (missing key, bad namespace, ...)."""


class KeyNotFound(KVSError):
    """Lookup of a key that has not been committed."""


class DyadError(ReproError):
    """DYAD middleware failure (metadata miss, transfer failure, ...)."""


class TransferError(DyadError):
    """An RDMA/remote transfer could not be completed."""


class IntegrityError(DyadError):
    """Payload failed an integrity check (checksum mismatch, short frame).

    Raised by :meth:`repro.md.frame.Frame.decode` when verification is
    requested and the header checksum does not match the atom payload,
    and by the checked DYAD/POSIX consume paths when a frame's observed
    byte count disagrees with what its producer committed.
    """


class WorkflowError(ReproError):
    """Invalid workflow specification or orchestration failure."""


class ConfigError(ReproError):
    """Invalid configuration value (negative bandwidth, zero stride, ...)."""


class FaultPlanError(ConfigError):
    """Invalid fault plan (unknown kind, bad target, overlapping windows)."""


class InvariantViolation(WorkflowError):
    """A workflow correctness invariant was broken during a run.

    Raised by :class:`repro.invariants.InvariantChecker` (when fatal) the
    moment an observation contradicts the invariant catalogue — bytes not
    conserved across a frame's journey, a duplicate or missing consume, a
    read that precedes its commit, leaked locks or in-flight channel
    flows at drain, or non-monotonic per-process simulation time. The
    message names the invariant and the offending frame/process so chaos
    repros are diagnosable.
    """


class CampaignError(ReproError):
    """The campaign runner exhausted a task's re-submission budget."""


class ServiceError(ReproError):
    """Experiment-service failure (bad request, journal damage, ...)."""


class AdmissionError(ServiceError):
    """A job submission was rejected by admission control.

    Carries a machine-readable ``reason`` (``queue_full``,
    ``budget_exceeded``, ``circuit_open``, ``draining``) and a
    ``retry_after`` hint in seconds — the wire layer returns both to the
    client instead of letting queues grow unboundedly.
    """

    def __init__(self, reason: str, retry_after: float = 1.0) -> None:
        super().__init__(f"{reason} (retry after {retry_after:.1f}s)")
        self.reason = reason
        self.retry_after = retry_after


class JournalError(ServiceError):
    """The job journal could not be written or replayed."""


class PerfError(ReproError):
    """Performance-tooling failure (malformed call path, bad query, ...)."""


class QuerySyntaxError(PerfError):
    """A call-path query string could not be parsed."""
