"""Call-path query language (Hatchet/Thicket-query-language style).

The paper analyses its Caliper data with Thicket and the Hatchet call-path
query language (their refs [22]-[23]). This module implements the subset
those analyses need:

String dialect — a ``/``-separated path pattern::

    "dyad_consume/dyad_fetch"     exact path from the root
    "*/read_single_buf"           one arbitrary level, then a name
    "**/dyad_get_data"            any depth, then a name
    "dyad_consume/*"              all direct children
    "**/dyad_*"                   fnmatch-style wildcards inside names

Object dialect — a list of element specs, each either

- a plain string (exact name, or fnmatch pattern),
- ``"*"`` / ``"**"`` quantifiers (one level / any number of levels),
- a dict ``{"name": regex}`` and/or ``{"category": "idle"}`` and/or
  numeric guards ``{"time>": 0.5}``, ``{"count>=": 10}``.

:func:`query` returns the matched **nodes** (the node matched by the final
element of the pattern), de-duplicated, in pre-order.
"""

from __future__ import annotations

import fnmatch
import re
from typing import Any, Callable, Dict, List, Sequence, Union

from repro.errors import QuerySyntaxError
from repro.perf.calltree import CallTree, CallTreeNode

__all__ = ["parse_query", "query", "match_path"]

_NUMERIC_GUARD = re.compile(r"^(?P<metric>\w+)(?P<op>>=|<=|>|<|==)$")
_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
}


class _Element:
    """One compiled pattern element: quantifier + node predicate."""

    __slots__ = ("many", "predicate", "source")

    def __init__(self, many: bool, predicate: Callable[[CallTreeNode], bool], source: Any) -> None:
        self.many = many  # True for '**' (matches a chain of >= 0 nodes)
        self.predicate = predicate
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {'**' if self.many else ''}{self.source!r}>"


def _name_predicate(pattern: str) -> Callable[[CallTreeNode], bool]:
    if any(ch in pattern for ch in "*?["):
        return lambda node: fnmatch.fnmatchcase(node.name, pattern)
    return lambda node: node.name == pattern


def _dict_predicate(spec: Dict[str, Any]) -> Callable[[CallTreeNode], bool]:
    checks: List[Callable[[CallTreeNode], bool]] = []
    for key, value in spec.items():
        if key == "name":
            regex = re.compile(str(value))
            checks.append(lambda n, rx=regex: rx.fullmatch(n.name) is not None)
        elif key == "category":
            checks.append(lambda n, v=value: n.category == v)
        else:
            guard = _NUMERIC_GUARD.match(key)
            if not guard:
                raise QuerySyntaxError(f"unknown query key {key!r}")
            metric = guard.group("metric")
            op = _OPS[guard.group("op")]
            threshold = float(value)
            checks.append(
                lambda n, m=metric, op=op, t=threshold: op(
                    float(n.metrics.get(m, 0.0)), t
                )
            )
    return lambda node: all(check(node) for check in checks)


def _compile_element(spec: Any) -> _Element:
    if isinstance(spec, str):
        if spec == "**":
            return _Element(True, lambda n: True, spec)
        if spec == "*":
            return _Element(False, lambda n: True, spec)
        return _Element(False, _name_predicate(spec), spec)
    if isinstance(spec, dict):
        return _Element(False, _dict_predicate(spec), spec)
    if isinstance(spec, tuple) and len(spec) == 2:
        quant, inner = spec
        if quant not in ("*", "**", "."):
            raise QuerySyntaxError(f"unknown quantifier {quant!r}")
        element = _compile_element(inner)
        return _Element(quant == "**", element.predicate, spec)
    raise QuerySyntaxError(f"cannot compile query element {spec!r}")


def parse_query(pattern: Union[str, Sequence[Any]]) -> List[_Element]:
    """Compile a string or object dialect query into matcher elements."""
    if isinstance(pattern, str):
        text = pattern.strip()
        if not text:
            raise QuerySyntaxError("empty query")
        parts = [p for p in text.split("/") if p != ""]
        if not parts:
            raise QuerySyntaxError(f"no path elements in {pattern!r}")
        return [_compile_element(p) for p in parts]
    elements = [_compile_element(spec) for spec in pattern]
    if not elements:
        raise QuerySyntaxError("empty query")
    return elements


def match_path(nodes: Sequence[CallTreeNode], elements: Sequence[_Element]) -> bool:
    """True when a root-to-node chain matches the compiled pattern."""

    def _match(ni: int, ei: int) -> bool:
        if ei == len(elements):
            return ni == len(nodes)
        element = elements[ei]
        if element.many:
            # '**' with predicate true-for-all: match 0..k nodes.
            if _match(ni, ei + 1):
                return True
            return (
                ni < len(nodes)
                and element.predicate(nodes[ni])
                and _match(ni + 1, ei)
            )
        return (
            ni < len(nodes)
            and element.predicate(nodes[ni])
            and _match(ni + 1, ei + 1)
        )

    return _match(0, 0)


def query(tree: CallTree, pattern: Union[str, Sequence[Any]]) -> List[CallTreeNode]:
    """All nodes whose root path matches ``pattern``, pre-order."""
    elements = parse_query(pattern)
    matches: List[CallTreeNode] = []
    for node in tree.nodes():
        chain: List[CallTreeNode] = []
        cursor = node
        while cursor is not None and cursor.parent is not None:
            chain.append(cursor)
            cursor = cursor.parent
        chain.reverse()
        if match_path(chain, elements):
            matches.append(node)
    return matches
