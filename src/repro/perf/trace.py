"""Timeline tracing with Chrome-trace export.

A :class:`Tracer` records region begin/end *events* (not just aggregated
times) so the actual interleaving of producers and consumers can be
inspected. Timelines export to the Chrome trace-event JSON format
(``chrome://tracing`` / Perfetto), with one "thread" per process —
invaluable for seeing the coarse-barrier serialization vs DYAD's
pipelining at a glance.

The tracer piggybacks on the Caliper annotation layer: wrap an
:class:`~repro.perf.caliper.Annotator` with :meth:`Tracer.attach` and
every ``begin``/``end`` is mirrored as a timeline event.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import PerfError
from repro.perf.caliper import Annotator

__all__ = ["SpanEvent", "Tracer", "TracingAnnotator"]


@dataclass(frozen=True)
class SpanEvent:
    """One completed region occurrence on one process timeline."""

    process: str
    region: str
    category: Optional[str]
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.end - self.start


class TracingAnnotator(Annotator):
    """An annotator that also records every region occurrence."""

    def __init__(self, name: str, clock: Callable[[], float],
                 tracer: "Tracer") -> None:
        super().__init__(name, clock)
        self._tracer = tracer
        self._starts: List[float] = []

    def begin(self, region: str, category: Optional[str] = None) -> None:
        """Open a region and remember its start time for the span log."""
        super().begin(region, category)
        # Reuse the timestamp the base class just pushed: under a real
        # clock (time.monotonic) a second read would drift the span start
        # from the call-tree accounting.
        self._starts.append(self._stack[-1][1])

    def end(self, region: str) -> float:
        """Close a region, recording the completed span on the timeline."""
        category = self._stack[-1][2] if self._stack else None
        elapsed = super().end(region)
        start = self._starts.pop()
        self._tracer.record(
            SpanEvent(
                process=self.name,
                region=region,
                category=category,
                start=start,
                # The base class's single clock read for this end; keeps
                # span end == start + elapsed exactly.
                end=self.last_completed[1],
            )
        )
        return elapsed


class Tracer:
    """Collects span events across processes; exports Chrome trace JSON."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        self.events: List[SpanEvent] = []
        self._names: Dict[str, int] = {}

    def annotator(self, process_name: str) -> TracingAnnotator:
        """A tracing annotator for one process (names must be unique)."""
        if process_name in self._names:
            raise PerfError(f"duplicate process name {process_name!r}")
        self._names[process_name] = len(self._names)
        return TracingAnnotator(process_name, self.clock, self)

    def record(self, event: SpanEvent) -> None:
        """Append one completed span.

        Processes are assigned a tid on first sight, so spans recorded
        directly (without going through :meth:`annotator`) get their own
        Chrome-trace track and thread metadata instead of landing on the
        first process's tid 0.
        """
        if event.process not in self._names:
            self._names[event.process] = len(self._names)
        self.events.append(event)

    # -- queries ------------------------------------------------------------
    def spans(self, process: Optional[str] = None,
              region: Optional[str] = None) -> List[SpanEvent]:
        """Spans filtered by process and/or region, in completion order."""
        return [
            e for e in self.events
            if (process is None or e.process == process)
            and (region is None or e.region == region)
        ]

    def concurrency(self, region: str, at: float) -> int:
        """How many spans of ``region`` were open at time ``at``."""
        return sum(
            1 for e in self.events
            if e.region == region and e.start <= at < e.end
        )

    def overlap(self, process_a: str, process_b: str,
                include_idle: bool = False) -> float:
        """Seconds during which both processes were *working* concurrently.

        Idle spans (waiting at a barrier, polling, KVS watch) do not count
        as work unless ``include_idle=True``. The coarse-grained
        traditional sync therefore shows ~zero producer/consumer overlap
        (serialized phases), while DYAD shows near-total overlap.
        """
        def busy(process: str) -> List[List[float]]:
            # merge the process's working spans into busy intervals
            spans = sorted(
                (e for e in self.spans(process=process)
                 if include_idle or e.category != "idle"),
                key=lambda e: e.start,
            )
            merged: List[List[float]] = []
            for span in spans:
                if merged and span.start <= merged[-1][1]:
                    merged[-1][1] = max(merged[-1][1], span.end)
                else:
                    merged.append([span.start, span.end])
            return merged

        # Two-pointer sweep over the merged (sorted, disjoint) intervals:
        # O(n + m) instead of the pairwise O(n * m) product.
        a = busy(process_a)
        b = busy(process_b)
        total = 0.0
        ia = ib = 0
        while ia < len(a) and ib < len(b):
            lo = a[ia][0] if a[ia][0] > b[ib][0] else b[ib][0]
            hi = a[ia][1] if a[ia][1] < b[ib][1] else b[ib][1]
            if hi > lo:
                total += hi - lo
            if a[ia][1] <= b[ib][1]:
                ia += 1
            else:
                ib += 1
        return total

    # -- export ------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace-event format ('X' complete events, µs timestamps)."""
        trace_events = []
        for event in self.events:
            trace_events.append({
                "name": event.region,
                "cat": event.category or "default",
                "ph": "X",
                "ts": event.start * 1e6,
                "dur": event.duration * 1e6,
                "pid": 0,
                "tid": self._names.get(event.process, 0),
                "args": {"process": event.process},
            })
        thread_meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": name},
            }
            for name, tid in self._names.items()
        ]
        return {"traceEvents": thread_meta + trace_events,
                "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        """Write the Chrome trace JSON to a file."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)
