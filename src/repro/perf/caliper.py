"""Caliper-like region annotation.

Processes (simulated coroutines or real threads) mark the start and end of
named regions; nesting builds a call path. Each region carries a
*category* — ``movement``, ``idle``, or ``compute`` — matching the paper's
decomposition of production/consumption time into data-movement and idle
components (Figs. 5-8, 11-12).

An :class:`Annotator` belongs to one process; a :class:`Caliper` collects
the annotators of one run (one process per producer/consumer). Because
annotation reads a clock function (defaulting to the simulation clock), the
same machinery instruments the real-threads backend with ``time.monotonic``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import PerfError
from repro.perf.calltree import CallTree

__all__ = ["Category", "Annotator", "Caliper"]


class Category:
    """Region categories used in the movement/idle decomposition."""

    MOVEMENT = "movement"
    IDLE = "idle"
    COMPUTE = "compute"

    ALL = (MOVEMENT, IDLE, COMPUTE)


class Annotator:
    """Region annotation for one process.

    Not a context manager on purpose: simulated processes advance time by
    ``yield``-ing between ``begin`` and ``end``, which a ``with`` block
    cannot straddle cleanly in generator code.
    """

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.name = name
        self.clock = clock
        self.tree = CallTree(label=name)
        self._stack: List[Tuple[str, float, Optional[str]]] = []
        #: ``(region, end_time)`` of the most recently closed region —
        #: what a stalled process was last seen finishing (StallError
        #: diagnostics name this, making chaos repros readable).
        self.last_completed: Optional[Tuple[str, float]] = None

    @property
    def depth(self) -> int:
        """Current nesting depth."""
        return len(self._stack)

    def current_path(self) -> Tuple[str, ...]:
        """Names of the currently open regions, outermost first."""
        return tuple(name for name, _, _ in self._stack)

    def begin(self, region: str, category: Optional[str] = None) -> None:
        """Open a region. ``category`` defaults to the enclosing region's."""
        if category is not None and category not in Category.ALL:
            raise PerfError(f"unknown category {category!r}")
        if category is None and self._stack:
            category = self._stack[-1][2]
        self._stack.append((region, self.clock(), category))

    def end(self, region: str) -> float:
        """Close the innermost region (name-checked); returns its duration."""
        if not self._stack:
            raise PerfError(f"end({region!r}) with no open region")
        name, started, category = self._stack.pop()
        if name != region:
            self._stack.append((name, started, category))
            raise PerfError(
                f"region mismatch: end({region!r}) while {name!r} is open"
            )
        now = self.clock()
        elapsed = now - started
        node = self.tree.node(*self.current_path(), name)
        if category is not None:
            existing = node.metrics.get("category")
            if existing is not None and existing != category:
                # A clash must leave the annotator untouched: the stack
                # as it was, no time/count accumulated on the node.
                self._stack.append((name, started, category))
                raise PerfError(
                    f"category clash in {name!r}: {existing} != {category}"
                )
        node.add_metric("time", elapsed)
        node.add_metric("count", 1)
        if category is not None:
            node.metrics["category"] = category
        self.last_completed = (name, now)
        return elapsed

    def region(self, region: str, category: Optional[str] = None):
        """Context manager for non-yielding (real-time) regions."""
        annotator = self

        class _Region:
            def __enter__(self) -> "Annotator":
                annotator.begin(region, category)
                return annotator

            def __exit__(self, exc_type, exc, tb) -> None:
                annotator.end(region)

        return _Region()

    def finish(self) -> CallTree:
        """Validate balance and return the completed tree."""
        if self._stack:
            open_regions = " > ".join(self.current_path())
            raise PerfError(f"unclosed regions at finish: {open_regions}")
        return self.tree


class Caliper:
    """All annotators of one run, keyed by process name."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        self._annotators: Dict[str, Annotator] = {}

    def annotator(self, process_name: str) -> Annotator:
        """Create the annotator for a process (names must be unique)."""
        if process_name in self._annotators:
            raise PerfError(f"duplicate process name {process_name!r}")
        ann = Annotator(process_name, self.clock)
        self._annotators[process_name] = ann
        return ann

    def __contains__(self, process_name: str) -> bool:
        return process_name in self._annotators

    def __getitem__(self, process_name: str) -> Annotator:
        return self._annotators[process_name]

    def names(self) -> List[str]:
        """Process names in insertion order."""
        return list(self._annotators)

    def trees(self) -> Dict[str, CallTree]:
        """Finished trees of all processes."""
        return {name: ann.finish() for name, ann in self._annotators.items()}
