"""Call-tree data model.

A :class:`CallTree` is a rooted tree of named regions. Each node carries a
metrics dictionary; the annotation layer populates ``time`` (inclusive
seconds), ``count`` (visits), and ``category``. Trees support deep merging
(summing metrics) — used to aggregate the per-iteration structure within a
process — and traversal/serialization used by Thicket and the reports.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PerfError

__all__ = ["CallTreeNode", "CallTree", "diff_trees"]


class CallTreeNode:
    """One region in a call tree."""

    __slots__ = ("name", "parent", "children", "metrics")

    def __init__(self, name: str, parent: Optional["CallTreeNode"] = None) -> None:
        self.name = name
        self.parent = parent
        self.children: Dict[str, "CallTreeNode"] = {}
        self.metrics: Dict[str, Any] = {}

    # -- structure ------------------------------------------------------------
    def child(self, name: str) -> "CallTreeNode":
        """Get-or-create a child region."""
        node = self.children.get(name)
        if node is None:
            node = CallTreeNode(name, parent=self)
            self.children[name] = node
        return node

    def path(self) -> Tuple[str, ...]:
        """Names from the root (exclusive) down to this node."""
        parts: List[str] = []
        node: Optional[CallTreeNode] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return tuple(reversed(parts))

    def walk(self) -> Iterator["CallTreeNode"]:
        """Pre-order traversal of this subtree, children in name order."""
        yield self
        for name in sorted(self.children):
            yield from self.children[name].walk()

    # -- metrics ------------------------------------------------------------
    def add_metric(self, key: str, value: float) -> None:
        """Accumulate a numeric metric."""
        self.metrics[key] = self.metrics.get(key, 0.0) + value

    @property
    def time(self) -> float:
        """Inclusive time in seconds (0 when never visited)."""
        return float(self.metrics.get("time", 0.0))

    @property
    def count(self) -> int:
        """Number of visits."""
        return int(self.metrics.get("count", 0))

    @property
    def category(self) -> Optional[str]:
        """Region category ('movement' / 'idle' / 'compute'), if annotated."""
        return self.metrics.get("category")

    def exclusive_time(self) -> float:
        """Inclusive time minus the children's inclusive time."""
        return self.time - sum(c.time for c in self.children.values())

    def __repr__(self) -> str:
        return f"<CallTreeNode {'/'.join(self.path()) or '<root>'} t={self.time:.6f}>"


class CallTree:
    """A rooted call tree with helpers for lookup, merge, and flattening."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.root = CallTreeNode("<root>")

    # -- lookup ------------------------------------------------------------
    def node(self, *path: str) -> CallTreeNode:
        """Node at ``path``, creating intermediate nodes as needed."""
        node = self.root
        for name in path:
            node = node.child(name)
        return node

    def find(self, *path: str) -> Optional[CallTreeNode]:
        """Node at ``path`` or ``None`` (never creates)."""
        node = self.root
        for name in path:
            node = node.children.get(name)
            if node is None:
                return None
        return node

    def nodes(self) -> Iterator[CallTreeNode]:
        """All nodes except the synthetic root, pre-order."""
        for node in self.root.walk():
            if node.parent is not None:
                yield node

    def paths(self) -> List[Tuple[str, ...]]:
        """All node paths, pre-order."""
        return [n.path() for n in self.nodes()]

    # -- combination ------------------------------------------------------------
    def merge(self, other: "CallTree") -> "CallTree":
        """Deep-merge ``other`` into this tree.

        Numeric metrics are summed; non-numeric metrics (e.g. ``category``)
        must agree, otherwise :class:`PerfError` is raised — a category
        clash means two semantically different regions share a path. The
        clash check walks both trees *before* anything is mutated, so a
        failed merge leaves this tree exactly as it was.
        """

        def _validate(dst: CallTreeNode, src: CallTreeNode) -> None:
            for key, value in src.metrics.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    continue
                if key in dst.metrics and dst.metrics[key] != value:
                    raise PerfError(
                        f"metric {key!r} clash at {'/'.join(src.path())}: "
                        f"{dst.metrics[key]!r} != {value!r}"
                    )
            for name, child in src.children.items():
                dst_child = dst.children.get(name)
                if dst_child is not None:
                    _validate(dst_child, child)

        def _merge(dst: CallTreeNode, src: CallTreeNode) -> None:
            for key, value in src.metrics.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    dst.add_metric(key, value)
                else:
                    dst.metrics[key] = value
            for name in src.children:
                _merge(dst.child(name), src.children[name])

        _validate(self.root, other.root)
        _merge(self.root, other.root)
        return self

    def copy(self) -> "CallTree":
        """Deep copy."""
        clone = CallTree(self.label)
        clone.merge(self)
        return clone

    # -- reductions ------------------------------------------------------------
    def total(self, metric: str = "time", where: Optional[Callable[[CallTreeNode], bool]] = None) -> float:
        """Sum a metric over top-level regions (or a filtered set of nodes).

        With ``where`` given, sums over **all** matching nodes; without it,
        sums only direct children of the root (avoiding double counting of
        nested inclusive times).
        """
        if where is None:
            return float(
                sum(c.metrics.get(metric, 0.0) for c in self.root.children.values())
            )
        return float(
            sum(n.metrics.get(metric, 0.0) for n in self.nodes() if where(n))
        )

    def total_by_category(self, category: str) -> float:
        """Sum of *exclusive* time over nodes in a category.

        Exclusive time is used so a category total never double-counts a
        parent and its child.
        """
        return float(
            sum(
                max(n.exclusive_time(), 0.0)
                for n in self.nodes()
                if n.category == category
            )
        )

    def flat(self, metric: str = "time") -> Dict[Tuple[str, ...], float]:
        """Mapping path -> metric for every node."""
        return {
            n.path(): float(n.metrics.get(metric, 0.0)) for n in self.nodes()
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""

        def _node(node: CallTreeNode) -> Dict[str, Any]:
            return {
                "name": node.name,
                "metrics": dict(node.metrics),
                "children": [
                    _node(node.children[k]) for k in sorted(node.children)
                ],
            }

        return {"label": self.label, "tree": _node(self.root)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CallTree":
        """Inverse of :meth:`to_dict`."""
        tree = cls(payload.get("label", ""))

        def _load(dst: CallTreeNode, src: Dict[str, Any]) -> None:
            dst.metrics.update(src.get("metrics", {}))
            for child in src.get("children", []):
                _load(dst.child(child["name"]), child)

        _load(tree.root, payload["tree"])
        return tree

    def render(self, metric: str = "time", unit: float = 1.0, fmt: str = "{:.3f}") -> str:
        """ASCII rendering of the tree (Thicket-style, cf. Figs. 9-10)."""
        lines: List[str] = [self.label or "<calltree>"]

        def _render(node: CallTreeNode, prefix: str) -> None:
            names = sorted(node.children)
            for i, name in enumerate(names):
                child = node.children[name]
                last = i == len(names) - 1
                stem = "`- " if last else "|- "
                value = child.metrics.get(metric, 0.0) / unit if unit else 0.0
                cat = child.category
                suffix = f" [{cat}]" if cat else ""
                lines.append(
                    f"{prefix}{stem}{name}: {fmt.format(value)}{suffix}"
                )
                _render(child, prefix + ("   " if last else "|  "))

        _render(self.root, "")
        return "\n".join(lines)


def diff_trees(numerator: CallTree, denominator: CallTree,
               metric: str = "time") -> CallTree:
    """Per-node ratio tree: ``numerator[path] / denominator[path]``.

    The Thicket-style speedup view: apply to two aggregated consumer trees
    (e.g. STMV vs JAC, or Lustre vs DYAD) to see *which region* grew. A
    node missing on either side gets a ``ratio`` of ``inf`` (only in the
    numerator) or 0 (only in the denominator); both sides' raw values are
    kept as ``lhs``/``rhs`` metrics.
    """
    out = CallTree(label=f"{numerator.label or 'lhs'} / "
                         f"{denominator.label or 'rhs'}")
    paths = set(numerator.flat(metric)) | set(denominator.flat(metric))
    for path in sorted(paths):
        lhs_node = numerator.find(*path)
        rhs_node = denominator.find(*path)
        lhs = float(lhs_node.metrics.get(metric, 0.0)) if lhs_node else 0.0
        rhs = float(rhs_node.metrics.get(metric, 0.0)) if rhs_node else 0.0
        node = out.node(*path)
        node.metrics["lhs"] = lhs
        node.metrics["rhs"] = rhs
        if rhs > 0:
            node.metrics["ratio"] = lhs / rhs
        else:
            node.metrics["ratio"] = float("inf") if lhs > 0 else 0.0
        # Prefer the numerator's category, but fall back to the
        # denominator's — a node present on both sides may only carry a
        # category on one of them.
        category = lhs_node.category if lhs_node is not None else None
        if category is None and rhs_node is not None:
            category = rhs_node.category
        if category is not None:
            node.metrics["category"] = category
    return out
