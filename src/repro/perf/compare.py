"""Statistical comparison of measurement ensembles.

The paper reports speedup factors from 10-run means. This module provides
the machinery to attach uncertainty to such factors: bootstrap confidence
intervals for the ratio of two samples' means, and a simple significance
check. Used by the ablation analysis and available to downstream studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import PerfError

__all__ = ["SpeedupEstimate", "bootstrap_speedup", "summarize_sample"]


@dataclass(frozen=True)
class SpeedupEstimate:
    """mean(baseline)/mean(candidate) with a bootstrap confidence interval."""

    speedup: float
    low: float
    high: float
    confidence: float
    n_baseline: int
    n_candidate: int

    @property
    def significant(self) -> bool:
        """True when the CI excludes 1.0 (a real difference either way)."""
        return self.low > 1.0 or self.high < 1.0

    def __str__(self) -> str:
        return (
            f"{self.speedup:.2f}x "
            f"[{self.low:.2f}, {self.high:.2f}] @ {self.confidence:.0%}"
        )


def bootstrap_speedup(
    baseline: Sequence[float],
    candidate: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> SpeedupEstimate:
    """Bootstrap CI for ``mean(baseline) / mean(candidate)``.

    ``baseline`` is the slower/reference system (e.g. Lustre run times) and
    ``candidate`` the one whose advantage is being quantified (e.g. DYAD),
    so values > 1 mean the candidate is faster.
    """
    base = np.asarray(list(baseline), dtype=float)
    cand = np.asarray(list(candidate), dtype=float)
    if base.size == 0 or cand.size == 0:
        raise PerfError("need at least one observation on each side")
    if np.any(cand <= 0) or np.any(base <= 0):
        raise PerfError("times must be positive")
    if not 0.5 <= confidence < 1.0:
        raise PerfError(f"confidence must be in [0.5, 1), got {confidence}")
    point = float(base.mean() / cand.mean())
    rng = np.random.default_rng(seed)
    idx_b = rng.integers(0, base.size, size=(n_resamples, base.size))
    idx_c = rng.integers(0, cand.size, size=(n_resamples, cand.size))
    ratios = base[idx_b].mean(axis=1) / cand[idx_c].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(ratios, [alpha, 1.0 - alpha])
    return SpeedupEstimate(
        speedup=point,
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_baseline=int(base.size),
        n_candidate=int(cand.size),
    )


def summarize_sample(values: Sequence[float]) -> Tuple[float, float, float, float]:
    """(mean, std, min, max) of a sample — the paper's whisker data."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise PerfError("empty sample")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return float(arr.mean()), std, float(arr.min()), float(arr.max())
