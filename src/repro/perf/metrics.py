"""Time-series telemetry: substrate utilization timelines.

The Caliper/trace layer observes the workflow *processes*; the substrates
themselves (channels, server queues, devices, the KVS) only kept lifetime
counters with no time resolution, so a resilience or chaos run could not
show *when* a fault window bit or how utilization recovered. This module
closes that gap the way Darshan's heatmap module does for POSIX/Lustre
workloads: per-resource utilization timelines alongside the per-process
span timelines.

Two instrument kinds cover every probe point:

- :class:`Counter` — a monotonically non-decreasing total (bytes moved,
  KVS commits, retries);
- :class:`Gauge` — an instantaneous level (active flows, queue depth,
  utilization, staged bytes).

Both *sample on change*: a sample ``(t, value)`` is appended only when the
value actually changes, with the timestamp read from the simulation clock.
There is no wall-clock tick anywhere, so a metered run is deterministic
and — crucially — **pure observation**: instruments never advance the
clock, draw randomness, or touch substrate state, and every experiment
fingerprint is bit-identical with telemetry on or off (asserted by
``tests/workflow/test_telemetry.py``).

A :class:`MetricsTimeline` owns the instruments of one run plus *instant
annotations* (the fault injector marks every window apply/revert). Export
paths:

- :func:`merge_chrome_trace` — one Chrome-trace/Perfetto document merging
  the span tracer's ``'X'`` events with counter ``'C'`` events and the
  fault annotations as ``'i'`` instant events;
- :meth:`MetricsTimeline.write_json` / :meth:`~MetricsTimeline.write_csv`
  — plain dumps for ad-hoc analysis.

See ``docs/observability.md`` for the probe-point inventory and a
Perfetto how-to.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import PerfError

__all__ = [
    "Counter",
    "Gauge",
    "MetricsTimeline",
    "merge_chrome_trace",
    "write_chrome_trace",
]


class Instrument:
    """Base of both instrument kinds: a named, sampled-on-change series."""

    kind = "instrument"

    __slots__ = ("name", "clock", "samples", "_value")

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.name = name
        self.clock = clock
        #: ``(time, value)`` samples, appended on every change (and once
        #: at creation so every series anchors the idle level at t=0).
        self.samples: List[Tuple[float, float]] = []
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current level (counters: lifetime total)."""
        return self._value

    def _record(self, value: float) -> None:
        self._value = value
        self.samples.append((self.clock(), value))

    def series(self) -> List[Tuple[float, float]]:
        """The ``(time, value)`` samples in recording order."""
        return list(self.samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name!r} value={self._value} "
                f"samples={len(self.samples)}>")


class Counter(Instrument):
    """A monotonically non-decreasing total, sampled on change."""

    kind = "counter"

    __slots__ = ()

    def add(self, delta: float) -> None:
        """Accumulate ``delta`` (must be >= 0); zero deltas record nothing."""
        if delta < 0:
            raise PerfError(
                f"counter {self.name!r}: negative increment {delta} "
                "(use a Gauge for levels that can fall)"
            )
        if delta == 0:
            return
        self._record(self._value + delta)

    def inc(self) -> None:
        """Shorthand for ``add(1)``."""
        self._record(self._value + 1.0)


class Gauge(Instrument):
    """An instantaneous level, sampled on change."""

    kind = "gauge"

    __slots__ = ()

    def set(self, value: float) -> None:
        """Move the gauge to ``value``; unchanged values record nothing."""
        if value != self._value:
            self._record(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (either sign)."""
        if delta != 0:
            self._record(self._value + delta)


class MetricsTimeline:
    """All instruments (and instant annotations) of one run.

    Substrates create instruments through :meth:`counter`/:meth:`gauge`
    when the workflow runner attaches telemetry; names are unique across
    the run and dot-namespaced by substrate (``net.node0.egress.flows``,
    ``lustre.oss0.rpcs.queued``, ``kvs.commits`` …).
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        self._instruments: Dict[str, Instrument] = {}
        #: ``(time, name, args)`` instant annotations (fault windows)
        self.annotations: List[Tuple[float, str, Dict[str, Any]]] = []

    # -- instrument registry -------------------------------------------------
    def _instrument(self, name: str, cls) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise PerfError(
                    f"instrument {name!r} already exists as a "
                    f"{existing.kind}, not a {cls.kind}"
                )
            return existing
        instrument = cls(name, self.clock)
        # Anchor the series: every timeline starts from its idle level, so
        # plots and the monotone-time test never see an empty prefix.
        instrument.samples.append((self.clock(), 0.0))
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter called ``name``."""
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the gauge called ``name``."""
        return self._instrument(name, Gauge)

    def instant(self, name: str, **args: Any) -> None:
        """Record an instant annotation (e.g. a fault window edge)."""
        self.annotations.append((self.clock(), name, args))

    # -- queries -------------------------------------------------------------
    def names(self) -> List[str]:
        """Instrument names in creation order."""
        return list(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __getitem__(self, name: str) -> Instrument:
        try:
            return self._instruments[name]
        except KeyError:
            raise PerfError(f"no instrument {name!r}") from None

    def series(self, name: str) -> List[Tuple[float, float]]:
        """The samples of one instrument."""
        return self[name].series()

    # -- export --------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dump of every series and annotation."""
        return {
            "clock": "simulation-seconds",
            "instruments": {
                name: {
                    "kind": inst.kind,
                    "samples": [[t, v] for t, v in inst.samples],
                }
                for name, inst in self._instruments.items()
            },
            "annotations": [
                [t, name, dict(args)] for t, name, args in self.annotations
            ],
        }

    def write_json(self, path) -> None:
        """Write :meth:`to_dict` to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh)

    def write_csv(self, path) -> None:
        """Flat ``time_s,instrument,value`` rows in global time order.

        Ties are broken by instrument creation order, so the file is a
        deterministic function of the run.
        """
        rows = []
        for order, (name, inst) in enumerate(self._instruments.items()):
            for t, v in inst.samples:
                rows.append((t, order, name, v))
        rows.sort(key=lambda r: (r[0], r[1]))
        with open(path, "w") as fh:
            fh.write("time_s,instrument,value\n")
            for t, _, name, v in rows:
                fh.write(f"{t!r},{name},{v!r}\n")

    def to_chrome_events(self, pid: int = 1) -> List[dict]:
        """Chrome trace-event list: ``'C'`` counters + ``'i'`` instants.

        All substrate telemetry lives on its own ``pid`` (default 1, the
        span tracer uses 0) with full process/thread metadata, so Perfetto
        groups the counter tracks under one "substrates" lane beneath the
        per-process span tracks.
        """
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "substrates"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "telemetry"},
            },
        ]
        for name, inst in self._instruments.items():
            for t, v in inst.samples:
                events.append({
                    "name": name,
                    "ph": "C",
                    "ts": t * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": v},
                })
        for t, name, args in self.annotations:
            events.append({
                "name": name,
                "ph": "i",
                "s": "g",  # global scope: a fault window bites everything
                "ts": t * 1e6,
                "pid": pid,
                "tid": 0,
                "args": dict(args),
            })
        return events


def merge_chrome_trace(tracer=None, timeline: Optional[MetricsTimeline] = None) -> dict:
    """One Chrome-trace document from a span tracer and/or a timeline.

    The span tracer's ``'X'`` events keep pid 0 (one tid per workflow
    process); the timeline's counters and instants land on pid 1. Either
    side may be ``None``.
    """
    if tracer is not None:
        doc = tracer.to_chrome_trace()
    else:
        doc = {"traceEvents": [], "displayTimeUnit": "ms"}
    if timeline is not None:
        doc["traceEvents"].extend(timeline.to_chrome_events())
    return doc


def write_chrome_trace(path, tracer=None,
                       timeline: Optional[MetricsTimeline] = None) -> None:
    """Write the merged Chrome trace JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(merge_chrome_trace(tracer, timeline), fh)
