"""Text rendering helpers for experiment reports.

Experiments print their results as fixed-width tables (the textual
equivalent of the paper's bar charts) plus rendered call trees for the
Thicket figures. Keeping the renderer here keeps the experiment modules
focused on workload logic.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

__all__ = ["table", "ratio", "fmt_sig"]


def fmt_sig(value: float, digits: int = 4) -> str:
    """Format with a fixed number of significant digits."""
    if value == 0:
        return "0"
    return f"{value:.{digits}g}"


def ratio(a: float, b: float) -> float:
    """Safe ratio ``a/b`` (0 when b is 0)."""
    return a / b if b else 0.0


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    fmt: Callable[[Any], str] = lambda v: v if isinstance(v, str) else fmt_sig(float(v)),
) -> str:
    """Render a fixed-width table.

    Numeric cells are formatted with :func:`fmt_sig`; strings pass through.
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
