"""Thicket-like ensembles of call trees.

A :class:`Thicket` holds many call trees — one per process per run — each
tagged with metadata (run index, role, system, workload …). It supports
metadata filtering, per-node statistics across the ensemble, aggregation
into a composite tree (what Figs. 9-10 render), and call-path queries over
the composite.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import PerfError
from repro.perf.calltree import CallTree, CallTreeNode
from repro.perf.query import query as _query

__all__ = ["Thicket", "NodeStats"]


class NodeStats:
    """Cross-ensemble statistics of one metric at one call path."""

    __slots__ = ("path", "values")

    def __init__(self, path: Tuple[str, ...], values: np.ndarray) -> None:
        self.path = path
        self.values = values

    @property
    def n(self) -> int:
        """Number of trees contributing a value."""
        return int(self.values.size)

    @property
    def mean(self) -> float:
        """Ensemble mean."""
        return float(np.mean(self.values)) if self.values.size else 0.0

    @property
    def std(self) -> float:
        """Ensemble standard deviation (ddof=1 when possible)."""
        if self.values.size < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def total(self) -> float:
        """Ensemble sum."""
        return float(np.sum(self.values)) if self.values.size else 0.0

    @property
    def minimum(self) -> float:
        """Ensemble minimum."""
        return float(np.min(self.values)) if self.values.size else 0.0

    @property
    def maximum(self) -> float:
        """Ensemble maximum."""
        return float(np.max(self.values)) if self.values.size else 0.0

    def __repr__(self) -> str:
        return (
            f"<NodeStats {'/'.join(self.path)} n={self.n} "
            f"mean={self.mean:.6g} std={self.std:.6g}>"
        )


class Thicket:
    """An ensemble of tagged call trees."""

    def __init__(self) -> None:
        self._trees: List[CallTree] = []
        self._metadata: List[Dict[str, Any]] = []

    # -- construction ------------------------------------------------------------
    def add(self, tree: CallTree, **metadata: Any) -> None:
        """Add a tree with arbitrary metadata tags."""
        self._trees.append(tree)
        self._metadata.append(dict(metadata))

    def extend(self, other: "Thicket") -> None:
        """Append all trees of another thicket."""
        self._trees.extend(other._trees)
        self._metadata.extend(other._metadata)

    def __len__(self) -> int:
        return len(self._trees)

    def trees(self) -> List[CallTree]:
        """The underlying trees (shared, do not mutate)."""
        return list(self._trees)

    def metadata(self) -> List[Dict[str, Any]]:
        """Tags of each tree, parallel to :meth:`trees`."""
        return [dict(m) for m in self._metadata]

    # -- selection ------------------------------------------------------------
    def filter(self, predicate_or_none: Optional[Callable[[Dict[str, Any]], bool]] = None, **tags: Any) -> "Thicket":
        """Sub-ensemble by metadata equality (``role='consumer'``) or predicate."""
        out = Thicket()
        for tree, meta in zip(self._trees, self._metadata):
            if predicate_or_none is not None and not predicate_or_none(meta):
                continue
            if any(meta.get(k) != v for k, v in tags.items()):
                continue
            out.add(tree, **meta)
        return out

    def groupby(self, key: str) -> Dict[Any, "Thicket"]:
        """Partition the ensemble by a metadata key."""
        groups: Dict[Any, Thicket] = {}
        for tree, meta in zip(self._trees, self._metadata):
            groups.setdefault(meta.get(key), Thicket()).add(tree, **meta)
        return groups

    # -- statistics ------------------------------------------------------------
    def stats(self, metric: str = "time") -> Dict[Tuple[str, ...], NodeStats]:
        """Per-call-path statistics of ``metric`` across the ensemble.

        A tree missing a path simply contributes no value (this matches
        Thicket's sparse dataframe semantics).
        """
        collected: Dict[Tuple[str, ...], List[float]] = {}
        for tree in self._trees:
            for path, value in tree.flat(metric).items():
                collected.setdefault(path, []).append(value)
        return {
            path: NodeStats(path, np.asarray(values, dtype=float))
            for path, values in collected.items()
        }

    def node_stats(self, *path: str, metric: str = "time") -> NodeStats:
        """Statistics for one exact call path."""
        stats = self.stats(metric)
        key = tuple(path)
        if key not in stats:
            raise PerfError(f"no tree contains path {'/'.join(key)!r}")
        return stats[key]

    def mean_total(self, metric: str = "time", category: Optional[str] = None) -> float:
        """Mean per-tree total of a metric (optionally category-restricted)."""
        if not self._trees:
            return 0.0
        totals = []
        for tree in self._trees:
            if category is None:
                totals.append(tree.total(metric))
            else:
                totals.append(tree.total_by_category(category))
        return float(np.mean(totals))

    # -- composition ------------------------------------------------------------
    def aggregate(self, how: str = "mean") -> CallTree:
        """Composite tree with per-node aggregated numeric metrics.

        ``how`` is ``mean`` or ``sum``. Counts are aggregated the same way
        as times, so a mean composite shows per-tree-average visit counts.
        """
        if how not in ("mean", "sum"):
            raise PerfError(f"unknown aggregation {how!r}")
        composite = CallTree(label=f"{how} of {len(self._trees)} trees")
        contributions: Dict[Tuple[str, ...], int] = {}
        for tree in self._trees:
            for node in tree.nodes():
                path = node.path()
                dst = composite.node(*path)
                contributions[path] = contributions.get(path, 0) + 1
                for key, value in node.metrics.items():
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        dst.add_metric(key, value)
                    else:
                        dst.metrics.setdefault(key, value)
        if how == "mean":
            for node in composite.nodes():
                n = contributions.get(node.path(), 1)
                for key, value in list(node.metrics.items()):
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        node.metrics[key] = value / n
        return composite

    def query(self, pattern: Union[str, Sequence[Any]], how: str = "mean") -> List[CallTreeNode]:
        """Call-path query over the aggregated composite tree."""
        return _query(self.aggregate(how), pattern)

    def to_table(self, metric: str = "time") -> Dict[str, List[Any]]:
        """Thicket's tabular view, as plain columns (no pandas needed).

        One row per (tree, call path) with the metric value and every
        metadata tag as its own column. Feed it to ``csv.writer`` via
        ``zip(*table.values())`` or into pandas with
        ``pd.DataFrame(table)``.
        """
        tag_keys = sorted({k for meta in self._metadata for k in meta})
        columns: Dict[str, List[Any]] = {"path": [], metric: []}
        for key in tag_keys:
            columns[key] = []
        for tree, meta in zip(self._trees, self._metadata):
            for path, value in tree.flat(metric).items():
                columns["path"].append("/".join(path))
                columns[metric].append(value)
                for key in tag_keys:
                    columns[key].append(meta.get(key))
        return columns
