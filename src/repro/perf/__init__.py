"""Performance instrumentation and analysis tools.

The paper collects data with Caliper and analyzes it with Thicket and the
Hatchet call-path query language. This package provides working equivalents:

- :mod:`repro.perf.calltree` — the call-tree data model (hierarchical
  regions with per-node metrics);
- :mod:`repro.perf.caliper` — region annotation for simulated (and real)
  processes: ``begin``/``end`` pairs build a per-process call tree with
  inclusive times, visit counts, and a movement/idle/compute category;
- :mod:`repro.perf.thicket` — an ensemble of call trees (many processes ×
  many runs) with statistical aggregation across the ensemble;
- :mod:`repro.perf.query` — a small call-path query language
  (``"*" / name / {"name": "regex"}`` path patterns, Hatchet-style);
- :mod:`repro.perf.report` — text rendering of trees and figure tables;
- :mod:`repro.perf.trace` — timeline tracing with Chrome-trace export
  (see producer/consumer overlap, not just totals);
- :mod:`repro.perf.metrics` — substrate telemetry timelines
  (``Counter``/``Gauge`` instruments sampled on change, merged into the
  Chrome trace as counter tracks; see ``docs/observability.md``);
- :mod:`repro.perf.compare` — bootstrap confidence intervals for speedup
  factors.
"""

from repro.perf.caliper import Annotator, Caliper, Category
from repro.perf.compare import SpeedupEstimate, bootstrap_speedup
from repro.perf.metrics import (
    Counter,
    Gauge,
    MetricsTimeline,
    merge_chrome_trace,
    write_chrome_trace,
)
from repro.perf.trace import SpanEvent, Tracer, TracingAnnotator
from repro.perf.calltree import CallTree, CallTreeNode, diff_trees
from repro.perf.query import parse_query, query
from repro.perf.thicket import Thicket

__all__ = [
    "Annotator",
    "Caliper",
    "Category",
    "CallTree",
    "CallTreeNode",
    "diff_trees",
    "parse_query",
    "query",
    "Thicket",
    "SpeedupEstimate",
    "bootstrap_speedup",
    "SpanEvent",
    "Tracer",
    "TracingAnnotator",
    "Counter",
    "Gauge",
    "MetricsTimeline",
    "merge_chrome_trace",
    "write_chrome_trace",
]
