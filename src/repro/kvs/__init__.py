"""Flux-KVS-like key-value store substrate.

DYAD's loosely-coupled synchronization and global metadata management are
built on the workload manager's key-value store (Flux KVS in the real
system). This package models that store: a single server with a FIFO
service queue reachable over the cluster fabric, supporting ``commit``,
``lookup``, and blocking ``wait_for`` (watch) operations.

The server queue is the contention point behind the paper's Fig. 9
observation that KVS stress drops when data movement grows (larger frames
spread the consumers' lookups in time).
"""

from repro.kvs.store import KVS, KVSConfig

__all__ = ["KVS", "KVSConfig"]
