"""The key-value store model.

One KVS server lives on a designated broker node. Every operation is an
RPC: request message over the fabric, FIFO queueing at the server, service
time, response message. ``wait_for`` registers a watch; when the key is
later committed the server pushes a notification message to each watcher.

Keys are namespaced strings; values are arbitrary small Python objects
(DYAD stores file ownership records). Value transport cost is modelled by
``value_size`` bytes per message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.cluster.network import Fabric
from repro.errors import ConfigError, KeyNotFound
from repro.sim.core import Environment, Event
from repro.sim.resources import Resource, Signal
from repro.units import usec

__all__ = ["KVSConfig", "KVS"]

#: Sentinel a dropped watch delivers instead of a real value: the broker
#: lost its watch table (crash/restart) and the wake-up the watcher was
#: promised will never arrive. ``wait_for`` recovers by re-arming.
_LOST = object()


@dataclass(frozen=True)
class KVSConfig:
    """Calibration constants for the KVS server."""

    commit_service: float = usec(40.0)   # per commit at the server
    lookup_service: float = usec(20.0)   # per lookup at the server
    watch_service: float = usec(20.0)    # registering a watch
    server_capacity: int = 1             # service threads (FIFO queue)
    value_size: int = 256                # bytes per request/response message
    watch_rearm_delay: float = usec(500.0)  # backoff before re-arming a dropped watch

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid values."""
        if min(self.commit_service, self.lookup_service, self.watch_service) < 0:
            raise ConfigError("service times must be non-negative")
        if self.server_capacity < 1:
            raise ConfigError("server_capacity must be >= 1")
        if self.value_size < 0:
            raise ConfigError("value_size must be non-negative")
        if self.watch_rearm_delay < 0:
            raise ConfigError("watch_rearm_delay must be non-negative")


@dataclass
class KVSStats:
    """Lifetime operation counters (used by tests and Fig. 9 analysis)."""

    commits: int = 0
    lookups: int = 0
    watches: int = 0
    total_queue_wait: float = 0.0
    dropped_watches: int = 0   # armed watches lost to a broker crash/restart
    lost_wakeups: int = 0      # watcher-side recoveries from a dropped watch

    @property
    def mean_queue_wait(self) -> float:
        """Average server queueing delay per operation."""
        ops = self.commits + self.lookups + self.watches
        return self.total_queue_wait / ops if ops else 0.0


class KVS:
    """A key-value store served from ``server_node`` on the fabric."""

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        server_node: str,
        config: Optional[KVSConfig] = None,
        attach: bool = True,
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.server_node = server_node
        self.config = config or KVSConfig()
        self.config.validate()
        if attach:
            fabric.attach(server_node)
        self._data: Dict[str, Any] = {}
        self._signals: Dict[str, Signal] = {}
        self.queue = Resource(env, self.config.server_capacity)
        self.stats = KVSStats()
        # telemetry counters (None until attach_metrics)
        self._m_commits = None
        self._m_lookups = None
        self._m_watches = None
        self._m_wakeups = None

    def attach_metrics(self, timeline) -> None:
        """Meter the server: ``kvs.rpcs`` queue occupancy plus
        ``kvs.commits`` / ``kvs.lookups`` / ``kvs.watches`` /
        ``kvs.watch_wakeups`` operation counters.
        """
        self.queue.attach_metrics(timeline, "kvs.rpcs")
        self._m_commits = timeline.counter("kvs.commits")
        self._m_lookups = timeline.counter("kvs.lookups")
        self._m_watches = timeline.counter("kvs.watches")
        self._m_wakeups = timeline.counter("kvs.watch_wakeups")

    # -- server internals --------------------------------------------------------
    def _signal(self, key: str) -> Signal:
        sig = self._signals.get(key)
        if sig is None:
            sig = Signal(self.env)
            self._signals[key] = sig
        return sig

    def _rpc(self, client: str, service: float) -> Generator:
        """Round trip with queueing; returns server queue wait."""
        yield from self.fabric.message(client, self.server_node, self.config.value_size)
        waited = yield from self.queue.acquire(service)
        yield from self.fabric.message(self.server_node, client, self.config.value_size)
        self.stats.total_queue_wait += waited
        return waited

    # -- client API ---------------------------------------------------------------
    def exists(self, key: str) -> bool:
        """Untimed server-state peek (tests/assertions only)."""
        return key in self._data

    def value(self, key: str) -> Any:
        """Untimed server-state read (tests/assertions only)."""
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFound(key) from None

    def commit(self, client: str, key: str, value: Any) -> Generator:
        """Generator: publish ``key=value``; returns elapsed seconds.

        Commit is globally visible once the RPC completes; watchers are
        woken through a pushed notification paying one message latency.
        """
        start = self.env.now
        yield from self._rpc(client, self.config.commit_service)
        self._data[key] = value
        self.stats.commits += 1
        if self._m_commits is not None:
            self._m_commits.inc()
        sig = self._signals.get(key)
        if sig is not None and not sig.latched:
            woken = sig.fire_once(value)
            if self._m_wakeups is not None:
                self._m_wakeups.add(woken)
        return self.env.now - start

    def lookup(self, client: str, key: str) -> Generator:
        """Generator: fetch a committed value; raises :class:`KeyNotFound`.

        The RPC cost is paid even for a miss (the server must search).
        """
        yield from self._rpc(client, self.config.lookup_service)
        self.stats.lookups += 1
        if self._m_lookups is not None:
            self._m_lookups.inc()
        if key not in self._data:
            raise KeyNotFound(key)
        return self._data[key]

    def drop_watches(self) -> int:
        """The broker lost its watch table (crash/restart fault surface).

        Every armed, un-latched watch is woken with the ``_LOST`` sentinel
        instead of a value; those watchers recover inside :meth:`wait_for`
        by backing off ``watch_rearm_delay`` and re-registering. Returns
        how many watches were dropped.
        """
        dropped = 0
        for sig in self._signals.values():
            if not sig.latched:
                dropped += sig.fire(_LOST)
        self.stats.dropped_watches += dropped
        return dropped

    def wait_for(self, client: str, key: str) -> Generator:
        """Generator: block until ``key`` is committed; returns its value.

        Models a KVS watch: one registration RPC, then a pushed
        notification (one message latency) when the commit happens. If the
        key already exists, only the registration RPC is paid.

        Exactly-once delivery holds even at timestep boundaries: a commit
        landing while the registration RPC is in flight is caught by the
        post-registration data check (no notification ever fires for it,
        because the commit latches the key's signal with no waiter parked
        yet — and a latched signal is never re-fired by later commits), and
        a watcher parked in the same timestep as the commit is woken by
        exactly one ``fire_once``. When the broker drops its watch table
        (:meth:`drop_watches`, armed by ``dyad_crash``/``node_crash``
        faults) the parked watcher receives a loss sentinel and recovers:
        back off ``watch_rearm_delay``, pay a fresh registration RPC,
        re-check the data, and re-park — so a commit that raced the outage
        is found by the re-check rather than waited on forever.
        """
        yield from self._rpc(client, self.config.watch_service)
        self.stats.watches += 1
        if self._m_watches is not None:
            self._m_watches.inc()
        if key in self._data:
            return self._data[key]
        sig = self._signal(key)
        while True:
            value = yield sig.wait()
            if value is not _LOST:
                break
            # Lost wake-up: our watch died with the broker's table.
            self.stats.lost_wakeups += 1
            yield self.env.timeout(self.config.watch_rearm_delay)
            yield from self._rpc(client, self.config.watch_service)
            self.stats.watches += 1
            if self._m_watches is not None:
                self._m_watches.inc()
            if key in self._data:
                # The commit raced the outage; the re-registration's data
                # check finds it (no second notification will ever fire).
                return self._data[key]
            sig = self._signal(key)
        # Notification push from server to watcher.
        yield from self.fabric.message(self.server_node, client, self.config.value_size)
        return value
