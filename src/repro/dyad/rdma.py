"""Data transports for DYAD remote gets.

:class:`RdmaTransport` is the paper's DYAD path: a thin layer over the
fabric's one-sided read with DYAD's chunking (``rdma_chunk``) — large
frames move as a pipeline of bounded chunks, each paying one RDMA setup.
Chunks of one transfer are issued concurrently (the fabric's bandwidth
sharing serializes them onto the wire), matching UCX rendezvous behaviour
to first order.

:class:`EagerTransport` is the ablation: two-sided eager messages in
small (~64 KiB) units, paying per-chunk message setup with bounded
sender-side pipelining — what a DYAD without RDMA support would do.

Both support probabilistic fault injection (``fault_rate``): an attempt
fails with :class:`repro.errors.TransferError` after a partial delay; the
consumer client retries.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cluster.network import Fabric
from repro.errors import TransferError
from repro.sim.rng import RngStreams

__all__ = ["RdmaTransport", "EagerTransport", "make_transport"]


class _FaultModel:
    """Shared fault-injection logic."""

    def __init__(self, fault_rate: float, rng: Optional[RngStreams]) -> None:
        if not 0.0 <= fault_rate < 1.0:
            raise TransferError(f"fault_rate must be in [0, 1), got {fault_rate}")
        self.fault_rate = fault_rate
        self.rng = rng
        self.faults_injected = 0

    def should_fail(self) -> bool:
        if self.fault_rate == 0.0 or self.rng is None:
            return False
        failed = bool(
            self.rng.stream("transport.fault").random() < self.fault_rate
        )
        if failed:
            self.faults_injected += 1
        return failed


class RdmaTransport(_FaultModel):
    """Chunked one-sided pulls between two nodes."""

    kind = "rdma"

    def __init__(
        self,
        fabric: Fabric,
        chunk: int,
        fault_rate: float = 0.0,
        rng: Optional[RngStreams] = None,
    ) -> None:
        super().__init__(fault_rate, rng)
        if chunk <= 0:
            raise TransferError(f"rdma chunk must be positive, got {chunk}")
        self.fabric = fabric
        self.chunk = chunk

    def get(self, initiator: str, target: str, nbytes: int) -> Generator:
        """Generator: pull ``nbytes`` from ``target``; returns elapsed seconds."""
        if nbytes < 0:
            raise TransferError(f"negative rdma size: {nbytes}")
        env = self.fabric.env
        start = env.now
        if nbytes == 0 or initiator == target:
            # Collocated or empty get: served from the local page cache.
            return 0.0
        if self.should_fail():
            # the failure surfaces after part of the transfer happened
            yield from self.fabric.rdma_get(initiator, target, nbytes // 2)
            raise TransferError(
                f"injected rdma fault pulling {nbytes} B from {target}"
            )
        if self.fabric.fluid is not None:
            # Fluid tiers: the chunk pipeline collapses into weighted
            # flows with the same bandwidth footprint (equal concurrent
            # chunks on a shared path get exactly k flow-shares),
            # eliminating the per-chunk processes that dominate the
            # exact tier's contended-transfer cost.
            yield from self.fabric.rdma_get_bulk(
                initiator, target, nbytes, self.chunk
            )
            return env.now - start
        remaining = nbytes
        jobs = []
        while remaining > 0:
            size = min(self.chunk, remaining)
            remaining -= size
            jobs.append(
                env.process(self._one_chunk(initiator, target, size))
            )
        yield env.all_of(jobs)
        return env.now - start

    def _one_chunk(self, initiator: str, target: str, size: int) -> Generator:
        yield from self.fabric.rdma_get(initiator, target, size)


class EagerTransport(_FaultModel):
    """Two-sided eager transfers (the no-RDMA ablation).

    Every ``chunk`` bytes pay one eager message setup; setups overlap
    ``pipeline`` deep (the per-chunk fixed costs are charged as
    ``ceil(n_chunks / pipeline)`` serialized setups, then the payload
    streams through the fabric as one flow — a first-order model that
    keeps the event count bounded for multi-MiB frames).
    """

    kind = "eager"

    def __init__(
        self,
        fabric: Fabric,
        chunk: int,
        pipeline: int = 4,
        fault_rate: float = 0.0,
        rng: Optional[RngStreams] = None,
    ) -> None:
        super().__init__(fault_rate, rng)
        if chunk <= 0 or pipeline < 1:
            raise TransferError("eager chunk/pipeline must be positive")
        self.fabric = fabric
        self.chunk = chunk
        self.pipeline = pipeline

    def get(self, initiator: str, target: str, nbytes: int) -> Generator:
        """Generator: request+receive ``nbytes`` via eager messages."""
        if nbytes < 0:
            raise TransferError(f"negative transfer size: {nbytes}")
        env = self.fabric.env
        start = env.now
        if nbytes == 0 or initiator == target:
            return 0.0
        if self.should_fail():
            yield from self.fabric.transfer(target, initiator, nbytes // 2)
            raise TransferError(
                f"injected eager fault pulling {nbytes} B from {target}"
            )
        n_chunks = -(-nbytes // self.chunk)
        serialized = -(-n_chunks // self.pipeline)
        setup = self.fabric.config.message_setup * serialized
        yield env.timeout(setup)
        yield from self.fabric.transfer(target, initiator, nbytes)
        return env.now - start


def make_transport(config, fabric: Fabric, rng: Optional[RngStreams] = None):
    """Build the transport selected by a :class:`~repro.dyad.config.DyadConfig`."""
    if config.transport == "eager":
        return EagerTransport(
            fabric, config.eager_chunk, config.eager_pipeline,
            fault_rate=config.fault_rate, rng=rng,
        )
    return RdmaTransport(
        fabric, config.rdma_chunk, fault_rate=config.fault_rate, rng=rng,
    )
