"""Global metadata management (MDM) over the KVS.

DYAD publishes an ownership record per managed file: which node staged it
and how large it is. Keys are derived from the managed path with a stable
hash, namespaced under ``dyad/``, mirroring the real implementation's use
of the Flux KVS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import KeyNotFound
from repro.kvs.store import KVS
from repro.storage.posixfs import normalize

__all__ = ["OwnerRecord", "MetadataManager"]


@dataclass(frozen=True)
class OwnerRecord:
    """Where a managed file lives."""

    path: str
    owner: str   # node id of the producing node
    size: int    # bytes


def _key_hash(path: str) -> int:
    """Stable 32-bit FNV-1a hash of a managed path."""
    acc = 2166136261
    for byte in path.encode("utf-8"):
        acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
    return acc


class MetadataManager:
    """Publish/fetch/wait on ownership records."""

    def __init__(self, kvs: KVS, namespace: str = "dyad") -> None:
        self.kvs = kvs
        self.namespace = namespace

    def key(self, path: str) -> str:
        """KVS key for a managed path."""
        norm = normalize(path)
        return f"{self.namespace}/{_key_hash(norm):08x}"

    def publish(self, client: str, path: str, size: int) -> Generator:
        """Generator: commit the ownership record; returns elapsed seconds."""
        record = OwnerRecord(path=normalize(path), owner=client, size=size)
        return (yield from self.kvs.commit(client, self.key(path), record))

    def fetch(self, client: str, path: str) -> Generator:
        """Generator: lookup the record; raises :class:`KeyNotFound` on miss."""
        record = yield from self.kvs.lookup(client, self.key(path))
        return record

    def wait(self, client: str, path: str) -> Generator:
        """Generator: block until the record is published; returns it."""
        record = yield from self.kvs.wait_for(client, self.key(path))
        return record

    def peek(self, path: str) -> Optional[OwnerRecord]:
        """Untimed server-state read (tests/assertions only)."""
        try:
            return self.kvs.value(self.key(path))
        except KeyNotFound:
            return None
