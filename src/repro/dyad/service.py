"""DYAD per-node service and cluster-wide runtime.

Every node participating in a DYAD workflow runs a :class:`DyadService`:
it owns the node's staging file system (an XFS-like mount on the node's
SSD under ``managed_root``) and serves remote-get requests — reading a
staged frame from local storage so the requesting consumer can pull it
over RDMA.

The :class:`DyadRuntime` wires the per-node services to the shared KVS
(metadata) and the fabric (data), and hands out producer/consumer clients.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.dyad.config import DyadConfig
from repro.dyad.mdm import MetadataManager, OwnerRecord
from repro.dyad.rdma import make_transport
from repro.errors import DyadError, FileNotFound, TransferError
from repro.kvs.store import KVS
from repro.sim.resources import Resource, Signal
from repro.storage.locks import LockMode
from repro.storage.xfs import XFSFileSystem

__all__ = ["DyadService", "DyadRuntime"]


class DyadService:
    """The DYAD module running on one node."""

    def __init__(self, node: Node, config: DyadConfig, store_data: bool) -> None:
        self.node = node
        self.config = config
        self.staging = XFSFileSystem(node, store_data=store_data)
        self.staging.makedirs(config.managed_root)
        self.requests = Resource(node.env, config.service_capacity)
        self.env = node.env
        self.crashed = False
        self.crashes = 0
        self.refused_gets = 0
        #: shared-read staging tier: path -> Signal fired when the
        #: in-flight remote pull of that frame lands (or fails) on this
        #: node; consumers of the same frame park here instead of
        #: issuing duplicate RDMA pulls (see ``DyadConfig.shared_read_cache``)
        self.inflight_pulls: Dict[str, "Signal"] = {}
        #: integrity faults: short/missing frames refused (checked mode)
        self.integrity_refusals = 0
        #: ``stale_metadata`` window: producers on this node publish the
        #: KVS record *before* staging the bytes (metadata runs ahead of
        #: data, the race DYAD's flock fast path normally prevents)
        self.stale_publish = False
        self._m_refusals = None  # refused-gets counter when metered

    def attach_metrics(self, timeline) -> None:
        """Meter the service: ``dyad.{node}.gets`` request occupancy plus
        the ``dyad.{node}.refusals`` counter (crash + integrity refusals).

        Staging occupancy is already visible as the node device's
        ``ssd.{node}.used_bytes`` gauge — the staging FS is the only
        tenant of a DYAD node's SSD.
        """
        node_id = self.node.node_id
        self.requests.attach_metrics(timeline, f"dyad.{node_id}.gets")
        self._m_refusals = timeline.counter(f"dyad.{node_id}.refusals")

    def crash(self) -> None:
        """Take the service down (fault injection).

        Staged files survive — the staging FS is node-local persistent
        storage and the crash models the *service process* dying, so a
        restart serves the same frames again (warm restart). Remote gets
        in flight or arriving while down fail with
        :class:`repro.errors.TransferError`, which the consumer client's
        retry loop absorbs. Idempotent.
        """
        if not self.crashed:
            self.crashed = True
            self.crashes += 1

    def restart(self) -> None:
        """Bring a crashed service back up."""
        self.crashed = False

    def _check_up(self) -> None:
        if self.crashed:
            self.refused_gets += 1
            if self._m_refusals is not None:
                self._m_refusals.inc()
            raise TransferError(
                f"{self.node.node_id}: DYAD service is down"
            )

    def serve_get(self, path: str, nbytes: int) -> Generator:
        """Generator: handle one remote-get — lock, read, return payload.

        Runs on the owner node; the caller (consumer client) then pulls the
        bytes over RDMA. Returns ``(elapsed, count, payload_or_None)``.

        A crashed service refuses the request at three points — on arrival,
        after queueing, and after the local read (the reply never makes it
        out, modelling in-flight loss) — always with
        :class:`repro.errors.TransferError` so consumers retry rather than
        abort. The same retry contract covers integrity faults when
        ``integrity_checks`` is on: a frame advertised by the KVS but not
        yet staged (``stale_metadata``) or staged short (``torn_write``)
        is refused, and the consumer's backoff absorbs the window. With
        checks off the short frame is served as-is (``count < nbytes``).
        """
        start = self.env.now
        self._check_up()
        waited = yield from self.requests.acquire(self.config.service_request_time)
        self._check_up()
        # Fast-path synchronization: shared flock guarantees the producer's
        # exclusive lock was dropped, i.e. the write completed.
        yield self.env.timeout(self.config.flock_time)
        lock = yield from self.staging.locks.acquire(
            path, LockMode.SHARED, owner=f"{self.node.node_id}.dyad"
        )
        try:
            try:
                handle = yield from self.staging.open(
                    path, "r", client=self.node.node_id
                )
            except FileNotFound:
                # The KVS advertised the frame before its bytes landed
                # (stale_metadata) — refuse so the consumer retries.
                self.integrity_refusals += 1
                if self._m_refusals is not None:
                    self._m_refusals.inc()
                raise TransferError(
                    f"{self.node.node_id}: {path} advertised but not staged"
                ) from None
            try:
                count, payload = yield from handle.read(nbytes)
            finally:
                yield from handle.close()
        finally:
            self.staging.locks.release(lock)
        self._check_up()
        if count != nbytes and self.config.integrity_checks:
            self.integrity_refusals += 1
            if self._m_refusals is not None:
                self._m_refusals.inc()
            raise TransferError(
                f"{self.node.node_id}: staged file {path} has {count} bytes, "
                f"expected {nbytes} (torn frame refused)"
            )
        return self.env.now - start, count, payload


class DyadRuntime:
    """DYAD deployed across a cluster: services + MDM + RDMA transport."""

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[DyadConfig] = None,
        kvs_node: Optional[str] = None,
        store_data: bool = False,
    ) -> None:
        self.cluster = cluster
        self.config = config or DyadConfig()
        self.config.validate()
        self.store_data = store_data
        # The KVS broker runs on the first compute node (Flux rank 0), so
        # single-node workflows pay loopback — not wire — latency for
        # metadata, exactly as the paper's single-node configuration does.
        server_node = kvs_node or cluster.node(0).node_id
        self.kvs = KVS(
            cluster.env,
            cluster.fabric,
            server_node,
            self.config.kvs,
            attach=False,  # compute nodes are already on the fabric
        )
        self.mdm = MetadataManager(self.kvs)
        self.rdma = make_transport(self.config, cluster.fabric, cluster.rng)
        self.services: Dict[str, DyadService] = {
            node.node_id: DyadService(node, self.config, store_data)
            for node in cluster.nodes
        }
        # ``bit_corrupt`` window state (armed by the fault injector):
        # every remote pull inside the window is damaged in flight with
        # probability ``corrupt_rate``, decided by the seeded ``draw``.
        self.corrupt_rate = 0.0
        self.corrupt_draw = None
        #: transfers the integrity layer found damaged (checked or not)
        self.corrupt_transfers = 0
        #: ``dyad.retries`` counter when metered (consumer clients bump it)
        self.metrics_retries = None

    def attach_metrics(self, timeline) -> None:
        """Meter the deployment: the KVS, every per-node service, and a
        cluster-wide ``dyad.retries`` counter fed by consumer clients'
        remote-get retry loops.
        """
        self.kvs.attach_metrics(timeline)
        for service in self.services.values():
            service.attach_metrics(timeline)
        self.metrics_retries = timeline.counter("dyad.retries")

    def arm_corruption(self, rate: float, draw) -> None:
        """Start a transfer-corruption window (fault injection)."""
        if not 0.0 < rate <= 1.0:
            raise DyadError(f"corruption rate must be in (0, 1], got {rate}")
        self.corrupt_rate = rate
        self.corrupt_draw = draw

    def disarm_corruption(self) -> None:
        """End the transfer-corruption window."""
        self.corrupt_rate = 0.0
        self.corrupt_draw = None

    @property
    def env(self):
        """The cluster's simulation environment."""
        return self.cluster.env

    def service(self, node_id: str) -> DyadService:
        """The service on a node; :class:`DyadError` when absent."""
        try:
            return self.services[node_id]
        except KeyError:
            raise DyadError(f"no DYAD service on node {node_id!r}") from None

    def producer(self, node_id: str, name: str) -> "DyadProducerClient":
        """A producer client bound to ``node_id``."""
        from repro.dyad.client import DyadProducerClient

        return DyadProducerClient(self, node_id, name)

    def consumer(self, node_id: str, name: str) -> "DyadConsumerClient":
        """A consumer client bound to ``node_id``."""
        from repro.dyad.client import DyadConsumerClient

        return DyadConsumerClient(self, node_id, name)
