"""DYAD producer/consumer clients (the POSIX-interposition layer).

The clients implement the paper's Fig. 2 data path:

Producer ``produce``:
  1. ``write_single_buf`` — stage the frame on the node-local SSD under an
     exclusive flock (plus fsync, so the service can serve it);
  2. ``dyad_commit`` — publish the ownership record to the KVS (the
     metadata-management overhead that makes DYAD production ~1.4× XFS).

Consumer ``consume``:
  1. ``dyad_fetch`` — look up the ownership record. On a miss (frame not
     yet produced) fall back to the loosely-coupled KVS watch: the nested
     ``dyad_wait_data`` region is *idle* time. Once producers run ahead,
     this lookup always hits — the multi-protocol adaptive
     synchronization of the paper;
  2. ``dyad_get_data`` — if the owner is remote: ask the owner's service
     to read the staged frame, then pull it over RDMA;
  3. ``dyad_cons_store`` — store the pulled frame into the local staging
     cache;
  4. ``read_single_buf`` — read the (now local) frame under a shared
     flock, exactly like any POSIX consumer would.

Every step annotates a Caliper region so experiments and the Fig. 9 call
trees fall out of the same instrumentation.
"""

from __future__ import annotations

import posixpath
from typing import Generator, Optional, Tuple

from repro.dyad.mdm import OwnerRecord
from repro.dyad.service import DyadRuntime
from repro.errors import DyadError, IntegrityError, KeyNotFound, TransferError
from repro.perf.caliper import Annotator, Category
from repro.sim.resources import Signal
from repro.storage.locks import LockMode
from repro.storage.posixfs import normalize

__all__ = ["DyadProducerClient", "DyadConsumerClient"]


class _Regions:
    """Null-safe annotation helper shared by both clients."""

    def __init__(self, annotator: Optional[Annotator]) -> None:
        self._ann = annotator

    def begin(self, region: str, category: Optional[str] = None) -> None:
        if self._ann is not None:
            self._ann.begin(region, category)

    def end(self, region: str) -> None:
        if self._ann is not None:
            self._ann.end(region)


class DyadProducerClient:
    """Produces managed files from one node."""

    def __init__(self, runtime: DyadRuntime, node_id: str, name: str) -> None:
        self.runtime = runtime
        self.node_id = node_id
        self.name = name
        self.service = runtime.service(node_id)
        self.env = runtime.env
        #: simulation time of the last KVS publish (the commit instant the
        #: invariant checker's causality rule anchors on)
        self.last_commit_time: Optional[float] = None

    def produce(
        self,
        path: str,
        nbytes: int,
        data: Optional[bytes] = None,
        annotator: Optional[Annotator] = None,
    ) -> Generator:
        """Generator: stage a frame and publish it; returns elapsed seconds.

        ``path`` must live under the managed root; ``data`` is an optional
        real payload (requires the runtime's ``store_data=True``).
        """
        cfg = self.runtime.config
        path = normalize(path)
        if not path.startswith(cfg.managed_root):
            raise DyadError(f"{path} is outside managed root {cfg.managed_root}")
        regions = _Regions(annotator)
        staging = self.service.staging
        start = self.env.now

        regions.begin("dyad_produce", Category.MOVEMENT)
        yield self.env.timeout(cfg.client_overhead)

        # ``stale_metadata`` window: the KVS record is published *before*
        # the bytes are staged — metadata runs ahead of data, the exact
        # race the adaptive sync normally prevents. Checked consumers
        # absorb it (the service refuses un-staged frames, they retry).
        stale = self.service.stale_publish
        if stale:
            regions.begin("dyad_commit")
            yield from self.runtime.mdm.publish(self.node_id, path, nbytes)
            self.last_commit_time = self.env.now
            regions.end("dyad_commit")

        regions.begin("write_single_buf")
        yield self.env.timeout(cfg.flock_time)
        lock = yield from staging.locks.acquire(
            path, LockMode.EXCLUSIVE, owner=self.name
        )
        try:
            # DYAD creates managed subdirectories on demand.
            staging.makedirs(posixpath.dirname(path))
            handle = yield from staging.open(path, "w", client=self.node_id)
            try:
                yield from handle.write(nbytes, data)
                if cfg.fsync_on_produce:
                    yield from handle.fsync()
            finally:
                yield from handle.close()
        finally:
            staging.locks.release(lock)
        regions.end("write_single_buf")

        if not stale:
            regions.begin("dyad_commit")
            yield from self.runtime.mdm.publish(self.node_id, path, nbytes)
            self.last_commit_time = self.env.now
            regions.end("dyad_commit")

        regions.end("dyad_produce")
        return self.env.now - start


class DyadConsumerClient:
    """Consumes managed files on one node."""

    def __init__(self, runtime: DyadRuntime, node_id: str, name: str) -> None:
        self.runtime = runtime
        self.node_id = node_id
        self.name = name
        self.service = runtime.service(node_id)
        self.env = runtime.env
        #: consumptions that needed the loosely-coupled KVS wait
        self.kvs_waits = 0
        #: consumptions served by the flock fast path
        self.fast_hits = 0
        #: transfer attempts retried after an injected/transient fault
        self.transfer_retries = 0
        #: remote consumptions served from this node's staging cache
        self.cache_hits = 0
        #: consumptions that parked behind another consumer's in-flight
        #: pull of the same frame (the shared-read single-flight tier)
        self.shared_read_waits = 0
        #: bytes actually obtained by the last :meth:`consume` (may be
        #: short of the committed size in unchecked mode under torn_write)
        self.last_consume_bytes: Optional[int] = None
        #: True when the last consume returned a damaged payload that
        #: integrity checking was not enabled to catch
        self.last_consume_corrupt = False

    # -- protocol steps ------------------------------------------------------
    def _backoff_delay(self, attempt: int) -> float:
        """Capped exponential backoff with deterministic seeded jitter.

        Attempt ``a`` waits ``min(retry_backoff * 2**a, retry_backoff_cap)``,
        scaled by a uniform draw from ``[1, 1 + retry_jitter]`` out of the
        cluster's named RNG streams — so the whole retry schedule is
        seed-reproducible while still de-synchronizing retry storms.
        """
        cfg = self.runtime.config
        delay = min(cfg.retry_backoff * (2.0 ** attempt), cfg.retry_backoff_cap)
        if cfg.retry_jitter > 0.0 and delay > 0.0:
            draw = self.runtime.cluster.rng.stream("dyad.retry").random()
            delay *= 1.0 + cfg.retry_jitter * float(draw)
        return delay

    def _fetch(self, path: str, regions: _Regions,
               subscribe: bool = False) -> Generator:
        """dyad_fetch: ownership lookup with multi-protocol fallback.

        With ``subscribe=True`` (the ``pubsub`` streaming mode) the
        adaptive lookup-first protocol is bypassed: the consumer arms the
        KVS watch for *every* frame, paying the registration RPC and
        pushed notification each time — per-frame pub/sub rather than
        first-touch-then-fast-path.
        """
        mdm = self.runtime.mdm
        regions.begin("dyad_fetch")
        if subscribe:
            self.kvs_waits += 1
            regions.begin("dyad_wait_data", Category.IDLE)
            record = yield from mdm.wait(self.node_id, path)
            regions.end("dyad_wait_data")
            regions.end("dyad_fetch")
            return record
        try:
            record = yield from mdm.fetch(self.node_id, path)
            self.fast_hits += 1
        except KeyNotFound:
            # Loosely-coupled synchronization: block on the KVS watch. Only
            # the blocking wait is idle time; the registration RPC cost is
            # inside it, which matches the paper's accounting of DYAD idle
            # as "time spent waiting for data availability".
            self.kvs_waits += 1
            regions.begin("dyad_wait_data", Category.IDLE)
            record = yield from mdm.wait(self.node_id, path)
            regions.end("dyad_wait_data")
        regions.end("dyad_fetch")
        return record

    def _get_remote(self, record: OwnerRecord, regions: _Regions) -> Generator:
        """dyad_get_data (+ dyad_cons_store) for a remotely-owned frame.

        Transfer attempts that fail with :class:`TransferError` (injected
        faults, transient network errors, or a crashed owner service) are
        retried under capped exponential backoff with deterministic
        seeded jitter, up to the configured budget. Returns the pulled
        payload (``None`` in size-only mode).
        """
        cfg = self.runtime.config
        runtime = self.runtime
        owner_service = runtime.service(record.owner)

        regions.begin("dyad_get_data")
        attempts = cfg.max_transfer_retries + 1
        count, payload = record.size, None
        for attempt in range(attempts):
            try:
                # Ask the owner's service to read the staged frame...
                yield from runtime.cluster.fabric.message(
                    self.node_id, record.owner
                )
                _elapsed, count, payload = yield from owner_service.serve_get(
                    record.path, record.size
                )
                # ...then pull the bytes.
                yield from runtime.rdma.get(
                    self.node_id, record.owner, count
                )
                # ``bit_corrupt`` window: the pull itself may damage the
                # payload in flight. Checked consumers see the checksum
                # fail and re-pull (a retry re-draws); unchecked ones
                # carry the damage home.
                if (runtime.corrupt_rate > 0.0
                        and runtime.corrupt_draw() < runtime.corrupt_rate):
                    runtime.corrupt_transfers += 1
                    if cfg.integrity_checks:
                        raise TransferError(
                            f"{record.path}: transfer failed checksum "
                            "verification (corrupted in flight)"
                        )
                    self.last_consume_corrupt = True
                    if payload:
                        payload = (bytes([payload[0] ^ 0xFF])
                                   + bytes(payload[1:]))
                break
            except TransferError:
                if attempt == attempts - 1:
                    regions.end("dyad_get_data")
                    raise
                self.transfer_retries += 1
                if runtime.metrics_retries is not None:
                    runtime.metrics_retries.inc()
                yield self.env.timeout(self._backoff_delay(attempt))
        regions.end("dyad_get_data")

        if not cfg.cache_on_consume:
            return count, payload

        regions.begin("dyad_cons_store")
        staging = self.service.staging
        yield self.env.timeout(cfg.flock_time)
        lock = yield from staging.locks.acquire(
            record.path, LockMode.EXCLUSIVE, owner=self.name
        )
        try:
            staging.makedirs(posixpath.dirname(record.path))
            handle = yield from staging.open(record.path, "w", client=self.node_id)
            try:
                yield from handle.write(count, payload)
            finally:
                yield from handle.close()
        finally:
            staging.locks.release(lock)
        regions.end("dyad_cons_store")
        return count, payload

    def _read_local(self, record: OwnerRecord, regions: _Regions) -> Generator:
        """read_single_buf: flock-guarded read from local staging."""
        cfg = self.runtime.config
        # Collocated frames are read straight from the producer's staging.
        staging = self.runtime.service(
            record.owner if record.owner == self.node_id else self.node_id
        ).staging
        regions.begin("read_single_buf", Category.MOVEMENT)
        yield self.env.timeout(cfg.flock_time)
        lock = yield from staging.locks.acquire(
            record.path, LockMode.SHARED, owner=self.name
        )
        try:
            handle = yield from staging.open(record.path, "r", client=self.node_id)
            try:
                count, payload = yield from handle.read(record.size)
            finally:
                yield from handle.close()
        finally:
            staging.locks.release(lock)
        if count != record.size and cfg.integrity_checks:
            raise DyadError(
                f"{record.path}: read {count} bytes, expected {record.size}"
            )
        self.last_consume_bytes = count
        if staging.is_corrupt(record.path):
            if cfg.integrity_checks:
                raise IntegrityError(
                    f"{record.path}: staged frame failed checksum "
                    "verification"
                )
            self.last_consume_corrupt = True
        if (cfg.unlink_after_consume
                and record.owner != self.node_id
                and staging is self.service.staging):
            # drop the consumer-side cached copy to bound staging growth;
            # the producer's original stays (it owns the data's lifetime)
            yield from staging.unlink(record.path, client=self.node_id)
        regions.end("read_single_buf")
        return payload

    # -- public API ------------------------------------------------------------
    def consume(
        self,
        path: str,
        annotator: Optional[Annotator] = None,
        subscribe: bool = False,
    ) -> Generator:
        """Generator: obtain a managed frame; returns ``(record, payload)``.

        Blocks (idle) until the frame is produced when necessary. The
        payload is ``None`` unless the runtime stores real data.
        ``subscribe=True`` arms a per-frame KVS watch instead of the
        adaptive lookup-first protocol (the ``pubsub`` streaming mode).
        """
        cfg = self.runtime.config
        path = normalize(path)
        if not path.startswith(cfg.managed_root):
            raise DyadError(f"{path} is outside managed root {cfg.managed_root}")
        regions = _Regions(annotator)

        self.last_consume_bytes = None
        self.last_consume_corrupt = False
        regions.begin("dyad_consume", Category.MOVEMENT)
        yield self.env.timeout(cfg.client_overhead)
        record = yield from self._fetch(path, regions, subscribe=subscribe)
        remote = record.owner != self.node_id
        pulled = None
        if remote and cfg.cache_on_consume:
            # The managed staging directory doubles as a consumer-side
            # cache: another consumer on this node may have pulled the
            # frame already (fan-out workloads). One stat verifies it.
            staging = self.service.staging
            while True:
                if staging.exists(record.path):
                    st = yield from staging.stat(record.path,
                                                 client=self.node_id)
                    if st.size == record.size:
                        remote = False
                        self.cache_hits += 1
                    break
                pending = (self.service.inflight_pulls.get(record.path)
                           if cfg.shared_read_cache else None)
                if pending is None:
                    break
                # Shared-read tier: another consumer on this node is
                # already pulling this frame. Park on its completion
                # instead of issuing a duplicate RDMA pull, then re-check
                # the staging cache (the pull may have failed, in which
                # case this consumer takes over as the puller).
                self.shared_read_waits += 1
                regions.begin("dyad_shared_wait", Category.IDLE)
                yield pending.wait()
                regions.end("dyad_shared_wait")
        if remote:
            guard = None
            if cfg.cache_on_consume and cfg.shared_read_cache:
                guard = Signal(self.env)
                self.service.inflight_pulls[record.path] = guard
            try:
                pulled_count, pulled = yield from self._get_remote(
                    record, regions
                )
                self.last_consume_bytes = pulled_count
            finally:
                # Fire even on a failed pull so parked consumers re-check
                # (and re-pull themselves) instead of deadlocking. With no
                # waiters the fire is pure bookkeeping — no event is
                # scheduled — so uncontended (pairwise) timelines are
                # untouched.
                if guard is not None:
                    self.service.inflight_pulls.pop(record.path, None)
                    guard.fire_once(self.env.now)
        regions.end("dyad_consume")

        if remote and not cfg.cache_on_consume:
            # Uncached ablation: consume straight from the pulled buffer
            # (a memory deserialize, not a file read).
            regions.begin("read_single_buf", Category.MOVEMENT)
            yield self.env.timeout(cfg.client_overhead)
            regions.end("read_single_buf")
            return record, pulled
        payload = yield from self._read_local(record, regions)
        return record, payload
