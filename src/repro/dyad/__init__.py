"""DYAD-like middleware: dynamic and asynchronous data streamlining.

This package implements the design of the paper's subject middleware
(DYAD, github.com/flux-framework/dyad) on top of the simulated substrates:

- **node-local staging** — producers write frames to their node's SSD
  through an XFS-like staging file system (:mod:`repro.dyad.service`);
- **global metadata management** — file ownership records published to a
  Flux-KVS-like store (:mod:`repro.dyad.mdm`);
- **multi-protocol automatic synchronization** — a consumer's first
  touch of a not-yet-produced file blocks on a KVS watch (loosely
  coupled); once the producer runs ahead, consumers hit the cheap
  flock-based fast path (:mod:`repro.dyad.client`);
- **RDMA data transfer** — remote frames are pulled by the consumer from
  the owner node's DYAD service over the fabric's RDMA path
  (:mod:`repro.dyad.rdma`).

The client API mirrors DYAD's transparent POSIX interception: producers
call :meth:`~repro.dyad.client.DyadProducerClient.produce` and consumers
call :meth:`~repro.dyad.client.DyadConsumerClient.consume` with plain
paths; synchronization and transport are automatic.
"""

from repro.dyad.client import DyadConsumerClient, DyadProducerClient
from repro.dyad.config import DyadConfig
from repro.dyad.mdm import MetadataManager, OwnerRecord
from repro.dyad.rdma import RdmaTransport
from repro.dyad.service import DyadRuntime, DyadService

__all__ = [
    "DyadConsumerClient",
    "DyadProducerClient",
    "DyadConfig",
    "MetadataManager",
    "OwnerRecord",
    "RdmaTransport",
    "DyadRuntime",
    "DyadService",
]
