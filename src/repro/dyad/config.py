"""DYAD middleware configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.kvs.store import KVSConfig
from repro.units import mib, usec

__all__ = ["DyadConfig"]


@dataclass(frozen=True)
class DyadConfig:
    """Calibration constants of the DYAD model.

    Attributes
    ----------
    managed_root:
        Namespace root under which DYAD manages files on every node's
        staging file system.
    client_overhead:
        Per-operation cost of the client-side interposition layer (path
        hashing, context lookup, C wrapper).
    flock_time:
        Cost of one advisory lock/unlock pair (the cheap fast-path sync).
    fsync_on_produce:
        Whether the producer fsyncs to the device before publishing.
        Defaults to False: the service reads staged frames through the
        page cache, so a device flush is not required for correctness and
        the real middleware does not pay one per frame.
    service_capacity:
        Concurrent remote-get requests one node's service handles.
    service_request_time:
        Fixed service-side cost to handle one remote-get request.
    rdma_chunk:
        RDMA transfer granularity (per-chunk setup is charged by the
        fabric's rdma path once per transfer; chunking bounds memory in
        the real system and bounds per-transfer burstiness here).
    transport:
        ``"rdma"`` (the paper's DYAD) or ``"eager"`` — an ablation that
        replaces one-sided pulls with two-sided eager messages in
        ``eager_chunk`` units, paying per-chunk setup and remote-CPU
        involvement. Quantifies the value of RDMA (paper Fig. 2).
    eager_chunk:
        Chunk size of the eager ablation (the typical eager/rendezvous
        switchover point of an MPI stack).
    eager_pipeline:
        How many eager chunk setups overlap (sender-side pipelining).
    cache_on_consume:
        When False (ablation), the consumer does not stage a local copy
        (no ``dyad_cons_store``); repeated reads of the same frame would
        re-pull it. Quantifies the cost/benefit of consumer-side staging.
    unlink_after_consume:
        When True, the consumer unlinks its staged copy right after
        reading it, bounding staging-space growth on long runs (Corona's
        3.5 TB SSD holds ~125k STMV frames; ensembles of thousands of
        long trajectories need cleanup). Off by default because it
        defeats the staging cache for fan-out workloads.
    shared_read_cache:
        Single-flight coalescing for the consumer-side staging cache:
        when a remote pull of a frame is already in flight on this node,
        further consumers of the same frame park on its completion and
        then read the staged copy, instead of each issuing a duplicate
        RDMA pull. This is what bounds a fan-out workload to one
        transfer per frame per node even when the consumers arrive
        simultaneously (the KVS commit wakes them all at the same
        instant, so without coalescing they would all miss the cache).
        Requires ``cache_on_consume``; ignored without it. Clean
        pairwise runs never contend (each frame has one consumer), so
        the switch cannot perturb them.
    fault_rate:
        Probability that one remote get attempt fails with a transfer
        error (fault injection for resilience testing). The client
        retries up to ``max_transfer_retries`` times.
    max_transfer_retries:
        Retry budget per remote get before the error propagates.
    retry_backoff:
        Base delay before the first retry attempt; attempt ``a`` waits
        ``min(retry_backoff * 2**a, retry_backoff_cap)`` (capped
        exponential backoff).
    retry_backoff_cap:
        Ceiling on the exponential backoff delay. Must be at least
        ``retry_backoff``.
    retry_jitter:
        Relative spread of deterministic (seeded) jitter added to each
        backoff delay: the delay is scaled by a factor drawn uniformly
        from ``[1, 1 + retry_jitter]``. Jitter de-synchronizes retry
        storms when many consumers lose the same service; 0 disables it.
    integrity_checks:
        When True (default), the service and client verify frame sizes /
        checksums end to end: a torn or corrupted frame fails the
        transfer with :class:`~repro.errors.TransferError` and the
        consumer re-fetches under the normal backoff machinery. When
        False (the "unchecked legacy consumer" ablation), damaged frames
        are served and read as-is — the invariant checker is then what
        notices the lie. Purely a detection switch: clean runs take
        identical event paths either way.
    kvs:
        Configuration of the underlying key-value store.
    """

    managed_root: str = "/dyad"
    client_overhead: float = usec(10.0)
    flock_time: float = usec(12.0)
    fsync_on_produce: bool = False
    service_capacity: int = 4
    service_request_time: float = usec(30.0)
    rdma_chunk: int = mib(4)
    transport: str = "rdma"
    eager_chunk: int = 64 * 1024
    eager_pipeline: int = 4
    cache_on_consume: bool = True
    unlink_after_consume: bool = False
    shared_read_cache: bool = True
    fault_rate: float = 0.0
    max_transfer_retries: int = 3
    retry_backoff: float = usec(500.0)
    retry_backoff_cap: float = 0.05
    retry_jitter: float = 0.25
    integrity_checks: bool = True
    kvs: KVSConfig = KVSConfig()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid values."""
        if not self.managed_root.startswith("/"):
            raise ConfigError("managed_root must be absolute")
        if self.client_overhead < 0 or self.flock_time < 0:
            raise ConfigError("client costs must be non-negative")
        if self.service_capacity < 1:
            raise ConfigError("service_capacity must be >= 1")
        if self.service_request_time < 0:
            raise ConfigError("service_request_time must be non-negative")
        if self.rdma_chunk <= 0:
            raise ConfigError("rdma_chunk must be positive")
        if self.transport not in ("rdma", "eager"):
            raise ConfigError(f"unknown transport {self.transport!r}")
        if self.eager_chunk <= 0 or self.eager_pipeline < 1:
            raise ConfigError("eager_chunk/eager_pipeline must be positive")
        if not 0.0 <= self.fault_rate < 1.0:
            raise ConfigError("fault_rate must be in [0, 1)")
        if self.max_transfer_retries < 0 or self.retry_backoff < 0:
            raise ConfigError("retry settings must be non-negative")
        if self.retry_backoff_cap < self.retry_backoff:
            raise ConfigError(
                "retry_backoff_cap must be >= retry_backoff "
                f"({self.retry_backoff_cap} < {self.retry_backoff})"
            )
        if self.retry_jitter < 0:
            raise ConfigError("retry_jitter must be non-negative")
        self.kvs.validate()
