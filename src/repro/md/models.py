"""The molecular model catalogue (paper Tables I and II).

Each :class:`MolecularModel` carries the paper's measured properties —
atom count, frame size, simulation rate in steps/second (derived by the
authors from published NAMD benchmarks) — plus the derived quantities the
experiments need: ms/step, the stride that yields the common ~0.82 s frame
frequency, and frame-production schedules.

The paper's stride values (Table II) are stored verbatim as
``paper_stride``; :meth:`MolecularModel.stride_for_frequency` recomputes a
stride for any target frequency. Note the paper's F1-ATPase row is
slightly inconsistent (92 steps × 8.64 ms = 0.795 s, printed as 0.82 s);
we keep the paper's numbers and surface the computed frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.md.frame import frame_size
from repro.units import KiB, MiB

__all__ = [
    "MolecularModel",
    "JAC",
    "APOA1",
    "F1_ATPASE",
    "STMV",
    "MODELS",
    "model_by_name",
    "TARGET_FREQUENCY",
]

#: The common data-generation period the paper calibrates strides to.
TARGET_FREQUENCY: float = 0.82


@dataclass(frozen=True)
class MolecularModel:
    """One molecular system and its MD-performance envelope."""

    name: str
    num_atoms: int
    steps_per_second: float
    paper_stride: int
    paper_frame_bytes: int  # Table I value, for cross-checking the codec

    # -- derived quantities ----------------------------------------------------
    @property
    def frame_bytes(self) -> int:
        """Frame size from the codec (44-byte header + 28 B/atom).

        Matches Table I to two decimals for all four models — see the
        frame-codec tests.
        """
        return frame_size(self.num_atoms)

    @property
    def ms_per_step(self) -> float:
        """Milliseconds per MD step (Table II column)."""
        return 1000.0 / self.steps_per_second

    @property
    def seconds_per_step(self) -> float:
        """Seconds per MD step."""
        return 1.0 / self.steps_per_second

    @property
    def paper_frequency(self) -> float:
        """Frame period implied by the paper's stride (≈0.82 s)."""
        return self.paper_stride / self.steps_per_second

    def stride_for_frequency(self, frequency: float = TARGET_FREQUENCY) -> int:
        """Stride producing one frame every ``frequency`` seconds."""
        if frequency <= 0:
            raise ValueError(f"frequency must be positive, got {frequency}")
        return max(1, round(self.steps_per_second * frequency))

    def stride_time(self, stride: int) -> float:
        """Wall time of ``stride`` MD steps."""
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        return stride * self.seconds_per_step

    def steps_for_frames(self, frames: int, stride: int) -> int:
        """Total MD steps needed to emit ``frames`` frames."""
        return frames * stride

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.num_atoms:,} atoms, "
            f"{self.frame_bytes / KiB:.2f} KiB/frame, "
            f"{self.steps_per_second:.2f} steps/s"
        )


#: Joint AMBER-CHARMM benchmark (DHFR): the paper's smallest model.
JAC = MolecularModel(
    name="JAC",
    num_atoms=23_558,
    steps_per_second=1072.92,
    paper_stride=880,
    paper_frame_bytes=round(644.21 * KiB),
)

#: Apolipoprotein A1.
APOA1 = MolecularModel(
    name="ApoA1",
    num_atoms=92_224,
    steps_per_second=358.22,
    paper_stride=294,
    paper_frame_bytes=round(2.46 * MiB),
)

#: F1 ATPase.
F1_ATPASE = MolecularModel(
    name="F1 ATPase",
    num_atoms=327_506,
    steps_per_second=115.74,
    paper_stride=92,
    paper_frame_bytes=round(8.75 * MiB),
)

#: Satellite tobacco mosaic virus: the paper's largest model.
STMV = MolecularModel(
    name="STMV",
    num_atoms=1_066_628,
    steps_per_second=34.14,
    paper_stride=28,
    paper_frame_bytes=round(28.48 * MiB),
)

#: Catalogue in the paper's (size) order.
MODELS: Tuple[MolecularModel, ...] = (JAC, APOA1, F1_ATPASE, STMV)

_BY_NAME: Dict[str, MolecularModel] = {m.name.lower(): m for m in MODELS}
_BY_NAME["f1"] = F1_ATPASE
_BY_NAME["f1-atpase"] = F1_ATPASE
_BY_NAME["f1_atpase"] = F1_ATPASE
_BY_NAME["apoa1"] = APOA1


def model_by_name(name: str) -> MolecularModel:
    """Catalogue lookup, case-insensitive, with common aliases."""
    try:
        return _BY_NAME[name.strip().lower()]
    except KeyError:
        known = ", ".join(m.name for m in MODELS)
        raise KeyError(f"unknown molecular model {name!r} (known: {known})") from None
