"""Molecular dynamics substrate.

Four pieces, mirroring what the paper's workflows wrap:

- :mod:`repro.md.models` — the molecular model catalogue (Tables I-II of
  the paper: JAC, ApoA1, F1-ATPase, STMV) with atom counts, frame sizes,
  simulation rates, and stride derivations;
- :mod:`repro.md.frame` — the binary frame codec (44-byte header +
  28 bytes/atom, which reproduces the paper's frame sizes exactly);
- :mod:`repro.md.engine` — a real, small Lennard-Jones MD engine
  (velocity-Verlet, cell lists, Berendsen thermostat) used by the examples
  and the real-threads backend to generate genuine trajectories;
- :mod:`repro.md.analytics` — in-situ analytics kernels (radius of
  gyration, RMSD, contact-matrix eigenvalue tracking à la the paper's
  helix analysis in Fig. 1).
"""

from repro.md.analytics import (
    EigenvalueTracker,
    contact_matrix,
    end_to_end_distance,
    largest_eigenvalue,
    radius_of_gyration,
    rmsd,
)
from repro.md.engine import LJConfig, LJSimulation
from repro.md.frame import ATOM_DTYPE, FRAME_HEADER_BYTES, Frame, frame_size
from repro.md.trajectory import (
    TrajectoryReader,
    TrajectoryWriter,
    read_trajectory,
    write_trajectory,
)
from repro.md.models import (
    APOA1,
    F1_ATPASE,
    JAC,
    MODELS,
    STMV,
    MolecularModel,
    model_by_name,
)

__all__ = [
    "EigenvalueTracker",
    "contact_matrix",
    "end_to_end_distance",
    "largest_eigenvalue",
    "radius_of_gyration",
    "rmsd",
    "LJConfig",
    "LJSimulation",
    "ATOM_DTYPE",
    "FRAME_HEADER_BYTES",
    "Frame",
    "frame_size",
    "APOA1",
    "F1_ATPASE",
    "JAC",
    "MODELS",
    "STMV",
    "MolecularModel",
    "model_by_name",
    "TrajectoryReader",
    "TrajectoryWriter",
    "read_trajectory",
    "write_trajectory",
]
