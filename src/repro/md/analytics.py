"""In-situ analytics kernels.

The paper's motivating analytics (Fig. 1) track the largest eigenvalues of
contact matrices of interacting secondary structures and watch for sudden
changes in the molecular model. This module provides those kernels plus
the standard structural observables used by the examples:

- :func:`radius_of_gyration`, :func:`end_to_end_distance`, :func:`rmsd`;
- :func:`contact_matrix` / :func:`largest_eigenvalue` — the eigenvalue
  analysis of atom-subset contact maps;
- :class:`EigenvalueTracker` — a streaming consumer that ingests frames,
  maintains eigenvalue series per tracked subset, and flags sudden
  changes (the "steering" signal of the paper's in-situ analytics).

All kernels are vectorized and operate on :class:`repro.md.frame.Frame`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.md.frame import Frame

__all__ = [
    "radius_of_gyration",
    "end_to_end_distance",
    "rmsd",
    "contact_matrix",
    "largest_eigenvalue",
    "EigenvalueTracker",
    "radial_distribution",
    "mean_squared_displacement",
]


def _positions(frame: Frame, subset: Optional[np.ndarray] = None) -> np.ndarray:
    pos = frame.positions.astype(float)
    if subset is not None:
        pos = pos[np.asarray(subset, dtype=int)]
    return pos


def _masses(frame: Frame, subset: Optional[np.ndarray] = None) -> np.ndarray:
    mass = frame.atoms["mass"].astype(float)
    if subset is not None:
        mass = mass[np.asarray(subset, dtype=int)]
    # all-zero masses (synthetic frames) degrade to unweighted analysis
    if not mass.any():
        mass = np.ones_like(mass)
    return mass


def radius_of_gyration(frame: Frame, subset: Optional[np.ndarray] = None) -> float:
    """Mass-weighted radius of gyration of a frame (or an atom subset)."""
    pos = _positions(frame, subset)
    mass = _masses(frame, subset)
    total = mass.sum()
    center = (pos * mass[:, None]).sum(axis=0) / total
    sq = np.einsum("ij,ij->i", pos - center, pos - center)
    return float(np.sqrt((mass * sq).sum() / total))


def end_to_end_distance(frame: Frame, first: int = 0, last: int = -1) -> float:
    """Distance between two atoms (defaults: first and last)."""
    pos = frame.positions.astype(float)
    return float(np.linalg.norm(pos[last] - pos[first]))


def rmsd(frame: Frame, reference: Frame, subset: Optional[np.ndarray] = None) -> float:
    """Root-mean-square deviation after removing the centroid shift.

    No rotational superposition (sufficient for drift detection); raises
    ``ValueError`` when atom counts disagree.
    """
    a = _positions(frame, subset)
    b = _positions(reference, subset)
    if a.shape != b.shape:
        raise ValueError(
            f"frame size mismatch: {a.shape} vs {b.shape}"
        )
    a = a - a.mean(axis=0)
    b = b - b.mean(axis=0)
    return float(np.sqrt(np.mean(np.sum((a - b) ** 2, axis=1))))


def contact_matrix(
    frame: Frame,
    subset: np.ndarray,
    cutoff: float = 8.0,
    soft: bool = True,
) -> np.ndarray:
    """Contact matrix of an atom subset.

    ``soft=True`` returns the smooth sigmoid contact strength the paper's
    collective-variable analysis uses (differentiable, stable eigenvalues);
    ``soft=False`` returns a binary 0/1 matrix.
    """
    pos = _positions(frame, subset)
    delta = pos[:, None, :] - pos[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
    if soft:
        # smooth switching function: 1 / (1 + exp((d - cutoff)))
        matrix = 1.0 / (1.0 + np.exp(np.clip(dist - cutoff, -50, 50)))
    else:
        matrix = (dist < cutoff).astype(float)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def largest_eigenvalue(matrix: np.ndarray, k: int = 1) -> np.ndarray:
    """The ``k`` largest eigenvalues of a symmetric matrix, descending."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"need a square matrix, got {matrix.shape}")
    values = np.linalg.eigvalsh(matrix)
    return values[::-1][:k].copy()


class EigenvalueTracker:
    """Streaming eigenvalue analysis over named atom subsets.

    Feed frames with :meth:`ingest`; the tracker keeps the largest
    eigenvalue of each subset's contact matrix per frame and reports
    *events* — frames where an eigenvalue jumps by more than ``threshold``
    standard deviations of its history (the paper's "sudden changes in the
    molecular model").
    """

    def __init__(
        self,
        subsets: Dict[str, Sequence[int]],
        cutoff: float = 8.0,
        threshold: float = 3.0,
        warmup: int = 5,
    ) -> None:
        if not subsets:
            raise ValueError("need at least one tracked subset")
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        self.subsets = {k: np.asarray(v, dtype=int) for k, v in subsets.items()}
        self.cutoff = cutoff
        self.threshold = threshold
        self.warmup = warmup
        self.series: Dict[str, List[float]] = {k: [] for k in subsets}
        self.events: List[Tuple[int, str, float]] = []
        self._frames_seen = 0

    def ingest(self, frame: Frame) -> List[Tuple[int, str, float]]:
        """Process one frame; returns events triggered by this frame."""
        new_events: List[Tuple[int, str, float]] = []
        for name, subset in self.subsets.items():
            matrix = contact_matrix(frame, subset, self.cutoff)
            value = float(largest_eigenvalue(matrix)[0])
            history = self.series[name]
            if len(history) >= self.warmup:
                arr = np.asarray(history)
                sigma = float(arr.std())
                if sigma > 0 and abs(value - float(arr.mean())) > self.threshold * sigma:
                    event = (frame.step, name, value)
                    new_events.append(event)
                    self.events.append(event)
            history.append(value)
        self._frames_seen += 1
        return new_events

    @property
    def frames_seen(self) -> int:
        """Frames ingested so far."""
        return self._frames_seen

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Mean/std/min/max of each tracked eigenvalue series."""
        out: Dict[str, Dict[str, float]] = {}
        for name, history in self.series.items():
            if not history:
                out[name] = {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
                continue
            arr = np.asarray(history)
            out[name] = {
                "mean": float(arr.mean()),
                "std": float(arr.std()),
                "min": float(arr.min()),
                "max": float(arr.max()),
            }
        return out


def radial_distribution(
    frame: Frame,
    box: Optional[float] = None,
    r_max: Optional[float] = None,
    bins: int = 50,
) -> Tuple[np.ndarray, np.ndarray]:
    """Radial distribution function g(r) of a periodic frame.

    Returns ``(r_centers, g)``. ``box`` defaults to the frame's box edge
    (must be set); ``r_max`` defaults to half the box (the minimum-image
    validity limit). The classic structural observable for validating the
    LJ engine's fluid phase: g(r) -> 1 at large r, first-shell peak near
    the LJ minimum.
    """
    if box is None:
        box = float(frame.box[0])
    if box <= 0:
        raise ValueError("need a positive box (periodic frame)")
    if r_max is None:
        r_max = box / 2.0
    if not 0 < r_max <= box / 2.0 + 1e-9:
        raise ValueError(f"r_max must be in (0, box/2], got {r_max}")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    pos = frame.positions.astype(float)
    n = pos.shape[0]
    if n < 2:
        raise ValueError("need at least two atoms")
    delta = pos[:, None, :] - pos[None, :, :]
    delta -= box * np.round(delta / box)
    dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
    iu = np.triu_indices(n, k=1)
    pair_dist = dist[iu]
    counts, edges = np.histogram(pair_dist, bins=bins, range=(0.0, r_max))
    centers = 0.5 * (edges[1:] + edges[:-1])
    shell_volumes = (4.0 / 3.0) * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = n / box ** 3
    # normalization: ideal-gas pair count in each shell
    ideal = shell_volumes * density * n / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(ideal > 0, counts / ideal, 0.0)
    return centers, g


def mean_squared_displacement(
    frames: Sequence[Frame],
    box: Optional[float] = None,
) -> np.ndarray:
    """MSD of a trajectory relative to its first frame (unwrapped).

    Positions are unwrapped across periodic boundaries by accumulating
    minimum-image displacements between consecutive frames, so diffusive
    motion is measured correctly even though stored coordinates are
    wrapped. Returns one value per frame (the first is 0).
    """
    if not frames:
        raise ValueError("need at least one frame")
    if box is None:
        box = float(frames[0].box[0])
    if box <= 0:
        raise ValueError("need a positive box (periodic frames)")
    reference = frames[0].positions.astype(float)
    unwrapped = reference.copy()
    previous = reference.copy()
    out = [0.0]
    for frame in frames[1:]:
        current = frame.positions.astype(float)
        if current.shape != reference.shape:
            raise ValueError("inconsistent atom counts across frames")
        step = current - previous
        step -= box * np.round(step / box)
        unwrapped += step
        previous = current
        disp = unwrapped - reference
        out.append(float(np.mean(np.sum(disp * disp, axis=1))))
    return np.asarray(out)
