"""Trajectory container format.

The paper (Section II-A): "Each MD job reproduces the evolution of the
relevant molecular model by computing and writing to storage the model's
atomic coordinates (frame) ... The sequence of molecular conformations
(the trajectory) is written to disk."

This module provides that on-disk container: a sequence of encoded frames
with a footer index for O(1) random access (the layout used by practical
trajectory formats — data first, index last, so writers never seek):

```
[frame 0][frame 1]...[frame N-1][index: N x (offset, length)][footer]
```

The footer carries a magic, the frame count, and the index offset.
:class:`TrajectoryWriter` appends frames to any binary stream;
:class:`TrajectoryReader` supports length, indexing, slicing, and
iteration. Both work with real files and in-memory buffers.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterator, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.md.frame import Frame

__all__ = ["TrajectoryWriter", "TrajectoryReader", "write_trajectory",
           "read_trajectory"]

_FOOTER_MAGIC = b"MDTRAJIX"
#: footer: magic(8s) version(H) reserved(H) nframes(Q) index_offset(Q)
_FOOTER = struct.Struct("<8sHHQQ")
_INDEX_ENTRY = struct.Struct("<QQ")
_VERSION = 1


class TrajectoryWriter:
    """Appends frames to a binary stream; finalizes with the index."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._index: List[Tuple[int, int]] = []
        self._finalized = False
        self._start = stream.tell()

    @property
    def frames_written(self) -> int:
        """Frames appended so far."""
        return len(self._index)

    def append(self, frame: Frame) -> int:
        """Append one frame; returns its index in the trajectory."""
        if self._finalized:
            raise ReproError("trajectory already finalized")
        payload = frame.encode()
        offset = self._stream.tell()  # absolute: readers use the same stream
        self._stream.write(payload)
        self._index.append((offset, len(payload)))
        return len(self._index) - 1

    def extend(self, frames) -> None:
        """Append many frames."""
        for frame in frames:
            self.append(frame)

    def finalize(self) -> int:
        """Write index + footer; returns total trajectory bytes."""
        if self._finalized:
            raise ReproError("trajectory already finalized")
        index_offset = self._stream.tell()
        for offset, length in self._index:
            self._stream.write(_INDEX_ENTRY.pack(offset, length))
        self._stream.write(
            _FOOTER.pack(_FOOTER_MAGIC, _VERSION, 0, len(self._index),
                         index_offset)
        )
        self._finalized = True
        return self._stream.tell() - self._start

    def __enter__(self) -> "TrajectoryWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._finalized:
            self.finalize()


class TrajectoryReader:
    """Random access over a finalized trajectory stream."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        stream.seek(0, io.SEEK_END)
        end = stream.tell()
        if end < _FOOTER.size:
            raise ReproError("not a trajectory: too short for footer")
        stream.seek(end - _FOOTER.size)
        magic, version, _reserved, nframes, index_offset = _FOOTER.unpack(
            stream.read(_FOOTER.size)
        )
        if magic != _FOOTER_MAGIC:
            raise ReproError(f"bad trajectory magic {magic!r}")
        if version != _VERSION:
            raise ReproError(f"unsupported trajectory version {version}")
        expected_index_end = index_offset + nframes * _INDEX_ENTRY.size
        if expected_index_end != end - _FOOTER.size:
            raise ReproError("corrupt trajectory: index size mismatch")
        stream.seek(index_offset)
        raw = stream.read(nframes * _INDEX_ENTRY.size)
        self._index = [
            _INDEX_ENTRY.unpack_from(raw, i * _INDEX_ENTRY.size)
            for i in range(nframes)
        ]

    def __len__(self) -> int:
        return len(self._index)

    def __getitem__(self, key: Union[int, slice]):
        if isinstance(key, slice):
            return [self[i] for i in range(*key.indices(len(self)))]
        if key < 0:
            key += len(self)
        if not 0 <= key < len(self):
            raise IndexError(f"frame {key} of {len(self)}")
        offset, length = self._index[key]
        self._stream.seek(offset)
        return Frame.decode(self._stream.read(length))

    def __iter__(self) -> Iterator[Frame]:
        for i in range(len(self)):
            yield self[i]

    def frame_sizes(self) -> List[int]:
        """Encoded size of each frame (no decoding)."""
        return [length for _offset, length in self._index]


def write_trajectory(path, frames) -> int:
    """Write frames to a file; returns total bytes."""
    with open(path, "wb") as fh:
        writer = TrajectoryWriter(fh)
        writer.extend(frames)
        return writer.finalize()


def read_trajectory(path) -> List[Frame]:
    """Load all frames of a trajectory file."""
    with open(path, "rb") as fh:
        return list(TrajectoryReader(fh))
