"""Minimal PDB export of frames (interoperability with MD viewers).

Writes standard fixed-column ``ATOM``/``CRYST1``/``MODEL`` records so
frames and trajectories from the engine (or from the middleware pipeline)
open directly in VMD/PyMOL/nglview. Export-only by design — the library's
native formats are the binary frame codec and the trajectory container.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.md.frame import Frame

__all__ = ["frame_to_pdb", "write_pdb"]

_ELEMENTS = ("C", "N", "O", "S", "H", "P", "FE", "MG")


def _atom_line(serial: int, name: str, resid: int, x: float, y: float,
               z: float, element: str) -> str:
    # PDB fixed columns (v3.3): ATOM record
    return (
        f"ATOM  {serial % 100000:5d} {name:<4s}"
        f"{'LIG':>4s} A{resid % 10000:4d}    "
        f"{x:8.3f}{y:8.3f}{z:8.3f}{1.0:6.2f}{0.0:6.2f}"
        f"          {element:>2s}"
    )


def frame_to_pdb(frame: Frame, model_number: int = 1) -> str:
    """One frame as a PDB ``MODEL`` block (with CRYST1 when boxed)."""
    lines: List[str] = []
    box = float(frame.box[0])
    if box > 0:
        lines.append(
            f"CRYST1{box:9.3f}{float(frame.box[1]):9.3f}"
            f"{float(frame.box[2]):9.3f}{90.0:7.2f}{90.0:7.2f}{90.0:7.2f} P 1"
        )
    lines.append(f"MODEL {model_number:8d}")
    atoms = frame.atoms
    for i in range(frame.natoms):
        element = _ELEMENTS[int(atoms["type_id"][i]) % len(_ELEMENTS)]
        x, y, z = (float(v) for v in atoms["position"][i])
        lines.append(
            _atom_line(i + 1, element, int(atoms["residue_id"][i]) + 1,
                       x, y, z, element)
        )
    lines.append("ENDMDL")
    return "\n".join(lines) + "\n"


def write_pdb(path, frames: Iterable[Frame]) -> int:
    """Write frames as a multi-MODEL PDB file; returns the model count."""
    count = 0
    with open(path, "w") as fh:
        for i, frame in enumerate(frames, start=1):
            fh.write(frame_to_pdb(frame, model_number=i))
            count += 1
        fh.write("END\n")
    return count
