"""A real (small) molecular dynamics engine.

Lennard-Jones fluid in a cubic periodic box, integrated with velocity
Verlet, with an optional Berendsen thermostat and a cell-list neighbour
search. Everything is vectorized NumPy (per the HPC-Python guides: no
per-atom Python loops on the hot path).

This is the "GROMACS+Plumed" stand-in for the examples and the real-threads
backend: it produces genuine trajectories whose frames flow through the
middleware, so the end-to-end examples exercise real data, not sleeps.
Reduced LJ units throughout (σ = ε = m = 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.md.frame import ATOM_DTYPE, Frame

__all__ = ["LJConfig", "LJSimulation"]


@dataclass(frozen=True)
class LJConfig:
    """Parameters of the LJ fluid simulation (reduced units)."""

    n_atoms: int = 256
    density: float = 0.6          # atoms per unit volume
    temperature: float = 1.0      # target temperature
    dt: float = 0.005             # integration timestep
    cutoff: float = 2.5           # LJ cutoff radius
    thermostat_tau: Optional[float] = 0.5  # Berendsen coupling; None = NVE
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid values."""
        if self.n_atoms < 2:
            raise ConfigError("need at least 2 atoms")
        if self.density <= 0:
            raise ConfigError("density must be positive")
        if self.temperature <= 0:
            raise ConfigError("temperature must be positive")
        if self.dt <= 0:
            raise ConfigError("dt must be positive")
        if self.cutoff <= 0:
            raise ConfigError("cutoff must be positive")
        if self.thermostat_tau is not None and self.thermostat_tau <= 0:
            raise ConfigError("thermostat_tau must be positive")

    @property
    def box(self) -> float:
        """Edge length of the cubic box."""
        return (self.n_atoms / self.density) ** (1.0 / 3.0)


class LJSimulation:
    """Velocity-Verlet LJ dynamics with cell-list neighbour search."""

    def __init__(self, config: LJConfig) -> None:
        config.validate()
        self.config = config
        self.box = config.box
        if self.box < 2 * config.cutoff:
            raise ConfigError(
                f"box {self.box:.2f} too small for cutoff {config.cutoff} "
                "(needs box >= 2*cutoff); lower density or add atoms"
            )
        rng = np.random.default_rng(config.seed)
        self.positions = self._lattice(config.n_atoms, self.box)
        self.velocities = rng.normal(
            0.0, np.sqrt(config.temperature), (config.n_atoms, 3)
        )
        self.velocities -= self.velocities.mean(axis=0)  # zero net momentum
        self.step_index = 0
        self.time = 0.0
        self.forces, self.potential = self._forces(self.positions)

    # -- setup ------------------------------------------------------------------
    @staticmethod
    def _lattice(n: int, box: float) -> np.ndarray:
        """Simple-cubic initial placement (no overlaps)."""
        per_side = int(np.ceil(n ** (1.0 / 3.0)))
        spacing = box / per_side
        grid = np.arange(per_side) * spacing + spacing / 2
        xyz = np.array(np.meshgrid(grid, grid, grid, indexing="ij"))
        sites = xyz.reshape(3, -1).T[:n]
        return np.ascontiguousarray(sites, dtype=float)

    # -- neighbour search ---------------------------------------------------------
    def _pairs(self, pos: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate interacting pairs (i < j) via cell lists.

        Falls back to all-pairs for small systems where cell lists cannot
        be built (fewer than 3 cells per side).
        """
        cfg = self.config
        cells_per_side = int(self.box / cfg.cutoff)
        n = pos.shape[0]
        if cells_per_side < 3:
            i, j = np.triu_indices(n, k=1)
            return i, j
        cell_size = self.box / cells_per_side
        coords = np.floor(pos / cell_size).astype(int) % cells_per_side
        cell_id = (
            coords[:, 0] * cells_per_side + coords[:, 1]
        ) * cells_per_side + coords[:, 2]
        order = np.argsort(cell_id, kind="stable")
        sorted_ids = cell_id[order]
        # start index of every cell in the sorted order
        n_cells = cells_per_side ** 3
        starts = np.searchsorted(sorted_ids, np.arange(n_cells + 1))
        # precompute 27-neighbourhood offsets
        offs = np.array(
            [
                (dx, dy, dz)
                for dx in (-1, 0, 1)
                for dy in (-1, 0, 1)
                for dz in (-1, 0, 1)
            ]
        )
        i_list = []
        j_list = []
        cps = cells_per_side
        for cell in range(n_cells):
            members = order[starts[cell]:starts[cell + 1]]
            if members.size == 0:
                continue
            cx, cy = divmod(cell, cps * cps)
            cy, cz = divmod(cy, cps)
            ncells = (
                ((cx + offs[:, 0]) % cps) * cps + ((cy + offs[:, 1]) % cps)
            ) * cps + ((cz + offs[:, 2]) % cps)
            neigh = np.concatenate(
                [order[starts[c]:starts[c + 1]] for c in np.unique(ncells)]
            )
            # pair each member with all neighbours of larger index (i < j)
            ii = np.repeat(members, neigh.size)
            jj = np.tile(neigh, members.size)
            keep = ii < jj
            i_list.append(ii[keep])
            j_list.append(jj[keep])
        if not i_list:
            return np.empty(0, int), np.empty(0, int)
        return np.concatenate(i_list), np.concatenate(j_list)

    # -- forces ------------------------------------------------------------------
    def _forces(self, pos: np.ndarray) -> Tuple[np.ndarray, float]:
        """LJ forces and potential energy with minimum-image convention."""
        cfg = self.config
        i, j = self._pairs(pos)
        forces = np.zeros_like(pos)
        if i.size == 0:
            return forces, 0.0
        delta = pos[i] - pos[j]
        delta -= self.box * np.round(delta / self.box)
        r2 = np.einsum("ij,ij->i", delta, delta)
        mask = r2 < cfg.cutoff * cfg.cutoff
        if not mask.any():
            return forces, 0.0
        i, j, delta, r2 = i[mask], j[mask], delta[mask], r2[mask]
        inv_r2 = 1.0 / r2
        inv_r6 = inv_r2 ** 3
        inv_r12 = inv_r6 ** 2
        # shift so the potential is continuous at the cutoff
        inv_c6 = cfg.cutoff ** -6
        potential = float(np.sum(4.0 * (inv_r12 - inv_r6))) - i.size * 4.0 * (
            inv_c6 ** 2 - inv_c6
        )
        magnitude = (48.0 * inv_r12 - 24.0 * inv_r6) * inv_r2
        pair_force = delta * magnitude[:, None]
        np.add.at(forces, i, pair_force)
        np.add.at(forces, j, -pair_force)
        return forces, potential

    # -- observables --------------------------------------------------------------
    @property
    def kinetic_energy(self) -> float:
        """Total kinetic energy (m = 1)."""
        return float(0.5 * np.sum(self.velocities ** 2))

    @property
    def instantaneous_temperature(self) -> float:
        """Kinetic temperature, 3N-3 degrees of freedom."""
        dof = 3 * self.config.n_atoms - 3
        return 2.0 * self.kinetic_energy / dof

    @property
    def total_energy(self) -> float:
        """Kinetic + potential."""
        return self.kinetic_energy + self.potential

    # -- integration ---------------------------------------------------------------
    def step(self, n: int = 1) -> None:
        """Advance ``n`` velocity-Verlet steps."""
        if n < 0:
            raise ValueError(f"negative step count: {n}")
        cfg = self.config
        dt = cfg.dt
        for _ in range(n):
            self.velocities += 0.5 * dt * self.forces
            self.positions = (self.positions + dt * self.velocities) % self.box
            self.forces, self.potential = self._forces(self.positions)
            self.velocities += 0.5 * dt * self.forces
            if cfg.thermostat_tau is not None:
                current = self.instantaneous_temperature
                if current > 0:
                    factor = np.sqrt(
                        1.0 + (dt / cfg.thermostat_tau) * (cfg.temperature / current - 1.0)
                    )
                    self.velocities *= factor
            self.step_index += 1
            self.time += dt

    # -- frames ------------------------------------------------------------------
    def frame(self) -> Frame:
        """Snapshot the current state as a :class:`Frame`."""
        n = self.config.n_atoms
        atoms = np.zeros(n, dtype=ATOM_DTYPE)
        atoms["atom_id"] = np.arange(n, dtype=np.uint32)
        atoms["type_id"] = 0
        atoms["residue_id"] = (np.arange(n) // 10).astype(np.uint16)
        atoms["position"] = self.positions.astype(np.float32)
        atoms["mass"] = 1.0
        return Frame(
            atoms,
            step=self.step_index,
            time=self.time,
            box=np.full(3, self.box, dtype=np.float32),
        )

    def run_trajectory(self, frames: int, stride: int):
        """Yield ``frames`` frames, ``stride`` steps apart."""
        if frames < 0 or stride < 1:
            raise ValueError("frames must be >= 0 and stride >= 1")
        for _ in range(frames):
            self.step(stride)
            yield self.frame()
