"""Binary MD frame codec.

A frame is the atom list with 3-D positions (plus per-atom metadata) that
the simulation emits every *stride* steps. The on-disk layout is

- a 44-byte header: magic, version, flags, atom count, payload checksum,
  step index, simulation time, periodic box lengths;
- one 28-byte record per atom (:data:`ATOM_DTYPE`).

``44 + 28 × natoms`` reproduces the paper's Table I frame sizes to two
decimals for all four molecular models, so the emulated workloads move
exactly the byte counts the paper reports.

The header carries a CRC-32 of the atom payload (flag
:data:`FLAG_CHECKSUM`) so consumers can *detect* torn or corrupted
frames — ``Frame.decode(payload, verify=True)`` raises
:class:`~repro.errors.IntegrityError` instead of silently returning
damaged coordinates. Version 1 frames (no checksum, flag clear) still
decode; verification is skipped for them.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import IntegrityError, ReproError

__all__ = [
    "ATOM_DTYPE",
    "FLAG_CHECKSUM",
    "FRAME_HEADER_BYTES",
    "Frame",
    "frame_size",
]

#: Per-atom record: 28 bytes.
ATOM_DTYPE = np.dtype(
    [
        ("atom_id", "<u4"),
        ("type_id", "<u2"),
        ("residue_id", "<u2"),
        ("position", "<f4", (3,)),
        ("charge", "<f4"),
        ("mass", "<f4"),
    ]
)
assert ATOM_DTYPE.itemsize == 28

_MAGIC = b"MDFR"
_VERSION = 2
#: Oldest version :meth:`Frame.decode` still accepts (v1 had a 64-bit
#: atom count where v2 stores natoms(I) + checksum(I); same 44 bytes).
_MIN_VERSION = 1
#: Header flag: the checksum field holds a CRC-32 of the atom payload.
FLAG_CHECKSUM = 0x1
#: Header: magic(4s) version(H) flags(H) natoms(I) checksum(I) step(Q)
#: time(d) box(3f) — still 44 bytes, so Table I frame sizes are unchanged.
_HEADER = struct.Struct("<4sHHIIQd3f")
FRAME_HEADER_BYTES = _HEADER.size
assert FRAME_HEADER_BYTES == 44

def frame_size(natoms: int) -> int:
    """Encoded size in bytes of a frame with ``natoms`` atoms."""
    if natoms < 0:
        raise ValueError(f"negative atom count: {natoms}")
    return FRAME_HEADER_BYTES + ATOM_DTYPE.itemsize * natoms


@dataclass
class Frame:
    """One simulation snapshot.

    ``atoms`` is a structured array of :data:`ATOM_DTYPE`; ``box`` is the
    periodic box edge lengths (cubic/orthorhombic).
    """

    atoms: np.ndarray
    step: int = 0
    time: float = 0.0
    box: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.atoms = np.ascontiguousarray(self.atoms, dtype=ATOM_DTYPE)
        if self.box is None:
            self.box = np.zeros(3, dtype=np.float32)
        else:
            self.box = np.asarray(self.box, dtype=np.float32).reshape(3)
        if self.step < 0:
            raise ValueError(f"negative step: {self.step}")

    # -- convenience -------------------------------------------------------------
    @property
    def natoms(self) -> int:
        """Number of atoms."""
        return int(self.atoms.shape[0])

    @property
    def nbytes(self) -> int:
        """Encoded size in bytes."""
        return frame_size(self.natoms)

    @property
    def positions(self) -> np.ndarray:
        """(natoms, 3) float32 view of positions."""
        return self.atoms["position"]

    @classmethod
    def zeros(cls, natoms: int, step: int = 0, time: float = 0.0) -> "Frame":
        """All-zero frame of a given size (workload emulation)."""
        return cls(np.zeros(natoms, dtype=ATOM_DTYPE), step=step, time=time)

    @classmethod
    def random(cls, natoms: int, rng: np.random.Generator, box: float = 100.0,
               step: int = 0, time: float = 0.0) -> "Frame":
        """Random frame (testing and synthetic workloads)."""
        atoms = np.zeros(natoms, dtype=ATOM_DTYPE)
        atoms["atom_id"] = np.arange(natoms, dtype=np.uint32)
        atoms["type_id"] = rng.integers(0, 16, natoms, dtype=np.uint16)
        atoms["residue_id"] = (np.arange(natoms, dtype=np.uint32) // 10).astype(np.uint16)
        atoms["position"] = rng.uniform(0, box, (natoms, 3)).astype(np.float32)
        atoms["charge"] = rng.normal(0, 0.4, natoms).astype(np.float32)
        atoms["mass"] = rng.uniform(1.0, 16.0, natoms).astype(np.float32)
        return cls(atoms, step=step, time=time, box=np.full(3, box, np.float32))

    # -- codec -------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to exactly :attr:`nbytes` bytes (checksum included)."""
        atom_bytes = self.atoms.tobytes()
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            FLAG_CHECKSUM,
            self.natoms,
            zlib.crc32(atom_bytes) & 0xFFFFFFFF,
            self.step,
            float(self.time),
            float(self.box[0]),
            float(self.box[1]),
            float(self.box[2]),
        )
        return header + atom_bytes

    @classmethod
    def decode(cls, payload: bytes, verify: bool = True) -> "Frame":
        """Deserialize; raises :class:`ReproError` on malformed input.

        With ``verify`` (the default), a frame whose header advertises a
        checksum is validated against its atom payload and a mismatch
        raises :class:`~repro.errors.IntegrityError` — this is how the
        checked consume paths detect torn/corrupted frames. ``verify=
        False`` models a legacy consumer that trusts the bytes as-is.
        """
        if len(payload) < FRAME_HEADER_BYTES:
            raise ReproError(
                f"frame too short: {len(payload)} < {FRAME_HEADER_BYTES}"
            )
        (magic, version, flags, natoms, checksum, step, time, bx, by, bz,
         ) = _HEADER.unpack_from(payload)
        if magic != _MAGIC:
            raise ReproError(f"bad frame magic {magic!r}")
        if not _MIN_VERSION <= version <= _VERSION:
            raise ReproError(f"unsupported frame version {version}")
        if version < 2:
            # v1 stored natoms as a u64 where v2 has natoms(I)+checksum(I);
            # little-endian, so the checksum field read the high half.
            natoms, flags = natoms + (checksum << 32), 0
        expected = frame_size(natoms)
        if len(payload) != expected:
            raise ReproError(
                f"frame size mismatch: {len(payload)} != {expected} "
                f"for {natoms} atoms"
            )
        atom_bytes = payload[FRAME_HEADER_BYTES:]
        if verify and flags & FLAG_CHECKSUM:
            actual = zlib.crc32(atom_bytes) & 0xFFFFFFFF
            if actual != checksum:
                raise IntegrityError(
                    f"frame checksum mismatch: header says {checksum:#010x},"
                    f" payload hashes to {actual:#010x} (step {step})"
                )
        atoms = np.frombuffer(
            atom_bytes, dtype=ATOM_DTYPE, count=natoms
        ).copy()
        return cls(
            atoms,
            step=step,
            time=time,
            box=np.array([bx, by, bz], dtype=np.float32),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return (
            self.step == other.step
            and self.time == other.time
            and np.array_equal(self.box, other.box)
            and np.array_equal(self.atoms, other.atoms)
        )
