"""Binary MD frame codec.

A frame is the atom list with 3-D positions (plus per-atom metadata) that
the simulation emits every *stride* steps. The on-disk layout is

- a 44-byte header: magic, version, flags, atom count, step index,
  simulation time, periodic box lengths;
- one 28-byte record per atom (:data:`ATOM_DTYPE`).

``44 + 28 × natoms`` reproduces the paper's Table I frame sizes to two
decimals for all four molecular models, so the emulated workloads move
exactly the byte counts the paper reports.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ReproError

__all__ = ["ATOM_DTYPE", "FRAME_HEADER_BYTES", "Frame", "frame_size"]

#: Per-atom record: 28 bytes.
ATOM_DTYPE = np.dtype(
    [
        ("atom_id", "<u4"),
        ("type_id", "<u2"),
        ("residue_id", "<u2"),
        ("position", "<f4", (3,)),
        ("charge", "<f4"),
        ("mass", "<f4"),
    ]
)
assert ATOM_DTYPE.itemsize == 28

_MAGIC = b"MDFR"
_VERSION = 1
#: Header: magic(4s) version(H) flags(H) natoms(Q) step(Q) time(d) box(3f)
_HEADER = struct.Struct("<4sHHQQd3f")
FRAME_HEADER_BYTES = _HEADER.size
assert FRAME_HEADER_BYTES == 44

def frame_size(natoms: int) -> int:
    """Encoded size in bytes of a frame with ``natoms`` atoms."""
    if natoms < 0:
        raise ValueError(f"negative atom count: {natoms}")
    return FRAME_HEADER_BYTES + ATOM_DTYPE.itemsize * natoms


@dataclass
class Frame:
    """One simulation snapshot.

    ``atoms`` is a structured array of :data:`ATOM_DTYPE`; ``box`` is the
    periodic box edge lengths (cubic/orthorhombic).
    """

    atoms: np.ndarray
    step: int = 0
    time: float = 0.0
    box: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.atoms = np.ascontiguousarray(self.atoms, dtype=ATOM_DTYPE)
        if self.box is None:
            self.box = np.zeros(3, dtype=np.float32)
        else:
            self.box = np.asarray(self.box, dtype=np.float32).reshape(3)
        if self.step < 0:
            raise ValueError(f"negative step: {self.step}")

    # -- convenience -------------------------------------------------------------
    @property
    def natoms(self) -> int:
        """Number of atoms."""
        return int(self.atoms.shape[0])

    @property
    def nbytes(self) -> int:
        """Encoded size in bytes."""
        return frame_size(self.natoms)

    @property
    def positions(self) -> np.ndarray:
        """(natoms, 3) float32 view of positions."""
        return self.atoms["position"]

    @classmethod
    def zeros(cls, natoms: int, step: int = 0, time: float = 0.0) -> "Frame":
        """All-zero frame of a given size (workload emulation)."""
        return cls(np.zeros(natoms, dtype=ATOM_DTYPE), step=step, time=time)

    @classmethod
    def random(cls, natoms: int, rng: np.random.Generator, box: float = 100.0,
               step: int = 0, time: float = 0.0) -> "Frame":
        """Random frame (testing and synthetic workloads)."""
        atoms = np.zeros(natoms, dtype=ATOM_DTYPE)
        atoms["atom_id"] = np.arange(natoms, dtype=np.uint32)
        atoms["type_id"] = rng.integers(0, 16, natoms, dtype=np.uint16)
        atoms["residue_id"] = (np.arange(natoms, dtype=np.uint32) // 10).astype(np.uint16)
        atoms["position"] = rng.uniform(0, box, (natoms, 3)).astype(np.float32)
        atoms["charge"] = rng.normal(0, 0.4, natoms).astype(np.float32)
        atoms["mass"] = rng.uniform(1.0, 16.0, natoms).astype(np.float32)
        return cls(atoms, step=step, time=time, box=np.full(3, box, np.float32))

    # -- codec -------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to exactly :attr:`nbytes` bytes."""
        flags = 0
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            flags,
            self.natoms,
            self.step,
            float(self.time),
            float(self.box[0]),
            float(self.box[1]),
            float(self.box[2]),
        )
        return header + self.atoms.tobytes()

    @classmethod
    def decode(cls, payload: bytes) -> "Frame":
        """Deserialize; raises :class:`ReproError` on malformed input."""
        if len(payload) < FRAME_HEADER_BYTES:
            raise ReproError(
                f"frame too short: {len(payload)} < {FRAME_HEADER_BYTES}"
            )
        magic, version, _flags, natoms, step, time, bx, by, bz = _HEADER.unpack_from(
            payload
        )
        if magic != _MAGIC:
            raise ReproError(f"bad frame magic {magic!r}")
        if version != _VERSION:
            raise ReproError(f"unsupported frame version {version}")
        expected = frame_size(natoms)
        if len(payload) != expected:
            raise ReproError(
                f"frame size mismatch: {len(payload)} != {expected} "
                f"for {natoms} atoms"
            )
        atoms = np.frombuffer(
            payload, dtype=ATOM_DTYPE, count=natoms, offset=FRAME_HEADER_BYTES
        ).copy()
        return cls(
            atoms,
            step=step,
            time=time,
            box=np.array([bx, by, bz], dtype=np.float32),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return (
            self.step == other.step
            and self.time == other.time
            and np.array_equal(self.box, other.box)
            and np.array_equal(self.atoms, other.atoms)
        )
