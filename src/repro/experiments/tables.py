"""Tables I & II and the Fig. 3 context data (molecular model catalogue).

Table I: atoms, frame size, steps/second per model.
Table II: steps/second, ms/step, stride, resulting frame frequency.
Fig. 3 (context): model size vs frame size, cross-checked against the
frame codec (44-byte header + 28 B/atom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.md.frame import frame_size
from repro.md.models import MODELS, MolecularModel
from repro.perf.report import table
from repro.units import KiB, MiB, fmt_bytes

__all__ = ["table1_rows", "table2_rows", "fig3_rows", "run", "main"]


def table1_rows() -> List[List[str]]:
    """Rows of the paper's Table I, computed from the catalogue + codec."""
    rows = []
    for m in MODELS:
        size = m.frame_bytes
        size_str = (
            f"{size / KiB:.2f} KiB" if size < MiB else f"{size / MiB:.2f} MiB"
        )
        rows.append([m.name, f"{m.num_atoms:,}", size_str, f"{m.steps_per_second:.2f}"])
    return rows


def table2_rows() -> List[List[str]]:
    """Rows of the paper's Table II (stride derivations)."""
    rows = []
    for m in MODELS:
        rows.append([
            m.name,
            f"{m.steps_per_second:.2f}",
            f"{m.ms_per_step:.2f}",
            str(m.paper_stride),
            f"{m.paper_frequency:.2f}",
        ])
    return rows


def fig3_rows() -> List[List[str]]:
    """Fig. 3 context: atoms vs frame bytes, paper vs codec."""
    rows = []
    for m in MODELS:
        rows.append([
            m.name,
            f"{m.num_atoms:,}",
            fmt_bytes(m.frame_bytes),
            fmt_bytes(m.paper_frame_bytes),
            f"{abs(m.frame_bytes - m.paper_frame_bytes) / m.paper_frame_bytes:.3%}",
        ])
    return rows


@dataclass
class TablesResult:
    """Structured result for the tables 'experiment'."""

    table1: List[List[str]]
    table2: List[List[str]]
    fig3: List[List[str]]

    def render(self) -> str:
        """All three tables as fixed-width text."""
        return "\n\n".join([
            table(["Name", "Num Atoms", "Frame size", "Steps/second"],
                  self.table1, title="Table I: targeted molecular models"),
            table(["Name", "Steps/second", "ms/step", "Stride", "Frequency (s)"],
                  self.table2, title="Table II: stride for each molecular model"),
            table(["Name", "Atoms", "Codec frame", "Paper frame", "Deviation"],
                  self.fig3, title="Fig. 3 context: model size vs frame size"),
        ])


def run(runs=None, frames=None, quick: bool = False) -> TablesResult:
    """Build the tables (no simulation involved)."""
    return TablesResult(table1=table1_rows(), table2=table2_rows(), fig3=fig3_rows())


def main() -> TablesResult:
    """Print Tables I/II and the Fig. 3 cross-check."""
    result = run()
    print(result.render())
    return result


if __name__ == "__main__":
    main()
