"""Fig. 6 — small-scale distributed workflow (two nodes): DYAD vs Lustre.

JAC, stride 880, 128 frames, 1/2/4/8 pairs, producers on node 1 and
consumers on node 2 (XFS cannot run across nodes, so Lustre replaces it).

Paper's headline numbers:
- (a) DYAD production ≈ 7.5× faster than Lustre (node-local staging vs
  off-node parallel file system);
- (b) DYAD consumer data movement ≈ 6.9× faster; overall consumption
  ≈ 197.4× faster. Network communication costs DYAD almost nothing
  relative to its single-node configuration (Finding 2).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import FigureResult, default_frames, default_runs, measure
from repro.md.models import JAC
from repro.workflow.spec import Placement, System, WorkflowSpec

__all__ = ["PAIRS", "PAPER", "run", "main"]

PAIRS = (1, 2, 4, 8)

PAPER = {
    "production_ratio_lustre_over_dyad": 7.5,
    "consumption_movement_ratio_lustre_over_dyad": 6.9,
    "consumption_ratio_lustre_over_dyad": 197.4,
}


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> FigureResult:
    """Measure the Fig. 6 grid."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(32 if quick else frames)
    cells = {}
    for pairs in PAIRS:
        for system in (System.DYAD, System.LUSTRE):
            spec = WorkflowSpec(
                system=system, model=JAC, stride=JAC.paper_stride,
                frames=frames, pairs=pairs, placement=Placement.SPLIT,
            )
            cell, _ = measure(spec, runs=runs)
            cells[(pairs, system.value)] = cell
    fig = FigureResult(
        figure_id="Fig6",
        title="two-node distributed workflow, JAC (DYAD vs Lustre)",
        x_name="pairs",
        xs=list(PAIRS),
        systems=[System.DYAD.value, System.LUSTRE.value],
        cells=cells,
        runs=runs,
        frames=frames,
    )
    fig.notes = [
        f"production movement lustre/dyad = "
        f"{fig.ratio('production_movement', 'lustre', 'dyad'):.2f}x "
        f"(paper: {PAPER['production_ratio_lustre_over_dyad']}x)",
        f"consumption movement lustre/dyad = "
        f"{fig.ratio('consumption_movement', 'lustre', 'dyad'):.2f}x "
        f"(paper: {PAPER['consumption_movement_ratio_lustre_over_dyad']}x)",
        f"overall consumption lustre/dyad = "
        f"{fig.ratio('consumption_time', 'lustre', 'dyad'):.1f}x "
        f"(paper: {PAPER['consumption_ratio_lustre_over_dyad']}x)",
    ]
    return fig


def main(quick: bool = False) -> FigureResult:
    """Run and print Fig. 6."""
    fig = run(quick=quick)
    print(fig.render())
    return fig


if __name__ == "__main__":
    main()
