"""Topology — fan-out / fan-in / work-stealing grids on every system.

The paper measures 1:1 producer/consumer pairs; its future-work section
calls for "a more diverse set of workflows". This experiment sweeps the
three non-pairwise :class:`~repro.workflow.spec.Topology` shapes through
the full workflow layer (the successor of the hand-rolled
``extension_fanout`` harness, which bypassed it):

- **fan-out (1→M)** — the headline read-amplification comparison: M
  DYAD consumers of a frame on one node trigger *one* RDMA pull (the
  shared-read staging tier single-flights the cache miss; the other
  M-1 consumers take cache hits), while every Lustre consumer cold-reads
  the frame from the OSS complex — M transfers per frame.
- **fan-in (N→1)** — one reduce consumer folds N streams per frame;
  drain adds the aggregation-completeness invariant.
- **pool (N→M)** — M workers steal ``(stream, frame)`` tasks from a
  shared queue; drain adds the pool-wide exactly-once invariant.

Each shape runs for DYAD / XFS / Lustre under coarse, polling, and
windowed-streaming sync (DYAD normalizes polling to coarse, so its
manual column is the single canonical spelling), at the ``exact`` and
``hybrid`` fidelity tiers. Every cell runs with the invariant checker
armed and fatal, and the run *gates* like the streaming sweep: recorded
violations, credit-ledger imbalances, or a broken shared-read bound
(DYAD pulling more than one copy of a frame per consumer node) land in
``TopologyReport.failures`` and fail the CLI invocation.

Cells aggregate with :func:`~repro.experiments.common.median_run` where
one representative run's counters are reported — never run 0's counters
under another run's movement (the aggregation bug the old fan-out
harness had).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    Cell,
    FigureResult,
    default_frames,
    default_runs,
    measure,
    median_run,
)
from repro.workflow.emulator import READ_REGION
from repro.workflow.spec import (
    Placement, SyncMode, System, Topology, WorkflowSpec,
)

__all__ = ["FIDELITIES", "TopologyReport", "run", "main"]

#: Simulation tiers each grid runs under.
FIDELITIES: Tuple[str, ...] = ("exact", "hybrid")

#: In-flight window for the windowed streaming cells.
WINDOW = 4

#: Producer-side width of the work-stealing pool cells.
POOL_PRODUCERS = 2

#: Manual + streaming sync modes per system. DYAD's polling spelling
#: normalizes to coarse (one canonical automatic-sync column).
_SYNCS = {
    System.DYAD: (SyncMode.COARSE, SyncMode.WINDOWED),
    System.XFS: (SyncMode.COARSE, SyncMode.POLLING, SyncMode.WINDOWED),
    System.LUSTRE: (SyncMode.COARSE, SyncMode.POLLING, SyncMode.WINDOWED),
}


def _xs(system: System, quick: bool, pool: bool) -> Tuple[int, ...]:
    """Swept graph widths. Split systems reach the acceptance fan-out of
    8; single-node XFS is capped by the 8 procs/node budget (1 producer
    + 7 consumers, or 2 pool producers + 6 workers)."""
    if pool:
        return ((2, 6) if quick else (2, 4, 6)) if system is System.XFS \
            else ((2, 8) if quick else (2, 4, 8))
    if system is System.XFS:
        return (2, 7) if quick else (2, 4, 7)
    return (2, 8) if quick else (2, 4, 8)


def _placement(system: System) -> Placement:
    return (Placement.SINGLE_NODE if system is System.XFS
            else Placement.SPLIT)


def _spec(topology: Topology, system: System, sync: SyncMode, x: int,
          frames: int) -> WorkflowSpec:
    sizes = {"consumers": x} if topology is Topology.FANOUT else \
        {"producers": x} if topology is Topology.FANIN else \
        {"producers": POOL_PRODUCERS, "consumers": x}
    extras = {"window": WINDOW} if sync.is_streaming else {}
    return WorkflowSpec(
        system=system, topology=topology, frames=frames, pairs=1,
        placement=_placement(system), sync_mode=sync, **sizes, **extras,
    )


@dataclass
class TopologyReport:
    """The full sweep: one :class:`FigureResult` per shape and tier."""

    figures: List[FigureResult] = field(default_factory=list)
    #: fan-out read-amplification accounting at the top swept width,
    #: keyed by system label (exact tier, manual sync)
    amplification: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: gate trips: violations, ledger imbalances, broken shared-read bound
    failures: List[str] = field(default_factory=list)
    runs: int = 0
    frames: int = 0

    def render(self) -> str:
        """Every figure's report, the amplification note, the gate line."""
        parts = [fig.render() for fig in self.figures]
        if self.amplification:
            lines = ["=== fan-out read amplification (exact tier, manual "
                     "sync, top width) ==="]
            for label, stats in sorted(self.amplification.items()):
                if "rdma_transfers" in stats:
                    lines.append(
                        f"{label}: fan-out {stats['fanout']:.0f} x "
                        f"{stats['frames']:.0f} frames -> "
                        f"{stats['rdma_transfers']:.0f} RDMA pull(s), "
                        f"{stats['cache_hits']:.0f} staging-cache hit(s), "
                        f"{stats['shared_read_waits']:.0f} single-flight "
                        f"wait(s) — one pull per frame per node"
                    )
                else:
                    lines.append(
                        f"{label}: fan-out {stats['fanout']:.0f} x "
                        f"{stats['frames']:.0f} frames -> "
                        f"{stats['cold_reads']:.0f} cold read(s) from the "
                        f"server complex ({stats['fanout']:.0f}x read "
                        f"amplification)"
                    )
            parts.append("\n".join(lines))
        if self.failures:
            parts.append("FAILURES:\n" + "\n".join(self.failures))
        else:
            parts.append("gate: zero invariant violations, credit ledgers "
                         "balanced, shared-read bound held in every cell")
        return "\n\n".join(parts)


def _edges(spec: WorkflowSpec) -> int:
    """Producer→consumer edge count (credit-ledger expectation)."""
    return (spec.consumers if spec.topology is Topology.FANOUT
            else spec.streams)


def _gate(report: TopologyReport, where: str, spec: WorkflowSpec,
          results) -> None:
    """Fold one cell's runs into the gate checks."""
    for r in results:
        stats = r.system_stats
        if r.invariant_violations:
            report.failures.append(
                f"{where}: {len(r.invariant_violations)} invariant "
                f"violation(s): {r.invariant_violations[0]}"
            )
        if spec.is_streaming:
            issued = stats.get("stream_credits_issued", 0.0)
            returned = stats.get("stream_credits_returned", 0.0)
            if issued != returned:
                report.failures.append(
                    f"{where}: credit ledger imbalanced "
                    f"({issued:.0f} issued != {returned:.0f} returned)"
                )
            expected = float(_edges(spec) * spec.frames)
            if issued != expected:
                report.failures.append(
                    f"{where}: {issued:.0f} credits issued across "
                    f"{_edges(spec)} edge(s) for {spec.frames} frames "
                    f"(expected {expected:.0f})"
                )
        if (spec.system is System.DYAD
                and spec.topology is Topology.FANOUT):
            # Shared-read bound: at most one pull per frame per
            # consumer node (the single-flight tier's whole point).
            nodes = len(set(spec.consumer_nodes()))
            bound = float(spec.frames * nodes)
            pulls = stats.get("fabric_rdma_transfers", 0.0)
            if pulls > bound:
                report.failures.append(
                    f"{where}: {pulls:.0f} RDMA pulls for {spec.frames} "
                    f"frames on {nodes} consumer node(s) — shared-read "
                    f"coalescing failed (bound {bound:.0f})"
                )


def _account_amplification(report: TopologyReport, spec: WorkflowSpec,
                           results) -> None:
    """Record the fan-out amplification counters of one top-width cell,
    from the median-movement run (per-run-consistent counters)."""
    r = median_run(results, key=lambda res: res.consumption_movement)
    stats = r.system_stats
    if spec.system is System.DYAD:
        report.amplification[spec.system.value] = {
            "fanout": float(spec.consumers),
            "frames": float(spec.frames),
            "rdma_transfers": stats.get("fabric_rdma_transfers", 0.0),
            "cache_hits": stats.get("dyad_cache_hits", 0.0),
            "shared_read_waits": stats.get("dyad_shared_read_waits", 0.0),
        }
    else:
        reads = sum(
            tree.find(READ_REGION).count
            for tree in r.consumer_trees
            if tree.find(READ_REGION) is not None
        )
        report.amplification[spec.system.value] = {
            "fanout": float(spec.consumers),
            "frames": float(spec.frames),
            "cold_reads": float(reads),
        }


_SHAPES = (
    (Topology.FANOUT, "Topology-A", "fan-out 1->M", "consumers"),
    (Topology.FANIN, "Topology-B", "fan-in N->1 reduce", "producers"),
    (Topology.POOL, "Topology-C", "work-stealing pool "
     f"({POOL_PRODUCERS} producers -> M workers)", "workers"),
)


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> TopologyReport:
    """Sweep shape x system x sync x fidelity; gate on the invariants."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(8 if quick else min(default_frames(frames), 32))
    report = TopologyReport(runs=runs, frames=frames)
    for topology, figure_id, title, x_name in _SHAPES:
        for fidelity in FIDELITIES:
            cells: Dict[Tuple[object, str], Cell] = {}
            xs: List[object] = []
            systems: List[str] = []
            for system in (System.DYAD, System.XFS, System.LUSTRE):
                pool = topology is Topology.POOL
                for x in _xs(system, quick, pool):
                    if x not in xs:
                        xs.append(x)
                    for sync in _SYNCS[system]:
                        spec = _spec(topology, system, sync, x, frames)
                        label = f"{system.value}/{sync.value}"
                        if label not in systems:
                            systems.append(label)
                        cell, results = measure(spec, runs=runs,
                                                fidelity=fidelity)
                        cells[(x, label)] = cell
                        where = f"{figure_id}/{fidelity} {label} @ {x}"
                        _gate(report, where, spec, results)
                        if (topology is Topology.FANOUT
                                and fidelity == "exact"
                                and sync is SyncMode.COARSE
                                and system is not System.XFS
                                and x == max(_xs(system, quick, pool))):
                            _account_amplification(report, spec, results)
            fig = FigureResult(
                figure_id=f"{figure_id} [{fidelity}]",
                title=f"{title}, {fidelity} tier",
                x_name=x_name,
                xs=sorted(xs),
                systems=systems,
                cells=cells,
                runs=runs,
                frames=frames,
            )
            fig.notes = [
                "xfs runs single-node under the 8 procs/node cap; "
                "dyad/lustre run split; windowed cells use W="
                f"{WINDOW}; checker fatal",
            ]
            report.figures.append(fig)
    return report


def main(quick: bool = False) -> TopologyReport:
    """Run, print, and gate the sweep (raises on violations)."""
    from repro.errors import CampaignError

    report = run(quick=quick)
    print(report.render())
    if report.failures:
        raise CampaignError(
            f"topology sweep failed: {len(report.failures)} cell(s) "
            "tripped the gate"
        )
    return report


if __name__ == "__main__":
    main()
