"""Calibration self-check: the timing model's first principles, verified.

docs/calibration.md derives per-operation times from the device constants.
This module re-derives those predictions *from the live configuration
objects* and measures each primitive operation in isolation, asserting
they agree — so a recalibration that breaks the documented arithmetic is
caught programmatically, not by a stale document.

Run as ``python -m repro.experiments validate`` (also a test target).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.cluster.corona import CORONA_FABRIC, CORONA_NODE, corona
from repro.dyad.config import DyadConfig
from repro.dyad.service import DyadRuntime
from repro.errors import ReproError, TransferError
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.md.models import JAC, STMV
from repro.storage.lustre import LustreConfig, LustreFileSystem, LustreServers
from repro.storage.xfs import XFSConfig, XFSFileSystem
from repro.units import fmt_time

__all__ = ["Check", "ValidationResult", "run", "main"]


@dataclass
class Check:
    """One predicted-vs-measured primitive operation."""

    name: str
    predicted: float
    measured: float
    tolerance: float = 0.10  # relative
    dimensionless: bool = False

    @property
    def ok(self) -> bool:
        """True when measured is within tolerance of predicted."""
        scale = max(abs(self.predicted), 1e-12)
        return abs(self.measured - self.predicted) / scale <= self.tolerance

    def __str__(self) -> str:
        mark = "ok " if self.ok else "FAIL"
        if self.dimensionless:
            return (
                f"[{mark}] {self.name}: predicted {self.predicted:.2f}x, "
                f"measured {self.measured:.2f}x"
            )
        return (
            f"[{mark}] {self.name}: predicted {fmt_time(self.predicted)}, "
            f"measured {fmt_time(self.measured)}"
        )


@dataclass
class ValidationResult:
    """All checks of one validation run."""

    checks: List[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(c.ok for c in self.checks)

    def render(self) -> str:
        """One line per check plus an overall verdict."""
        lines = ["=== calibration self-check (predicted vs measured) ==="]
        lines.extend(str(c) for c in self.checks)
        lines.append("all checks passed" if self.ok else "CHECK FAILURES")
        return "\n".join(lines)


def _measure(cluster, gen) -> float:
    start = cluster.env.now
    proc = cluster.env.process(gen)
    cluster.env.run(proc)
    return cluster.env.now - start


def run(runs=None, frames=None, quick: bool = False) -> ValidationResult:
    """Execute every calibration check (the arguments are ignored; the
    checks are single deterministic operations)."""
    result = ValidationResult()
    ssd = CORONA_NODE.ssd
    xfs_cfg = XFSConfig()
    lustre_cfg = LustreConfig()
    dyad_cfg = DyadConfig()
    kvs_cfg = dyad_cfg.kvs
    fabric = CORONA_FABRIC
    jac = JAC.frame_bytes
    stmv = STMV.frame_bytes

    # -- XFS frame write: create + extent alloc + device write + close ----
    cluster = corona(nodes=1, seed=0)
    fs = XFSFileSystem(cluster.node(0))

    def xfs_write():
        handle = yield from fs.open("/f", "w", client="node00")
        yield from handle.write(jac)
        yield from handle.close()

    predicted = (
        xfs_cfg.lookup_time + xfs_cfg.create_journal_time
        + xfs_cfg.extent_alloc_time * 1
        + ssd.write_latency + jac / ssd.write_bandwidth
        + xfs_cfg.close_time
    )
    result.checks.append(
        Check("XFS JAC frame write (create+write+close)", predicted,
              _measure(cluster, xfs_write()))
    )

    # -- DYAD produce = XFS write + flock + client overhead + KVS commit --
    cluster = corona(nodes=1, seed=0)
    runtime = DyadRuntime(cluster)
    producer = runtime.producer("node00", "p")
    loopback = fabric.message_setup / 2
    commit = 2 * loopback + kvs_cfg.commit_service
    predicted_dyad = (
        dyad_cfg.client_overhead + dyad_cfg.flock_time
        + xfs_cfg.lookup_time + xfs_cfg.create_journal_time
        + xfs_cfg.extent_alloc_time
        + ssd.write_latency + jac / ssd.write_bandwidth
        + xfs_cfg.close_time
        + commit
    )
    result.checks.append(
        Check("DYAD JAC produce (stage+commit)", predicted_dyad,
              _measure(cluster, producer.produce("/dyad/f", jac)))
    )

    # the documented 1.4x production ratio follows from the two above
    result.checks.append(
        Check("DYAD/XFS production ratio", 1.4,
              predicted_dyad / predicted, tolerance=0.15,
              dimensionless=True)
    )

    # -- fabric RDMA pull of one JAC frame --------------------------------
    cluster = corona(nodes=2, seed=0)
    predicted = (
        fabric.rdma_setup + fabric.hop_latency * fabric.hops
        + jac / fabric.link_bandwidth
    )
    result.checks.append(
        Check("RDMA pull, JAC frame", predicted,
              _measure(cluster,
                       cluster.fabric.rdma_get("node01", "node00", jac)))
    )

    # -- Lustre cold read of one STMV frame (uncontended) -----------------
    cluster = corona(nodes=2, seed=0)
    servers = LustreServers(cluster.env, cluster.fabric)
    lfs = LustreFileSystem(servers)

    def lustre_cycle():
        handle = yield from lfs.open("/big", "w", client="node00")
        yield from handle.write(stmv)
        yield from handle.close()

    _measure(cluster, lustre_cycle())

    def lustre_read():
        handle = yield from lfs.open("/big", "r", client="node01")
        yield from handle.read()
        yield from handle.close()

    per_stripe = -(-stmv // lustre_cfg.stripe_count)
    stream_floor = servers._stream_floor(per_stripe)
    mds_rtt = (2 * (fabric.message_setup + fabric.hop_latency * fabric.hops)
               + lustre_cfg.mds_service)
    n_rpcs = -(-per_stripe // lustre_cfg.rpc_size)
    rpc_overhead = lustre_cfg.rpc_overhead * -(-n_rpcs // lustre_cfg.max_rpcs_in_flight)
    transfer = (fabric.message_setup + fabric.hop_latency * fabric.hops
                + per_stripe / fabric.link_bandwidth)
    predicted = (
        mds_rtt + 2 * lustre_cfg.client_overhead   # open + read op
        + rpc_overhead + stream_floor + transfer
        + mds_rtt                                   # close-commit
    )
    result.checks.append(
        Check("Lustre STMV cold read (solo)", predicted,
              _measure(cluster, lustre_read()), tolerance=0.15)
    )

    # -- DYAD retry backoff schedule against a crashed service ------------
    # With jitter off, the time a consumer spends failing against a dead
    # owner service is exactly: client overhead + one KVS lookup round
    # trip + one control message per attempt (the service refuses on
    # arrival) + the capped exponential backoff series. This pins the
    # recovery arithmetic that docs/resilience.md documents.
    retry_cfg = DyadConfig(retry_jitter=0.0)
    cluster = corona(nodes=2, seed=0)
    runtime = DyadRuntime(cluster, config=retry_cfg)
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")
    _measure(cluster, producer.produce("/dyad/f", jac))
    runtime.service("node00").crash()

    def failing_consume():
        try:
            yield from consumer.consume("/dyad/f")
        except TransferError:
            pass
        else:  # pragma: no cover - the crash above makes success a bug
            raise ReproError("consume succeeded against a crashed service")

    msg0 = fabric.message_setup + fabric.hop_latency * fabric.hops
    lookup_rtt = (2 * (msg0 + kvs_cfg.value_size / fabric.link_bandwidth)
                  + kvs_cfg.lookup_service)
    n_retries = retry_cfg.max_transfer_retries
    backoffs = sum(
        min(retry_cfg.retry_backoff * 2.0 ** a, retry_cfg.retry_backoff_cap)
        for a in range(n_retries)
    )
    predicted = (retry_cfg.client_overhead + lookup_rtt
                 + (n_retries + 1) * msg0 + backoffs)
    result.checks.append(
        Check("DYAD retry backoff schedule (service down)", predicted,
              _measure(cluster, failing_consume()), tolerance=0.01)
    )

    # -- DYAD recovery retry count after a transient crash ----------------
    # Crash the owner service for 10 ms via the fault injector and count
    # how many retries the consumer needs before the restart: a mirror of
    # the client's schedule (attempt a lands at cumulative time t; it
    # succeeds once t passes the restart instant) predicts the count
    # exactly, and the frame must still arrive.
    recover_cfg = DyadConfig(retry_jitter=0.0, max_transfer_retries=30)
    cluster = corona(nodes=2, seed=0)
    runtime = DyadRuntime(cluster, config=recover_cfg)
    producer = runtime.producer("node00", "p")
    consumer = runtime.consumer("node01", "c")
    _measure(cluster, producer.produce("/dyad/g", jac))
    downtime = 0.01
    plan = FaultPlan(events=(
        FaultEvent("dyad_crash", at=cluster.env.now, target="0",
                   duration=downtime),
    ))
    FaultInjector(plan, cluster, dyad=runtime).start()
    _measure(cluster, consumer.consume("/dyad/g"))
    if consumer.fast_hits + consumer.kvs_waits != 1:
        raise ReproError("frame did not arrive after service restart")
    t = recover_cfg.client_overhead + lookup_rtt
    predicted_retries = 0
    while True:
        t += msg0
        if t >= downtime:
            break
        predicted_retries += 1
        t += min(recover_cfg.retry_backoff * 2.0 ** (predicted_retries - 1),
                 recover_cfg.retry_backoff_cap)
    result.checks.append(
        Check("DYAD recovery retries after 10ms crash",
              float(predicted_retries), float(consumer.transfer_retries),
              tolerance=0.01, dimensionless=True)
    )
    return result


def main(quick: bool = False) -> ValidationResult:
    """Run and print the calibration self-check."""
    result = run()
    print(result.render())
    return result


if __name__ == "__main__":
    main()
