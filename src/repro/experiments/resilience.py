"""Resilience — graceful degradation under injected faults.

Not a paper figure: an extension sweep that stresses each system's
recovery path with seed-reproducible fault plans (see
:mod:`repro.faults`) of increasing intensity and reports how makespan
and per-frame movement time degrade:

- **DYAD** — the owner node's service crashes mid-run (consumers
  re-request lost frames under capped exponential backoff once it
  restarts), a consumer-side link flaps, and every remote get carries a
  probabilistic transfer fault;
- **XFS** — the single shared node's SSD degrades (both channels
  throttled) for half the run;
- **Lustre** — the whole server complex (MDS + OSS) slows down, and a
  consumer-side link flaps.

Intensity ``0`` is the fault-free baseline; the same grid cell as the
paper experiments, so the degradation curve is anchored to the healthy
numbers. Every faulty cell is still a pure function of (spec, seed,
plan), caches under a distinct key, and fans out across ``--jobs``
workers like any other experiment.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.dyad.config import DyadConfig
from repro.experiments.common import (
    FigureResult,
    default_frames,
    default_runs,
    measure,
)
from repro.faults.plan import FaultEvent, FaultPlan
from repro.workflow.spec import Placement, System, WorkflowSpec

__all__ = ["INTENSITIES", "PAIRS", "build_plan", "run", "main"]

#: Producer/consumer pairs per system. 4 is the largest grid XFS's
#: single-node placement admits (8 GPUs, 2 per pair), so all three
#: systems sweep the same workload.
PAIRS = 4

#: Fault intensities swept (0 = healthy baseline). The acceptance bar is
#: >= 3 non-trivial intensities; quick mode keeps exactly 3 plus baseline.
INTENSITIES: Tuple[float, ...] = (0.0, 0.1, 0.25, 0.5)

_SYSTEMS = (System.DYAD, System.XFS, System.LUSTRE)


def _spec(system: System, frames: int) -> WorkflowSpec:
    placement = (Placement.SINGLE_NODE if system is System.XFS
                 else Placement.SPLIT)
    return WorkflowSpec(system=system, frames=frames, pairs=PAIRS,
                        placement=placement)


def _retry_budget(config: DyadConfig, downtime: float) -> int:
    """Transfer retries needed to outlast ``downtime`` seconds of refusals.

    Mirrors the client's capped exponential schedule *without* jitter:
    jitter only lengthens each delay (factor in ``[1, 1+retry_jitter]``),
    so a budget that covers the un-jittered schedule covers the jittered
    one too. Doubled, plus headroom for probabilistic transfer faults
    spent on the same counter.
    """
    total, attempts = 0.0, 0
    while total < downtime:
        total += min(config.retry_backoff * (2.0 ** attempts),
                     config.retry_backoff_cap)
        attempts += 1
    return 2 * attempts + 8


def build_plan(system: System, intensity: float,
               spec: WorkflowSpec) -> Tuple[Optional[FaultPlan],
                                            Optional[DyadConfig]]:
    """(fault plan, dyad config override) for one grid cell.

    ``intensity`` in ``[0, 1]`` scales every knob: fault window lengths,
    degradation severity, and the probabilistic transfer fault rate.
    Intensity 0 is the fault-free baseline (no plan at all, so the cell
    shares its cache entry with the paper experiments).
    """
    if intensity <= 0.0:
        return None, None
    horizon = spec.frames * spec.stride_time
    if system is System.DYAD:
        downtime = 0.2 * intensity * horizon
        events = (
            # Crash the producer-side service (node 0 owns every staged
            # frame under SPLIT placement) a quarter of the way in.
            FaultEvent("dyad_crash", at=0.25 * horizon, target="0",
                       duration=downtime),
            # Flap the consumer node's link later in the run.
            FaultEvent("link_flap", at=0.7 * horizon, target="1",
                       duration=0.05 * intensity * horizon),
        )
        base = DyadConfig()
        config = DyadConfig(
            max_transfer_retries=max(base.max_transfer_retries,
                                     _retry_budget(base, downtime)),
        )
        plan = FaultPlan(events=events,
                         transfer_fault_rate=min(0.3 * intensity, 0.3))
        return plan, config
    if system is System.XFS:
        plan = FaultPlan(events=(
            FaultEvent("ssd_degrade", at=0.25 * horizon, target="0",
                       duration=0.5 * horizon,
                       severity=1.0 + 9.0 * intensity),
        ))
        return plan, None
    plan = FaultPlan(events=(
        FaultEvent("lustre_slowdown", at=0.25 * horizon, target="",
                   duration=0.4 * horizon,
                   severity=1.0 + 9.0 * intensity),
        FaultEvent("link_flap", at=0.75 * horizon, target="1",
                   duration=0.05 * intensity * horizon),
    ))
    return plan, None


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> FigureResult:
    """Measure the degradation grid."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(16 if quick else frames)
    intensities = (0.0, 0.25, 0.5) if quick else INTENSITIES
    cells = {}
    makespans = {}
    recovery_notes: List[str] = []
    for intensity in intensities:
        for system in _SYSTEMS:
            spec = _spec(system, frames)
            plan, dyad_config = build_plan(system, intensity, spec)
            configs = {}
            if dyad_config is not None:
                configs["dyad_config"] = dyad_config
            cell, results = measure(spec, runs=runs, fault_plan=plan,
                                    **configs)
            cells[(intensity, system.value)] = cell
            makespans[(intensity, system.value)] = float(
                np.mean([r.makespan for r in results])
            )
            if system is System.DYAD and intensity > 0.0:
                retries = sum(r.system_stats["dyad_transfer_retries"]
                              for r in results)
                refused = sum(r.system_stats["dyad_refused_gets"]
                              for r in results)
                recovery_notes.append(
                    f"dyad @ intensity {intensity}: {retries:.0f} transfer "
                    f"retries absorbed {refused:.0f} refused gets across "
                    f"{runs} run(s); all {frames * PAIRS} frames recovered"
                )
    fig = FigureResult(
        figure_id="Resilience",
        title="graceful degradation under injected faults "
              f"(DYAD vs XFS vs Lustre, {PAIRS} pairs)",
        x_name="intensity",
        xs=list(intensities),
        systems=[s.value for s in _SYSTEMS],
        cells=cells,
        runs=runs,
        frames=frames,
    )
    fig.notes = ["makespan degradation (s, relative to intensity 0):"]
    for system in _SYSTEMS:
        base = makespans[(intensities[0], system.value)]
        points = ", ".join(
            f"{i}: {makespans[(i, system.value)]:.3f}"
            f" ({makespans[(i, system.value)] / base:.2f}x)"
            for i in intensities
        )
        fig.notes.append(f"  {system.value:6s} {points}")
    fig.notes.extend(recovery_notes)
    fig.notes.append(
        "the workflow is producer-paced: degradation shows up in per-frame "
        "movement time first and only reaches makespan once movement (or "
        "DYAD's crash-recovery retries) exceeds the stride slack"
    )
    return fig


def main(quick: bool = False) -> FigureResult:
    """Run and print the resilience sweep."""
    fig = run(quick=quick)
    print(fig.render())
    return fig


if __name__ == "__main__":
    main()
