"""CLI for the reproduction harness: ``python -m repro.experiments …``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_all


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list', 'all', or 'report'",
    )
    parser.add_argument("--runs", type=int, default=None,
                        help="repetitions per configuration (paper: 10)")
    parser.add_argument("--frames", type=int, default=None,
                        help="frames per producer (paper: 128)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid for a fast smoke run")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for repetitions "
                             "(default: REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache location "
                             "(default: REPRO_CACHE_DIR or "
                             "~/.cache/repro/results)")
    parser.add_argument("--fidelity", default=None,
                        choices=["exact", "hybrid", "fluid"],
                        help="simulation tier for every repetition: exact "
                             "per-transfer events (default), hybrid "
                             "(protocol events exact, bulk bytes on the "
                             "flow-level fluid fabric), or fluid (hybrid "
                             "plus latency folding and chunk collapse); "
                             "default: REPRO_FIDELITY or exact")
    parser.add_argument("--streaming", action="store_true",
                        help="with the 'chaos' experiment: soak/replay the "
                             "streaming workload grid (windowed/pubsub/"
                             "nbuffer pipelines) instead of the default "
                             "barrier/polling grid")
    parser.add_argument("--topology", action="store_true",
                        help="with the 'chaos' experiment: soak/replay the "
                             "non-pairwise workload grid (fan-out/fan-in/"
                             "work-stealing shapes) instead of the default "
                             "pairwise grid")
    parser.add_argument("--fault-plan", default=None, metavar="FILE",
                        help="JSON fault plan (e.g. a shrunk chaos repro) "
                             "injected into every repetition; with the "
                             "'chaos' experiment, replays the plan across "
                             "the chaos workload grid instead of soaking")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="export a merged Chrome-trace/Perfetto file "
                             "(spans + substrate counters + fault windows) "
                             "from the first repetition, which re-runs "
                             "instrumented (results are bit-identical; the "
                             "instrumented run bypasses the result cache)")
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="export the same repetition's substrate "
                             "telemetry timeline as JSON (or CSV if FILE "
                             "ends in .csv)")
    parser.add_argument("--output", default="EXPERIMENTS.md",
                        help="output path for 'report'")
    parser.add_argument("--svg-dir", default=None,
                        help="also render the figure's panels as SVG files")
    parser.add_argument("--profile", action="store_true",
                        help="wrap the run in cProfile: print the top "
                             "cumulative hot spots and write profile.pstats "
                             "(forces --jobs 1 so the simulation itself is "
                             "what gets measured)")
    parser.add_argument("--profile-top", type=int, default=25,
                        metavar="N",
                        help="how many hot spots --profile prints "
                             "(default: 25)")
    return parser


def _dispatch(args) -> int:
    """Run the selected experiment under the campaign scope."""
    from repro.experiments.parallel import campaign

    fault_plan = None
    if args.fault_plan is not None:
        from repro.chaos import load_plan

        fault_plan = load_plan(args.fault_plan)
    # Campaign-style invocations default to the cache ON (re-runs skip
    # already-computed cells); --no-cache bypasses it.
    with campaign(jobs=args.jobs, cache=not args.no_cache,
                  cache_dir=args.cache_dir, fault_plan=fault_plan,
                  trace_path=args.trace, metrics_path=args.metrics,
                  fidelity=args.fidelity):
        if args.experiment == "all":
            run_all(quick=args.quick)
            return 0
        if args.experiment == "report":
            from repro.experiments.report import generate

            generate(args.output, runs=args.runs, frames=args.frames,
                     quick=args.quick)
            print(f"wrote {args.output}")
            return 0
        module = get_experiment(args.experiment)
        if args.experiment == "tables":
            result = module.run()
        elif args.experiment == "chaos":
            result = module.run(runs=args.runs, frames=args.frames,
                                quick=args.quick, streaming=args.streaming,
                                topology=args.topology)
        else:
            result = module.run(runs=args.runs, frames=args.frames,
                                quick=args.quick)
    print(result.render())
    if args.svg_dir and hasattr(result, "cells") and hasattr(result, "systems"):
        from repro.experiments.svgplot import save_figure_svg

        for path in save_figure_svg(result, args.svg_dir):
            print(f"wrote {path}")
    # The chaos soak is a gate: invariant violations fail the invocation.
    if getattr(result, "failures", None):
        return 1
    return 0


def _profiled_dispatch(args) -> int:
    """Run :func:`_dispatch` under cProfile; report hot spots.

    Perf PRs should start from this output, not from guesses: the stats
    land in ``profile.pstats`` (browsable with ``python -m pstats`` or
    snakeviz) and the top-N cumulative entries are printed directly.
    """
    import cProfile
    import pstats

    # Worker processes would hide the simulation from the profiler; the
    # serial path computes the same results (bit-identical, see
    # repro.experiments.parallel) in one profilable process.
    if args.jobs is not None and args.jobs != 1:
        print("--profile forces --jobs 1 (workers are not profiled)")
    args.jobs = 1
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = _dispatch(args)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.dump_stats("profile.pstats")
        print(f"\n-- top {args.profile_top} cumulative hot spots "
              "(full data: profile.pstats) --")
        stats.sort_stats("cumulative").print_stats(args.profile_top)
    return status


def main(argv=None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"argument --jobs: must be >= 1, got {args.jobs}")
    if args.profile_top < 1:
        parser.error(f"argument --profile-top: must be >= 1, "
                     f"got {args.profile_top}")
    if args.experiment == "list":
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0
    if args.profile:
        return _profiled_dispatch(args)
    return _dispatch(args)


if __name__ == "__main__":
    sys.exit(main())
