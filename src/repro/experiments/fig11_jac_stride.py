"""Fig. 11 — frame generation frequency scaling with JAC: DYAD vs Lustre.

Strides of 1/5/10/50 MD steps (frames every ~1 ms to ~47 ms of MD
compute), 2 nodes, 16 pairs, 128 frames.

Paper's headline numbers:
- (a) data-movement time flat across strides for both systems (both can
  keep up with the frame rate); DYAD production ≈ 4.8× faster;
- (b) idle time grows with stride for both (longer production period =
  longer waits), but DYAD's idle stays far below Lustre's, so the total
  gap widens as stride grows (Finding 5).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import FigureResult, default_frames, default_runs, measure
from repro.md.models import JAC
from repro.workflow.spec import Placement, System, WorkflowSpec

__all__ = ["STRIDES", "PAPER", "run", "main"]

STRIDES = (1, 5, 10, 50)
PAIRS = 16

PAPER = {
    "production_ratio_lustre_over_dyad": 4.8,
    "movement_flat_across_strides": True,
    "idle_grows_with_stride": True,
}


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> FigureResult:
    """Measure the Fig. 11 grid."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(32 if quick else frames)
    cells = {}
    for stride in STRIDES:
        for system in (System.DYAD, System.LUSTRE):
            spec = WorkflowSpec(
                system=system, model=JAC, stride=stride,
                frames=frames, pairs=PAIRS, placement=Placement.SPLIT,
            )
            cell, _ = measure(spec, runs=runs)
            cells[(stride, system.value)] = cell
    fig = FigureResult(
        figure_id="Fig11",
        title="frame frequency scaling, JAC, 16 pairs (DYAD vs Lustre)",
        x_name="stride",
        xs=list(STRIDES),
        systems=[System.DYAD.value, System.LUSTRE.value],
        cells=cells,
        runs=runs,
        frames=frames,
    )
    lo, hi = STRIDES[0], STRIDES[-1]
    fig.notes = [
        f"production movement lustre/dyad = "
        f"{fig.ratio('production_movement', 'lustre', 'dyad'):.2f}x "
        f"(paper: {PAPER['production_ratio_lustre_over_dyad']}x)",
        f"dyad movement stride {lo}->{hi}: "
        f"{cells[(lo, 'dyad')].consumption_movement.mean * 1e3:.3f} -> "
        f"{cells[(hi, 'dyad')].consumption_movement.mean * 1e3:.3f} ms "
        "(paper: flat)",
        f"dyad idle stride {lo}->{hi}: "
        f"{cells[(lo, 'dyad')].consumption_idle.mean * 1e3:.3f} -> "
        f"{cells[(hi, 'dyad')].consumption_idle.mean * 1e3:.3f} ms; "
        f"lustre idle: "
        f"{cells[(lo, 'lustre')].consumption_idle.mean * 1e3:.3f} -> "
        f"{cells[(hi, 'lustre')].consumption_idle.mean * 1e3:.3f} ms "
        "(paper: both grow; DYAD stays far lower)",
    ]
    return fig


def main(quick: bool = False) -> FigureResult:
    """Run and print Fig. 11."""
    fig = run(quick=quick)
    print(fig.render())
    return fig


if __name__ == "__main__":
    main()
