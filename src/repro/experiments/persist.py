"""Persistence and regression comparison of experiment results.

``FigureResult`` objects serialize to JSON so a measurement campaign can
be archived next to the code that produced it, and later campaigns can be
*diffed* against the archive — flagging metrics that moved by more than a
tolerance. This is the mechanism for treating the reproduction itself as
a regression-tested artifact (e.g. after recalibrating a device model).

CLI-free API: :func:`save_figure`, :func:`load_figure`,
:func:`compare_figures`, :func:`save_campaign`, :func:`load_campaign`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.experiments.common import Cell, FigureResult, Stat

__all__ = [
    "save_figure",
    "load_figure",
    "compare_figures",
    "Regression",
    "save_campaign",
    "load_campaign",
]

_FORMAT_VERSION = 1
_METRICS = (
    "production_movement",
    "production_idle",
    "consumption_movement",
    "consumption_idle",
)


def _cell_to_dict(cell: Cell) -> Dict:
    return {
        metric: {"mean": getattr(cell, metric).mean,
                 "std": getattr(cell, metric).std}
        for metric in _METRICS
    }


def _cell_from_dict(payload: Dict) -> Cell:
    return Cell(**{
        metric: Stat(payload[metric]["mean"], payload[metric]["std"])
        for metric in _METRICS
    })


def figure_to_dict(fig: FigureResult) -> Dict:
    """JSON-serializable representation of a figure result."""
    return {
        "format": _FORMAT_VERSION,
        "figure_id": fig.figure_id,
        "title": fig.title,
        "x_name": fig.x_name,
        "xs": list(fig.xs),
        "systems": list(fig.systems),
        "runs": fig.runs,
        "frames": fig.frames,
        "notes": list(fig.notes),
        "cells": [
            {"x": x, "system": system,
             "metrics": _cell_to_dict(fig.cell(x, system))}
            for x in fig.xs
            for system in fig.systems
        ],
    }


def figure_from_dict(payload: Dict) -> FigureResult:
    """Inverse of :func:`figure_to_dict`."""
    if payload.get("format") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported result format {payload.get('format')!r}"
        )
    xs = [tuple(x) if isinstance(x, list) else x for x in payload["xs"]]
    cells = {}
    for entry in payload["cells"]:
        x = entry["x"]
        if isinstance(x, list):
            x = tuple(x)
        cells[(x, entry["system"])] = _cell_from_dict(entry["metrics"])
    return FigureResult(
        figure_id=payload["figure_id"],
        title=payload["title"],
        x_name=payload["x_name"],
        xs=xs,
        systems=list(payload["systems"]),
        cells=cells,
        runs=payload["runs"],
        frames=payload["frames"],
        notes=list(payload.get("notes", [])),
    )


def save_figure(fig: FigureResult, path) -> None:
    """Write one figure result as JSON."""
    with open(path, "w") as fh:
        json.dump(figure_to_dict(fig), fh, indent=1)


def load_figure(path) -> FigureResult:
    """Load one figure result from JSON."""
    with open(path) as fh:
        return figure_from_dict(json.load(fh))


@dataclass(frozen=True)
class Regression:
    """One metric that moved beyond tolerance between two campaigns."""

    figure_id: str
    x: object
    system: str
    metric: str
    before: float
    after: float

    @property
    def factor(self) -> float:
        """after / before (0 when before is 0)."""
        return self.after / self.before if self.before else 0.0

    def __str__(self) -> str:
        return (
            f"{self.figure_id}[{self.x}/{self.system}] {self.metric}: "
            f"{self.before:.6g} -> {self.after:.6g} ({self.factor:.2f}x)"
        )


def compare_figures(before: FigureResult, after: FigureResult,
                    rel_tolerance: float = 0.25) -> List[Regression]:
    """Metrics differing by more than ``rel_tolerance`` between campaigns.

    Grid mismatches (different xs/systems) are reported as a structural
    :class:`ReproError` rather than silently skipped.
    """
    if rel_tolerance <= 0:
        raise ReproError("rel_tolerance must be positive")
    if list(before.xs) != list(after.xs) or list(before.systems) != list(after.systems):
        raise ReproError(
            f"grid mismatch: {before.figure_id} has xs={before.xs}/"
            f"{before.systems} vs {after.xs}/{after.systems}"
        )
    regressions: List[Regression] = []
    for x in before.xs:
        for system in before.systems:
            cell_b = before.cell(x, system)
            cell_a = after.cell(x, system)
            for metric in _METRICS:
                b = getattr(cell_b, metric).mean
                a = getattr(cell_a, metric).mean
                scale = max(abs(b), abs(a))
                if scale == 0:
                    continue
                if abs(a - b) / scale > rel_tolerance:
                    regressions.append(Regression(
                        figure_id=before.figure_id, x=x, system=system,
                        metric=metric, before=b, after=a,
                    ))
    return regressions


def save_campaign(figures: List[FigureResult], directory) -> List[str]:
    """Write every figure of a campaign into a directory; returns paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for fig in figures:
        path = os.path.join(directory, f"{fig.figure_id.lower()}.json")
        save_figure(fig, path)
        paths.append(path)
    return paths


def load_campaign(directory) -> Dict[str, FigureResult]:
    """Load every ``*.json`` figure in a directory, keyed by figure id."""
    out: Dict[str, FigureResult] = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        fig = load_figure(os.path.join(directory, name))
        out[fig.figure_id] = fig
    if not out:
        raise ReproError(f"no figure results found in {directory}")
    return out
