"""Persistence and regression comparison of experiment results.

``FigureResult`` objects serialize to JSON so a measurement campaign can
be archived next to the code that produced it, and later campaigns can be
*diffed* against the archive — flagging metrics that moved by more than a
tolerance. This is the mechanism for treating the reproduction itself as
a regression-tested artifact (e.g. after recalibrating a device model).

:class:`ResultCache` is the second persistence layer: a content-addressed
on-disk memo of individual :class:`~repro.workflow.runner.WorkflowResult`
repetitions, keyed on everything that determines a repetition's outcome
(spec fields, seed, jitter, system configs, package version). Re-rendering
EXPERIMENTS.md or re-running a campaign skips already-computed cells; see
``docs/performance.md`` for location and invalidation rules.

CLI-free API: :func:`save_figure`, :func:`load_figure`,
:func:`compare_figures`, :func:`save_campaign`, :func:`load_campaign`,
:class:`ResultCache`, :func:`encode_result`, :func:`decode_result`.

The CRC-framed wire format (:func:`encode_result` / :func:`decode_result`)
is shared with the service layer: the exact bytes the cache publishes are
what the server streams to clients and what the mmap payload segment
stores, so a result is encoded once at store time and never re-serialized
on the read path.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import tempfile
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.experiments.common import Cell, FigureResult, Stat

__all__ = [
    "save_figure",
    "load_figure",
    "compare_figures",
    "Regression",
    "save_campaign",
    "load_campaign",
    "ResultCache",
    "default_cache_root",
    "encode_result",
    "decode_result",
]

_FORMAT_VERSION = 1
_METRICS = (
    "production_movement",
    "production_idle",
    "consumption_movement",
    "consumption_idle",
)


def _cell_to_dict(cell: Cell) -> Dict:
    return {
        metric: {"mean": getattr(cell, metric).mean,
                 "std": getattr(cell, metric).std}
        for metric in _METRICS
    }


def _cell_from_dict(payload: Dict) -> Cell:
    return Cell(**{
        metric: Stat(payload[metric]["mean"], payload[metric]["std"])
        for metric in _METRICS
    })


def figure_to_dict(fig: FigureResult) -> Dict:
    """JSON-serializable representation of a figure result."""
    return {
        "format": _FORMAT_VERSION,
        "figure_id": fig.figure_id,
        "title": fig.title,
        "x_name": fig.x_name,
        "xs": list(fig.xs),
        "systems": list(fig.systems),
        "runs": fig.runs,
        "frames": fig.frames,
        "notes": list(fig.notes),
        "cells": [
            {"x": x, "system": system,
             "metrics": _cell_to_dict(fig.cell(x, system))}
            for x in fig.xs
            for system in fig.systems
        ],
    }


def figure_from_dict(payload: Dict) -> FigureResult:
    """Inverse of :func:`figure_to_dict`."""
    if payload.get("format") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported result format {payload.get('format')!r}"
        )
    xs = [tuple(x) if isinstance(x, list) else x for x in payload["xs"]]
    cells = {}
    for entry in payload["cells"]:
        x = entry["x"]
        if isinstance(x, list):
            x = tuple(x)
        cells[(x, entry["system"])] = _cell_from_dict(entry["metrics"])
    return FigureResult(
        figure_id=payload["figure_id"],
        title=payload["title"],
        x_name=payload["x_name"],
        xs=xs,
        systems=list(payload["systems"]),
        cells=cells,
        runs=payload["runs"],
        frames=payload["frames"],
        notes=list(payload.get("notes", [])),
    )


def save_figure(fig: FigureResult, path) -> None:
    """Write one figure result as JSON."""
    with open(path, "w") as fh:
        json.dump(figure_to_dict(fig), fh, indent=1)


def load_figure(path) -> FigureResult:
    """Load one figure result from JSON."""
    with open(path) as fh:
        return figure_from_dict(json.load(fh))


@dataclass(frozen=True)
class Regression:
    """One metric that moved beyond tolerance between two campaigns."""

    figure_id: str
    x: object
    system: str
    metric: str
    before: float
    after: float

    @property
    def factor(self) -> float:
        """after / before (0 when before is 0)."""
        return self.after / self.before if self.before else 0.0

    def __str__(self) -> str:
        return (
            f"{self.figure_id}[{self.x}/{self.system}] {self.metric}: "
            f"{self.before:.6g} -> {self.after:.6g} ({self.factor:.2f}x)"
        )


def compare_figures(before: FigureResult, after: FigureResult,
                    rel_tolerance: float = 0.25) -> List[Regression]:
    """Metrics differing by more than ``rel_tolerance`` between campaigns.

    Grid mismatches (different xs/systems) are reported as a structural
    :class:`ReproError` rather than silently skipped.
    """
    if rel_tolerance <= 0:
        raise ReproError("rel_tolerance must be positive")
    if list(before.xs) != list(after.xs) or list(before.systems) != list(after.systems):
        raise ReproError(
            f"grid mismatch: {before.figure_id} has xs={before.xs}/"
            f"{before.systems} vs {after.xs}/{after.systems}"
        )
    regressions: List[Regression] = []
    for x in before.xs:
        for system in before.systems:
            cell_b = before.cell(x, system)
            cell_a = after.cell(x, system)
            for metric in _METRICS:
                b = getattr(cell_b, metric).mean
                a = getattr(cell_a, metric).mean
                scale = max(abs(b), abs(a))
                if scale == 0:
                    continue
                if abs(a - b) / scale > rel_tolerance:
                    regressions.append(Regression(
                        figure_id=before.figure_id, x=x, system=system,
                        metric=metric, before=b, after=a,
                    ))
    return regressions


def save_campaign(figures: List[FigureResult], directory) -> List[str]:
    """Write every figure of a campaign into a directory; returns paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for fig in figures:
        path = os.path.join(directory, f"{fig.figure_id.lower()}.json")
        save_figure(fig, path)
        paths.append(path)
    return paths


def load_campaign(directory) -> Dict[str, FigureResult]:
    """Load every ``*.json`` figure in a directory, keyed by figure id."""
    out: Dict[str, FigureResult] = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        fig = load_figure(os.path.join(directory, name))
        out[fig.figure_id] = fig
    if not out:
        raise ReproError(f"no figure results found in {directory}")
    return out


# ---------------------------------------------------------------------------
# content-addressed repetition cache
# ---------------------------------------------------------------------------

#: Bump to invalidate every cached repetition (e.g. after a change to the
#: WorkflowResult layout that keeps the package version constant).
#: 2: system_stats gained DYAD/fault counters; keys gained the fault plan.
#: 3: system_stats gained the channel_* kernel-health counters.
#: 4: system_stats gained invariant_* counters; results gained
#:    invariant_violations; keys gained the invariant-checker config and
#:    integrity-fault plan fields.
#: 5: system_stats gained fidelity/fluid_epochs/rate_solves; results gained
#:    the fidelity field; keys gained the fidelity tier.
#: 6: entries gained the CRC-framed on-disk format and the sharded
#:    ``root/<key[:2]>/`` layout (multi-tenant store prerequisites).
#: 7: specs gained topology/producers/consumers; DyadConfig gained
#:    shared_read_cache (config reprs key the cache); system_stats gained
#:    dyad_shared_read_waits and the pool_* counters.
_CACHE_SCHEMA = 7

#: On-disk entry framing: magic + payload length + CRC32 ahead of the
#: pickle. A crashed writer (power loss between write and rename on a
#: non-atomic filesystem, or a torn page) leaves an entry whose length or
#: checksum disagrees; ``load`` discards it as a miss instead of
#: unpickling garbage. Legacy raw-pickle entries fail the magic check and
#: take the same self-heal path.
_ENTRY_MAGIC = b"RPRC"
_ENTRY_HEADER = struct.Struct("<4sQI")  # magic, payload length, crc32


def encode_result(result) -> bytes:
    """Pickle + CRC-frame a result into the cache's on-disk/wire bytes.

    The returned blob is self-validating (magic, length, CRC32) and is
    the unit of zero-copy delivery: stored verbatim on disk and in the
    payload segment, streamed verbatim to clients.
    """
    payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    header = _ENTRY_HEADER.pack(
        _ENTRY_MAGIC, len(payload), zlib.crc32(payload)
    )
    return header + payload


def decode_result(blob: bytes):
    """Validate framing and unpickle; raises :class:`ReproError` on damage."""
    header = bytes(blob[: _ENTRY_HEADER.size])
    if len(header) < _ENTRY_HEADER.size:
        raise ReproError("cache entry truncated before header")
    magic, length, crc = _ENTRY_HEADER.unpack(header)
    payload = bytes(blob[_ENTRY_HEADER.size:])
    if (magic != _ENTRY_MAGIC or len(payload) != length
            or zlib.crc32(payload) != crc):
        raise ReproError("cache entry failed integrity check")
    return pickle.loads(payload)


def default_cache_root() -> str:
    """Cache directory: ``REPRO_CACHE_DIR`` or ``~/.cache/repro/results``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    xdg = os.environ.get(
        "XDG_CACHE_HOME", os.path.join(os.path.expanduser("~"), ".cache")
    )
    return os.path.join(xdg, "repro", "results")


class ResultCache:
    """Content-addressed on-disk store of single-repetition results.

    The key digests every input that determines a repetition's outcome:
    the full spec (``repr`` of the frozen dataclass, which includes the
    molecular model's calibration constants), the seed, the jitter, the
    ``repr`` of each system config, the package version, and the cache
    schema. Two processes computing the same cell therefore agree on the
    key, and any recalibration that changes an input changes the key.

    Values are pickled :class:`~repro.workflow.runner.WorkflowResult`
    objects (tracers are never cached — a traced run bypasses the cache),
    framed with a magic/length/CRC32 header so a torn or truncated write
    is detected on load. Corrupt or unreadable entries count as misses
    and are removed — recomputed, never fatal.

    The store is safe for concurrent writers across processes and
    tenants: entries are published with fsync + ``os.replace`` (readers
    see either nothing or a complete entry), keys are content addresses
    (two writers racing on the same cell publish byte-equivalent
    results, so last-rename-wins is harmless), and entries are sharded
    into 256 ``root/<key[:2]>/`` directories so a campaign-scale store
    never degrades a single directory's listing.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_root()
        self.hits = 0
        self.misses = 0

    # -- keying ------------------------------------------------------------
    def key(self, spec, seed: int, jitter_cv: float,
            system_configs: Optional[Dict[str, Any]] = None,
            fault_plan: Optional[Any] = None,
            invariants: Optional[Any] = None,
            fidelity: str = "exact") -> str:
        """Hex digest identifying one repetition's inputs.

        ``fault_plan`` and ``invariants`` participate in the digest (via
        their deterministic dataclass ``repr``) so faulty, fault-free,
        checked, and unchecked runs of the same spec can never collide.
        ``fidelity`` keys the simulation tier — exact and fluid runs of
        the same cell are distinct entries.
        """
        import repro

        material = json.dumps(
            {
                "schema": _CACHE_SCHEMA,
                "version": repro.__version__,
                "spec": repr(spec),
                "seed": int(seed),
                "jitter_cv": float(jitter_cv).hex(),
                "configs": {
                    name: repr(cfg)
                    for name, cfg in sorted((system_configs or {}).items())
                    if cfg is not None
                },
                "fault_plan": repr(fault_plan) if fault_plan is not None
                else None,
                "invariants": repr(invariants) if invariants is not None
                else None,
                "fidelity": str(fidelity),
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path(self, key: str) -> str:
        """On-disk location of one entry (sharded by key prefix)."""
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    def contains(self, key: str) -> bool:
        """Whether an entry exists on disk (no validation; cheap probe)."""
        return os.path.exists(self.path(key))

    # -- access ------------------------------------------------------------
    def load_bytes(self, key: str) -> Optional[bytes]:
        """Validated framed blob for ``key`` or ``None`` (counts hit/miss).

        The returned bytes are exactly what :func:`decode_result` (and
        any reader of the on-disk format) accepts — no unpickling
        happens here, so callers that only forward bytes skip the
        deserialization cost entirely. Corrupt entries self-heal as in
        :meth:`load`.
        """
        path = self.path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
            header = blob[: _ENTRY_HEADER.size]
            magic, length, crc = _ENTRY_HEADER.unpack(header)
            payload = blob[_ENTRY_HEADER.size:]
            if (magic != _ENTRY_MAGIC or len(payload) != length
                    or zlib.crc32(payload) != crc):
                raise ReproError("cache entry failed integrity check")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated write, torn page, legacy unframed entry, ... —
            # self-heal by recomputing.
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return blob

    def load(self, key: str):
        """Cached result for ``key`` or ``None`` (corrupt entries vanish)."""
        blob = self.load_bytes(key)
        if blob is None:
            return None
        try:
            return pickle.loads(blob[_ENTRY_HEADER.size:])
        except Exception:
            # framing was intact but the pickle layout drifted
            self.hits -= 1
            self.misses += 1
            try:
                os.unlink(self.path(key))
            except OSError:
                pass
            return None

    def store(self, key: str, result) -> str:
        """Persist a result atomically; returns the entry path.

        Safe under concurrent writers: the framed payload is written to a
        same-shard temp file, flushed to stable storage (``fsync``), then
        published with ``os.replace`` — a reader never observes a partial
        entry, and racing writers of the same key overwrite each other
        with byte-equivalent content.
        """
        if getattr(result, "tracer", None) is not None:
            raise ReproError("refusing to cache a traced run")
        if getattr(result, "metrics", None) is not None:
            raise ReproError("refusing to cache a metered run")
        self.store_bytes(key, encode_result(result))
        return self.path(key)

    def store_bytes(self, key: str, blob: bytes) -> str:
        """Atomically publish an already-framed blob under ``key``."""
        path = self.path(key)
        shard = os.path.dirname(path)
        os.makedirs(shard, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def _entries(self):
        """Yield the path of every entry, across shards (and any legacy
        flat-layout files still sitting in the root)."""
        if not os.path.isdir(self.root):
            return
        for name in sorted(os.listdir(self.root)):
            full = os.path.join(self.root, name)
            if name.endswith(".pkl"):
                yield full  # legacy flat entry
            elif len(name) == 2 and os.path.isdir(full):
                for entry in sorted(os.listdir(full)):
                    if entry.endswith(".pkl"):
                        yield os.path.join(full, entry)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())
