"""Fig. 8 — molecular model size scaling: DYAD vs Lustre.

JAC / ApoA1 / F1-ATPase / STMV on 2 nodes with 16 pairs, each model at
its Table II stride so the frame-generation frequency (~0.82 s) is the
same for all models.

Paper's headline numbers:
- (a) production grows with model size for both; DYAD 2.1-6.3× faster
  (NOTE: the paper's text says the production *gap* increases with model
  size, which conflicts with its own Fig. 6 (JAC, 7.5×) and Fig. 12
  (STMV, 2.0×); our model follows the latter — fixed RPC costs amortize,
  so the production gap narrows as frames grow — and stays within the
  paper's 2.1-6.3 band);
- (b) DYAD's consumer data-movement advantage *widens* with model size
  (paper: 1.6→6.0×) — node-local staging + RDMA vs increasingly
  contended cold reads from the shared OSS complex;
- overall consumption 121.0-333.8× in the paper; idle dominates Lustre
  at every size.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import FigureResult, default_frames, default_runs, measure
from repro.md.models import MODELS
from repro.workflow.spec import Placement, System, WorkflowSpec

__all__ = ["PAPER", "run", "main"]

PAIRS = 16

PAPER = {
    "production_ratio_band": (2.1, 6.3),
    "consumption_movement_ratio_band": (1.6, 6.0),
    "consumption_ratio_band": (121.0, 333.8),
}


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> FigureResult:
    """Measure the Fig. 8 grid."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(16 if quick else frames)
    models = (MODELS[0], MODELS[-1]) if quick else MODELS
    cells = {}
    for model in models:
        for system in (System.DYAD, System.LUSTRE):
            spec = WorkflowSpec(
                system=system, model=model, stride=model.paper_stride,
                frames=frames, pairs=PAIRS, placement=Placement.SPLIT,
            )
            cell, _ = measure(spec, runs=runs)
            cells[(model.name, system.value)] = cell
    fig = FigureResult(
        figure_id="Fig8",
        title="molecular model size scaling, 16 pairs (DYAD vs Lustre)",
        x_name="model",
        xs=[m.name for m in models],
        systems=[System.DYAD.value, System.LUSTRE.value],
        cells=cells,
        runs=runs,
        frames=frames,
    )
    fig.notes = []
    for model in models:
        prod = fig.ratio("production_movement", "lustre", "dyad", x=model.name)
        move = fig.ratio("consumption_movement", "lustre", "dyad", x=model.name)
        total = fig.ratio("consumption_time", "lustre", "dyad", x=model.name)
        fig.notes.append(
            f"{model.name}: production lustre/dyad = {prod:.2f}x, "
            f"consumption movement = {move:.2f}x, overall = {total:.1f}x"
        )
    fig.notes.append(
        f"paper bands: production {PAPER['production_ratio_band']}, "
        f"cons movement {PAPER['consumption_movement_ratio_band']} (widening), "
        f"overall {PAPER['consumption_ratio_band']}"
    )
    return fig


def main(quick: bool = False) -> FigureResult:
    """Run and print Fig. 8."""
    fig = run(quick=quick)
    print(fig.render())
    return fig


if __name__ == "__main__":
    main()
