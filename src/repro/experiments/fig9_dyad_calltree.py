"""Fig. 9 — Thicket call-tree analysis of DYAD (JAC vs STMV).

Reproduces the paper's drill-down: the consumer-side call tree
``dyad_consume{dyad_fetch, dyad_get_data, dyad_cons_store}`` +
``read_single_buf``, aggregated over the ensemble with the Thicket-like
tooling, for the smallest and largest molecular models (2 nodes,
16 pairs, Table II strides).

Paper's observations:
- STMV moves 45.3× more data than JAC but DYAD's data movement is only
  ≈ 33.6× more expensive (fixed per-operation costs amortize with size);
- the per-call ``dyad_fetch`` (KVS) cost is ≈ 2.1× *lower* for STMV —
  larger data movement spreads the consumers out and relieves pressure
  on the KVS server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import default_frames, default_runs
from repro.md.models import JAC, STMV
from repro.perf.calltree import CallTree
from repro.perf.thicket import Thicket
from repro.units import to_msec
from repro.workflow.runner import run_repetitions
from repro.workflow.spec import Placement, System, WorkflowSpec

__all__ = ["PAPER", "MOVEMENT_REGIONS", "run", "main", "CallTreeFigure"]

PAIRS = 16

PAPER = {
    "data_ratio_stmv_over_jac": 45.3,
    "movement_ratio_stmv_over_jac": 33.6,
    "fetch_ratio_jac_over_stmv": 2.1,
}

#: Per-frame movement = the sum of these consumer regions (as in Fig. 9).
MOVEMENT_REGIONS = (
    ("dyad_consume", "dyad_get_data"),
    ("dyad_consume", "dyad_cons_store"),
    ("read_single_buf",),
)

FETCH_PATH = ("dyad_consume", "dyad_fetch")


@dataclass
class CallTreeFigure:
    """Aggregated call trees per model plus derived ratios."""

    figure_id: str
    trees: Dict[str, CallTree]
    per_frame: Dict[str, Dict[str, float]]  # model -> path-string -> seconds
    runs: int
    frames: int
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Rendered call trees (ms/frame) plus the derived ratios."""
        parts = [f"=== {self.figure_id} (runs={self.runs}, frames={self.frames}) ==="]
        for model, tree in self.trees.items():
            parts.append(f"-- {model} (mean consumer tree, ms per frame) --")
            parts.append(tree.render(metric="time", unit=1e-3 * self.frames,
                                     fmt="{:.3f} ms"))
        parts.extend(self.notes)
        return "\n".join(parts)


def _consumer_tree(spec: WorkflowSpec, runs: int) -> CallTree:
    """Mean consumer call tree across pairs and repetitions."""
    ensemble = Thicket()
    for result in run_repetitions(spec, runs=runs):
        ensemble.extend(result.thicket().filter(role="consumer"))
    return ensemble.aggregate("mean")


def _per_frame_times(tree: CallTree, frames: int) -> Dict[str, float]:
    out = {}
    for path in list(MOVEMENT_REGIONS) + [FETCH_PATH]:
        node = tree.find(*path)
        out["/".join(path)] = (node.time / frames) if node else 0.0
    return out


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> CallTreeFigure:
    """Measure and aggregate the Fig. 9 call trees."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(16 if quick else frames)
    trees: Dict[str, CallTree] = {}
    per_frame: Dict[str, Dict[str, float]] = {}
    for model in (JAC, STMV):
        spec = WorkflowSpec(
            system=System.DYAD, model=model, stride=model.paper_stride,
            frames=frames, pairs=PAIRS, placement=Placement.SPLIT,
        )
        tree = _consumer_tree(spec, runs)
        tree.label = f"DYAD consumer, {model.name}"
        trees[model.name] = tree
        per_frame[model.name] = _per_frame_times(tree, frames)

    movement = {
        name: sum(values["/".join(p)] for p in MOVEMENT_REGIONS)
        for name, values in per_frame.items()
    }
    fetch = {name: values["/".join(FETCH_PATH)] for name, values in per_frame.items()}
    data_ratio = STMV.frame_bytes / JAC.frame_bytes
    movement_ratio = movement["STMV"] / movement["JAC"] if movement["JAC"] else 0.0
    fetch_ratio = fetch["JAC"] / fetch["STMV"] if fetch["STMV"] else 0.0

    fig = CallTreeFigure(
        figure_id="Fig9: DYAD call trees (JAC vs STMV)",
        trees=trees,
        per_frame=per_frame,
        runs=runs,
        frames=frames,
    )
    fig.notes = [
        f"data ratio STMV/JAC = {data_ratio:.1f}x "
        f"(paper: {PAPER['data_ratio_stmv_over_jac']}x)",
        f"DYAD movement ratio STMV/JAC = {movement_ratio:.1f}x "
        f"(paper: {PAPER['movement_ratio_stmv_over_jac']}x — sublinear in data)",
        f"dyad_fetch per frame: JAC {to_msec(fetch['JAC']):.3f} ms, "
        f"STMV {to_msec(fetch['STMV']):.3f} ms "
        f"(ratio {fetch_ratio:.2f}x, paper: {PAPER['fetch_ratio_jac_over_stmv']}x "
        "cheaper for STMV)",
    ]
    return fig


def main(quick: bool = False) -> CallTreeFigure:
    """Run and print Fig. 9."""
    fig = run(quick=quick)
    print(fig.render())
    return fig


if __name__ == "__main__":
    main()
