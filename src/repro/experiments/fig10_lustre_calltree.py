"""Fig. 10 — Thicket call-tree analysis of Lustre (JAC vs STMV).

The consumer-side Lustre tree has two regions:
``FilesystemReader::read_single_buf`` (data movement) and
``explicit_sync`` (the coarse-grained barrier's idle time).

Paper's observations:
- data movement scales sublinearly: 45.3× more data → ≈ 12.3× more read
  time (striping parallelizes large files across OSTs);
- ``explicit_sync`` stays constant between JAC and STMV (the strides are
  chosen so production takes the same wall time for every model), which
  is what limits Lustre's overall scalability.

NOTE: our model reproduces the constant ``explicit_sync`` exactly, but
the movement ratio comes out larger than 12.3× when the OSS read path
saturates under 16 concurrent STMV consumers — the same contention that
produces the Fig. 8b widening the paper reports. The two paper claims
(Fig. 8b's widening vs Fig. 10's strong sublinearity) are not mutually
consistent; we follow Fig. 8b and report the measured ratio here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import default_frames, default_runs
from repro.experiments.fig9_dyad_calltree import CallTreeFigure
from repro.md.models import JAC, STMV
from repro.perf.calltree import CallTree
from repro.perf.thicket import Thicket
from repro.units import to_msec
from repro.workflow.emulator import READ_REGION, SYNC_REGION
from repro.workflow.runner import run_repetitions
from repro.workflow.spec import Placement, System, WorkflowSpec

__all__ = ["PAPER", "run", "main"]

PAIRS = 16

PAPER = {
    "data_ratio_stmv_over_jac": 45.3,
    "movement_ratio_stmv_over_jac": 12.3,
    "sync_constant": True,
}


def _consumer_tree(spec: WorkflowSpec, runs: int) -> CallTree:
    ensemble = Thicket()
    for result in run_repetitions(spec, runs=runs):
        ensemble.extend(result.thicket().filter(role="consumer"))
    return ensemble.aggregate("mean")


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> CallTreeFigure:
    """Measure and aggregate the Fig. 10 call trees."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(16 if quick else frames)
    trees: Dict[str, CallTree] = {}
    per_frame: Dict[str, Dict[str, float]] = {}
    for model in (JAC, STMV):
        spec = WorkflowSpec(
            system=System.LUSTRE, model=model, stride=model.paper_stride,
            frames=frames, pairs=PAIRS, placement=Placement.SPLIT,
        )
        tree = _consumer_tree(spec, runs)
        tree.label = f"Lustre consumer, {model.name}"
        trees[model.name] = tree
        read = tree.find(READ_REGION)
        sync = tree.find(SYNC_REGION)
        per_frame[model.name] = {
            READ_REGION: (read.time / frames) if read else 0.0,
            SYNC_REGION: (sync.time / frames) if sync else 0.0,
        }

    data_ratio = STMV.frame_bytes / JAC.frame_bytes
    movement_ratio = (
        per_frame["STMV"][READ_REGION] / per_frame["JAC"][READ_REGION]
        if per_frame["JAC"][READ_REGION]
        else 0.0
    )
    sync_ratio = (
        per_frame["STMV"][SYNC_REGION] / per_frame["JAC"][SYNC_REGION]
        if per_frame["JAC"][SYNC_REGION]
        else 0.0
    )
    fig = CallTreeFigure(
        figure_id="Fig10: Lustre call trees (JAC vs STMV)",
        trees=trees,
        per_frame=per_frame,
        runs=runs,
        frames=frames,
    )
    fig.notes = [
        f"data ratio STMV/JAC = {data_ratio:.1f}x "
        f"(paper: {PAPER['data_ratio_stmv_over_jac']}x)",
        f"Lustre read movement ratio STMV/JAC = {movement_ratio:.1f}x "
        f"(paper: {PAPER['movement_ratio_stmv_over_jac']}x; see module note)",
        f"explicit_sync per frame: JAC "
        f"{to_msec(per_frame['JAC'][SYNC_REGION]):.1f} ms, STMV "
        f"{to_msec(per_frame['STMV'][SYNC_REGION]):.1f} ms "
        f"(ratio {sync_ratio:.2f}x, paper: constant)",
    ]
    return fig


def main(quick: bool = False) -> CallTreeFigure:
    """Run and print Fig. 10."""
    fig = run(quick=quick)
    print(fig.render())
    return fig


if __name__ == "__main__":
    main()
