"""Shared experiment machinery: repetition, aggregation, reporting.

The paper runs every configuration 10 times and reports means (with
whiskers) of per-frame production and consumption time, decomposed into
data movement and idle. :class:`Cell` holds those four statistics for one
(x-value, system) combination; :class:`FigureResult` holds a whole
figure's grid plus ratio helpers used by the textual reports, the
benchmarks' shape assertions, and EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.perf.report import fmt_sig, table
from repro.units import to_msec, to_usec
from repro.workflow.runner import WorkflowResult, run_repetitions
from repro.workflow.spec import WorkflowSpec

__all__ = [
    "Stat",
    "Cell",
    "FigureResult",
    "default_runs",
    "default_frames",
    "measure",
    "median_run",
    "JITTER_CV",
]

#: Device/compute jitter used by all experiments (gives the paper's
#: run-to-run whiskers; unit tests use 0 for determinism).
JITTER_CV = 0.05


def default_runs(override: Optional[int] = None) -> int:
    """Repetitions per configuration (paper: 10; default here: 3)."""
    if override is not None:
        return max(1, int(override))
    return max(1, int(os.environ.get("REPRO_RUNS", "3")))


def default_frames(override: Optional[int] = None) -> int:
    """Frames per producer (paper: 128)."""
    if override is not None:
        return max(1, int(override))
    return max(1, int(os.environ.get("REPRO_FRAMES", "128")))


def median_run(runs: Sequence, key: Callable[[object], float]):
    """The run whose ``key`` is the (lower) median of the set.

    Aggregating a grid cell by *selecting one representative run* keeps
    its headline metric and its event counters mutually consistent: the
    reported transfer/cache counts are the ones that actually occurred in
    the run whose movement is reported. Mixing the median of one metric
    with the counters of run 0 fabricates a cell no run produced, and
    silently ties the counter columns to one arbitrary seed.
    """
    if not runs:
        raise ValueError("median_run needs at least one run")
    ordered = sorted(runs, key=key)
    return ordered[(len(ordered) - 1) // 2]


@dataclass(frozen=True)
class Stat:
    """Mean and standard deviation over repetitions."""

    mean: float
    std: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Stat":
        arr = np.asarray(list(values), dtype=float)
        return cls(
            mean=float(arr.mean()) if arr.size else 0.0,
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        )


@dataclass(frozen=True)
class Cell:
    """Per-frame metrics of one configuration, aggregated over runs."""

    production_movement: Stat
    production_idle: Stat
    consumption_movement: Stat
    consumption_idle: Stat

    @property
    def production_time(self) -> float:
        """Mean production time (movement + idle)."""
        return self.production_movement.mean + self.production_idle.mean

    @property
    def consumption_time(self) -> float:
        """Mean consumption time (movement + idle)."""
        return self.consumption_movement.mean + self.consumption_idle.mean

    @classmethod
    def of(cls, results: Sequence[WorkflowResult]) -> "Cell":
        return cls(
            production_movement=Stat.of([r.production_movement for r in results]),
            production_idle=Stat.of([r.production_idle for r in results]),
            consumption_movement=Stat.of([r.consumption_movement for r in results]),
            consumption_idle=Stat.of([r.consumption_idle for r in results]),
        )


def measure(spec: WorkflowSpec, runs: int, jitter_cv: float = JITTER_CV,
            jobs: Optional[int] = None, use_cache: Optional[bool] = None,
            fault_plan=None, fidelity: Optional[str] = None,
            **system_configs) -> Tuple[Cell, List[WorkflowResult]]:
    """Run one spec ``runs`` times; returns the aggregated cell and raw runs.

    ``jobs``/``use_cache`` default to the enclosing
    :func:`repro.experiments.parallel.campaign` scope (or the
    ``REPRO_JOBS``/``REPRO_CACHE`` environment variables), so figure
    modules calling ``measure`` inherit campaign-wide parallelism and
    caching without threading the knobs through their signatures.
    ``fault_plan`` makes every repetition a faulty run (see
    :mod:`repro.faults`); it participates in the cache key. ``fidelity``
    selects the simulation tier and defaults to the campaign scope (or
    ``REPRO_FIDELITY``, or ``exact``).
    """
    results = run_repetitions(spec, runs=runs, jitter_cv=jitter_cv,
                              jobs=jobs, use_cache=use_cache,
                              fault_plan=fault_plan, fidelity=fidelity,
                              **system_configs)
    return Cell.of(results), results


@dataclass
class FigureResult:
    """One paper figure worth of measurements."""

    figure_id: str
    title: str
    x_name: str                       # e.g. "pairs", "model", "stride"
    xs: List[object]
    systems: List[str]
    cells: Dict[Tuple[object, str], Cell]
    runs: int = 0
    frames: int = 0
    notes: List[str] = field(default_factory=list)

    # -- access ------------------------------------------------------------
    def cell(self, x: object, system: str) -> Cell:
        """Cell for one x-value and system."""
        return self.cells[(x, system)]

    def ratio(self, metric: str, numerator: str, denominator: str,
              x: Optional[object] = None) -> float:
        """Ratio of a metric between two systems.

        ``metric`` is one of ``production_movement``, ``production_time``,
        ``consumption_movement``, ``consumption_time``. Without ``x`` the
        ratio of across-x means is returned (how the paper states most of
        its headline factors).
        """
        def value(system: str, x_val: object) -> float:
            cell = self.cell(x_val, system)
            attr = getattr(cell, metric)
            return attr.mean if isinstance(attr, Stat) else float(attr)

        if x is not None:
            return value(numerator, x) / value(denominator, x)
        num = np.mean([value(numerator, xv) for xv in self.xs])
        den = np.mean([value(denominator, xv) for xv in self.xs])
        return float(num / den)

    # -- reporting ------------------------------------------------------------
    def production_table(self, unit: str = "us") -> str:
        """Fixed-width table of production movement/idle (Fig. Na panels)."""
        return self._table("production", unit)

    def consumption_table(self, unit: str = "ms") -> str:
        """Fixed-width table of consumption movement/idle (Fig. Nb panels)."""
        return self._table("consumption", unit)

    def _table(self, which: str, unit: str) -> str:
        conv = to_usec if unit == "us" else to_msec
        headers = [self.x_name, "system", f"movement ({unit})",
                   f"idle ({unit})", f"total ({unit})", f"±std ({unit})"]
        rows = []
        for x in self.xs:
            for system in self.systems:
                # Ragged grids (a system capped below the top x, e.g.
                # single-node fan-out under the procs/node budget) simply
                # omit the absent combinations.
                cell = self.cells.get((x, system))
                if cell is None:
                    continue
                move = getattr(cell, f"{which}_movement")
                idle = getattr(cell, f"{which}_idle")
                rows.append([
                    str(x), system,
                    fmt_sig(conv(move.mean)),
                    fmt_sig(conv(idle.mean)),
                    fmt_sig(conv(move.mean + idle.mean)),
                    fmt_sig(conv(np.hypot(move.std, idle.std))),
                ])
        return table(headers, rows,
                     title=f"{self.figure_id} {which} time per frame")

    def render(self) -> str:
        """Full textual report of the figure."""
        parts = [f"=== {self.figure_id}: {self.title} ===",
                 f"(runs={self.runs}, frames={self.frames})",
                 self.production_table(),
                 "",
                 self.consumption_table()]
        if self.notes:
            parts.append("")
            parts.extend(self.notes)
        return "\n".join(parts)
