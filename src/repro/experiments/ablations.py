"""Ablation study: which of DYAD's design choices buys what?

The paper credits DYAD's advantage to four mechanisms (its Fig. 2):
node-local staging, automatic multi-protocol synchronization, RDMA data
transfer, and global metadata management. This experiment switches the
switchable ones off one at a time — plus the synchronization alternatives
the paper describes for traditional systems — and measures the effect on
the JAC and STMV two-node workloads (16 pairs, Table II strides).

Variants
--------
``dyad``             the paper's DYAD (RDMA, flock fast path, consumer cache)
``dyad-eager``       two-sided eager messages instead of RDMA
``dyad-nocache``     no consumer-side staging (no ``dyad_cons_store``)
``dyad-fsync``       producer fsyncs every frame (durability tax)
``lustre-coarse``    traditional Lustre, coarse phase barrier (the paper's)
``lustre-polling``   traditional Lustre, Pegasus-style stat() polling
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dyad.config import DyadConfig
from repro.experiments.common import Cell, default_frames, default_runs, measure
from repro.md.models import JAC, STMV, MolecularModel
from repro.perf.report import table
from repro.units import to_msec
from repro.workflow.spec import Placement, SyncMode, System, WorkflowSpec

__all__ = ["VARIANTS", "AblationResult", "run", "main"]

PAIRS = 16

#: variant name -> (system, spec extras, dyad config)
VARIANTS = {
    "dyad": (System.DYAD, {}, DyadConfig()),
    "dyad-eager": (System.DYAD, {}, DyadConfig(transport="eager")),
    "dyad-nocache": (System.DYAD, {}, DyadConfig(cache_on_consume=False)),
    "dyad-fsync": (System.DYAD, {}, DyadConfig(fsync_on_produce=True)),
    "lustre-coarse": (System.LUSTRE, {"sync_mode": SyncMode.COARSE}, None),
    "lustre-polling": (System.LUSTRE, {"sync_mode": SyncMode.POLLING}, None),
}


@dataclass
class AblationResult:
    """Per-variant, per-model cells plus rendering."""

    cells: Dict[str, Dict[str, Cell]]  # model -> variant -> Cell
    runs: int
    frames: int
    notes: List[str] = field(default_factory=list)

    def cell(self, model: str, variant: str) -> Cell:
        """Cell for one model and variant."""
        return self.cells[model][variant]

    def render(self) -> str:
        """Fixed-width tables per model plus the summary notes."""
        parts = [f"=== Ablations (runs={self.runs}, frames={self.frames}, "
                 f"{PAIRS} pairs, 2+ nodes) ==="]
        for model, variants in self.cells.items():
            rows = []
            base = variants["dyad"]
            for name, cell in variants.items():
                rows.append([
                    name,
                    f"{to_msec(cell.production_time):.3f}",
                    f"{to_msec(cell.consumption_movement.mean):.3f}",
                    f"{to_msec(cell.consumption_idle.mean):.3f}",
                    f"{cell.consumption_time / base.consumption_time:.2f}x",
                ])
            parts.append(table(
                ["variant", "prod total (ms)", "cons move (ms)",
                 "cons idle (ms)", "cons total vs dyad"],
                rows, title=f"-- {model} --",
            ))
        parts.extend(self.notes)
        return "\n\n".join(parts)


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> AblationResult:
    """Measure every variant for JAC and STMV."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(16 if quick else frames)
    models = (JAC,) if quick else (JAC, STMV)
    cells: Dict[str, Dict[str, Cell]] = {}
    for model in models:
        cells[model.name] = {}
        for name, (system, extras, dyad_config) in VARIANTS.items():
            spec = WorkflowSpec(
                system=system, model=model, stride=model.paper_stride,
                frames=frames, pairs=PAIRS, placement=Placement.SPLIT,
                **extras,
            )
            kwargs = {"dyad_config": dyad_config} if dyad_config else {}
            cell, _ = measure(spec, runs=runs, **kwargs)
            cells[model.name][name] = cell

    result = AblationResult(cells=cells, runs=runs, frames=frames)
    for model in models:
        row = cells[model.name]
        base = row["dyad"]
        result.notes.append(
            f"{model.name}: eager transport costs "
            f"{row['dyad-eager'].consumption_movement.mean / base.consumption_movement.mean:.2f}x "
            f"movement; dropping the consumer cache saves "
            f"{base.consumption_movement.mean / row['dyad-nocache'].consumption_movement.mean:.2f}x; "
            f"per-frame fsync costs "
            f"{row['dyad-fsync'].production_time / base.production_time:.2f}x production; "
            f"polling sync cuts Lustre idle "
            f"{row['lustre-coarse'].consumption_idle.mean / row['lustre-polling'].consumption_idle.mean:.2f}x "
            "vs the coarse barrier (at the price of stat() load), but DYAD "
            "remains "
            f"{row['lustre-polling'].consumption_time / base.consumption_time:.1f}x faster overall."
        )
    return result


def main(quick: bool = False) -> AblationResult:
    """Run and print the ablation study."""
    result = run(quick=quick)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
