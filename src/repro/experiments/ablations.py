"""Ablation study: which of DYAD's design choices buys what?

The paper credits DYAD's advantage to four mechanisms (its Fig. 2):
node-local staging, automatic multi-protocol synchronization, RDMA data
transfer, and global metadata management. This experiment switches the
switchable ones off one at a time — plus the synchronization alternatives
the paper describes for traditional systems — and measures the effect on
the JAC and STMV two-node workloads (16 pairs, Table II strides).

Variants
--------
``dyad``             the paper's DYAD (RDMA, flock fast path, consumer cache)
``dyad-eager``       two-sided eager messages instead of RDMA
``dyad-nocache``     no consumer-side staging (no ``dyad_cons_store``)
``dyad-fsync``       producer fsyncs every frame (durability tax)
``dyad-faulty``      5% of remote gets fail and are retried (recovery tax)
``lustre-coarse``    traditional Lustre, coarse phase barrier (the paper's)
``lustre-polling``   traditional Lustre, Pegasus-style stat() polling

The faulty variant doubles as a validity check: every run must satisfy
the recovery invariants (retries == injected faults, all frames arrive)
or :func:`run` raises instead of silently reporting corrupt numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dyad.config import DyadConfig
from repro.errors import ReproError
from repro.experiments.common import Cell, default_frames, default_runs, measure
from repro.md.models import JAC, STMV, MolecularModel
from repro.perf.report import table
from repro.units import to_msec
from repro.workflow.spec import Placement, SyncMode, System, WorkflowSpec

__all__ = ["VARIANTS", "AblationResult", "run", "main"]

PAIRS = 16

#: variant name -> (system, spec extras, dyad config)
VARIANTS = {
    "dyad": (System.DYAD, {}, DyadConfig()),
    "dyad-eager": (System.DYAD, {}, DyadConfig(transport="eager")),
    "dyad-nocache": (System.DYAD, {}, DyadConfig(cache_on_consume=False)),
    "dyad-fsync": (System.DYAD, {}, DyadConfig(fsync_on_produce=True)),
    "dyad-faulty": (System.DYAD, {},
                    DyadConfig(fault_rate=0.05, max_transfer_retries=8)),
    "lustre-coarse": (System.LUSTRE, {"sync_mode": SyncMode.COARSE}, None),
    "lustre-polling": (System.LUSTRE, {"sync_mode": SyncMode.POLLING}, None),
}


@dataclass
class AblationResult:
    """Per-variant, per-model cells plus rendering."""

    cells: Dict[str, Dict[str, Cell]]  # model -> variant -> Cell
    runs: int
    frames: int
    notes: List[str] = field(default_factory=list)

    def cell(self, model: str, variant: str) -> Cell:
        """Cell for one model and variant."""
        return self.cells[model][variant]

    def render(self) -> str:
        """Fixed-width tables per model plus the summary notes."""
        parts = [f"=== Ablations (runs={self.runs}, frames={self.frames}, "
                 f"{PAIRS} pairs, 2+ nodes) ==="]
        for model, variants in self.cells.items():
            rows = []
            base = variants["dyad"]
            for name, cell in variants.items():
                rows.append([
                    name,
                    f"{to_msec(cell.production_time):.3f}",
                    f"{to_msec(cell.consumption_movement.mean):.3f}",
                    f"{to_msec(cell.consumption_idle.mean):.3f}",
                    f"{cell.consumption_time / base.consumption_time:.2f}x",
                ])
            parts.append(table(
                ["variant", "prod total (ms)", "cons move (ms)",
                 "cons idle (ms)", "cons total vs dyad"],
                rows, title=f"-- {model} --",
            ))
        parts.extend(self.notes)
        return "\n\n".join(parts)


def _check_recovery(variant: str, model: str, spec: WorkflowSpec,
                    results) -> None:
    """Recovery invariants of a faulty variant's raw runs.

    Under ``fault_rate > 0`` the consumer counters must balance — every
    injected transport fault was retried, and every frame still arrived —
    otherwise the variant's cell is measuring a broken run and the whole
    ablation report would be quietly wrong.
    """
    for result in results:
        stats = result.system_stats
        retries = stats.get("dyad_transfer_retries", 0.0)
        faults = stats.get("dyad_transport_faults", 0.0)
        refused = stats.get("dyad_refused_gets", 0.0)
        if retries != faults + refused:
            raise ReproError(
                f"{variant}/{model} seed={result.seed}: "
                f"{retries:.0f} retries != {faults:.0f} transport faults "
                f"+ {refused:.0f} refused gets — lost or spurious retries"
            )
        arrived = stats.get("dyad_fast_hits", 0.0) + stats.get(
            "dyad_kvs_waits", 0.0
        )
        expected = float(spec.frames * spec.pairs)
        if arrived != expected:
            raise ReproError(
                f"{variant}/{model} seed={result.seed}: consumers "
                f"completed {arrived:.0f} of {expected:.0f} frames "
                "despite the run finishing"
            )


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> AblationResult:
    """Measure every variant for JAC and STMV."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(16 if quick else frames)
    models = (JAC,) if quick else (JAC, STMV)
    cells: Dict[str, Dict[str, Cell]] = {}
    retry_counts: Dict[str, float] = {}
    for model in models:
        cells[model.name] = {}
        for name, (system, extras, dyad_config) in VARIANTS.items():
            spec = WorkflowSpec(
                system=system, model=model, stride=model.paper_stride,
                frames=frames, pairs=PAIRS, placement=Placement.SPLIT,
                **extras,
            )
            kwargs = {"dyad_config": dyad_config} if dyad_config else {}
            cell, raw = measure(spec, runs=runs, **kwargs)
            cells[model.name][name] = cell
            if dyad_config is not None and dyad_config.fault_rate > 0.0:
                _check_recovery(name, model.name, spec, raw)
                retry_counts[model.name] = sum(
                    r.system_stats["dyad_transfer_retries"] for r in raw
                )

    result = AblationResult(cells=cells, runs=runs, frames=frames)
    for model in models:
        row = cells[model.name]
        base = row["dyad"]
        result.notes.append(
            f"{model.name}: eager transport costs "
            f"{row['dyad-eager'].consumption_movement.mean / base.consumption_movement.mean:.2f}x "
            f"movement; dropping the consumer cache saves "
            f"{base.consumption_movement.mean / row['dyad-nocache'].consumption_movement.mean:.2f}x; "
            f"per-frame fsync costs "
            f"{row['dyad-fsync'].production_time / base.production_time:.2f}x production; "
            f"polling sync cuts Lustre idle "
            f"{row['lustre-coarse'].consumption_idle.mean / row['lustre-polling'].consumption_idle.mean:.2f}x "
            "vs the coarse barrier (at the price of stat() load), but DYAD "
            "remains "
            f"{row['lustre-polling'].consumption_time / base.consumption_time:.1f}x faster overall."
        )
        result.notes.append(
            f"{model.name}: 5% injected transfer faults cost "
            f"{row['dyad-faulty'].consumption_time / base.consumption_time:.2f}x "
            f"consumption ({retry_counts[model.name]:.0f} retries across "
            f"{runs} run(s); recovery invariants verified)"
        )
    return result


def main(quick: bool = False) -> AblationResult:
    """Run and print the ablation study."""
    result = run(quick=quick)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
