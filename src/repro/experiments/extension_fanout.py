"""Extension experiment: fan-out consumption (1 producer → k consumers).

The paper's future work calls for "a more diverse set of workflows". A
common one is fan-out: one simulation feeding several analytics consumers
(monitoring + reduction + visualization, cf. Section II-B). This
experiment measures how the data-management systems handle k consumers of
the same frames:

- **DYAD**: the first consumer on a node pulls the frame over RDMA and
  stages it; further consumers on that node hit the staging *cache* (one
  transfer per node, not per consumer);
- **Lustre**: every consumer cold-reads the frame from the OSS complex
  (k transfers), with the coarse barrier idle on top.

Not a paper figure — an extension built on the same substrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.corona import corona
from repro.dyad.service import DyadRuntime
from repro.experiments.common import default_frames, default_runs, median_run
from repro.md.models import JAC, MolecularModel
from repro.perf.caliper import Caliper, Category
from repro.perf.report import table
from repro.sim.resources import Signal
from repro.storage.lustre import LustreFileSystem, LustreServers
from repro.units import to_msec
from repro.workflow.emulator import READ_REGION, frame_path

#: consumers start with small phase offsets — distinct analytics tools do
#: not tick in lockstep, and the stagger lets the node staging cache work
CONSUMER_OFFSET = 0.05

__all__ = ["FANOUTS", "FanoutResult", "run", "main"]

FANOUTS = (1, 2, 4, 8)
STRIDE_TIME = 0.82


@dataclass
class FanoutMeasurement:
    """Mean per-consumer movement + transfer counts for one configuration."""

    consumption_movement: float   # seconds/frame, mean over consumers
    transfers: int                # remote data transfers that happened
    cache_hits: int               # DYAD staging-cache hits (0 for lustre)


@dataclass
class FanoutResult:
    """Grid: system -> fanout -> measurement."""

    grid: Dict[str, Dict[int, FanoutMeasurement]]
    runs: int
    frames: int
    model: str
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Fixed-width table of the fan-out grid plus notes.

        Renders whatever the grid actually holds: a system or fan-out
        missing from the grid shows as ``n/a`` rather than raising, and
        the ratio column is guarded against a zero DYAD movement (a
        quick all-cache-hit run can legitimately report ~0).
        """
        rows = []
        fanouts = sorted({f for per in self.grid.values() for f in per})
        for fanout in fanouts:
            row = [str(fanout)]
            for system in ("dyad", "lustre"):
                m = self.grid.get(system, {}).get(fanout)
                if m is None:
                    row.extend(["n/a", "n/a"])
                else:
                    row.append(f"{to_msec(m.consumption_movement):.3f}")
                    row.append(str(m.transfers))
            dyad = self.grid.get("dyad", {}).get(fanout)
            lustre = self.grid.get("lustre", {}).get(fanout)
            if (dyad is not None and lustre is not None
                    and dyad.consumption_movement > 0):
                row.append(
                    f"{lustre.consumption_movement / dyad.consumption_movement:.2f}x"
                )
            else:
                row.append("n/a")
            rows.append(row)
        body = table(
            ["consumers", "dyad move (ms)", "dyad transfers",
             "lustre move (ms)", "lustre transfers", "lustre/dyad"],
            rows,
            title=(f"=== Fan-out consumption, {self.model} "
                   f"(runs={self.runs}, frames={self.frames}) ==="),
        )
        return "\n".join([body] + self.notes)


def _run_dyad(model: MolecularModel, fanout: int, frames: int, seed: int):
    """1 producer on node00, `fanout` consumers on node01 (shared cache)."""
    cluster = corona(nodes=2, seed=seed, jitter_cv=0.05)
    env = cluster.env
    runtime = DyadRuntime(cluster)
    caliper = Caliper(clock=lambda: env.now)
    producer = runtime.producer("node00", "prod")
    consumers = [runtime.consumer("node01", f"cons{i}") for i in range(fanout)]
    anns = [caliper.annotator(f"cons{i}") for i in range(fanout)]

    def produce():
        for k in range(frames):
            yield env.timeout(cluster.rng.jitter("md", STRIDE_TIME, 0.05))
            yield from producer.produce(
                frame_path("/dyad", 0, k), model.frame_bytes
            )

    def consume(i: int):
        yield env.timeout(i * CONSUMER_OFFSET)
        for k in range(frames):
            yield from consumers[i].consume(
                frame_path("/dyad", 0, k), annotator=anns[i]
            )
            if k == 0:
                # the first frame's KVS watch wakes everyone at the same
                # commit; re-stagger so the tools keep distinct phases
                yield env.timeout(i * CONSUMER_OFFSET)
            yield env.timeout(
                cluster.rng.jitter(f"an.c{i}", STRIDE_TIME, 0.05)
            )

    env.process(produce())
    for i in range(fanout):
        env.process(consume(i))
    env.run()
    per_frame = [
        ann.finish().total_by_category(Category.MOVEMENT) / frames
        for ann in anns
    ]
    return FanoutMeasurement(
        consumption_movement=float(np.median(per_frame)),
        transfers=cluster.fabric.stats.rdma_transfers,
        cache_hits=sum(c.cache_hits for c in consumers),
    )


def _run_lustre(model: MolecularModel, fanout: int, frames: int, seed: int):
    """1 producer writes to Lustre; `fanout` consumers read every frame."""
    cluster = corona(nodes=2, seed=seed, jitter_cv=0.05)
    env = cluster.env
    servers = LustreServers(env, cluster.fabric, None, cluster.rng)
    fs = LustreFileSystem(servers)
    fs.makedirs("/data/pair0000")
    barrier = Signal(env)
    movement: Dict[int, float] = {i: 0.0 for i in range(fanout)}

    def produce():
        for k in range(frames):
            yield env.timeout(cluster.rng.jitter("md", STRIDE_TIME, 0.05))
            handle = yield from fs.open(
                frame_path("/data", 0, k), "w", client="node00"
            )
            try:
                yield from handle.write(model.frame_bytes)
            finally:
                yield from handle.close()
        barrier.fire_once(env.now)

    def consume(i: int):
        yield barrier.wait()
        yield env.timeout(i * CONSUMER_OFFSET)
        for k in range(frames):
            start = env.now
            handle = yield from fs.open(
                frame_path("/data", 0, k), "r", client="node01"
            )
            try:
                yield from handle.read()
            finally:
                yield from handle.close()
            movement[i] += env.now - start
            yield env.timeout(STRIDE_TIME)

    env.process(produce())
    for i in range(fanout):
        env.process(consume(i))
    env.run()
    per_frame = [movement[i] / frames for i in range(fanout)]
    return FanoutMeasurement(
        consumption_movement=float(np.median(per_frame)),
        transfers=fanout * frames,
        cache_hits=0,
    )


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False, model: MolecularModel = JAC) -> FanoutResult:
    """Measure the fan-out grid (median over runs)."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(16 if quick else min(default_frames(frames), 64))
    fanouts = FANOUTS[:3] if quick else FANOUTS
    grid: Dict[str, Dict[int, FanoutMeasurement]] = {"dyad": {}, "lustre": {}}
    for fanout in fanouts:
        dyad_runs = [_run_dyad(model, fanout, frames, seed=1000 * r)
                     for r in range(runs)]
        lustre_runs = [_run_lustre(model, fanout, frames, seed=1000 * r)
                       for r in range(runs)]
        # Aggregate both systems identically: pick the median-movement
        # run, whose transfer/cache counters are the ones that actually
        # produced the reported movement (per-run-consistent cells).
        grid["dyad"][fanout] = median_run(
            dyad_runs, key=lambda m: m.consumption_movement
        )
        grid["lustre"][fanout] = median_run(
            lustre_runs, key=lambda m: m.consumption_movement
        )

    result = FanoutResult(grid=grid, runs=runs, frames=frames,
                          model=model.name)
    top = max(fanouts)
    dyad_top = grid["dyad"][top]
    result.notes.append(
        f"at fan-out {top}, DYAD served {dyad_top.cache_hits} of "
        f"{top * frames} consumptions from the node-local staging cache "
        f"({dyad_top.transfers} RDMA chunk transfers total); Lustre "
        f"performed {grid['lustre'][top].transfers} cold reads."
    )
    return result


def main(quick: bool = False) -> FanoutResult:
    """Run and print the fan-out extension experiment."""
    result = run(quick=quick)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
